//! Determinism contract of the blocking-I/O model (INTERNALS.md §15).
//!
//! Device latency draws come from dedicated `DetRng` streams keyed only
//! by `(io seed, device, submission order)`, and blocked threads reuse
//! the kernel's sleep machinery — so an I/O-heavy run must be
//! bit-identical across:
//!
//! * interpreter strategies (`ExecMode::SingleStep` vs `ExecMode::Block`
//!   — run-ahead may never change what a device queue observes), and
//! * host parallelism (`--jobs`; the what-if fan-out runs each arm on a
//!   different worker thread, yet renders byte-identically).
//!
//! "Identical" here includes the I/O accounting itself: per-device wait
//! cycles, submit counts, and the per-region telemetry records the rings
//! carry.

use limit::{LimitReader, MachineParams};
use sim_cpu::EventKind;
use sim_os::{ExecMode, RunReport};
use whatif::{run_whatif, WhatifConfig, Workload};
use workloads::{logstore, proxy};

const EVENTS: [EventKind; 3] = [
    EventKind::Cycles,
    EventKind::Instructions,
    EventKind::LlcMisses,
];

/// Everything observable from one I/O-heavy run.
#[derive(Debug, PartialEq)]
struct Observed {
    report: RunReport,
    total_retired: u64,
    /// Every telemetry record, in drain order (region ids + deltas).
    records: Vec<(sim_core::ThreadId, limit::report::RegionRecord)>,
}

fn observe(session: &limit::harness::Session, report: RunReport) -> Observed {
    Observed {
        total_retired: session.kernel.machine.total_retired(),
        records: session.all_records().unwrap(),
        report,
    }
}

#[test]
fn logstore_is_identical_across_exec_modes() {
    let cfg = logstore::LogstoreConfig {
        commits_per_thread: 8,
        ..Default::default()
    };
    let params = MachineParams::new(4);
    let run = |exec| {
        let reader = LimitReader::with_events(EVENTS.to_vec());
        let (mut session, _) =
            logstore::build_with_params_exec(&cfg, &reader, &params, &EVENTS, exec).unwrap();
        let report = session.run().unwrap();
        observe(&session, report)
    };
    let single = run(ExecMode::SingleStep);
    let block = run(ExecMode::Block);
    assert!(single.report.io_submits > 0, "workload performed no I/O");
    assert!(single.report.io_wait_cycles > 0);
    assert_eq!(
        single, block,
        "logstore: block-stepped run diverged from single-step"
    );
}

#[test]
fn proxy_is_identical_across_exec_modes() {
    let cfg = proxy::ProxyConfig {
        requests_per_thread: 8,
        ..Default::default()
    };
    let params = MachineParams::new(4);
    let run = |exec| {
        let reader = LimitReader::with_events(EVENTS.to_vec());
        let (mut session, _) =
            proxy::build_with_params_exec(&cfg, &reader, &params, &EVENTS, exec).unwrap();
        let report = session.run().unwrap();
        observe(&session, report)
    };
    let single = run(ExecMode::SingleStep);
    let block = run(ExecMode::Block);
    assert_eq!(
        single.report.io_submits,
        cfg.threads as u64 * cfg.requests_per_thread * cfg.fanout
    );
    assert_eq!(
        single, block,
        "proxy: block-stepped run diverged from single-step"
    );
}

#[test]
fn logstore_whatif_is_identical_across_jobs() {
    let run = |jobs| {
        let mut cfg = WhatifConfig::new(Workload::Logstore);
        cfg.queries = 6;
        cfg.jobs = jobs;
        run_whatif(&cfg, |_, _| {}).unwrap()
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(
        a.render(),
        b.render(),
        "logstore whatif report diverged across --jobs"
    );
}

#[test]
fn proxy_whatif_is_identical_across_jobs() {
    let run = |jobs| {
        let mut cfg = WhatifConfig::new(Workload::Proxy);
        cfg.queries = 6;
        cfg.jobs = jobs;
        run_whatif(&cfg, |_, _| {}).unwrap()
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(
        a.render(),
        b.render(),
        "proxy whatif report diverged across --jobs"
    );
}
