//! What-if determinism regression: the same engine configuration must
//! produce a byte-identical causal report no matter how many host
//! workers execute the arm fan-out. The whole point of differential
//! re-simulation is that arm-vs-baseline deltas are attributable to the
//! perturbed knob alone — any dependence on host scheduling would leak
//! into the deltas and poison every sensitivity. The `bench --mode
//! whatif` command enforces the same gate at full E16 scale; this covers
//! both workloads at small configurations so it rides along with
//! `cargo test`.

use whatif::{run_whatif, WhatifConfig, WhatifReport, Workload};

fn cfg(workload: Workload, jobs: usize) -> WhatifConfig {
    let mut c = WhatifConfig::new(workload);
    c.queries = 30;
    c.jobs = jobs;
    c
}

/// Everything result-bearing — the rendered table plus every field that
/// feeds an NDJSON line — in one comparable string.
fn fingerprint(report: &WhatifReport) -> String {
    let mut s = report.render();
    s.push_str(&format!(
        "baseline cycles {} warnings {:?}\n",
        report.baseline_cycles, report.baseline_warnings
    ));
    let sums = |r: &telemetry::RegionSnapshot| -> Vec<u64> {
        (0..whatif::EVENTS.len()).map(|i| r.event_sum(i)).collect()
    };
    for r in &report.baseline.regions {
        s.push_str(&format!(
            "baseline region {} count {} events {:?}\n",
            r.name,
            r.count,
            sums(r)
        ));
    }
    for arm in &report.arms {
        s.push_str(&format!(
            "arm {} {}->{} cycles {} warnings {:?}\n",
            arm.knob, arm.base, arm.scaled, arm.total_cycles, arm.warnings
        ));
        for r in &arm.snapshot.regions {
            s.push_str(&format!(
                "  region {} count {} events {:?}\n",
                r.name,
                r.count,
                sums(r)
            ));
        }
    }
    for r in &report.regions {
        s.push_str(&format!(
            "sens {} base {}x{}: {:?} impact {:?}\n",
            r.region, r.base_count, r.base_cycles, r.sens, r.impact
        ));
    }
    for f in &report.findings {
        s.push_str(&format!("finding {} {} {}\n", f.region, f.kind, f.detail));
    }
    s
}

#[test]
fn whatif_reports_are_byte_identical_across_jobs_1_4() {
    for workload in [Workload::Mysqld, Workload::Memcached] {
        let base = fingerprint(&run_whatif(&cfg(workload, 1), |_, _| {}).expect("jobs=1 runs"));
        let other = fingerprint(&run_whatif(&cfg(workload, 4), |_, _| {}).expect("jobs=4 runs"));
        assert_eq!(
            base,
            other,
            "{} whatif fingerprint diverged between --jobs 1 and --jobs 4",
            workload.name()
        );
    }
}
