//! Fleet determinism regression: the same fleet seed must produce a
//! byte-identical fleet aggregate, queue replay, and finding set no
//! matter how many host workers execute it. This is the contract that
//! makes fleet results comparable across machines and CI runners — any
//! dependence on host scheduling is a bug, caught here.

use fleet::{run_fleet, FleetConfig, Workload, EVENT_NAMES};

fn cfg(jobs: usize) -> FleetConfig {
    FleetConfig {
        workload: Workload::Mysqld,
        instances: 12,
        threads: 2,
        queries: 10,
        jobs,
        ..FleetConfig::default()
    }
}

/// Everything result-bearing, rendered to one comparable string.
fn fingerprint(report: &fleet::FleetReport) -> String {
    let mut s = report.fleet.render(&EVENT_NAMES);
    for f in &report.findings {
        s.push_str(&f.to_string());
        s.push('\n');
    }
    for inst in &report.instances {
        s.push_str(&format!(
            "instance {} seed {:#x} service {} appended {} drained {}\n",
            inst.index,
            inst.seed,
            inst.service_cycles,
            inst.snapshot.appended,
            inst.snapshot.drained
        ));
    }
    s.push_str(&format!(
        "arrivals {:?}\nsojourn {:?}\nutil {:.6} wait {:.6} depth {}\n",
        report.arrivals,
        report.queue.sojourn,
        report.queue.stats.utilization,
        report.queue.stats.mean_wait,
        report.queue.stats.max_queue_depth
    ));
    s
}

#[test]
fn fleet_results_are_byte_identical_across_jobs_1_4_8() {
    let base = fingerprint(&run_fleet(&cfg(1), |_, _| {}).expect("jobs=1 fleet runs"));
    for jobs in [4, 8] {
        let other = fingerprint(&run_fleet(&cfg(jobs), |_, _| {}).expect("fleet runs"));
        assert_eq!(
            base, other,
            "fleet fingerprint diverged between --jobs 1 and --jobs {jobs}"
        );
    }
}

#[test]
fn different_fleet_seeds_produce_different_fleets() {
    let a = run_fleet(&cfg(2), |_, _| {}).unwrap();
    let mut other = cfg(2);
    other.seed ^= 0xDEAD_BEEF;
    let b = run_fleet(&other, |_, _| {}).unwrap();
    assert_ne!(a.arrivals, b.arrivals, "arrival timeline ignored the seed");
    assert_ne!(
        a.instances[0].seed, b.instances[0].seed,
        "instance seeds ignored the fleet seed"
    );
}
