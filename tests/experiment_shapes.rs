//! Integration tests asserting the *shapes* of the reproduced experiments:
//! who wins, by roughly what factor, and which invariants hold. Absolute
//! numbers are substrate-dependent; the orderings and magnitudes below are
//! the paper's claims.

use bench::{e1, e10, e3, e4};

#[test]
fn e1_limit_reads_in_low_tens_of_nanoseconds() {
    let rows = e1::run(2_000).expect("E1 runs");
    let limit = e1::row(&rows, "limit").unwrap();
    assert!(
        (10.0..50.0).contains(&limit.nanos),
        "limit read = {} ns, expected low tens",
        limit.nanos
    );
}

#[test]
fn e1_limit_is_one_to_two_orders_faster_than_syscall_paths() {
    let rows = e1::run(2_000).expect("E1 runs");
    let limit = e1::row(&rows, "limit").unwrap().nanos;
    let perf = e1::row(&rows, "perf").unwrap().nanos;
    let papi = e1::row(&rows, "papi").unwrap().nanos;
    let perf_ratio = perf / limit;
    let papi_ratio = papi / limit;
    assert!(
        (10.0..1000.0).contains(&perf_ratio),
        "perf/limit ratio {perf_ratio}"
    );
    assert!(papi_ratio > perf_ratio, "PAPI adds library overhead on top");
}

#[test]
fn e1_rdtsc_is_the_floor() {
    let rows = e1::run(2_000).expect("E1 runs");
    let rdtsc = e1::row(&rows, "rdtsc").unwrap().cycles;
    let limit = e1::row(&rows, "limit").unwrap().cycles;
    assert!(rdtsc < limit, "a raw timestamp must be cheapest");
    assert!(
        limit < 4.0 * rdtsc,
        "limit stays within a small factor of it"
    );
}

#[test]
fn e3_virtualized_counts_are_exact_in_every_scenario() {
    let rows = e3::run().expect("E3 runs");
    assert!(rows.len() >= 4);
    for row in &rows {
        assert!(
            row.exact(),
            "{}: expected {} got [{}, {}]",
            row.scenario,
            row.expected,
            row.measured_min,
            row.measured_max
        );
    }
    // The scenarios actually exercised what they claim to.
    assert!(
        rows.iter().any(|r| r.migrations > 0),
        "a migration scenario must migrate"
    );
    assert!(
        rows.iter().any(|r| r.pmis > 0),
        "an overflow scenario must overflow"
    );
    assert!(
        rows.iter().any(|r| r.switches > 10),
        "a preemption scenario must switch"
    );
}

#[test]
fn e3_rdtsc_is_useless_under_time_sharing() {
    let (virt, rdtsc) = e3::wallclock_comparison().expect("comparison runs");
    assert!(
        rdtsc as f64 > 2.0 * virt as f64,
        "wall clock must be inflated by co-runners: virt={virt} rdtsc={rdtsc}"
    );
}

#[test]
fn e4_fixup_eliminates_read_corruption() {
    let (on, off) = e4::run_both().expect("E4 runs");
    assert_eq!(on.violations, 0, "fix-up on: no corrupted reads");
    assert!(on.fixups > 0, "the storm must actually hit the sequence");
    assert!(
        off.violations > 0,
        "fix-up off: the race must be observable"
    );
    assert!(off.unfixed_races >= off.violations / 2);
    assert_eq!(off.fixups, 0);
}

#[test]
fn e10_destructive_read_is_cheaper_than_a_pair() {
    let d = e10::run_destructive(1_000).expect("E10.1 runs");
    assert!(
        d.destructive_cycles < d.pair_cycles / 1.5,
        "pair={} destructive={}",
        d.pair_cycles,
        d.destructive_cycles
    );
}

#[test]
fn e10_self_virtualizing_counters_eliminate_pmis_and_stay_exact() {
    let (stock, ext) = e10::run_self_virtualizing().expect("E10.2 runs");
    assert!(stock.pmis > 0, "narrow counters must overflow");
    assert_eq!(ext.pmis, 0, "hardware spill replaces every PMI");
    assert_eq!(stock.measured, stock.expected);
    assert_eq!(ext.measured, ext.expected);
    assert!(
        ext.total_cycles < stock.total_cycles,
        "removing PMI handling must save time"
    );
}

#[test]
fn e10_tag_filter_removes_probe_self_pollution() {
    let t = e10::run_tag_filter(300).expect("E10.3 runs");
    assert!(
        t.untagged_mean > t.tagged_mean,
        "untagged includes instrumentation instructions"
    );
    // The tagged measurement is within a couple of instructions of truth
    // (the settag instructions themselves are the residue).
    assert!(
        (t.tagged_mean - t.true_work as f64).abs() <= 2.0,
        "tagged mean {} vs true {}",
        t.tagged_mean,
        t.true_work
    );
}

#[test]
fn e1b_limit_scales_linearly_and_perf_pays_per_counter() {
    let rows = bench::e1::run_multi(500).expect("E1b runs");
    let cell = |m: &str, k: usize| {
        rows.iter()
            .find(|r| r.method == m && r.counters == k)
            .unwrap()
            .cycles
    };
    // LiMiT: ~36 cycles per extra counter (read sequence each).
    let limit_step = cell("limit", 4) - cell("limit", 3);
    assert!(
        (25.0..60.0).contains(&limit_step),
        "limit step {limit_step}"
    );
    // perf: a full syscall round-trip per extra counter.
    let perf_step = cell("perf", 4) - cell("perf", 3);
    assert!(perf_step > 2_000.0, "perf step {perf_step}");
    // Reading all four counters with LiMiT still beats ONE perf read.
    assert!(cell("limit", 4) < cell("perf", 1) / 10.0);
}

#[test]
fn e13_streaming_telemetry_is_affordable_and_lossless() {
    let rows = bench::e13::run(&[8], 80, 8).expect("E13 runs");
    let stream = rows
        .iter()
        .find(|r| r.row.method == "stream")
        .expect("stream row");
    // The live pipeline saw every record and served mid-run snapshots.
    assert_eq!(stream.dropped, 0, "drop-policy ring must not drop");
    assert!(stream.snapshots >= 3, "only {} snapshots", stream.snapshots);
    let log = rows.iter().find(|r| r.row.method == "log").unwrap();
    assert_eq!(
        stream.row.reads, log.row.reads,
        "stream must drain exactly the records log mode appends"
    );
    // The headline claim: streaming costs at most ~2x the aggregate-table
    // fold — continuous interrogation is affordable.
    let ratio = bench::e13::stream_vs_aggregate(&rows, 8).expect("both overheads");
    assert!(ratio <= 2.0, "stream/aggregate overhead ratio {ratio:.2}");
    // And it cannot be cheaper than the shorter aggregate path.
    assert!(ratio > 0.8, "suspicious ratio {ratio:.2}");
}
