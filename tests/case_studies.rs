//! Integration tests for the case-study experiments (E2, E5–E9): the
//! slower, whole-application runs.

use bench::{e2, e5, e6, e7, e8, e9};
use workloads::apache::ApacheConfig;
use workloads::firefox::FirefoxConfig;
use workloads::mysqld::MysqlConfig;

fn small_mysql() -> MysqlConfig {
    MysqlConfig {
        threads: 8,
        queries_per_thread: 60,
        ..MysqlConfig::default()
    }
}

fn small_firefox() -> FirefoxConfig {
    FirefoxConfig {
        tasks: 250,
        ..FirefoxConfig::default()
    }
}

#[test]
fn e2_limit_overhead_is_an_order_below_syscall_methods() {
    let rows = e2::run(&[8], 60, 8).expect("E2 runs");
    let limit = e2::overhead_of(&rows, 8, "limit").unwrap();
    let perf = e2::overhead_of(&rows, 8, "perf").unwrap();
    let papi = e2::overhead_of(&rows, 8, "papi").unwrap();
    assert!(limit > 0.0, "instrumentation is not free");
    assert!(
        perf > 5.0 * limit,
        "perf ({perf:.2}) must dwarf limit ({limit:.2})"
    );
    assert!(papi >= perf, "papi adds library overhead");
}

#[test]
fn e5_sampling_error_is_large_for_short_classes_and_zero_for_precise() {
    let rows = e5::run(&small_firefox(), &[4_096, 32_768]).expect("E5 runs");
    for row in &rows {
        assert!(row.samples > 0, "sampling must collect hits");
        assert!(
            row.worst_abs_err > 0.2,
            "some class must be badly misattributed at period {}: {}",
            row.period,
            row.worst_abs_err
        );
    }
    // Coarser periods mean fewer samples.
    assert!(rows[0].samples > rows[1].samples);
}

#[test]
fn e6_most_critical_sections_are_short() {
    let result = e6::run(&small_mysql(), 8).expect("E6 runs");
    let table = result.report.class("table").expect("table class exists");
    assert!(table.hold.count() > 100);
    // The headline insight: the bulk of critical sections are ≲ a few
    // thousand cycles — far below a sampling interval.
    assert!(
        table.short_fraction(4_096) > 0.8,
        "table CS <4k-cycle fraction = {}",
        table.short_fraction(4_096)
    );
    let log = result.report.class("log").expect("log class exists");
    assert!(
        log.short_fraction(1_024) > 0.9,
        "log CSs are a few hundred cycles"
    );
}

#[test]
fn e7_sync_share_grows_with_thread_count() {
    let rows = e7::run(&[2, 16], 50, 4).expect("E7 runs");
    let low = &rows[0];
    let high = &rows[1];
    assert!(
        high.combined_share > low.combined_share + 0.1,
        "combined sync share must grow: {} -> {}",
        low.combined_share,
        high.combined_share
    );
    assert!(high.futex_waits > low.futex_waits);
    assert!(high.blocked_cycles > low.blocked_cycles);
}

#[test]
fn e8_task_classes_have_distinct_signatures() {
    let rows = e8::run(&small_firefox(), 4).expect("E8 runs");
    let ui = e8::row(&rows, "ui").expect("ui row");
    let js = e8::row(&rows, "js").expect("js row");
    let gc = e8::row(&rows, "gc").expect("gc row");
    let layout = e8::row(&rows, "layout").expect("layout row");
    assert!(ui.count > 0 && js.count > 0 && layout.count > 0);
    // GC may be rare in a short run, but when present it is memory-bound.
    if gc.count > 0 {
        assert!(gc.mean_cycles > 5.0 * ui.mean_cycles);
        assert!(gc.mean_llc > 10.0 * ui.mean_llc.max(0.1));
    }
    assert!(
        js.mean_bmiss > 5.0 * ui.mean_bmiss.max(0.1),
        "js is mispredict-heavy: js={} ui={}",
        js.mean_bmiss,
        ui.mean_bmiss
    );
    assert!(
        layout.mean_llc > 5.0 * ui.mean_llc.max(0.1),
        "layout is memory-bound"
    );
}

#[test]
fn e9_handler_dominates_cycles_and_misses() {
    let cfg = ApacheConfig {
        workers: 4,
        requests_per_worker: 40,
        ..ApacheConfig::default()
    };
    let result = e9::run(&cfg, 4).expect("E9 runs");
    let get = |name: &str| result.rows.iter().find(|r| r.phase == name).unwrap();
    let handler = get("handler");
    let parse = get("parse");
    let log = get("log");
    assert_eq!(handler.count, 160);
    assert!(handler.mean_cycles > 3.0 * parse.mean_cycles);
    assert!(handler.mean_llc > 10.0 * parse.mean_llc.max(0.1));
    assert!(log.mean_cycles < handler.mean_cycles);
    // Tail: p99 is above the mean.
    assert!(handler.p99_cycles as f64 > handler.mean_cycles);
}

#[test]
fn e11_colocation_hits_memory_bound_classes_only() {
    let rows = bench::e11::run(8).expect("E11 runs");
    let ui = bench::e11::row(&rows, "ui").unwrap();
    let layout = bench::e11::row(&rows, "layout").unwrap();
    let paint = bench::e11::row(&rows, "paint").unwrap();
    // Compute-bound: untouched.
    assert!(ui.slowdown() < 1.02, "ui slowdown {}", ui.slowdown());
    // Memory-bound: measurably slower with more LLC misses.
    for victim in [layout, paint] {
        assert!(
            victim.slowdown() > 1.05,
            "{} slowdown {}",
            victim.class,
            victim.slowdown()
        );
        assert!(
            victim.coloc_llc > victim.alone_llc * 1.1,
            "{} llc {} -> {}",
            victim.class,
            victim.alone_llc,
            victim.coloc_llc
        );
    }
}

#[test]
fn e12_striping_relieves_the_lock_bottleneck() {
    let rows = bench::e12::run(&[1, 64], 8).expect("E12 runs");
    let coarse = &rows[0];
    let fine = &rows[1];
    assert!(
        fine.ops_per_mcycle > 2.0 * coarse.ops_per_mcycle,
        "throughput {} -> {}",
        coarse.ops_per_mcycle,
        fine.ops_per_mcycle
    );
    assert!(fine.sync_share < coarse.sync_share - 0.1);
    assert!(fine.futex_waits < coarse.futex_waits / 4);
    // Hold time is a property of the bucket work, not the striping.
    assert!((fine.mean_hold - coarse.mean_hold).abs() < 0.15 * coarse.mean_hold);
}

#[test]
fn priority_lets_a_foreground_thread_finish_first() {
    use limit_repro::prelude::*;
    // Five identical CPU-bound threads on one core; the last-spawned one
    // gets high priority and must finish first despite spawning last.
    let mut b = SessionBuilder::new(1).kernel_config(KernelConfig {
        quantum: 5_000,
        ..Default::default()
    });
    let mut asm = b.asm();
    asm.export("spin");
    asm.burst(60_000);
    asm.halt();
    let mut s = b.build(asm).expect("builds");
    let mut tids = Vec::new();
    for _ in 0..4 {
        tids.push(s.spawn_instrumented("spin", &[]).expect("spawns"));
    }
    let vip = s.spawn_instrumented("spin", &[]).expect("spawns");
    s.kernel.set_priority(vip, 10);
    s.run().expect("runs");
    let exit_of = |t| s.kernel.thread(t).stats.exited_at;
    for &t in &tids {
        assert!(
            exit_of(vip) < exit_of(t),
            "vip exited at {} vs {} for {t}",
            exit_of(vip),
            exit_of(t)
        );
    }
}
