//! Cross-interpreter differential tests: every workload must produce a
//! bit-identical simulation under the legacy per-instruction interpreter
//! (`ExecMode::SingleStep`) and the block-stepped fast path
//! (`ExecMode::Block`). The block executor's batched event accrual and
//! run-ahead are *optimizations* — any observable difference (kernel run
//! report, retired instruction totals, virtualized counter values) is a
//! bug in the fast path, not a tolerance to widen.
//!
//! The `bench` command enforces the same gate at full mysqld scale on
//! every benchmark run; these tests cover the other workloads at small
//! configurations so the gate rides along with `cargo test`.

use limit::LimitReader;
use sim_cpu::EventKind;
use sim_os::{ExecMode, KernelConfig, RunReport};
use workloads::{apache, firefox, memcached, mysqld};

const EVENTS: [EventKind; 3] = [
    EventKind::Cycles,
    EventKind::Instructions,
    EventKind::LlcMisses,
];

fn kcfg(exec: ExecMode) -> KernelConfig {
    KernelConfig {
        exec,
        ..KernelConfig::default()
    }
}

/// Everything observable from one run, gathered for exact comparison.
#[derive(Debug, PartialEq)]
struct Observed {
    report: RunReport,
    total_retired: u64,
    /// Per-thread virtualized counter totals, in spawn order.
    counters: Vec<Vec<u64>>,
}

fn observe(session: &limit::harness::Session, report: RunReport) -> Observed {
    let counters = session
        .spawned_tids()
        .into_iter()
        .map(|tid| {
            (0..EVENTS.len())
                .map(|i| session.counter_total(tid, i).unwrap_or(u64::MAX))
                .collect()
        })
        .collect();
    Observed {
        report,
        total_retired: session.kernel.machine.total_retired(),
        counters,
    }
}

fn assert_identical(name: &str, single: &Observed, block: &Observed) {
    assert_eq!(
        single, block,
        "{name}: block-stepped run diverged from single-step"
    );
}

#[test]
fn mysqld_is_identical_across_exec_modes() {
    let cfg = mysqld::MysqlConfig {
        queries_per_thread: 40,
        ..Default::default()
    };
    let reader = LimitReader::with_events(EVENTS.to_vec());
    let run = |exec| {
        let r = mysqld::run(&cfg, &reader, 4, &EVENTS, kcfg(exec)).unwrap();
        observe(&r.session, r.report)
    };
    assert_identical("mysqld", &run(ExecMode::SingleStep), &run(ExecMode::Block));
}

#[test]
fn memcached_is_identical_across_exec_modes() {
    let cfg = memcached::MemcachedConfig {
        ops_per_worker: 300,
        ..Default::default()
    };
    let reader = LimitReader::with_events(EVENTS.to_vec());
    let run = |exec| {
        let r = memcached::run(&cfg, &reader, 4, &EVENTS, kcfg(exec)).unwrap();
        observe(&r.session, r.report)
    };
    assert_identical(
        "memcached",
        &run(ExecMode::SingleStep),
        &run(ExecMode::Block),
    );
}

#[test]
fn apache_is_identical_across_exec_modes() {
    let cfg = apache::ApacheConfig::default();
    let reader = LimitReader::with_events(EVENTS.to_vec());
    let run = |exec| {
        let r = apache::run(&cfg, &reader, 4, &EVENTS, kcfg(exec)).unwrap();
        observe(&r.session, r.report)
    };
    assert_identical("apache", &run(ExecMode::SingleStep), &run(ExecMode::Block));
}

#[test]
fn firefox_is_identical_across_exec_modes() {
    let cfg = firefox::FirefoxConfig::default();
    let reader = LimitReader::with_events(EVENTS.to_vec());
    let run = |exec| {
        let r = firefox::run(&cfg, &reader, 4, &EVENTS, kcfg(exec)).unwrap();
        observe(&r.session, r.report)
    };
    assert_identical("firefox", &run(ExecMode::SingleStep), &run(ExecMode::Block));
}
