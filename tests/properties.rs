//! Property-based integration tests: randomized configurations must
//! preserve the core invariants (counter exactness, mutual exclusion,
//! determinism) that the hand-picked experiment scenarios verify at fixed
//! points.

use limit::harness::SessionBuilder;
use limit::{CounterReader, LimitReader};
use proptest::prelude::*;
use sim_cpu::{Cond, EventKind, MachineConfig, PmuConfig, Reg};
use sim_os::KernelConfig;
use workloads::{kernels, locks};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Virtualized instruction counts are exact for any loop size, thread
    /// count, quantum, and counter width.
    #[test]
    fn counter_exactness_is_universal(
        iters in 50u64..1_500,
        body in 5u32..80,
        threads in 1usize..5,
        cores in 1usize..4,
        quantum in 2_000u64..60_000,
        bits_sel in 0usize..3,
    ) {
        let bits = [14u32, 24, 48][bits_sel];
        let events = [EventKind::Instructions];
        let reader = LimitReader::with_events(events.to_vec());
        let mut b = SessionBuilder::new(cores)
            .events(&events)
            .machine_config(MachineConfig::new(cores).with_pmu(PmuConfig {
                counter_bits: bits,
                ..Default::default()
            }))
            .kernel_config(KernelConfig { quantum, ..Default::default() });
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        let counts = kernels::emit_counted_loop(&mut asm, iters, body);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        let tids: Vec<_> = (0..threads)
            .map(|_| s.spawn_instrumented("main", &[]).unwrap())
            .collect();
        s.run().unwrap();
        let expected = counts.instructions + 1; // + halt
        for tid in tids {
            prop_assert_eq!(s.counter_total(tid, 0).unwrap(), expected);
        }
    }

    /// The futex mutex provides mutual exclusion for any thread/core/
    /// quantum combination.
    #[test]
    fn mutex_is_mutually_exclusive(
        threads in 2usize..6,
        cores in 1usize..4,
        incs in 20u64..150,
        quantum in 1_500u64..30_000,
    ) {
        let lock_addr = 0x40000u64;
        let counter_addr = 0x40040u64;
        let mut b = SessionBuilder::new(cores)
            .kernel_config(KernelConfig { quantum, ..Default::default() });
        let mut asm = b.asm();
        asm.export("worker");
        asm.imm(Reg::R13, lock_addr);
        asm.imm(Reg::R12, counter_addr);
        asm.imm(Reg::R9, incs);
        asm.imm(Reg::R10, 0);
        let top = asm.new_label();
        asm.bind(top);
        locks::emit_lock(&mut asm, Reg::R13);
        asm.load(Reg::R11, Reg::R12, 0);
        asm.burst(15);
        asm.alui_add(Reg::R11, 1);
        asm.store(Reg::R11, Reg::R12, 0);
        locks::emit_unlock(&mut asm, Reg::R13);
        asm.alui_sub(Reg::R9, 1);
        asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        for _ in 0..threads {
            s.spawn_instrumented("worker", &[]).unwrap();
        }
        s.run().unwrap();
        prop_assert_eq!(
            s.read_u64(counter_addr).unwrap(),
            threads as u64 * incs
        );
        prop_assert_eq!(s.read_u64(lock_addr).unwrap(), 0);
    }

    /// Whole-workload runs are bit-for-bit deterministic in their reports
    /// and records for any seed.
    #[test]
    fn mysql_runs_are_deterministic(seed in any::<u64>()) {
        use workloads::mysqld::{self, MysqlConfig};
        let cfg = MysqlConfig {
            threads: 3,
            queries_per_thread: 10,
            tables: 4,
            table_bytes: 16 * 1024,
            bufpool_bytes: 64 * 1024,
            seed,
            ..MysqlConfig::default()
        };
        let events = [EventKind::Cycles];
        let go = || {
            let reader = LimitReader::with_events(events.to_vec());
            mysqld::run(&cfg, &reader, 2, &events, KernelConfig::default()).unwrap()
        };
        let a = go();
        let b = go();
        prop_assert_eq!(a.report.total_cycles, b.report.total_cycles);
        prop_assert_eq!(a.report.context_switches, b.report.context_switches);
        prop_assert_eq!(
            a.session.all_records().unwrap(),
            b.session.all_records().unwrap()
        );
    }

    /// The LiMiT read value never decreases within a thread, under any
    /// interference level, as long as the fix-up is on.
    #[test]
    fn limit_reads_are_monotonic_with_fixup(
        interferers in 0usize..4,
        quantum in 800u64..5_000,
        bits_sel in 0usize..2,
    ) {
        let bits = [10u32, 48][bits_sel];
        let reads = 400u64;
        let events = [EventKind::Instructions];
        let reader = LimitReader::with_events(events.to_vec());
        let mut layout = sim_cpu::MemLayout::default();
        let out = layout.alloc(reads * 8, 64);
        let mut b = SessionBuilder::new(2)
            .events(&events)
            .with_layout(layout)
            .machine_config(MachineConfig::new(2).with_pmu(PmuConfig {
                counter_bits: bits,
                ..Default::default()
            }))
            .kernel_config(KernelConfig { quantum, ..Default::default() });
        let mut asm = b.asm();
        asm.export("main");
        asm.mov(Reg::R11, Reg::R1);
        reader.emit_thread_setup(&mut asm);
        asm.imm(Reg::R9, reads);
        asm.imm(Reg::R10, 0);
        let top = asm.new_label();
        asm.bind(top);
        reader.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
        asm.store(Reg::R4, Reg::R11, 0);
        asm.alui_add(Reg::R11, 8);
        asm.alui_sub(Reg::R9, 1);
        asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
        asm.halt();
        asm.export("noise");
        asm.burst(30_000);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.spawn_instrumented("main", &[out]).unwrap();
        for _ in 0..interferers {
            s.spawn_instrumented("noise", &[]).unwrap();
        }
        s.run().unwrap();
        let mut prev = 0u64;
        for i in 0..reads {
            let v = s.read_u64(out + i * 8).unwrap();
            prop_assert!(v >= prev, "read {i} decreased: {v} < {prev}");
            prev = v;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Aggregate-mode instrumentation totals equal the per-event log's
    /// sums for any region sequence: the two logging modes are different
    /// encodings of the same measurement.
    #[test]
    fn aggregate_mode_equals_log_sums(
        ops in proptest::collection::vec((0u64..4, 10u32..120), 1..25),
    ) {
        use limit::Instrumenter;
        let events = [EventKind::Instructions];
        let build = |aggregate: bool| {
            let reader = LimitReader::with_events(events.to_vec());
            let ins = Instrumenter::new(&reader);
            let mut b = SessionBuilder::new(1).events(&events);
            if aggregate {
                b = b.aggregate_regions(4);
            }
            let mut asm = b.asm();
            asm.export("main");
            reader.emit_thread_setup(&mut asm);
            for &(region, work) in &ops {
                ins.emit_enter(&mut asm);
                asm.burst(work);
                if aggregate {
                    ins.emit_exit_aggregate(&mut asm, region);
                } else {
                    ins.emit_exit(&mut asm, region);
                }
            }
            asm.halt();
            let mut s = b.build(asm).unwrap();
            let tid = s.spawn_instrumented("main", &[]).unwrap();
            s.run().unwrap();
            (s, tid)
        };

        let (log_s, log_tid) = build(false);
        let (agg_s, agg_tid) = build(true);
        let records = log_s.records(log_tid).unwrap();
        let aggregates = agg_s.aggregates(agg_tid).unwrap();
        for region in 0..4u64 {
            let log_count = records.iter().filter(|r| r.region == region).count() as u64;
            let agg = &aggregates[region as usize];
            prop_assert_eq!(agg.count, log_count, "region {} count", region);
            // Deltas differ by a small fixed amount per record because the
            // two exit paths have different preamble lengths; counts and
            // per-record bursts dominate. Compare within that bound.
            let log_sum: u64 = records
                .iter()
                .filter(|r| r.region == region)
                .map(|r| r.deltas[0])
                .sum();
            let diff = agg.sums[0].abs_diff(log_sum);
            prop_assert!(
                diff <= 4 * log_count.max(1),
                "region {}: agg {} vs log {}",
                region,
                agg.sums[0],
                log_sum
            );
        }
    }
}
