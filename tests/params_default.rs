//! Runtime-parameter regression tests.
//!
//! The cost model, memory-hierarchy latencies, and kernel scheduling
//! costs used to be compile-time constants; they are now a runtime
//! [`MachineParams`] threaded from the harness down. That refactor is
//! only safe if the default parameter set is *bit-for-bit* the machine
//! the constants used to describe — every committed experiment table and
//! BENCH baseline was measured on it. These tests pin that equivalence,
//! and pin the block-stepped fast path against the single-step
//! interpreter on a *non-default* machine (the what-if engine runs every
//! perturbed arm through the fast path, so the differential contract has
//! to hold away from the defaults too).

use limit::harness::Session;
use limit::{LimitReader, MachineParams};
use sim_cpu::{EventKind, MachineConfig};
use sim_os::{ExecMode, KernelConfig, RunReport};
use workloads::{memcached, mysqld};

const EVENTS: [EventKind; 3] = [
    EventKind::Cycles,
    EventKind::Instructions,
    EventKind::LlcMisses,
];

/// `MachineParams::default()` must describe exactly the machine the
/// legacy constructors build.
#[test]
fn default_params_reproduce_legacy_configs() {
    for cores in [1, 4, 8] {
        let p = MachineParams::new(cores);
        assert_eq!(
            p.machine_config(),
            MachineConfig::new(cores),
            "machine config diverged at {cores} cores"
        );
        let k = p.kernel_config();
        let d = KernelConfig::default();
        assert_eq!(k.quantum, d.quantum);
        assert_eq!(k.ctx_switch_cost, d.ctx_switch_cost);
        assert_eq!(k.exec, d.exec);
    }
    assert!(
        MachineParams::default().validate().unwrap().is_empty(),
        "default params must validate clean (no degenerate-cost warnings)"
    );
}

/// Everything observable from one run, gathered for exact comparison.
#[derive(Debug, PartialEq)]
struct Observed {
    report: RunReport,
    total_retired: u64,
    counters: Vec<Vec<u64>>,
}

fn observe(session: &Session, report: RunReport) -> Observed {
    let counters = session
        .spawned_tids()
        .into_iter()
        .map(|tid| {
            (0..EVENTS.len())
                .map(|i| session.counter_total(tid, i).unwrap_or(u64::MAX))
                .collect()
        })
        .collect();
    Observed {
        report,
        total_retired: session.kernel.machine.total_retired(),
        counters,
    }
}

/// A default-params run must be bit-identical to the legacy
/// constant-configured path — same kernel report, same retired totals,
/// same virtualized counters.
#[test]
fn default_params_run_is_bit_identical_to_legacy_path() {
    let cfg = mysqld::MysqlConfig {
        queries_per_thread: 40,
        ..Default::default()
    };
    let reader = LimitReader::with_events(EVENTS.to_vec());

    let legacy = {
        let r = mysqld::run(&cfg, &reader, 4, &EVENTS, KernelConfig::default()).unwrap();
        observe(&r.session, r.report)
    };
    let via_params = {
        let (mut session, _image) =
            mysqld::build_with_params(&cfg, &reader, &MachineParams::new(4), &EVENTS).unwrap();
        let report = session.run().unwrap();
        observe(&session, report)
    };
    assert_eq!(
        legacy, via_params,
        "MachineParams::default() run diverged from the legacy constant path"
    );
}

/// The block-stepped fast path must agree with single-step on a
/// perturbed machine, not just the default one.
#[test]
fn exec_modes_agree_under_non_default_params() {
    let mut params = MachineParams::new(4);
    params.cost.atomic_penalty = 55;
    params.cost.branch_miss_penalty = 40;
    params.hierarchy.dram.latency = 420;
    params.hierarchy.llc_latency = 61;
    params.quantum = 1_000_000;
    params.ctx_switch_cost = 7_000;

    let cfg = memcached::MemcachedConfig {
        ops_per_worker: 50,
        ..Default::default()
    };
    let reader = LimitReader::with_events(EVENTS.to_vec());
    let run = |exec| {
        let (mut session, _image) =
            memcached::build_with_params_exec(&cfg, &reader, &params, &EVENTS, exec).unwrap();
        let report = session.run().unwrap();
        observe(&session, report)
    };
    assert_eq!(
        run(ExecMode::SingleStep),
        run(ExecMode::Block),
        "block-stepped run diverged from single-step under perturbed params"
    );
}
