//! Offline stand-in for the `serde` facade.
//!
//! The build environment for this repository has no crates.io access, so the
//! real `serde` cannot be fetched. The codebase only uses serde for
//! `#[derive(Serialize, Deserialize)]` annotations on config/report types —
//! nothing calls serialization methods or uses the traits as bounds (JSON
//! emission is hand-rolled in `bench::json`). This crate therefore provides:
//!
//! * marker traits `Serialize` / `Deserialize` with the canonical names, and
//! * derive macros of the same names (from `serde_derive`) that expand to
//!   nothing, so the annotations compile unchanged.
//!
//! If registry access ever becomes available, deleting `vendor/` and
//! restoring the crates.io dependency is a drop-in swap.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker counterpart of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Namespace stub mirroring `serde::de`.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Namespace stub mirroring `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}
