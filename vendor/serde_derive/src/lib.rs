//! No-op derive macros backing the offline `serde` stand-in.
//!
//! `#[derive(Serialize, Deserialize)]` must parse and expand, but no code in
//! this workspace consumes the generated impls, so expanding to nothing is
//! sufficient and keeps the stub free of `syn`/`quote` (which are equally
//! unfetchable offline).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
