//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be fetched. This crate implements the subset of its API the
//! `crates/bench` benches use — `Criterion`, benchmark groups,
//! `Bencher::iter`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros — on top of a simple wall-clock harness:
//!
//! * each bench is calibrated so one sample runs for roughly
//!   [`TARGET_SAMPLE`], then `sample_size` samples are collected,
//! * min / median / mean per-iteration times are printed, plus throughput
//!   when configured,
//! * passing `--test` (as `cargo test --benches` does) runs each bench once
//!   for smoke coverage instead of timing it.
//!
//! There are no statistical comparisons against saved baselines; the point
//! is keeping `cargo bench` runnable and its output machine-greppable.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Roughly how long one calibrated sample should take.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Work-per-iteration declaration, used to derive throughput rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `name/param`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{name}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            full: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// Timing context handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, preventing the result from being
    /// optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The bench driver. `Criterion::default()` inspects the process arguments:
/// `--test` switches to run-once smoke mode.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            smoke: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
            smoke: self.smoke,
        }
    }

    /// Runs a standalone bench (an implicit single-bench group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let smoke = self.smoke;
        run_bench(&id.into().full, 10, None, smoke, f);
        self
    }
}

/// A named group of benches sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    smoke: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each bench collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares work-per-iteration so a rate is reported.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one bench in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().full);
        run_bench(&full, self.sample_size, self.throughput, self.smoke, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    smoke: bool,
    mut f: F,
) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Calibration (doubles as warmup): grow the iteration count until one
    // sample takes around TARGET_SAMPLE.
    f(&mut b);
    if smoke {
        println!("{name}: ok (smoke mode)");
        return;
    }
    while b.elapsed < TARGET_SAMPLE && b.iters < u64::MAX / 2 {
        let scale = (TARGET_SAMPLE.as_nanos() as u64)
            .checked_div(b.elapsed.as_nanos().max(1) as u64)
            .unwrap_or(2)
            .clamp(2, 1024);
        b.iters = b.iters.saturating_mul(scale);
        f(&mut b);
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter_ns[0];
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" | {:.3} Melem/s", n as f64 / median * 1e3),
        Throughput::Bytes(n) => {
            format!(" | {:.3} MiB/s", n as f64 / median * 1e9 / (1 << 20) as f64)
        }
    });
    println!(
        "{name}: min {} | median {} | mean {} ({} samples x {} iters){}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        per_iter_ns.len(),
        b.iters,
        rate.unwrap_or_default(),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a bench group function calling each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts_calls() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 17);
    }

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        assert_eq!(BenchmarkId::new("pmu", 4).full, "pmu/4");
    }

    #[test]
    fn fmt_ns_picks_sensible_units() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(12_300.0), "12.30 us");
        assert_eq!(fmt_ns(12_300_000.0), "12.30 ms");
    }
}
