//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the real `proptest`
//! cannot be fetched. This crate reimplements the subset of its API this
//! workspace uses — `proptest!`, `prop_assert*!`, `prop_oneof!`, `Just`,
//! `any`, integer-range and tuple strategies, and `collection::vec` — as a
//! deterministic random-sampling harness:
//!
//! * every test function runs `ProptestConfig::cases` cases (default 64),
//! * inputs are drawn from a [`TestRng`] seeded from the test's module path
//!   and name, so runs are reproducible across processes and machines,
//! * there is **no shrinking**: on failure the harness reports the case
//!   index and per-case seed so the exact inputs can be regenerated.
//!
//! Strategy composition is sampling-based (a [`Strategy`] is just "something
//! that can draw a value"), which keeps the stub small while preserving the
//! observable contract the tests rely on: values land in the requested
//! ranges and collections in the requested size bounds.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Run-count configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator used to drive sampling (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded directly.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// A generator seeded from a test name (FNV-1a), so each property gets
    /// an independent, stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A fresh per-case seed (used by the `proptest!` expansion).
    pub fn next_seed(&mut self) -> u64 {
        self.next_u64()
    }

    /// Uniform value in `[0, bound)`; 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift; the tiny bias is irrelevant for test sampling.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Something that can draw a value of type `Value` from a [`TestRng`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps drawn values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among type-erased arms (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given arms; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for "any value of `T`".
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                self.start() + (self.end() - self.start()) * unit
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with sizes drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A strategy producing vectors of `elem` with the given size bounds.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Everything a property-test file imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, Union,
    };
}

/// Declares property-test functions. Supported grammar (a subset of the real
/// `proptest!`): an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __seeds = $crate::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                let __case_seed = __seeds.next_seed();
                let mut __rng = $crate::TestRng::new(__case_seed);
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let ::std::result::Result::Err(__payload) = __outcome {
                    eprintln!(
                        "proptest (offline stub): property `{}` failed on case {}/{} \
                         (case seed {:#018x}); no shrinking is performed",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __case_seed,
                    );
                    ::std::panic::resume_unwind(__payload);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategy arms of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (5u32..=7).sample(&mut rng);
            assert!((5..=7).contains(&w));
        }
    }

    #[test]
    fn vec_sizes_stay_in_bounds() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..200 {
            let v = prop::collection::vec(0u64..100, 3..6).sample(&mut rng);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::new(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = prop::collection::vec(any::<u64>(), 0..10);
        let a = s.sample(&mut crate::TestRng::new(42));
        let b = s.sample(&mut crate::TestRng::new(42));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The macro itself binds patterns and runs bodies.
        #[test]
        fn macro_binds_tuples((a, b) in (0u64..5, 10u64..15), v in prop::collection::vec(any::<bool>(), 1..4)) {
            prop_assert!(a < 5);
            prop_assert!((10..15).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }
}
