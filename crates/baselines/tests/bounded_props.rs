//! Bounded-error property sweeps for the baseline access methods.
//!
//! The trust matrix (`torture::matrix`) classifies the syscall readers
//! ([`baselines::PerfReader`], [`baselines::PapiReader`]) and the
//! sampling baseline ([`baselines::SamplingSetup`]) as **bounded-error**
//! with a claimed ε. These properties fuzz that claim across seeds,
//! event kinds, and injected preemptions/PMIs: if any baseline silently
//! loses counts (a dropped fold on the syscall path, a sample that never
//! reaches the fd's record ring), the measured error blows its bound and
//! the verdict degrades — which these tests turn into a failure.
//!
//! The torture harness drives everything, so each case covers both guest
//! shapes (compute-only and the all-events memory/branch mix) with
//! disturbances landed at exact instruction boundaries inside the read
//! probes.

use proptest::prelude::*;
use sim_cpu::EventKind;
use torture::matrix::{
    run_cell, AccessMethod, Cell, Disturb, MatrixConfig, Verdict, SYSCALL_EPSILON,
};

fn cfg(seed: u64) -> MatrixConfig {
    MatrixConfig {
        seed,
        schedules: 4,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The syscall counting paths never lose counts: under injected
    /// preemptions and PMIs, every `perf_read`/PAPI read lands within
    /// [`SYSCALL_EPSILON`] of the oracle's shadow ledger, for every
    /// event kind.
    #[test]
    fn syscall_readers_hold_their_epsilon(
        seed in 1u64..500,
        ei in 0usize..EventKind::ALL.len(),
        papi in any::<bool>(),
        pmi in any::<bool>(),
    ) {
        let cell = Cell {
            event: EventKind::ALL[ei],
            method: if papi { AccessMethod::Papi } else { AccessMethod::PerfRead },
            disturb: if pmi { Disturb::Pmi } else { Disturb::Preempt },
        };
        let rep = run_cell(&cfg(seed), cell).unwrap();
        prop_assert!(rep.bounded_checks > 0, "no reads were checked: {rep:?}");
        prop_assert!(rep.fired > 0, "no injections fired: {rep:?}");
        match rep.verdict {
            Verdict::BoundedError { bound, measured } => {
                prop_assert_eq!(bound, SYSCALL_EPSILON);
                prop_assert!(measured <= bound, "measured {} > ε {}", measured, bound);
            }
            other => prop_assert!(false, "syscall read degraded to {other:?}: {rep:?}"),
        }
    }

    /// The sampling estimator (samples × period) stays within one period
    /// plus per-sample skid of the true count even when preemptions and
    /// PMIs disturb the run — i.e. samples are never silently dropped.
    #[test]
    fn sampling_estimate_stays_within_period_plus_skid(
        seed in 1u64..500,
        ei in 0usize..EventKind::ALL.len(),
        pmi in any::<bool>(),
    ) {
        let cell = Cell {
            event: EventKind::ALL[ei],
            method: AccessMethod::Sampling,
            disturb: if pmi { Disturb::Pmi } else { Disturb::Preempt },
        };
        let rep = run_cell(&cfg(seed), cell).unwrap();
        prop_assert!(rep.bounded_checks > 0, "no estimates were checked: {rep:?}");
        match rep.verdict {
            Verdict::BoundedError { bound, measured } => {
                prop_assert!(measured <= bound, "measured {} > bound {}", measured, bound);
            }
            other => prop_assert!(false, "sampling degraded to {other:?}: {rep:?}"),
        }
    }
}
