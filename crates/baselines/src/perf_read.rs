//! `perf_event`-style counting reads: the heavyweight syscall baseline.

use limit::tls::{self, TLS_REG};
use limit::CounterReader;
use sim_cpu::{Asm, EventKind, Reg};
use sim_os::syscall::{encode_event, nr};

/// Counting-mode perf reader.
///
/// Attach: one `perf_open` per event, fds stored in TLS. Read: load the fd,
/// `perf_read` syscall, move the result — a full kernel round-trip per
/// read, which is exactly what makes fine-grained instrumentation with this
/// interface orders of magnitude slower than LiMiT.
#[derive(Debug, Clone)]
pub struct PerfReader {
    events: Vec<EventKind>,
}

impl PerfReader {
    /// A reader attaching `n` default events (same order as
    /// [`limit::LimitReader::new`]).
    pub fn new(n: usize) -> Self {
        const DEFAULT: [EventKind; 4] = [
            EventKind::Instructions,
            EventKind::Cycles,
            EventKind::LlcMisses,
            EventKind::BranchMisses,
        ];
        PerfReader::with_events(DEFAULT[..n.min(4)].to_vec())
    }

    /// A reader attaching the given events.
    pub fn with_events(events: Vec<EventKind>) -> Self {
        assert!(
            events.len() <= tls::MAX_COUNTERS,
            "at most {} counters",
            tls::MAX_COUNTERS
        );
        PerfReader { events }
    }

    /// The configured events.
    pub fn events(&self) -> &[EventKind] {
        &self.events
    }
}

impl CounterReader for PerfReader {
    fn counters(&self) -> usize {
        self.events.len()
    }

    fn emit_thread_setup(&self, asm: &mut Asm) {
        asm.mov(TLS_REG, Reg::R0);
        for (i, &event) in self.events.iter().enumerate() {
            asm.imm(Reg::R0, encode_event(event));
            asm.imm(Reg::R1, 0); // counting mode
            asm.syscall(nr::PERF_OPEN);
            asm.store(Reg::R0, TLS_REG, tls::fd_off(i));
        }
    }

    fn emit_read(&self, asm: &mut Asm, i: usize, dst: Reg, _scratch: Reg) {
        assert!(i < self.events.len(), "counter {i} not attached");
        asm.load(Reg::R0, TLS_REG, tls::fd_off(i));
        asm.syscall(nr::PERF_READ);
        asm.mov(dst, Reg::R0);
    }

    fn name(&self) -> &'static str {
        "perf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::harness::SessionBuilder;
    use sim_os::syscall::nr as sysnr;

    #[test]
    fn perf_read_returns_virtualized_count() {
        let reader = PerfReader::new(1);
        let mut b = SessionBuilder::new(1).events(&[EventKind::Instructions]);
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        asm.burst(300);
        reader.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
        asm.mov(Reg::R0, Reg::R4);
        asm.syscall(sysnr::LOG_VALUE);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.spawn_instrumented("main", &[]).unwrap();
        s.run().unwrap();
        // After perf_open returns: store(fd) + burst(300) + load(fd) +
        // syscall instr = 303 user instructions by the time the kernel
        // reads the counter inside perf_read.
        assert_eq!(s.kernel.log(), &[303]);
    }

    #[test]
    fn perf_read_costs_a_kernel_round_trip() {
        // Compare the wall-clock cost of one perf read against one LiMiT
        // read inside the same program.
        let perf = PerfReader::new(1);
        let mut b = SessionBuilder::new(1).events(&[EventKind::Instructions]);
        let mut asm = b.asm();
        asm.export("main");
        perf.emit_thread_setup(&mut asm);
        // Time the read with rdtsc brackets.
        asm.rdtsc(Reg::R10);
        perf.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
        asm.rdtsc(Reg::R11);
        asm.sub(Reg::R11, Reg::R10);
        asm.mov(Reg::R0, Reg::R11);
        asm.syscall(sysnr::LOG_VALUE);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.spawn_instrumented("main", &[]).unwrap();
        s.run().unwrap();
        let cost = s.kernel.log()[0];
        // entry(200) + perf_read work(2500) + exit(200) plus instructions:
        // must be well above 2000 cycles (vs ~40 for a LiMiT read).
        assert!(cost > 2_000, "perf read cost {cost}");
    }

    #[test]
    fn name_and_counters() {
        let r = PerfReader::new(2);
        assert_eq!(r.name(), "perf");
        assert_eq!(r.counters(), 2);
    }
}
