//! The seqlock read protocol: userspace retry instead of kernel rewind.
//!
//! This is the design Linux later shipped for self-monitoring
//! (`perf_event_mmap_page`): the kernel exports a *sequence word* it bumps
//! on every event that disturbs the accumulator/counter pair (context
//! switch fold, overflow fold), and the userspace read brackets the
//! load/`rdpmc`/add with two sequence loads, retrying on mismatch:
//!
//! ```text
//! retry:
//!   s1  = load [seq]
//!   dst = load [accum]
//!   tmp = rdpmc i
//!   dst += tmp
//!   s2  = load [seq]
//!   if s1 != s2 goto retry
//! ```
//!
//! Compared with LiMiT's kernel-assisted restartable sequence, the seqlock
//! needs no kernel knowledge of user PC ranges, but pays two extra loads
//! and a compare on *every* read — the trade-off the E1/E4 extensions
//! quantify. Both protocols share the same kernel virtualization.

use limit::tls::{self, TLS_REG};
use limit::CounterReader;
use sim_cpu::{Asm, Cond, EventKind, Reg};
use sim_os::syscall::{encode_event, nr};

/// The seqlock-protocol reader.
///
/// Attaches LiMiT virtualized counters (same `limit_open` syscall) plus a
/// fold-sequence word; reads retry in userspace instead of relying on the
/// kernel fix-up, so it stays correct even with `restart_fixup` disabled.
///
/// `emit_read` clobbers `r0`/`r1` (the sequence snapshots) in addition to
/// the usual `dst`/`scratch`.
#[derive(Debug, Clone)]
pub struct SeqlockReader {
    events: Vec<EventKind>,
}

impl SeqlockReader {
    /// A reader attaching `n` default events (same order as
    /// [`limit::LimitReader::new`]).
    pub fn new(n: usize) -> Self {
        const DEFAULT: [EventKind; 4] = [
            EventKind::Instructions,
            EventKind::Cycles,
            EventKind::LlcMisses,
            EventKind::BranchMisses,
        ];
        SeqlockReader::with_events(DEFAULT[..n.min(4)].to_vec())
    }

    /// A reader attaching the given events.
    pub fn with_events(events: Vec<EventKind>) -> Self {
        assert!(
            events.len() <= tls::MAX_COUNTERS,
            "at most {} counters",
            tls::MAX_COUNTERS
        );
        SeqlockReader { events }
    }
}

impl CounterReader for SeqlockReader {
    fn counters(&self) -> usize {
        self.events.len()
    }

    fn emit_thread_setup(&self, asm: &mut Asm) {
        asm.mov(TLS_REG, Reg::R0);
        asm.imm(Reg::R3, 0); // no tag filter
        for (i, &event) in self.events.iter().enumerate() {
            asm.imm(Reg::R0, i as u64);
            asm.imm(Reg::R1, encode_event(event));
            asm.mov(Reg::R2, TLS_REG);
            asm.alui_add(Reg::R2, tls::accum_off(i) as u64);
            asm.syscall(nr::LIMIT_OPEN);
        }
        // Register the fold-sequence word.
        asm.mov(Reg::R0, TLS_REG);
        asm.alui_add(Reg::R0, tls::SEQ as u64);
        asm.syscall(nr::LIMIT_SET_SEQ);
    }

    fn emit_read(&self, asm: &mut Asm, i: usize, dst: Reg, scratch: Reg) {
        assert!(i < self.events.len(), "counter {i} not attached");
        let retry = asm.new_label();
        asm.bind(retry);
        asm.load(Reg::R0, TLS_REG, tls::SEQ);
        asm.load(dst, TLS_REG, tls::accum_off(i));
        asm.rdpmc(scratch, i as u8);
        asm.add(dst, scratch);
        asm.load(Reg::R1, TLS_REG, tls::SEQ);
        asm.br(Cond::Ne, Reg::R0, Reg::R1, retry);
    }

    fn name(&self) -> &'static str {
        "seqlock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::harness::SessionBuilder;
    use sim_os::syscall::nr as sysnr;

    #[test]
    fn seqlock_read_returns_exact_count_solo() {
        let reader = SeqlockReader::new(1);
        let mut b = SessionBuilder::new(1).events(&[EventKind::Instructions]);
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        asm.burst(400);
        reader.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
        asm.mov(Reg::R0, Reg::R4);
        asm.syscall(sysnr::LOG_VALUE);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.spawn_instrumented("main", &[]).unwrap();
        s.run().unwrap();
        // Counted after LIMIT_OPEN returns: the 3-instruction
        // LIMIT_SET_SEQ registration + burst(400) + seq-load + accum-load
        // = 405 before the rdpmc reads.
        assert_eq!(s.kernel.log(), &[405]);
    }

    #[test]
    fn seqlock_needs_no_kernel_fixup() {
        // Heavy preemption with the restart fix-up DISABLED: the seqlock
        // retry must keep every read monotone anyway.
        use sim_cpu::{Cond, MachineConfig, MemLayout, PmuConfig};
        let reads = 1_000u64;
        let mut layout = MemLayout::default();
        let out = layout.alloc(reads * 8, 64);
        let reader = SeqlockReader::new(1);
        let mut b = SessionBuilder::new(1)
            .events(&[EventKind::Instructions])
            .with_layout(layout)
            .machine_config(MachineConfig::new(1).with_pmu(PmuConfig {
                counter_bits: 10,
                ..Default::default()
            }))
            .kernel_config(sim_os::KernelConfig {
                quantum: 900,
                restart_fixup: false,
                ..Default::default()
            });
        let mut asm = b.asm();
        asm.export("main");
        asm.mov(Reg::R11, Reg::R1);
        reader.emit_thread_setup(&mut asm);
        asm.imm(Reg::R9, reads);
        asm.imm(Reg::R10, 0);
        let top = asm.new_label();
        asm.bind(top);
        reader.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
        asm.store(Reg::R4, Reg::R11, 0);
        asm.alui_add(Reg::R11, 8);
        asm.alui_sub(Reg::R9, 1);
        asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
        asm.halt();
        asm.export("noise");
        asm.burst(40_000);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.spawn_instrumented("main", &[out]).unwrap();
        s.spawn_instrumented("noise", &[]).unwrap();
        let report = s.run().unwrap();
        assert!(report.preemptions > 0 || report.pmis > 0, "need a storm");
        let mut prev = 0;
        for i in 0..reads {
            let v = s.read_u64(out + i * 8).unwrap();
            assert!(v >= prev, "read {i} decreased: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn name_and_counters() {
        let r = SeqlockReader::new(2);
        assert_eq!(r.name(), "seqlock");
        assert_eq!(r.counters(), 2);
    }
}
