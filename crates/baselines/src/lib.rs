//! Baseline counter-access methods the paper compares LiMiT against.
//!
//! All implement the same [`limit::CounterReader`] trait as the LiMiT
//! reader, so workloads can be instrumented identically and the access
//! method swapped per run:
//!
//! * [`PerfReader`] — `perf_event`-style counting: attach via
//!   `perf_open`, read via the `perf_read` **syscall**. Every read pays
//!   syscall entry + kernel reconciliation + syscall exit (microseconds,
//!   not nanoseconds).
//! * [`PapiReader`] — a PAPI-flavoured shim: the same syscall read plus
//!   the library's userspace bookkeeping overhead.
//! * [`RdtscReader`] — raw timestamp reads: the cheapest possible probe,
//!   but measures *time only* (no event counts, no virtualization); the
//!   paper's reference floor.
//! * [`SamplingSetup`] — no reads at all: arms a PMI-driven sampling fd in
//!   the thread prologue; post-run attribution of the recorded (PC) hits
//!   is statistical — the imprecision experiment E5 quantifies.
//! * [`SeqlockReader`] — the protocol Linux later shipped for userspace
//!   self-monitoring: the same virtualized accumulators, but the read
//!   retries on a kernel-bumped sequence word instead of relying on the
//!   LiMiT kernel fix-up. The alternative design point in E1/E4.

pub mod papi;
pub mod perf_read;
pub mod rdtsc;
pub mod sampling;
pub mod seqlock;

pub use papi::PapiReader;
pub use perf_read::PerfReader;
pub use rdtsc::RdtscReader;
pub use sampling::SamplingSetup;
pub use seqlock::SeqlockReader;
