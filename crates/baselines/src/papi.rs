//! A PAPI-flavoured shim: the perf syscall path plus library bookkeeping.
//!
//! PAPI wraps the kernel interface in portable event-set management; each
//! `PAPI_read` walks event-set state, translates event codes, and calls
//! into the substrate. The shim models that as a fixed burst of userspace
//! bookkeeping instructions around the same `perf_read` syscall — matching
//! the paper's observation that PAPI reads cost even more than raw perf
//! reads.

use crate::perf_read::PerfReader;
use limit::CounterReader;
use sim_cpu::{Asm, EventKind, Reg};

/// Userspace bookkeeping instructions PAPI executes per read.
pub const PAPI_READ_OVERHEAD: u32 = 220;

/// Userspace bookkeeping instructions PAPI executes per event-set setup.
pub const PAPI_SETUP_OVERHEAD: u32 = 1_500;

/// The PAPI-like reader: perf syscalls plus library overhead.
#[derive(Debug, Clone)]
pub struct PapiReader {
    inner: PerfReader,
}

impl PapiReader {
    /// A reader attaching `n` default events.
    pub fn new(n: usize) -> Self {
        PapiReader {
            inner: PerfReader::new(n),
        }
    }

    /// A reader attaching the given events.
    pub fn with_events(events: Vec<EventKind>) -> Self {
        PapiReader {
            inner: PerfReader::with_events(events),
        }
    }
}

impl CounterReader for PapiReader {
    fn counters(&self) -> usize {
        self.inner.counters()
    }

    fn emit_thread_setup(&self, asm: &mut Asm) {
        self.inner.emit_thread_setup(asm);
        asm.burst(PAPI_SETUP_OVERHEAD);
    }

    fn emit_read(&self, asm: &mut Asm, i: usize, dst: Reg, scratch: Reg) {
        asm.burst(PAPI_READ_OVERHEAD);
        self.inner.emit_read(asm, i, dst, scratch);
    }

    fn name(&self) -> &'static str {
        "papi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::harness::SessionBuilder;
    use sim_os::syscall::nr as sysnr;

    #[test]
    fn papi_read_costs_more_than_perf_read() {
        fn read_cost(reader: &dyn CounterReader) -> u64 {
            let mut b = SessionBuilder::new(1).events(&[EventKind::Instructions]);
            let mut asm = b.asm();
            asm.export("main");
            reader.emit_thread_setup(&mut asm);
            asm.rdtsc(Reg::R10);
            reader.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
            asm.rdtsc(Reg::R11);
            asm.sub(Reg::R11, Reg::R10);
            asm.mov(Reg::R0, Reg::R11);
            asm.syscall(sysnr::LOG_VALUE);
            asm.halt();
            let mut s = b.build(asm).unwrap();
            s.spawn_instrumented("main", &[]).unwrap();
            s.run().unwrap();
            s.kernel.log()[0]
        }
        let papi = read_cost(&PapiReader::new(1));
        let perf = read_cost(&crate::PerfReader::new(1));
        assert!(
            papi > perf + PAPI_READ_OVERHEAD as u64 / 2,
            "papi={papi} perf={perf}"
        );
    }

    #[test]
    fn name_is_papi() {
        assert_eq!(PapiReader::new(1).name(), "papi");
    }
}
