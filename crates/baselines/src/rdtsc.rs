//! Raw timestamp reads: the floor of probe cost.
//!
//! `rdtsc` measures wall-clock cycles only — no event selection, no
//! per-thread virtualization (time keeps running while the thread is
//! descheduled). The paper uses it as the lower bound a counter-read
//! interface could hope to approach; LiMiT gets within a small factor of
//! it while returning *virtualized event counts*.

use limit::tls::TLS_REG;
use limit::CounterReader;
use sim_cpu::{Asm, Reg};

/// The timestamp-only reader.
#[derive(Debug, Default, Clone, Copy)]
pub struct RdtscReader;

impl RdtscReader {
    /// The reader.
    pub fn new() -> Self {
        RdtscReader
    }
}

impl CounterReader for RdtscReader {
    fn counters(&self) -> usize {
        1
    }

    fn emit_thread_setup(&self, asm: &mut Asm) {
        asm.mov(TLS_REG, Reg::R0);
    }

    fn emit_read(&self, asm: &mut Asm, _i: usize, dst: Reg, _scratch: Reg) {
        asm.rdtsc(dst);
    }

    fn name(&self) -> &'static str {
        "rdtsc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::harness::SessionBuilder;
    use sim_os::syscall::nr as sysnr;

    #[test]
    fn rdtsc_is_not_virtualized() {
        // A descheduled thread's rdtsc keeps advancing with wall time; a
        // LiMiT cycle counter does not. Demonstrate the non-virtualization:
        // sleeping inflates the rdtsc delta far beyond executed cycles.
        let r = RdtscReader::new();
        let mut b = SessionBuilder::new(1);
        let mut asm = b.asm();
        asm.export("main");
        r.emit_thread_setup(&mut asm);
        r.emit_read(&mut asm, 0, Reg::R8, Reg::R5);
        asm.imm(Reg::R0, 1_000_000);
        asm.syscall(sysnr::NANOSLEEP);
        r.emit_read(&mut asm, 0, Reg::R9, Reg::R5);
        asm.sub(Reg::R9, Reg::R8);
        asm.mov(Reg::R0, Reg::R9);
        asm.syscall(sysnr::LOG_VALUE);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.spawn_instrumented("main", &[]).unwrap();
        s.run().unwrap();
        assert!(s.kernel.log()[0] >= 1_000_000);
    }

    #[test]
    fn read_is_a_single_instruction() {
        let r = RdtscReader::new();
        let mut asm = Asm::new();
        r.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
        assert_eq!(asm.assemble().unwrap().len(), 1);
    }
}
