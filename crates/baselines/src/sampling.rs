//! The sampling profiler baseline: statistical attribution via PMIs.
//!
//! No read instrumentation at all — the thread prologue arms one sampling
//! perf fd; every `period` events the PMI handler records the interrupted
//! user PC. Post-run, samples are attributed to code regions by PC (the
//! `analysis` crate owns that step). The method's overhead is low but its
//! attribution is statistical: short regions (the MySQL critical sections)
//! are systematically mis-measured — the imprecision experiment E5
//! quantifies exactly that against LiMiT ground truth.

use limit::tls::TLS_REG;
use limit::CounterReader;
use sim_cpu::{Asm, EventKind, Reg};
use sim_os::syscall::{encode_event, nr};

/// Arms a sampling fd in the thread prologue; emits no reads.
#[derive(Debug, Clone, Copy)]
pub struct SamplingSetup {
    /// The sampled event.
    pub event: EventKind,
    /// Events between samples.
    pub period: u64,
}

impl SamplingSetup {
    /// Samples `event` every `period` occurrences.
    pub fn new(event: EventKind, period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        SamplingSetup { event, period }
    }
}

impl CounterReader for SamplingSetup {
    /// Zero: sampling needs no read instrumentation, so instrumented
    /// workloads skip their enter/exit emission entirely under this
    /// "reader".
    fn counters(&self) -> usize {
        0
    }

    fn emit_thread_setup(&self, asm: &mut Asm) {
        asm.mov(TLS_REG, Reg::R0);
        asm.imm(Reg::R0, encode_event(self.event));
        asm.imm(Reg::R1, self.period);
        asm.syscall(nr::PERF_OPEN);
        // The fd is never read from guest code; samples are extracted
        // host-side after the run.
    }

    fn emit_read(&self, asm: &mut Asm, _i: usize, dst: Reg, _scratch: Reg) {
        asm.imm(dst, 0);
    }

    fn name(&self) -> &'static str {
        "sampling"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::harness::SessionBuilder;

    #[test]
    fn sampling_collects_pc_hits() {
        let s = SamplingSetup::new(EventKind::Instructions, 500);
        let mut b = SessionBuilder::new(1);
        let mut asm = b.asm();
        asm.export("main");
        s.emit_thread_setup(&mut asm);
        asm.export("hot_loop");
        asm.burst(10_000);
        asm.halt();
        let mut sess = b.build(asm).unwrap();
        sess.spawn_instrumented("main", &[]).unwrap();
        sess.run().unwrap();
        let samples = sess.kernel.all_samples();
        assert!(
            (15..=25).contains(&samples.len()),
            "expected ~20 samples, got {}",
            samples.len()
        );
        // Every sample must land at the burst instruction's PC (5) or
        // just after.
        let hot = sess.kernel.machine.prog.entry("hot_loop").unwrap();
        for smp in &samples {
            assert!(smp.pc >= hot, "sample at pc {}", smp.pc);
        }
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = SamplingSetup::new(EventKind::Cycles, 0);
    }
}
