//! The event-trust matrix: every event × access method × disturbance.
//!
//! The core torture harness ([`crate::run_arm`]) proves one access path —
//! the LiMiT rdpmc sequence counting instructions — exact under injected
//! disturbances. This module sweeps the same differential oracle across
//! the full cross-product of:
//!
//! * **event kind** — all of [`EventKind::ALL`], not just instructions;
//! * **access method** — the LiMiT rdpmc read with and without the kernel
//!   restart fix-up, the `perf_read` syscall path, the PAPI shim, and the
//!   PMI-driven sampling baseline;
//! * **disturbance class** — none, preemption, PMI, cross-core migration,
//!   and a forced self-virtualizing spill, landed at exact instruction
//!   boundaries via [`sim_os::inject`];
//! * **workload shape** — a compute-only burst loop and a memory/branch
//!   mix that makes every one of the 13 event kinds fire each iteration
//!   (without the mix, a disturbance can land while e.g. the llc-miss
//!   counter's live value is still zero and the E4 race stays invisible).
//!
//! Each cell runs a deterministic batch of seeded schedules and emits a
//! [`Verdict`]:
//!
//! * **exact** — the oracle checked every completed read sequence and saw
//!   zero divergences. Claimed only by the rdpmc paths, where the read
//!   value has an exact ground truth at a precise instruction boundary.
//! * **bounded-error(ε)** — syscall and sampling reads have no
//!   instruction-precise ground truth (the kernel reconciles mid-syscall;
//!   samples attribute whole periods), so the oracle checks them against
//!   a per-method error bound and reports the worst error actually
//!   measured. `perf`/`papi` claim ε ≤ [`SYSCALL_EPSILON`]; sampling's
//!   bound is `period + samples × skid` (see [`sample_skid`]).
//! * **unreliable** — divergences on a path that claims exactness, or
//!   measured error above the claimed bound. `rdpmc-nofixup` under
//!   migrate/PMI is *expected* to land here: that is the per-event
//!   rediscovery of the E4 restart race.
//!
//! Everything is a pure function of [`MatrixConfig`]; reports are
//! byte-identical regardless of worker count (`run_matrix` preserves cell
//! order and nothing in a report depends on wall clock).

use baselines::{PapiReader, PerfReader, SamplingSetup};
use limit::harness::{Session, SessionBuilder};
use limit::reader::{CounterReader, LimitReader};
use sim_core::{parallel, DetRng, SimError, SimResult, ThreadId};
use sim_cpu::{AluOp, Cond, EventKind, MachineConfig, Reg};
use sim_mem::{CacheConfig, HierarchyConfig, TlbConfig};
use sim_os::inject::{InjectAction, Injection};
use sim_os::KernelConfig;

use crate::MAX_EXTRA_INJECTIONS;

/// Error bound (events) claimed for the syscall counting paths
/// (`perf_read`, PAPI). The syscall instruction itself retires in user
/// mode and flushes to the ledger before kernel dispatch, so the kernel's
/// reconciled value should agree exactly; the bound leaves room for the
/// reader's own address-calculation instructions on event kinds they
/// perturb (loads, branches) without letting a lost-fold bug hide.
pub const SYSCALL_EPSILON: u64 = 8;

/// Sampling period for the sampling-method cells. Small enough that a
/// short guest still accumulates a statistically useful sample count.
pub const SAMPLING_PERIOD: u64 = 128;

/// Name prefix for the pure-anchor ranges wrapped around non-rdpmc read
/// sites. The harness only registers `limit_read.*` ranges with the
/// kernel, so these never get restart fix-up — they exist so injection
/// schedules can target the same "mid-read-sequence" boundaries the
/// rdpmc cells sweep.
const PROBE_PREFIX: &str = "probe.";

/// Per-sample attribution skid (events) granted to the sampling
/// estimator. Cycle-denominated events accrue in large per-instruction
/// steps (a single load can charge hundreds of stall cycles), so the
/// whole-period attribution error per sample is far larger than for
/// unit-step events.
pub fn sample_skid(event: EventKind) -> u64 {
    match event {
        EventKind::Cycles | EventKind::MemStallCycles => 512,
        _ => 4,
    }
}

/// How the guest reads (or arms) its counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMethod {
    /// LiMiT 3-instruction rdpmc sequence, kernel restart fix-up on.
    RdpmcFixup,
    /// Same sequence with the fix-up disabled — the E4 race reintroduced.
    RdpmcNoFixup,
    /// `perf_read` syscall counting.
    PerfRead,
    /// PAPI shim: syscall read plus library overhead.
    Papi,
    /// PMI-driven sampling; counts are estimated post-run.
    Sampling,
}

impl AccessMethod {
    pub const ALL: [AccessMethod; 5] = [
        AccessMethod::RdpmcFixup,
        AccessMethod::RdpmcNoFixup,
        AccessMethod::PerfRead,
        AccessMethod::Papi,
        AccessMethod::Sampling,
    ];

    pub fn name(self) -> &'static str {
        match self {
            AccessMethod::RdpmcFixup => "rdpmc-fixup",
            AccessMethod::RdpmcNoFixup => "rdpmc-nofixup",
            AccessMethod::PerfRead => "perf",
            AccessMethod::Papi => "papi",
            AccessMethod::Sampling => "sampling",
        }
    }

    pub fn parse(s: &str) -> Option<AccessMethod> {
        AccessMethod::ALL.into_iter().find(|m| m.name() == s)
    }

    fn is_rdpmc(self) -> bool {
        matches!(self, AccessMethod::RdpmcFixup | AccessMethod::RdpmcNoFixup)
    }

    /// Whether the kernel restart fix-up is enabled for this method's
    /// sessions. Irrelevant for non-rdpmc methods (they have no
    /// registered restart ranges) but kept on to match production config.
    fn fixup(self) -> bool {
        !matches!(self, AccessMethod::RdpmcNoFixup)
    }
}

/// Disturbance class injected into a cell's schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disturb {
    /// Undisturbed control run.
    None,
    Preempt,
    Pmi,
    Migrate,
    Spill,
}

impl Disturb {
    pub const ALL: [Disturb; 5] = [
        Disturb::None,
        Disturb::Preempt,
        Disturb::Pmi,
        Disturb::Migrate,
        Disturb::Spill,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Disturb::None => "none",
            Disturb::Preempt => "preempt",
            Disturb::Pmi => "pmi",
            Disturb::Migrate => "migrate",
            Disturb::Spill => "spill",
        }
    }

    pub fn parse(s: &str) -> Option<Disturb> {
        Disturb::ALL.into_iter().find(|d| d.name() == s)
    }

    fn action(self) -> Option<InjectAction> {
        match self {
            Disturb::None => None,
            Disturb::Preempt => Some(InjectAction::Preempt),
            Disturb::Pmi => Some(InjectAction::Pmi),
            Disturb::Migrate => Some(InjectAction::Migrate),
            Disturb::Spill => Some(InjectAction::Spill),
        }
    }
}

/// Guest workload shape. Every cell runs both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Compute-only burst loop (the core torture guest's shape).
    Burst,
    /// Memory/branch mix that fires all 13 event kinds every iteration.
    Mixed,
}

impl Shape {
    pub const ALL: [Shape; 2] = [Shape::Burst, Shape::Mixed];
}

/// One cell of the trust matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    pub event: EventKind,
    pub method: AccessMethod,
    pub disturb: Disturb,
}

/// Trust classification for one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Exact,
    BoundedError { bound: u64, measured: u64 },
    Unreliable { divergences: u64, measured: u64 },
}

impl Verdict {
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Exact => "exact",
            Verdict::BoundedError { .. } => "bounded-error",
            Verdict::Unreliable { .. } => "unreliable",
        }
    }

    /// Compact cell rendering for the stdout grid.
    pub fn render(&self) -> String {
        match self {
            Verdict::Exact => "exact".to_string(),
            Verdict::BoundedError { bound, measured } => {
                format!("ok(e{measured}<={bound})")
            }
            Verdict::Unreliable {
                divergences,
                measured,
            } => format!("UNRELIABLE({divergences}/{measured})"),
        }
    }
}

/// Aggregated result of one cell's schedule batch (both shapes).
#[derive(Debug, Clone)]
pub struct CellReport {
    pub cell: Cell,
    /// Schedules actually run (both shapes summed).
    pub schedules: u64,
    /// Exactness checks completed by the oracle (rdpmc paths).
    pub checks: u64,
    /// Bounded-error checks completed (syscall + sampling paths).
    pub bounded_checks: u64,
    /// Injections that actually fired.
    pub fired: u64,
    /// Oracle divergences (exactness violations).
    pub divergences: u64,
    /// Claimed error bound for bounded paths (0 for rdpmc).
    pub bound: u64,
    /// Worst absolute error measured on bounded paths.
    pub measured: u64,
    pub verdict: Verdict,
}

/// Trust-matrix parameters. Reports are a pure function of this struct.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Master seed shared by every cell's schedule batch.
    pub seed: u64,
    /// Schedules per (cell, shape) for disturbed cells; `Disturb::None`
    /// cells run exactly one schedule per shape.
    pub schedules: u64,
    pub threads: usize,
    pub cores: usize,
    /// Counter-read sites executed per thread (spread over the guest
    /// loop's 4 call sites, like [`crate::TortureConfig::reads`]).
    pub reads: u32,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        MatrixConfig {
            seed: 7,
            schedules: 500,
            threads: 2,
            cores: 2,
            reads: 40,
        }
    }
}

impl MatrixConfig {
    fn iters(&self) -> u32 {
        (self.reads / 4).max(1)
    }
}

/// Stride between successive private-buffer accesses in the mixed shape:
/// exactly one page, so every iteration touches a fresh page (compulsory
/// dtlb miss + the whole cache-miss ladder) whose line-0 address aliases
/// into LLC set 0 of [`mixed_hierarchy`]'s 64-set LLC — the eviction
/// pressure that keeps knocking the shared line out of the LLC so the
/// other thread's next load must forward it cache-to-cache (remote hit).
const STRIDE: u64 = 4096;

/// Memory hierarchy for the mixed shape. The default hierarchy never
/// produces remote hits for a simple two-thread ping-pong (a coherent
/// write re-inserts the line into the big LLC, so the other side always
/// finds it there) and has no TLB at all. This one enables the TLB and
/// shrinks the LLC to one way per set, so each thread's per-iteration
/// page-stride insertion evicts the shared line while the last writer
/// still holds it privately.
fn mixed_hierarchy() -> HierarchyConfig {
    HierarchyConfig {
        llc: CacheConfig::kib(4, 1),
        tlb: Some(TlbConfig::default()),
        ..HierarchyConfig::default()
    }
}

fn reader_for(event: EventKind, method: AccessMethod) -> Box<dyn CounterReader> {
    match method {
        AccessMethod::RdpmcFixup | AccessMethod::RdpmcNoFixup => {
            Box::new(LimitReader::with_events(vec![event]))
        }
        AccessMethod::PerfRead => Box::new(PerfReader::with_events(vec![event])),
        AccessMethod::Papi => Box::new(PapiReader::with_events(vec![event])),
        AccessMethod::Sampling => Box::new(SamplingSetup::new(event, SAMPLING_PERIOD)),
    }
}

/// Emits one read site. Non-rdpmc sites get wrapped in a uniquely-named
/// probe range so injection schedules can anchor on their boundaries.
fn emit_site(
    asm: &mut sim_cpu::Asm,
    reader: &dyn CounterReader,
    method: AccessMethod,
    probe: &mut u32,
) {
    if method.is_rdpmc() {
        reader.emit_read(asm, 0, Reg::R4, Reg::R5);
    } else {
        let name = format!("{PROBE_PREFIX}{probe}");
        *probe += 1;
        asm.begin_range(&name);
        reader.emit_read(asm, 0, Reg::R4, Reg::R5);
        asm.end_range(&name);
    }
}

/// Builds the cell's guest session (program assembled, nothing spawned).
fn build_guest(
    cfg: &MatrixConfig,
    event: EventKind,
    method: AccessMethod,
    shape: Shape,
) -> SimResult<Session> {
    let reader = reader_for(event, method);
    let mut b = SessionBuilder::new(cfg.cores)
        .events(&[event])
        .kernel_config(KernelConfig {
            quantum: 1_000_000_000,
            restart_fixup: method.fixup(),
            ..Default::default()
        });
    if shape == Shape::Mixed {
        b = b.machine_config(MachineConfig::new(cfg.cores).with_hierarchy(mixed_hierarchy()));
    }
    let mut asm = b.asm();
    asm.export("main");
    if shape == Shape::Mixed {
        // Spawn extras arrive in r1 (private strided buffer) and r2
        // (shared line); the reader prologue clobbers r0..r3, so park
        // them first. R13 is the branch-toggle bit.
        asm.mov(Reg::R11, Reg::R1);
        asm.mov(Reg::R12, Reg::R2);
        asm.imm(Reg::R13, 0);
    }
    reader.emit_thread_setup(&mut asm);
    asm.imm(Reg::R9, cfg.iters() as u64);
    asm.imm(Reg::R10, 0);
    let mut probe = 0u32;
    let top = asm.new_label();
    asm.bind(top);
    match shape {
        Shape::Burst => {
            for work in [7u32, 5, 9, 3] {
                asm.burst(work);
                emit_site(&mut asm, reader.as_ref(), method, &mut probe);
            }
        }
        Shape::Mixed => {
            // Page-striding load+store: dtlb misses, the l1d/l2/llc miss
            // ladder, and mem-stall cycles, every iteration.
            asm.load(Reg::R6, Reg::R11, 0);
            asm.alui_add(Reg::R6, 3);
            asm.store(Reg::R6, Reg::R11, 0);
            asm.alui_add(Reg::R11, STRIDE);
            emit_site(&mut asm, reader.as_ref(), method, &mut probe);
            // Shared-line ping-pong between threads. The load comes
            // first: after the other thread's store invalidated our copy
            // and our own page-stride insertion evicted the line from the
            // one-way LLC set, the load must forward cache-to-cache from
            // the owner — a remote hit. The store then invalidates the
            // owner's copy (coherence invalidation) and takes ownership
            // for the other side's next round.
            asm.load(Reg::R7, Reg::R12, 8);
            asm.store(Reg::R6, Reg::R12, 0);
            emit_site(&mut asm, reader.as_ref(), method, &mut probe);
            // Atomic RMW on the shared line.
            asm.imm(Reg::R7, 1);
            asm.fetch_add(Reg::R7, Reg::R12, 16);
            emit_site(&mut asm, reader.as_ref(), method, &mut probe);
            // Alternating taken/not-taken branch defeats the predictor.
            asm.alui(AluOp::Xor, Reg::R13, 1);
            let skip = asm.new_label();
            asm.br(Cond::Eq, Reg::R13, Reg::R10, skip);
            asm.burst(2);
            asm.bind(skip);
            asm.burst(3);
            emit_site(&mut asm, reader.as_ref(), method, &mut probe);
        }
    }
    asm.alui_sub(Reg::R9, 1);
    asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
    asm.halt();
    b.build(asm)
}

fn spawn_guests(s: &mut Session, cfg: &MatrixConfig, shape: Shape) -> SimResult<()> {
    match shape {
        Shape::Burst => {
            for _ in 0..cfg.threads {
                s.spawn_instrumented("main", &[])?;
            }
        }
        Shape::Mixed => {
            // Page-aligned so both the shared line and every strided
            // private line land in LLC set 0 (see [`STRIDE`]).
            let shared = s.alloc(64, 4096);
            for _ in 0..cfg.threads {
                let buf = s.alloc((cfg.iters() as u64 + 2) * STRIDE, 4096);
                s.spawn_instrumented("main", &[buf, shared])?;
            }
        }
    }
    Ok(())
}

/// Injection anchors for the cell: the registered LiMiT restart ranges
/// for rdpmc methods, the probe ranges otherwise. Sorted for determinism
/// (range tables hash by name).
fn anchor_ranges(s: &Session, method: AccessMethod) -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> = if method.is_rdpmc() {
        s.kernel.limit().ranges().to_vec()
    } else {
        s.kernel
            .machine
            .prog
            .iter_ranges()
            .filter(|(name, _)| name.starts_with(PROBE_PREFIX))
            .map(|(_, r)| r)
            .collect()
    };
    v.sort_unstable();
    v
}

/// Derives schedule `index` for one cell: the (thread × range × offset)
/// cross-product is swept exhaustively across indices, the dynamic hit
/// and up to [`MAX_EXTRA_INJECTIONS`] extras are seeded-random — the same
/// scheme as [`crate::schedule_for`], generalized to ranges of any
/// length (probe ranges span 1..=4 instructions depending on method).
pub fn cell_schedule(
    cfg: &MatrixConfig,
    ranges: &[(u32, u32)],
    action: InjectAction,
    index: u64,
) -> Vec<Injection> {
    assert!(!ranges.is_empty(), "cell has no injection anchors");
    let iters = cfg.iters() as u64;
    let hit_hi = iters.max(2);
    let mut rng = DetRng::new(cfg.seed).split(index);
    let mut c = index as usize;
    let tid = (c % cfg.threads) as u32;
    c /= cfg.threads;
    let (start, end) = ranges[c % ranges.len()];
    c /= ranges.len();
    let len = (end.saturating_sub(start)).max(1);
    let offset = (c % len as usize) as u32;
    let mut schedule = vec![Injection {
        tid: ThreadId::new(tid),
        pc: start + offset,
        hit: rng.range(1, hit_hi) as u32,
        action,
    }];
    for _ in 0..rng.index(MAX_EXTRA_INJECTIONS + 1) {
        let (s0, e0) = ranges[rng.index(ranges.len())];
        let l = (e0.saturating_sub(s0)).max(1);
        schedule.push(Injection {
            tid: ThreadId::new(rng.index(cfg.threads) as u32),
            pc: s0 + rng.index(l as usize) as u32,
            hit: rng.range(1, hit_hi) as u32,
            action,
        });
    }
    schedule
}

struct ShapeOutcome {
    checks: u64,
    bounded_checks: u64,
    fired: u64,
    divergences: u64,
    measured: u64,
    bound: u64,
}

fn run_cell_schedule(
    cfg: &MatrixConfig,
    cell: Cell,
    shape: Shape,
    injections: &[Injection],
) -> SimResult<ShapeOutcome> {
    let mut s = build_guest(cfg, cell.event, cell.method, shape)?;
    let limit_ranges = s.kernel.limit().ranges().to_vec();
    s.kernel.machine.enable_oracle(&limit_ranges);
    if !injections.is_empty() {
        s.kernel.set_injector(injections);
    }
    spawn_guests(&mut s, cfg, shape)?;
    s.run()?;
    let fired = s.kernel.injector().map_or(0, |i| i.fired);
    let mut bound = match cell.method {
        AccessMethod::PerfRead | AccessMethod::Papi => SYSCALL_EPSILON,
        _ => 0,
    };
    if cell.method == AccessMethod::Sampling {
        // Sampling has no guest-side reads: reconstruct each thread's
        // count as samples × period and check it host-side against the
        // oracle ledger, within period + samples × skid.
        let samples = s.kernel.all_samples();
        let tids = s.spawned_tids();
        let mut errs = Vec::new();
        {
            let o = s.kernel.machine.oracle().expect("oracle enabled");
            for &tid in &tids {
                let n = samples.iter().filter(|smp| smp.tid == tid).count() as u64;
                for fd in 0..64u32 {
                    if let Some((event, baseline)) = o.perf_open_info(tid, fd) {
                        let truth = o.ledger(tid, event).saturating_sub(baseline);
                        errs.push(truth.abs_diff(n * SAMPLING_PERIOD));
                        bound = bound.max(SAMPLING_PERIOD + n * sample_skid(event));
                    }
                }
            }
        }
        let o = s.kernel.machine.oracle_mut().expect("oracle enabled");
        for e in errs {
            o.record_bounded_error(e);
        }
    }
    let o = s.kernel.machine.oracle().expect("oracle enabled");
    Ok(ShapeOutcome {
        checks: o.checks,
        bounded_checks: o.bounded_checks(),
        fired,
        divergences: o.divergences().len() as u64,
        measured: o.max_abs_error(),
        bound,
    })
}

/// Runs one cell's full schedule batch (both shapes) and classifies it.
pub fn run_cell(cfg: &MatrixConfig, cell: Cell) -> SimResult<CellReport> {
    let mut rep = CellReport {
        cell,
        schedules: 0,
        checks: 0,
        bounded_checks: 0,
        fired: 0,
        divergences: 0,
        bound: 0,
        measured: 0,
        verdict: Verdict::Exact,
    };
    for shape in Shape::ALL {
        let ranges = {
            let s = build_guest(cfg, cell.event, cell.method, shape)?;
            anchor_ranges(&s, cell.method)
        };
        let n = match cell.disturb.action() {
            None => 1,
            Some(_) => cfg.schedules.max(1),
        };
        for index in 0..n {
            let schedule = match cell.disturb.action() {
                None => Vec::new(),
                Some(action) => cell_schedule(cfg, &ranges, action, index),
            };
            let out = run_cell_schedule(cfg, cell, shape, &schedule)?;
            rep.schedules += 1;
            rep.checks += out.checks;
            rep.bounded_checks += out.bounded_checks;
            rep.fired += out.fired;
            rep.divergences += out.divergences;
            rep.measured = rep.measured.max(out.measured);
            rep.bound = rep.bound.max(out.bound);
        }
    }
    let watched = if cell.method.is_rdpmc() {
        rep.checks
    } else {
        rep.bounded_checks
    };
    if watched == 0 {
        return Err(SimError::Harness(format!(
            "trust cell {}/{}/{} completed no checks",
            cell.event.mnemonic(),
            cell.method.name(),
            cell.disturb.name()
        )));
    }
    rep.verdict = if cell.method.is_rdpmc() {
        if rep.divergences == 0 {
            Verdict::Exact
        } else {
            Verdict::Unreliable {
                divergences: rep.divergences,
                measured: rep.measured,
            }
        }
    } else if rep.measured <= rep.bound {
        Verdict::BoundedError {
            bound: rep.bound,
            measured: rep.measured,
        }
    } else {
        Verdict::Unreliable {
            divergences: rep.divergences,
            measured: rep.measured,
        }
    };
    Ok(rep)
}

/// Enumerates the cells for the given slices, in report order
/// (event-major, then method, then disturbance).
pub fn enumerate_cells(
    events: &[EventKind],
    methods: &[AccessMethod],
    disturbs: &[Disturb],
) -> Vec<Cell> {
    let mut v = Vec::with_capacity(events.len() * methods.len() * disturbs.len());
    for &event in events {
        for &method in methods {
            for &disturb in disturbs {
                v.push(Cell {
                    event,
                    method,
                    disturb,
                });
            }
        }
    }
    v
}

/// Runs every cell, fanning out over `jobs` workers. Report order equals
/// cell order regardless of worker count.
pub fn run_matrix(cfg: &MatrixConfig, cells: &[Cell], jobs: usize) -> SimResult<Vec<CellReport>> {
    parallel::parmap_with(jobs, cells.to_vec(), |cell| run_cell(cfg, cell))
        .into_iter()
        .collect()
}

/// Looks up an event by its mnemonic (the `--events` CLI spelling).
pub fn event_by_mnemonic(s: &str) -> Option<EventKind> {
    EventKind::ALL.into_iter().find(|e| e.mnemonic() == s)
}

/// Renders the fixed-width verdict grid: one row per (event, method),
/// one column per disturbance class present in the reports.
pub fn render_report(reports: &[CellReport]) -> String {
    let disturbs: Vec<Disturb> = Disturb::ALL
        .into_iter()
        .filter(|d| reports.iter().any(|r| r.cell.disturb == *d))
        .collect();
    let mut out = String::new();
    out.push_str(&format!("{:<24} {:<14}", "event", "method"));
    for d in &disturbs {
        out.push_str(&format!(" {:<18}", d.name()));
    }
    out.push('\n');
    let mut keys: Vec<(EventKind, AccessMethod)> = Vec::new();
    for r in reports {
        let k = (r.cell.event, r.cell.method);
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    for (event, method) in keys {
        out.push_str(&format!("{:<24} {:<14}", event.mnemonic(), method.name()));
        for d in &disturbs {
            let cell = reports
                .iter()
                .find(|r| r.cell.event == event && r.cell.method == method && r.cell.disturb == *d)
                .map(|r| r.verdict.render())
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(" {:<18}", cell));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(schedules: u64) -> MatrixConfig {
        MatrixConfig {
            schedules,
            ..Default::default()
        }
    }

    #[test]
    fn fixup_cells_stay_exact_for_every_event() {
        let cfg = small(6);
        for event in EventKind::ALL {
            for disturb in [Disturb::Preempt, Disturb::Migrate, Disturb::Spill] {
                let rep = run_cell(
                    &cfg,
                    Cell {
                        event,
                        method: AccessMethod::RdpmcFixup,
                        disturb,
                    },
                )
                .unwrap();
                assert!(rep.checks > 0);
                assert!(rep.fired > 0, "{event} {}: nothing fired", disturb.name());
                assert_eq!(
                    rep.verdict,
                    Verdict::Exact,
                    "{event} under {} diverged: {rep:?}",
                    disturb.name()
                );
            }
        }
    }

    /// The per-event rediscovery of the E4 restart race: without the
    /// kernel fix-up, migrations and PMIs inside the read sequence break
    /// every event kind's counter.
    #[test]
    fn nofixup_is_unreliable_under_migrate_and_pmi_for_every_event() {
        let cfg = small(24);
        for event in EventKind::ALL {
            for disturb in [Disturb::Migrate, Disturb::Pmi] {
                let rep = run_cell(
                    &cfg,
                    Cell {
                        event,
                        method: AccessMethod::RdpmcNoFixup,
                        disturb,
                    },
                )
                .unwrap();
                assert!(
                    matches!(rep.verdict, Verdict::Unreliable { .. }),
                    "{event} under {} should diverge without fixup: {rep:?}",
                    disturb.name()
                );
            }
        }
    }

    #[test]
    fn syscall_reads_stay_within_the_claimed_bound() {
        let cfg = small(8);
        for method in [AccessMethod::PerfRead, AccessMethod::Papi] {
            for event in [
                EventKind::Instructions,
                EventKind::Cycles,
                EventKind::LlcMisses,
            ] {
                for disturb in [Disturb::None, Disturb::Preempt, Disturb::Pmi] {
                    let rep = run_cell(
                        &cfg,
                        Cell {
                            event,
                            method,
                            disturb,
                        },
                    )
                    .unwrap();
                    assert!(rep.bounded_checks > 0);
                    assert!(
                        matches!(rep.verdict, Verdict::BoundedError { .. }),
                        "{event}/{}/{}: {rep:?}",
                        method.name(),
                        disturb.name()
                    );
                }
            }
        }
    }

    #[test]
    fn sampling_cells_report_bounded_error() {
        let cfg = small(4);
        for event in [EventKind::Instructions, EventKind::Cycles] {
            for disturb in [Disturb::None, Disturb::Preempt] {
                let rep = run_cell(
                    &cfg,
                    Cell {
                        event,
                        method: AccessMethod::Sampling,
                        disturb,
                    },
                )
                .unwrap();
                assert!(rep.bounded_checks > 0);
                assert!(
                    matches!(rep.verdict, Verdict::BoundedError { .. }),
                    "{event}/{}: {rep:?}",
                    disturb.name()
                );
            }
        }
    }

    #[test]
    fn report_is_deterministic_across_jobs() {
        let cfg = small(4);
        let cells = enumerate_cells(
            &[EventKind::Instructions, EventKind::Loads],
            &[AccessMethod::RdpmcFixup, AccessMethod::PerfRead],
            &[Disturb::None, Disturb::Preempt],
        );
        let one = render_report(&run_matrix(&cfg, &cells, 1).unwrap());
        let four = render_report(&run_matrix(&cfg, &cells, 4).unwrap());
        assert_eq!(one, four);
        assert!(one.contains("exact"));
    }

    #[test]
    fn parse_round_trips() {
        for m in AccessMethod::ALL {
            assert_eq!(AccessMethod::parse(m.name()), Some(m));
        }
        for d in Disturb::ALL {
            assert_eq!(Disturb::parse(d.name()), Some(d));
        }
        for e in EventKind::ALL {
            assert_eq!(event_by_mnemonic(e.mnemonic()), Some(e));
        }
        assert_eq!(AccessMethod::parse("bogus"), None);
    }
}
