//! Counter-virtualization torture harness.
//!
//! The virtualization layer under test (sim-os's LiMiT extension) promises
//! one invariant: **a userspace counter read returns the thread's exact
//! private event count, no matter where preemptions, overflow interrupts,
//! migrations, or counter spills land relative to the 3-instruction read
//! sequence**. Organic workloads (experiment E4) only sample a few of the
//! billions of possible disturbance placements; this crate enumerates them.
//!
//! The pieces, each deterministic from a single seed:
//!
//! * **Injection schededules** ([`schedule_for`]) — the cross-product of
//!   (restart range × instruction offset × disturbance kind × thread) is
//!   swept *exhaustively* across the schedule indices, so every in-range
//!   boundary sees every [`InjectAction`] on every thread; which dynamic
//!   occurrence gets hit, plus extra off-sequence injections, are
//!   seeded-random. The kernel fires each trigger at the exact instruction
//!   boundary an organic disturbance would land on (`sim_os::inject`).
//! * **Differential oracle** (`sim_cpu::oracle`) — a shadow per-thread
//!   event ledger kept entirely outside the PMU/virtualization path checks
//!   every completed read sequence; any mismatch is a [`Divergence`].
//! * **Shrinking** ([`shrink`]) — a failing schedule is minimized by
//!   delta-debugging over its injection points: re-run with subsets until
//!   no single injection can be removed. Divergent schedules here are tiny
//!   (≤ [`MAX_EXTRA_INJECTIONS`] + 1 points), so greedy one-at-a-time
//!   removal reaches a genuine local minimum fast.
//! * **Repro rendering** ([`render_repro`]) — seed, schedule index, the
//!   minimal injection list, and the disassembled read sequence, enough to
//!   replay the failure from scratch.

use flight::FlightConfig;
use limit::harness::{Session, SessionBuilder};
use limit::reader::{CounterReader, LimitReader};
use sim_core::{DetRng, SimResult, ThreadId};
use sim_cpu::oracle::Divergence;
use sim_cpu::{Cond, EventKind, Reg};
use sim_os::inject::{InjectAction, Injection};
use sim_os::KernelConfig;

pub mod matrix;

/// Instruction-boundary offsets inside the 3-instruction read sequence
/// (`load`, `rdpmc`, `add`): before the load, between load and rdpmc (the
/// window the restart fix-up exists for), and between rdpmc and add.
const SEQ_OFFSETS: u32 = 3;

/// Read call sites emitted in the guest loop body (each is its own
/// uniquely-named restart range).
const READ_SITES: usize = 4;

/// Cap on seeded-random injections added beyond a schedule's primary
/// (exhaustively-swept) one.
pub const MAX_EXTRA_INJECTIONS: usize = 2;

/// Torture-run parameters. Everything downstream — guest program, schedule
/// contents, kernel behavior — is a pure function of this struct, so two
/// runs with equal configs produce identical results.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    /// Master seed; every schedule derives from `seed` and its own index.
    pub seed: u64,
    /// Number of injection schedules per arm.
    pub schedules: u64,
    /// Include [`InjectAction::Spill`] in the action set. A forced
    /// mid-sequence self-virtualizing spill lands with no synchronous
    /// kernel involvement; the kernel-visible spill journal (the paper's
    /// enhancement 2 done right) lets the restart fix-up repair it, so
    /// this arm now hunts regressions in the journal path.
    pub spill: bool,
    /// Guest threads hammering the read sequence.
    pub threads: usize,
    /// Simulated cores.
    pub cores: usize,
    /// Counter reads each thread performs (spread over [`READ_SITES`]
    /// call sites).
    pub reads: u32,
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig {
            seed: 7,
            schedules: 1_000,
            spill: false,
            threads: 2,
            cores: 2,
            reads: 40,
        }
    }
}

impl TortureConfig {
    /// Loop iterations per thread (each iteration visits every read site).
    fn iters(&self) -> u32 {
        (self.reads / READ_SITES as u32).max(1)
    }

    /// The action set for this config.
    fn actions(&self) -> Vec<InjectAction> {
        let mut a = InjectAction::FIXABLE.to_vec();
        if self.spill {
            a.push(InjectAction::Spill);
        }
        a
    }
}

/// Outcome of replaying one injection schedule.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Reads the oracle checked.
    pub checks: u64,
    /// Injections that actually fired.
    pub fired: u64,
    /// Wrong reads the oracle caught.
    pub divergences: Vec<Divergence>,
}

/// A schedule that produced at least one divergence, kept for shrinking
/// and repro rendering.
#[derive(Debug, Clone)]
pub struct FailingSchedule {
    /// Schedule index (combine with the config seed to regenerate).
    pub index: u64,
    /// The injections that were active when the divergence appeared.
    pub injections: Vec<Injection>,
    /// The first divergence the oracle recorded.
    pub divergence: Divergence,
}

/// Aggregate result of one torture arm (a fix-up setting × an action set).
#[derive(Debug, Clone)]
pub struct ArmReport {
    /// Whether the kernel restart fix-up was enabled.
    pub fixup: bool,
    /// Schedules replayed.
    pub schedules: u64,
    /// Total oracle checks across all schedules.
    pub checks: u64,
    /// Total injections fired.
    pub fired: u64,
    /// Schedules with at least one divergence.
    pub divergent_schedules: u64,
    /// Total divergences.
    pub divergences: u64,
    /// The first failing schedule, if any.
    pub first_failure: Option<FailingSchedule>,
}

/// Builds the torture guest: `threads` identical hammer loops, one LiMiT
/// instruction counter each, [`READ_SITES`] read sequences per iteration
/// separated by unequal bursts (so range PCs do not alias modulo anything).
/// The quantum is effectively infinite — injected disturbances are the
/// *only* disturbances, which is what makes the sweep exhaustive rather
/// than statistical.
fn build_session(cfg: &TortureConfig, fixup: bool) -> SimResult<Session> {
    let reader = LimitReader::with_events(vec![EventKind::Instructions]);
    let mut b = SessionBuilder::new(cfg.cores)
        .events(&[EventKind::Instructions])
        .kernel_config(KernelConfig {
            quantum: 1_000_000_000,
            restart_fixup: fixup,
            ..Default::default()
        });
    let mut asm = b.asm();
    asm.export("main");
    reader.emit_thread_setup(&mut asm);
    asm.imm(Reg::R9, cfg.iters() as u64);
    asm.imm(Reg::R10, 0);
    let top = asm.new_label();
    asm.bind(top);
    for work in [7u32, 5, 9, 3] {
        asm.burst(work);
        reader.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
    }
    asm.alui_sub(Reg::R9, 1);
    asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
    asm.halt();
    b.build(asm)
}

/// Generates schedule `index`'s injection list for the given restart
/// ranges. The primary injection walks the full cross-product of
/// (range × offset × action × thread) as `index` advances; its dynamic
/// occurrence and up to [`MAX_EXTRA_INJECTIONS`] extra injections come
/// from a per-schedule RNG split off the master seed.
pub fn schedule_for(cfg: &TortureConfig, ranges: &[(u32, u32)], index: u64) -> Vec<Injection> {
    assert!(!ranges.is_empty(), "guest must register restart ranges");
    let actions = cfg.actions();
    let mut rng = DetRng::new(cfg.seed).split(index);
    let iters = cfg.iters() as u64;
    let rand_inj = |rng: &mut DetRng| {
        let (start, _) = ranges[rng.index(ranges.len())];
        Injection {
            tid: ThreadId(rng.index(cfg.threads) as u32),
            pc: start + rng.index(SEQ_OFFSETS as usize) as u32,
            hit: rng.range(1, iters) as u32,
            action: actions[rng.index(actions.len())],
        }
    };

    // Primary: exhaustive sweep of the cross-product.
    let mut c = index as usize;
    let tid = c % cfg.threads;
    c /= cfg.threads;
    let action = actions[c % actions.len()];
    c /= actions.len();
    let offset = (c % SEQ_OFFSETS as usize) as u32;
    c /= SEQ_OFFSETS as usize;
    let (start, _) = ranges[c % ranges.len()];
    let mut schedule = vec![Injection {
        tid: ThreadId(tid as u32),
        pc: start + offset,
        hit: rng.range(1, iters) as u32,
        action,
    }];
    for _ in 0..rng.index(MAX_EXTRA_INJECTIONS + 1) {
        schedule.push(rand_inj(&mut rng));
    }
    schedule
}

/// Replays one explicit injection list against a fresh session.
pub fn run_with_injections(
    cfg: &TortureConfig,
    fixup: bool,
    injections: &[Injection],
) -> SimResult<ScheduleOutcome> {
    let mut s = build_session(cfg, fixup)?;
    let ranges = s.kernel.limit().ranges().to_vec();
    s.kernel.machine.enable_oracle(&ranges);
    s.kernel.set_injector(injections);
    for _ in 0..cfg.threads {
        s.spawn_instrumented("main", &[])?;
    }
    s.run()?;
    let fired = s.kernel.injector().expect("installed above").fired;
    let o = s.kernel.machine.oracle().expect("enabled above");
    Ok(ScheduleOutcome {
        checks: o.checks,
        fired,
        divergences: o.divergences().to_vec(),
    })
}

/// The restart ranges the torture guest registers (needed to generate
/// schedules without running one). Deterministic for a given config.
pub fn guest_ranges(cfg: &TortureConfig) -> SimResult<Vec<(u32, u32)>> {
    Ok(build_session(cfg, true)?.kernel.limit().ranges().to_vec())
}

/// Generates and replays schedule `index`. Returns the schedule alongside
/// its outcome so failures are replayable.
pub fn run_schedule(
    cfg: &TortureConfig,
    fixup: bool,
    ranges: &[(u32, u32)],
    index: u64,
) -> SimResult<(Vec<Injection>, ScheduleOutcome)> {
    let schedule = schedule_for(cfg, ranges, index);
    let outcome = run_with_injections(cfg, fixup, &schedule)?;
    Ok((schedule, outcome))
}

/// Runs one full torture arm: `cfg.schedules` schedules against the given
/// fix-up setting.
pub fn run_arm(cfg: &TortureConfig, fixup: bool) -> SimResult<ArmReport> {
    let ranges = guest_ranges(cfg)?;
    let mut report = ArmReport {
        fixup,
        schedules: cfg.schedules,
        checks: 0,
        fired: 0,
        divergent_schedules: 0,
        divergences: 0,
        first_failure: None,
    };
    for index in 0..cfg.schedules {
        let (schedule, outcome) = run_schedule(cfg, fixup, &ranges, index)?;
        report.checks += outcome.checks;
        report.fired += outcome.fired;
        if let Some(&first) = outcome.divergences.first() {
            report.divergent_schedules += 1;
            report.divergences += outcome.divergences.len() as u64;
            if report.first_failure.is_none() {
                report.first_failure = Some(FailingSchedule {
                    index,
                    injections: schedule,
                    divergence: first,
                });
            }
        }
    }
    Ok(report)
}

/// A schedule re-run under the flight recorder, trace still attached.
#[derive(Debug)]
pub struct Replay {
    /// The session after the traced run; its machine's flight recorder
    /// holds the event rings for export.
    pub session: Session,
    /// The injections active during the traced run (the minimal failing
    /// set when the schedule diverged, the full schedule otherwise).
    pub injections: Vec<Injection>,
    /// Divergences the oracle recorded during the traced run.
    pub divergences: Vec<Divergence>,
    /// Oracle checks performed during the traced run.
    pub checks: u64,
}

/// Regenerates schedule `index` from the config seed, shrinks it to a
/// locally-minimal failing set when it diverges, then re-runs that set
/// with the flight recorder on — so an E14 finding renders as a timeline
/// with the injections visible as instants on the failing thread's track.
pub fn replay(
    cfg: &TortureConfig,
    fixup: bool,
    index: u64,
    flight_cfg: FlightConfig,
) -> SimResult<Replay> {
    let ranges = guest_ranges(cfg)?;
    let schedule = schedule_for(cfg, &ranges, index);
    let outcome = run_with_injections(cfg, fixup, &schedule)?;
    let injections = match outcome.divergences.first() {
        None => schedule,
        Some(&divergence) => {
            let failing = FailingSchedule {
                index,
                injections: schedule,
                divergence,
            };
            shrink(cfg, fixup, &failing)?
        }
    };

    let mut s = build_session(cfg, fixup)?;
    let oracle_ranges = s.kernel.limit().ranges().to_vec();
    s.kernel.machine.enable_oracle(&oracle_ranges);
    s.enable_flight(flight_cfg);
    s.kernel.set_injector(&injections);
    for _ in 0..cfg.threads {
        s.spawn_instrumented("main", &[])?;
    }
    s.run()?;
    let o = s.kernel.machine.oracle().expect("enabled above");
    let checks = o.checks;
    let divergences = o.divergences().to_vec();
    Ok(Replay {
        session: s,
        injections,
        divergences,
        checks,
    })
}

/// Minimizes a failing schedule by delta debugging: repeatedly re-run with
/// one injection removed, keep any subset that still diverges, until no
/// single removal preserves the failure. The result is a locally-minimal
/// set of injection points that reproduces a divergence.
pub fn shrink(
    cfg: &TortureConfig,
    fixup: bool,
    failing: &FailingSchedule,
) -> SimResult<Vec<Injection>> {
    let mut current = failing.injections.clone();
    loop {
        let mut reduced = None;
        for skip in 0..current.len() {
            if current.len() == 1 {
                break;
            }
            let candidate: Vec<Injection> = current
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &inj)| inj)
                .collect();
            if !run_with_injections(cfg, fixup, &candidate)?
                .divergences
                .is_empty()
            {
                reduced = Some(candidate);
                break;
            }
        }
        match reduced {
            Some(c) => current = c,
            None => return Ok(current),
        }
    }
}

/// Renders a self-contained replayable repro: config seed, schedule index,
/// the minimal injection list, the divergence, and the disassembled read
/// sequence the divergence happened in.
pub fn render_repro(
    cfg: &TortureConfig,
    fixup: bool,
    failing: &FailingSchedule,
    minimal: &[Injection],
) -> SimResult<String> {
    let s = build_session(cfg, fixup)?;
    let prog = &s.kernel.machine.prog;
    let d = failing.divergence;
    let mut out = String::new();
    out.push_str(&format!(
        "divergence repro (seed {}, schedule {}, fixup {})\n",
        cfg.seed,
        failing.index,
        if fixup { "on" } else { "off" }
    ));
    out.push_str(&format!(
        "  {}: read of {:?} in range [{}, {}) returned {} (expected {}) at cycle {}\n",
        d.tid, d.event, d.range.0, d.range.1, d.actual, d.expected, d.clock
    ));
    out.push_str(&format!(
        "  minimal injections ({} of {} kept):\n",
        minimal.len(),
        failing.injections.len()
    ));
    for inj in minimal {
        out.push_str(&format!("    {inj}\n"));
    }
    out.push_str("  read sequence:\n");
    for pc in d.range.0..d.range.1 {
        if let Some(instr) = prog.fetch(pc) {
            out.push_str(&format!("    {pc:>5}: {instr}\n"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TortureConfig {
        TortureConfig {
            schedules: 60,
            ..TortureConfig::default()
        }
    }

    #[test]
    fn fixup_on_survives_the_sweep() {
        let report = run_arm(&small(), true).unwrap();
        assert!(report.checks > 0, "the oracle must actually check reads");
        assert!(report.fired > 0, "injections must actually fire");
        assert_eq!(
            report.divergences, 0,
            "fix-up enabled: every read must be exact; first failure: {:?}",
            report.first_failure
        );
    }

    #[test]
    fn fixup_off_rediscovers_the_read_race() {
        let report = run_arm(&small(), false).unwrap();
        assert!(
            report.divergent_schedules > 0,
            "fix-up disabled: the sweep must expose the load/rdpmc race"
        );
        assert!(report.first_failure.is_some());
    }

    #[test]
    fn spill_arm_is_fixed_by_the_kernel_visible_journal() {
        let cfg = TortureConfig {
            spill: true,
            schedules: 120,
            ..TortureConfig::default()
        };
        let report = run_arm(&cfg, true).unwrap();
        assert!(report.fired > 0, "spill injections must actually fire");
        assert_eq!(
            report.divergent_schedules, 0,
            "the spill journal makes mid-sequence spills kernel-visible, \
             so the restart fix-up repairs them; first failure: {:?}",
            report.first_failure
        );
    }

    #[test]
    fn spill_arm_still_diverges_with_the_fixup_disabled() {
        let cfg = TortureConfig {
            spill: true,
            schedules: 120,
            ..TortureConfig::default()
        };
        let report = run_arm(&cfg, false).unwrap();
        assert!(
            report.divergent_schedules > 0,
            "journal consults are inert while the fix-up is disabled; \
             the spill race must still reproduce"
        );
    }

    #[test]
    fn schedules_are_deterministic() {
        let cfg = small();
        let ranges = guest_ranges(&cfg).unwrap();
        for index in [0, 7, 41] {
            assert_eq!(
                schedule_for(&cfg, &ranges, index),
                schedule_for(&cfg, &ranges, index)
            );
            let (_, a) = run_schedule(&cfg, false, &ranges, index).unwrap();
            let (_, b) = run_schedule(&cfg, false, &ranges, index).unwrap();
            assert_eq!(a.checks, b.checks);
            assert_eq!(a.fired, b.fired);
            assert_eq!(a.divergences, b.divergences);
        }
    }

    #[test]
    fn shrinking_reaches_a_minimal_repro() {
        let cfg = small();
        let report = run_arm(&cfg, false).unwrap();
        let failing = report.first_failure.expect("off arm must fail");
        let minimal = shrink(&cfg, false, &failing).unwrap();
        assert!(!minimal.is_empty() && minimal.len() <= 5);
        assert!(minimal.len() <= failing.injections.len());
        // The minimal set still reproduces...
        let again = run_with_injections(&cfg, false, &minimal).unwrap();
        assert!(!again.divergences.is_empty());
        // ...and is minimal: removing any one injection loses the failure.
        if minimal.len() > 1 {
            for skip in 0..minimal.len() {
                let without: Vec<Injection> = minimal
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, &inj)| inj)
                    .collect();
                assert!(run_with_injections(&cfg, false, &without)
                    .unwrap()
                    .divergences
                    .is_empty());
            }
        }
        let repro = render_repro(&cfg, false, &failing, &minimal).unwrap();
        assert!(repro.contains("seed 7"));
        assert!(repro.contains("read sequence:"));
        assert!(repro.contains("rdpmc"));
    }

    #[test]
    fn replay_traces_the_minimal_failing_schedule() {
        use flight::EventData;

        let cfg = small();
        let report = run_arm(&cfg, false).unwrap();
        let failing = report.first_failure.expect("off arm must fail");
        let r = replay(&cfg, false, failing.index, FlightConfig::default()).unwrap();
        // The traced run reproduces the divergence with the minimal set.
        assert!(!r.divergences.is_empty());
        assert!(r.injections.len() <= failing.injections.len());
        let fl = r.session.kernel.machine.flight().expect("tracing on");
        let all: Vec<_> = fl.rings().iter().flat_map(|ring| ring.iter()).collect();
        // Every active injection fired as a visible instant, and the wrong
        // read shows as a failed oracle check on the same thread.
        let fired = all
            .iter()
            .filter(|e| matches!(e.data, EventData::Injection { .. }))
            .count();
        assert!(fired >= 1 && fired <= r.injections.len());
        assert!(all.iter().any(|e| {
            matches!(e.data, EventData::OracleCheck { ok: false, .. })
                && e.tid == Some(r.divergences[0].tid.0)
        }));
    }

    #[test]
    fn exhaustive_sweep_visits_every_offset_action_and_thread() {
        let cfg = TortureConfig {
            schedules: 400,
            ..TortureConfig::default()
        };
        let ranges = guest_ranges(&cfg).unwrap();
        let combos = ranges.len() * SEQ_OFFSETS as usize * 3 * cfg.threads;
        assert!(
            cfg.schedules as usize >= combos,
            "default schedule count must cover the cross-product ({combos})"
        );
        let mut seen = std::collections::HashSet::new();
        for index in 0..combos as u64 {
            let primary = schedule_for(&cfg, &ranges, index)[0];
            seen.insert((primary.tid, primary.pc, primary.action));
        }
        assert_eq!(seen.len(), combos, "primary injections must not alias");
    }
}
