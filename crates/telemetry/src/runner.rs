//! Driving a stream-mode session end to end.
//!
//! [`run_streaming`] runs the session under the kernel's periodic drain
//! hook: every `every` cycles the collector drains all rings and the
//! caller's callback receives a fresh [`Snapshot`]. After the run a final
//! drain sweeps records still in flight and emits one last snapshot, so
//! `appended == drained + dropped + overwritten` at the end.

use crate::collector::Collector;
use crate::snapshot::Snapshot;
use limit::Session;
use sim_core::{SimResult, ThreadId};
use sim_os::RunReport;

/// Runs the session to completion, draining every `every` cycles and
/// passing each snapshot (including one final post-run snapshot) to
/// `on_snapshot`.
pub fn run_streaming<F>(
    session: &mut Session,
    collector: &mut Collector,
    every: u64,
    on_snapshot: F,
) -> SimResult<RunReport>
where
    F: FnMut(&Snapshot),
{
    run_streaming_inner(session, collector, every, None, on_snapshot)
}

/// [`run_streaming`], stopping when `tid` exits (background threads may
/// still be live).
pub fn run_streaming_until<F>(
    session: &mut Session,
    collector: &mut Collector,
    every: u64,
    tid: ThreadId,
    on_snapshot: F,
) -> SimResult<RunReport>
where
    F: FnMut(&Snapshot),
{
    run_streaming_inner(session, collector, every, Some(tid), on_snapshot)
}

fn run_streaming_inner<F>(
    session: &mut Session,
    collector: &mut Collector,
    every: u64,
    stop_on_exit: Option<ThreadId>,
    mut on_snapshot: F,
) -> SimResult<RunReport>
where
    F: FnMut(&Snapshot),
{
    let mut seq = 0u64;
    let mut result = {
        let regions = &session.regions;
        let hook = |m: &mut sim_cpu::Machine, now: u64| {
            let records = collector.drain(m)?;
            seq += 1;
            flight_note_tick(m, now, records, seq);
            on_snapshot(&collector.snapshot(seq, now, regions));
            Ok(())
        };
        match stop_on_exit {
            None => session.kernel.run_with_hook(every, hook),
            Some(tid) => session.kernel.run_until_exit_with_hook(tid, every, hook),
        }
    };
    // Final sweep: records appended after the last tick are still in the
    // rings. This runs even when the run itself errored (e.g. a guest
    // fault) — the rings hold everything the guest emitted up to the
    // fault, and discarding it would make faults undebuggable from the
    // telemetry side. The run's own error still propagates afterwards.
    match collector.drain(&mut session.kernel.machine) {
        Ok(records) => {
            seq += 1;
            let cycle = session.kernel.machine.global_clock();
            flight_note_tick(&mut session.kernel.machine, cycle, records, seq);
            on_snapshot(&collector.snapshot(seq, cycle, &session.regions));
        }
        Err(drain_err) => {
            // Surface the run's error in preference to the drain's.
            result?;
            return Err(drain_err);
        }
    }
    // Teardown accounting: the streaming path bypasses `Session::run`, so
    // the session would otherwise never fill the report's warnings or
    // surface dropped-record lines (through its `WarnSink`, if installed).
    if let Ok(report) = result.as_mut() {
        session.finalize_report(report);
    }
    result
}

/// Mirrors one collector tick — the drain and the snapshot it publishes —
/// onto the flight recorder's host ring.
fn flight_note_tick(m: &mut sim_cpu::Machine, now: u64, records: u64, seq: u64) {
    if let Some(fl) = m.flight_mut() {
        fl.record_host(now, None, flight::EventData::RingDrain { records });
        fl.record_host(now, None, flight::EventData::SnapshotPublish { seq });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::harness::SessionBuilder;
    use limit::reader::{CounterReader, LimitReader};
    use limit::{Instrumenter, StreamConfig};
    use sim_cpu::EventKind;

    #[test]
    fn streaming_run_drains_everything_with_mid_run_snapshots() {
        let reader = LimitReader::new(1);
        let ins = Instrumenter::new(&reader);
        let cfg = StreamConfig::dropping(16);
        let mut b = SessionBuilder::new(1)
            .events(&[EventKind::Cycles])
            .stream(cfg);
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        for _ in 0..200 {
            ins.emit_enter(&mut asm);
            asm.burst(100);
            ins.emit_exit_stream(&mut asm, 0, cfg);
        }
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.regions.define("work");
        let tid = s.spawn_instrumented("main", &[]).unwrap();
        let mut c = Collector::new(2, 1);
        c.attach(&s);
        let mut snaps: Vec<Snapshot> = Vec::new();
        run_streaming(&mut s, &mut c, 2_000, |snap| snaps.push(snap.clone())).unwrap();
        // Mid-run snapshots happened (not just the final one), and the ring
        // (capacity 16) never had to drop despite 200 appends.
        assert!(snaps.len() >= 3, "only {} snapshots", snaps.len());
        let last = snaps.last().unwrap();
        assert_eq!(last.appended, 200);
        assert_eq!(last.drained, 200);
        assert_eq!(last.dropped, 0);
        assert_eq!(last.in_flight(), 0);
        assert_eq!(s.dropped(tid).unwrap(), 0);
        // A mid-run snapshot saw strictly fewer records than the final one.
        assert!(snaps[0].drained < last.drained);
        let work = last.region("work").unwrap();
        assert_eq!(work.count, 200);
        assert!(work.events[0].mean().unwrap() >= 100.0);
    }

    #[test]
    fn faulting_run_still_publishes_final_snapshot() {
        // Records appended before a guest fault must survive it: the final
        // sweep drains the rings and publishes one last snapshot even
        // though the run itself errors out.
        let reader = LimitReader::new(1);
        let ins = Instrumenter::new(&reader);
        let cfg = StreamConfig::dropping(256);
        let mut b = SessionBuilder::new(1)
            .events(&[EventKind::Cycles])
            .stream(cfg);
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        for _ in 0..50 {
            ins.emit_enter(&mut asm);
            asm.burst(100);
            ins.emit_exit_stream(&mut asm, 0, cfg);
        }
        // Destructive counter read with the extension disabled: faults.
        asm.rdpmc_clear(sim_cpu::Reg::R1, 0);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.regions.define("work");
        s.spawn_instrumented("main", &[]).unwrap();
        let mut c = Collector::new(2, 1);
        c.attach(&s);
        let mut snaps: Vec<Snapshot> = Vec::new();
        let err =
            run_streaming(&mut s, &mut c, 1_000_000, |snap| snaps.push(snap.clone())).unwrap_err();
        assert_eq!(err.category(), "fault");
        // The drain interval was far beyond the run length, so the final
        // sweep is the only chance to see the 50 pre-fault records.
        let last = snaps.last().expect("final snapshot must be published");
        assert_eq!(last.appended, 50);
        assert_eq!(last.drained, 50);
        assert_eq!(last.in_flight(), 0);
        assert_eq!(last.region("work").unwrap().count, 50);
    }
}
