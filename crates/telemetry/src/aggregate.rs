//! Sharded online aggregation of drained telemetry records.
//!
//! One [`AggShard`] per collector stripe; each folds records in O(1) with
//! no per-record allocation (a region's stats are allocated once, on first
//! sight). Shards merge on demand — merging is associative and
//! commutative, so any merge order over any partition of the record stream
//! yields the same result as single-shard aggregation (property-tested in
//! `tests/aggregator_props.rs`).

use sim_core::Histogram;
use sim_os::io::SLOW_IO_CYCLES;
use std::collections::HashMap;

/// Per-device blocking-I/O statistics attributed to one region: a
/// log₂-bucketed wait-latency histogram (call count and wait-cycle sum
/// included) plus the count of calls whose wait crossed the slow-I/O
/// threshold ([`SLOW_IO_CYCLES`]).
#[derive(Debug, Clone, PartialEq)]
pub struct IoStat {
    /// Device id (index into `sim_os::io::DEVICE_NAMES`).
    pub device: usize,
    /// Wait-cycle distribution across the region's calls to this device.
    pub hist: Histogram,
    /// Calls whose wait exceeded the slow-I/O threshold.
    pub slow_calls: u64,
}

impl IoStat {
    /// Blocking calls folded in.
    pub fn calls(&self) -> u64 {
        self.hist.count()
    }

    /// Total wait cycles folded in.
    pub fn wait_sum(&self) -> u64 {
        self.hist.sum() as u64
    }
}

/// Merges per-device I/O stats keyed by device id (shared by shard merge
/// and snapshot roll-up; keeps the vec sorted by device).
pub fn merge_io_stats(ours: &mut Vec<IoStat>, theirs: &[IoStat]) {
    for t in theirs {
        match ours.iter_mut().find(|s| s.device == t.device) {
            Some(s) => {
                s.hist.merge(&t.hist);
                s.slow_calls += t.slow_calls;
            }
            None => ours.push(t.clone()),
        }
    }
    ours.sort_by_key(|s| s.device);
}

/// Streaming statistics for one region: exit count plus one log₂-bucketed
/// histogram (count/sum/min/max included) per event kind.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionStats {
    /// Region exits folded in.
    pub count: u64,
    /// Per-event delta distributions, indexed like the session's event set.
    pub events: Vec<Histogram>,
    /// Per-device blocking-I/O waits attributed to this region (sparse,
    /// sorted by device; empty for regions that never block).
    pub io: Vec<IoStat>,
}

impl RegionStats {
    fn new(counters: usize) -> Self {
        RegionStats {
            count: 0,
            events: vec![Histogram::new(); counters],
            io: Vec::new(),
        }
    }

    /// Total of event `i`'s deltas across all folded records.
    pub fn event_sum(&self, i: usize) -> u64 {
        self.events.get(i).map_or(0, |h| h.sum() as u64)
    }
}

/// One aggregation shard: a per-region stats table.
#[derive(Debug, Clone, PartialEq)]
pub struct AggShard {
    counters: usize,
    regions: HashMap<u64, RegionStats>,
}

impl AggShard {
    /// An empty shard for records carrying `counters` event deltas.
    pub fn new(counters: usize) -> Self {
        AggShard {
            counters,
            regions: HashMap::new(),
        }
    }

    /// Folds one record. O(1); allocates only the first time a region id
    /// is seen.
    pub fn fold(&mut self, region: u64, deltas: &[u64]) {
        debug_assert_eq!(deltas.len(), self.counters);
        let stats = self
            .regions
            .entry(region)
            .or_insert_with(|| RegionStats::new(self.counters));
        stats.count += 1;
        for (h, &d) in stats.events.iter_mut().zip(deltas) {
            h.record(d);
        }
    }

    /// Folds one kernel-emitted I/O wait record: `wait` cycles spent
    /// blocked on `device`, attributed to `region`. Does not bump the
    /// region's exit count — I/O records ride alongside exit records.
    pub fn fold_io(&mut self, region: u64, device: usize, wait: u64) {
        let stats = self
            .regions
            .entry(region)
            .or_insert_with(|| RegionStats::new(self.counters));
        let io = match stats.io.iter_mut().find(|s| s.device == device) {
            Some(s) => s,
            None => {
                stats.io.push(IoStat {
                    device,
                    hist: Histogram::new(),
                    slow_calls: 0,
                });
                stats.io.sort_by_key(|s| s.device);
                stats
                    .io
                    .iter_mut()
                    .find(|s| s.device == device)
                    .expect("just inserted")
            }
        };
        io.hist.record(wait);
        if wait > SLOW_IO_CYCLES {
            io.slow_calls += 1;
        }
    }

    /// Merges another shard into this one.
    pub fn merge(&mut self, other: &AggShard) {
        debug_assert_eq!(other.counters, self.counters);
        for (&region, theirs) in &other.regions {
            let ours = self
                .regions
                .entry(region)
                .or_insert_with(|| RegionStats::new(self.counters));
            ours.count += theirs.count;
            for (h, o) in ours.events.iter_mut().zip(&theirs.events) {
                h.merge(o);
            }
            merge_io_stats(&mut ours.io, &theirs.io);
        }
    }

    /// Event deltas per record.
    pub fn counters(&self) -> usize {
        self.counters
    }

    /// Total records folded across all regions.
    pub fn total_count(&self) -> u64 {
        self.regions.values().map(|s| s.count).sum()
    }

    /// A region's stats, if any records mentioned it.
    pub fn region(&self, id: u64) -> Option<&RegionStats> {
        self.regions.get(&id)
    }

    /// Iterates `(region_id, stats)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &RegionStats)> {
        self.regions.iter().map(|(&id, s)| (id, s))
    }

    /// Number of distinct regions seen.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether no records have been folded.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_accumulates_counts_and_distributions() {
        let mut s = AggShard::new(2);
        s.fold(7, &[10, 100]);
        s.fold(7, &[30, 300]);
        s.fold(9, &[5, 50]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_count(), 3);
        let r7 = s.region(7).unwrap();
        assert_eq!(r7.count, 2);
        assert_eq!(r7.event_sum(0), 40);
        assert_eq!(r7.event_sum(1), 400);
        assert_eq!(r7.events[0].min(), Some(10));
        assert_eq!(r7.events[0].max(), Some(30));
        assert!(s.region(8).is_none());
    }

    #[test]
    fn fold_io_tracks_slow_calls_separately_from_exits() {
        let mut s = AggShard::new(1);
        s.fold(3, &[100]);
        s.fold_io(3, 2, SLOW_IO_CYCLES + 1);
        s.fold_io(3, 2, 10);
        s.fold_io(3, 0, 20);
        let r = s.region(3).unwrap();
        assert_eq!(r.count, 1, "io records do not bump the exit count");
        assert_eq!(r.io.len(), 2);
        assert_eq!(r.io[0].device, 0);
        assert_eq!(r.io[1].device, 2);
        assert_eq!(r.io[1].calls(), 2);
        assert_eq!(r.io[1].wait_sum(), SLOW_IO_CYCLES + 11);
        assert_eq!(r.io[1].slow_calls, 1);
        assert_eq!(r.io[0].slow_calls, 0);
    }

    #[test]
    fn merge_combines_io_stats_by_device() {
        let mut a = AggShard::new(1);
        a.fold_io(5, 1, 40);
        let mut b = AggShard::new(1);
        b.fold_io(5, 1, 60);
        b.fold_io(5, 0, 10);
        a.merge(&b);
        let r = a.region(5).unwrap();
        assert_eq!(r.io.len(), 2);
        assert_eq!(r.io[0].device, 0);
        assert_eq!(r.io[1].wait_sum(), 100);
        assert_eq!(r.io[1].calls(), 2);
    }

    #[test]
    fn merge_equals_sequential_fold() {
        let records = [(1u64, [4u64, 9u64]), (2, [8, 2]), (1, [16, 5])];
        let mut whole = AggShard::new(2);
        let mut a = AggShard::new(2);
        let mut b = AggShard::new(2);
        for (i, (region, deltas)) in records.iter().enumerate() {
            whole.fold(*region, deltas);
            if i % 2 == 0 {
                a.fold(*region, deltas);
            } else {
                b.fold(*region, deltas);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }
}
