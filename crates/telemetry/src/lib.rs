//! Live telemetry: the "always-on profiling" layer.
//!
//! The paper's reads are cheap enough to wrap around every critical
//! section, but the seed reproduction still buffered `(region, deltas...)`
//! records into a per-thread log drained only *after* the run — so
//! long-running workloads either truncate or hold unbounded memory. This
//! crate closes that gap with a streaming pipeline whose memory is bounded
//! by ring capacity regardless of run length:
//!
//! * **Transport** — guest threads append records to per-thread SPSC rings
//!   (emitted by `limit::Instrumenter::emit_exit_stream`, laid out by
//!   `limit::harness::SessionBuilder::stream`); the host-side
//!   [`Collector`] drains them *mid-run* from the kernel's periodic drain
//!   hook ([`sim_os::Kernel::run_with_hook`]), writing the consumer index
//!   back into guest TLS like a DMA engine.
//! * **Aggregation** — drained records fold into sharded online
//!   aggregators ([`AggShard`], one per collector stripe): per-region
//!   count plus a log₂-bucketed [`sim_core::Histogram`] per event kind,
//!   O(1) per record with no per-record allocation. Shards merge on
//!   demand; merging is associative and commutative.
//! * **Serving** — [`Snapshot`]s taken at every drain tick expose the
//!   merged view (plus transport accounting: appended / drained / dropped
//!   / overwritten) to renderers, the NDJSON writer in the CLI, and the
//!   online bottleneck detectors in `analysis::online`.
//!
//! [`run_streaming`] ties the pieces together for a whole session.

pub mod aggregate;
pub mod collector;
pub mod runner;
pub mod snapshot;

pub use aggregate::{AggShard, IoStat, RegionStats};
pub use collector::Collector;
pub use runner::{run_streaming, run_streaming_until};
pub use snapshot::{RegionSnapshot, Snapshot};
