//! Point-in-time views of the aggregated telemetry stream.
//!
//! A [`Snapshot`] is what the pipeline serves: per-region streaming stats
//! (count plus per-event histograms) and transport accounting. The
//! invariant `appended == drained + dropped + overwritten + in_flight`
//! holds at every snapshot; after a final drain `in_flight` is zero.

use crate::aggregate::{merge_io_stats, IoStat};
use sim_core::Histogram;

/// One region's aggregated view inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSnapshot {
    /// Region id.
    pub id: u64,
    /// Resolved name, or `#id` when unnamed.
    pub name: String,
    /// Region exits drained so far.
    pub count: u64,
    /// Per-event delta histograms (count/sum/min/max/log₂ buckets),
    /// indexed like the session's event set.
    pub events: Vec<Histogram>,
    /// Per-device blocking-I/O waits (sparse, sorted by device; empty for
    /// regions that never block).
    pub io: Vec<IoStat>,
}

impl RegionSnapshot {
    /// Total of event `i`'s deltas.
    pub fn event_sum(&self, i: usize) -> u64 {
        self.events.get(i).map_or(0, |h| h.sum() as u64)
    }

    /// Mean of event `i`'s deltas, or 0 when empty.
    pub fn event_mean(&self, i: usize) -> f64 {
        self.events.get(i).and_then(|h| h.mean()).unwrap_or(0.0)
    }

    /// Total wait cycles across all devices.
    pub fn io_wait_sum(&self) -> u64 {
        self.io.iter().map(IoStat::wait_sum).sum()
    }

    /// Total blocking calls across all devices.
    pub fn io_calls(&self) -> u64 {
        self.io.iter().map(IoStat::calls).sum()
    }

    /// Total slow calls across all devices.
    pub fn io_slow_calls(&self) -> u64 {
        self.io.iter().map(|s| s.slow_calls).sum()
    }
}

/// A point-in-time view of the telemetry pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Monotone snapshot number (1-based; the final post-run snapshot is
    /// the largest).
    pub seq: u64,
    /// Frontier cycle when the snapshot was taken.
    pub cycle: u64,
    /// Records appended by producers (sum of ring heads at the last
    /// drain).
    pub appended: u64,
    /// Records consumed by the collector.
    pub drained: u64,
    /// Records producers dropped to full rings (drop policy).
    pub dropped: u64,
    /// Records lost to producer laps (overwrite policy).
    pub overwritten: u64,
    /// Per-region stats, descending by event-0 sum.
    pub regions: Vec<RegionSnapshot>,
}

impl Snapshot {
    /// Sum of event `i` across all regions.
    pub fn total_event(&self, i: usize) -> u64 {
        self.regions.iter().map(|r| r.event_sum(i)).sum()
    }

    /// Looks up a region row by name.
    pub fn region(&self, name: &str) -> Option<&RegionSnapshot> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// Records appended but not yet drained or lost.
    pub fn in_flight(&self) -> u64 {
        self.appended
            .saturating_sub(self.drained + self.overwritten)
    }

    /// Merges another snapshot into this one — the roll-up operation of
    /// the fleet hierarchy (per-instance shards → node aggregates → fleet
    /// aggregate).
    ///
    /// Semantics: transport counters (`appended`/`drained`/`dropped`/
    /// `overwritten`) add, so the conservation invariant
    /// `appended == drained + overwritten + in_flight` is preserved —
    /// `in_flight` is derived, and a sum of per-shard invariants is the
    /// merged invariant. `seq` and `cycle` take the maximum (the frontier
    /// of the most-advanced shard). Regions merge by id — counts add,
    /// per-event histograms merge — and the merged rows are re-sorted into
    /// the canonical order (descending event-0 sum, then ascending id), so
    /// the result is independent of merge order. Merging assumes both
    /// snapshots come from sessions sharing one region registry (same
    /// workload build); on an id collision with differing names, `self`'s
    /// name wins.
    ///
    /// The operation is associative and commutative (property-tested in
    /// `tests/snapshot_merge_props.rs` against a flat single-aggregate
    /// reference), which is what makes the shard → node → fleet roll-up
    /// order-independent: any partition of instances over any worker
    /// assignment produces the identical fleet aggregate.
    pub fn merge(&mut self, other: &Snapshot) {
        self.seq = self.seq.max(other.seq);
        self.cycle = self.cycle.max(other.cycle);
        self.appended += other.appended;
        self.drained += other.drained;
        self.dropped += other.dropped;
        self.overwritten += other.overwritten;
        for theirs in &other.regions {
            match self.regions.iter_mut().find(|r| r.id == theirs.id) {
                Some(ours) => {
                    ours.count += theirs.count;
                    // Event sets match by construction; tolerate a longer
                    // incoming vector by extending with its tail.
                    for (h, o) in ours.events.iter_mut().zip(&theirs.events) {
                        h.merge(o);
                    }
                    if theirs.events.len() > ours.events.len() {
                        ours.events
                            .extend(theirs.events[ours.events.len()..].iter().cloned());
                    }
                    merge_io_stats(&mut ours.io, &theirs.io);
                }
                None => self.regions.push(theirs.clone()),
            }
        }
        self.regions
            .sort_by(|a, b| b.event_sum(0).cmp(&a.event_sum(0)).then(a.id.cmp(&b.id)));
    }

    /// An empty snapshot — the identity element of [`Snapshot::merge`].
    pub fn empty() -> Snapshot {
        Snapshot {
            seq: 0,
            cycle: 0,
            appended: 0,
            drained: 0,
            dropped: 0,
            overwritten: 0,
            regions: Vec::new(),
        }
    }

    /// Renders a fixed-width table of the snapshot (one row per region,
    /// `event_names` labelling the delta columns by their mean). When any
    /// region carries blocking-I/O stats, two extra columns render: total
    /// I/O wait cycles and the renacer-style "Slow I/O" call count —
    /// existing non-I/O outputs stay byte-identical.
    pub fn render(&self, event_names: &[&str]) -> String {
        let mut out = format!(
            "snapshot #{} @ cycle {} | drained {} dropped {} overwritten {} in-flight {}\n",
            self.seq,
            self.cycle,
            self.drained,
            self.dropped,
            self.overwritten,
            self.in_flight()
        );
        let has_io = self.regions.iter().any(|r| !r.io.is_empty());
        out.push_str(&format!("{:<22} {:>8}", "region", "count"));
        for n in event_names {
            out.push_str(&format!(" {:>14}", format!("mean {n}")));
        }
        if has_io {
            out.push_str(&format!(" {:>14} {:>8}", "io wait", "slow io"));
        }
        out.push('\n');
        for r in &self.regions {
            out.push_str(&format!("{:<22} {:>8}", r.name, r.count));
            for i in 0..event_names.len() {
                out.push_str(&format!(" {:>14.1}", r.event_mean(i)));
            }
            if has_io {
                out.push_str(&format!(
                    " {:>14} {:>8}",
                    r.io_wait_sum(),
                    r.io_slow_calls()
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(name: &str, count: u64, deltas: &[u64]) -> RegionSnapshot {
        let mut h = Histogram::new();
        for &d in deltas {
            h.record(d);
        }
        RegionSnapshot {
            id: 0,
            name: name.to_string(),
            count,
            events: vec![h],
            io: Vec::new(),
        }
    }

    #[test]
    fn accounting_and_lookup() {
        let s = Snapshot {
            seq: 2,
            cycle: 100,
            appended: 10,
            drained: 6,
            dropped: 1,
            overwritten: 1,
            regions: vec![region("a.acq", 3, &[5, 10, 15]), region("b", 3, &[1, 2, 3])],
        };
        assert_eq!(s.in_flight(), 3);
        assert_eq!(s.total_event(0), 36);
        assert_eq!(s.region("a.acq").unwrap().event_sum(0), 30);
        assert!(s.region("nope").is_none());
        let txt = s.render(&["cycles"]);
        assert!(txt.contains("a.acq"));
        assert!(txt.contains("mean cycles"));
    }

    #[test]
    fn merge_sums_transport_and_preserves_invariant() {
        let mut a = Snapshot {
            seq: 3,
            cycle: 500,
            appended: 10,
            drained: 8,
            dropped: 1,
            overwritten: 1,
            regions: vec![region("x", 4, &[100, 200])],
        };
        let mut y = region("y", 3, &[10, 20, 30]);
        y.id = 9;
        let b = Snapshot {
            seq: 1,
            cycle: 900,
            appended: 6,
            drained: 5,
            dropped: 0,
            overwritten: 0,
            regions: vec![region("x", 2, &[50]), y],
        };
        let in_flight_sum = a.in_flight() + b.in_flight();
        a.merge(&b);
        assert_eq!(a.seq, 3);
        assert_eq!(a.cycle, 900);
        assert_eq!(a.appended, 16);
        assert_eq!(a.drained, 13);
        assert_eq!(a.in_flight(), in_flight_sum);
        // Both "x" rows folded into one (shared id); "y" kept separate.
        let x = a.region("x").unwrap();
        assert_eq!(x.count, 6);
        assert_eq!(x.event_sum(0), 350);
        assert_eq!(a.region("y").unwrap().count, 3);
    }

    #[test]
    fn merge_with_empty_is_identity_and_commutes() {
        let mut a = Snapshot {
            seq: 2,
            cycle: 100,
            appended: 5,
            drained: 5,
            dropped: 0,
            overwritten: 0,
            regions: vec![region("r", 5, &[1, 2, 4, 8, 16])],
        };
        let orig = a.clone();
        a.merge(&Snapshot::empty());
        assert_eq!(a, orig);
        let mut e = Snapshot::empty();
        e.merge(&orig);
        assert_eq!(e, orig);
    }

    #[test]
    fn merge_keeps_regions_in_canonical_order() {
        let mut small = region("small", 1, &[5]);
        small.id = 1;
        let mut big = region("big", 1, &[1_000]);
        big.id = 2;
        let mut a = Snapshot {
            regions: vec![small],
            ..Snapshot::empty()
        };
        let b = Snapshot {
            regions: vec![big],
            ..Snapshot::empty()
        };
        a.merge(&b);
        let names: Vec<&str> = a.regions.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["big", "small"]);
    }
}
