//! Point-in-time views of the aggregated telemetry stream.
//!
//! A [`Snapshot`] is what the pipeline serves: per-region streaming stats
//! (count plus per-event histograms) and transport accounting. The
//! invariant `appended == drained + dropped + overwritten + in_flight`
//! holds at every snapshot; after a final drain `in_flight` is zero.

use sim_core::Histogram;

/// One region's aggregated view inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSnapshot {
    /// Region id.
    pub id: u64,
    /// Resolved name, or `#id` when unnamed.
    pub name: String,
    /// Region exits drained so far.
    pub count: u64,
    /// Per-event delta histograms (count/sum/min/max/log₂ buckets),
    /// indexed like the session's event set.
    pub events: Vec<Histogram>,
}

impl RegionSnapshot {
    /// Total of event `i`'s deltas.
    pub fn event_sum(&self, i: usize) -> u64 {
        self.events.get(i).map_or(0, |h| h.sum() as u64)
    }

    /// Mean of event `i`'s deltas, or 0 when empty.
    pub fn event_mean(&self, i: usize) -> f64 {
        self.events.get(i).and_then(|h| h.mean()).unwrap_or(0.0)
    }
}

/// A point-in-time view of the telemetry pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Monotone snapshot number (1-based; the final post-run snapshot is
    /// the largest).
    pub seq: u64,
    /// Frontier cycle when the snapshot was taken.
    pub cycle: u64,
    /// Records appended by producers (sum of ring heads at the last
    /// drain).
    pub appended: u64,
    /// Records consumed by the collector.
    pub drained: u64,
    /// Records producers dropped to full rings (drop policy).
    pub dropped: u64,
    /// Records lost to producer laps (overwrite policy).
    pub overwritten: u64,
    /// Per-region stats, descending by event-0 sum.
    pub regions: Vec<RegionSnapshot>,
}

impl Snapshot {
    /// Sum of event `i` across all regions.
    pub fn total_event(&self, i: usize) -> u64 {
        self.regions.iter().map(|r| r.event_sum(i)).sum()
    }

    /// Looks up a region row by name.
    pub fn region(&self, name: &str) -> Option<&RegionSnapshot> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// Records appended but not yet drained or lost.
    pub fn in_flight(&self) -> u64 {
        self.appended
            .saturating_sub(self.drained + self.overwritten)
    }

    /// Renders a fixed-width table of the snapshot (one row per region,
    /// `event_names` labelling the delta columns by their mean).
    pub fn render(&self, event_names: &[&str]) -> String {
        let mut out = format!(
            "snapshot #{} @ cycle {} | drained {} dropped {} overwritten {} in-flight {}\n",
            self.seq,
            self.cycle,
            self.drained,
            self.dropped,
            self.overwritten,
            self.in_flight()
        );
        out.push_str(&format!("{:<22} {:>8}", "region", "count"));
        for n in event_names {
            out.push_str(&format!(" {:>14}", format!("mean {n}")));
        }
        out.push('\n');
        for r in &self.regions {
            out.push_str(&format!("{:<22} {:>8}", r.name, r.count));
            for i in 0..event_names.len() {
                out.push_str(&format!(" {:>14.1}", r.event_mean(i)));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(name: &str, count: u64, deltas: &[u64]) -> RegionSnapshot {
        let mut h = Histogram::new();
        for &d in deltas {
            h.record(d);
        }
        RegionSnapshot {
            id: 0,
            name: name.to_string(),
            count,
            events: vec![h],
        }
    }

    #[test]
    fn accounting_and_lookup() {
        let s = Snapshot {
            seq: 2,
            cycle: 100,
            appended: 10,
            drained: 6,
            dropped: 1,
            overwritten: 1,
            regions: vec![region("a.acq", 3, &[5, 10, 15]), region("b", 3, &[1, 2, 3])],
        };
        assert_eq!(s.in_flight(), 3);
        assert_eq!(s.total_event(0), 36);
        assert_eq!(s.region("a.acq").unwrap().event_sum(0), 30);
        assert!(s.region("nope").is_none());
        let txt = s.render(&["cycles"]);
        assert!(txt.contains("a.acq"));
        assert!(txt.contains("mean cycles"));
    }
}
