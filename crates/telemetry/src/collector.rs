//! The host-side collector: drains per-thread SPSC rings into aggregation
//! shards.
//!
//! The collector runs from the kernel's periodic drain hook, between guest
//! instructions — so within one drain every ring is quiescent and reads
//! are race-free by construction. After consuming `tail..head` it writes
//! the advanced tail back into the producer's TLS (the word the producer's
//! full check reads), like a DMA engine completing a descriptor.

use crate::aggregate::AggShard;
use crate::snapshot::{RegionSnapshot, Snapshot};
use limit::harness::RingHandle;
use limit::report::Regions;
use limit::tls;
use limit::Session;
use sim_core::{SimResult, ThreadId};
use sim_cpu::Machine;
use sim_os::io::decode_io_region;

#[derive(Debug)]
struct RingState {
    handle: RingHandle,
    /// Host-cached consumer index (mirrors the guest TLS tail word).
    tail: u64,
    /// Producer head observed at the last drain.
    head_seen: u64,
    /// Producer drop count observed at the last drain.
    dropped: u64,
}

/// Drains registered rings into `stripes` aggregation shards (a ring's
/// shard is `tid % stripes`, so one producer always lands in one shard and
/// shard merging happens only at snapshot time).
#[derive(Debug)]
pub struct Collector {
    shards: Vec<AggShard>,
    rings: Vec<RingState>,
    counters: usize,
    drained: u64,
    overwritten: u64,
}

impl Collector {
    /// A collector with `stripes` shards for records of `counters` deltas.
    pub fn new(stripes: usize, counters: usize) -> Self {
        assert!(stripes > 0, "at least one aggregation stripe");
        Collector {
            shards: vec![AggShard::new(counters); stripes],
            rings: Vec::new(),
            counters,
            drained: 0,
            overwritten: 0,
        }
    }

    /// Registers one ring for draining.
    pub fn register(&mut self, handle: RingHandle) {
        assert_eq!(
            handle.counters, self.counters,
            "ring delta count must match the collector's"
        );
        self.rings.push(RingState {
            handle,
            tail: 0,
            head_seen: 0,
            dropped: 0,
        });
    }

    /// Registers every ring of a stream-mode session (spawn order).
    pub fn attach(&mut self, session: &Session) {
        for h in session.ring_handles() {
            self.register(h);
        }
    }

    /// Drains every registered ring into its shard. Returns the number of
    /// records consumed.
    pub fn drain(&mut self, machine: &mut Machine) -> SimResult<u64> {
        self.drain_with(machine, |_, _, _| {})
    }

    /// [`Collector::drain`], additionally passing every record to
    /// `visit(tid, region, deltas)` in drain order (tests and custom
    /// sinks).
    pub fn drain_with<F>(&mut self, machine: &mut Machine, mut visit: F) -> SimResult<u64>
    where
        F: FnMut(ThreadId, u64, &[u64]),
    {
        let nstripes = self.shards.len();
        let mut total = 0u64;
        let mut overwritten = 0u64;
        let mut deltas = [0u64; tls::MAX_COUNTERS];
        for state in &mut self.rings {
            let h = state.handle;
            let mem = &mut machine.mem;
            let head = mem.read_u64(h.tls_base + tls::RING_HEAD as u64)?;
            state.dropped = mem.read_u64(h.tls_base + tls::DROPPED as u64)?;
            state.head_seen = head;
            let mut tail = state.tail;
            if h.overwrite && head - tail > h.capacity {
                // The producer lapped us: the oldest head - tail - capacity
                // records are gone. Account them and start at the oldest
                // surviving record.
                let over = head - tail - h.capacity;
                overwritten += over;
                tail += over;
            }
            let slot_size = tls::ring_slot_size(h.counters);
            let shard = &mut self.shards[h.tid.index() % nstripes];
            while tail < head {
                let addr = h.ring_base + (tail & (h.capacity - 1)) * slot_size;
                let region = mem.read_u64(addr)?;
                for (i, d) in deltas.iter_mut().enumerate().take(h.counters) {
                    *d = mem.read_u64(addr + 8 * (1 + i as u64))?;
                }
                // Kernel-emitted I/O records are tagged in the region word;
                // delta 0 carries the wait cycles. They fold into the
                // region's per-device I/O stats, not its exit stats.
                match decode_io_region(region) {
                    Some((rid, device)) => shard.fold_io(rid, device, deltas[0]),
                    None => shard.fold(region, &deltas[..h.counters]),
                }
                visit(h.tid, region, &deltas[..h.counters]);
                tail += 1;
                total += 1;
            }
            state.tail = tail;
            // Publish the consumer index back to the producer's TLS.
            mem.write_u64(h.tls_base + tls::RING_TAIL as u64, tail)?;
        }
        self.drained += total;
        self.overwritten += overwritten;
        Ok(total)
    }

    /// Merges all shards into one view (allocates; not the hot path).
    pub fn merged(&self) -> AggShard {
        let mut out = AggShard::new(self.counters);
        for s in &self.shards {
            out.merge(s);
        }
        out
    }

    /// The per-stripe shards.
    pub fn shards(&self) -> &[AggShard] {
        &self.shards
    }

    /// Records consumed across all drains.
    pub fn drained(&self) -> u64 {
        self.drained
    }

    /// Records appended by producers, as of the last drain (sum of ring
    /// heads).
    pub fn appended(&self) -> u64 {
        self.rings.iter().map(|r| r.head_seen).sum()
    }

    /// Records producers dropped to full rings, as of the last drain.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped).sum()
    }

    /// Records lost to producer overwrites (overwrite-policy rings only).
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// A point-in-time view: merged shards plus transport accounting,
    /// region ids resolved against `regions`.
    pub fn snapshot(&self, seq: u64, cycle: u64, regions: &Regions) -> Snapshot {
        let merged = self.merged();
        let mut rows: Vec<RegionSnapshot> = merged
            .iter()
            .map(|(id, stats)| RegionSnapshot {
                id,
                name: {
                    let n = regions.name(id);
                    if n == "?" {
                        format!("#{id}")
                    } else {
                        n.to_string()
                    }
                },
                count: stats.count,
                events: stats.events.clone(),
                io: stats.io.clone(),
            })
            .collect();
        rows.sort_by(|a, b| b.event_sum(0).cmp(&a.event_sum(0)).then(a.id.cmp(&b.id)));
        Snapshot {
            seq,
            cycle,
            appended: self.appended(),
            drained: self.drained,
            dropped: self.dropped(),
            overwritten: self.overwritten,
            regions: rows,
        }
    }
}
