//! Property tests for [`Snapshot::merge`] — the fleet roll-up operation.
//!
//! The fleet layer merges per-instance snapshots hierarchically (instance
//! shards → node aggregates → fleet aggregate), with node boundaries and
//! merge order chosen by the host worker pool. For the fleet aggregate to
//! be byte-identical across `--jobs` values, merge must be associative and
//! commutative, and must preserve the transport-conservation invariant
//! `appended == drained + overwritten + in_flight`. These properties are
//! checked against a flat single-aggregate reference model: every record
//! of every instance folded into one snapshot directly.

use proptest::collection::vec;
use proptest::prelude::*;
use telemetry::{RegionSnapshot, Snapshot};

/// Builds one instance's snapshot from its record stream
/// `(region_id, delta0, delta1)` plus transport loss knobs, mirroring what
/// the collector serves after a final drain (`in_flight == 0`) — except
/// `pending` records are left in flight to exercise the mid-run case too.
fn instance_snapshot(
    seq: u64,
    cycle: u64,
    records: &[(u64, u64, u64)],
    dropped: u64,
    pending: u64,
) -> Snapshot {
    let mut regions: Vec<RegionSnapshot> = Vec::new();
    for &(id, a, b) in records {
        let row = match regions.iter_mut().find(|r| r.id == id) {
            Some(r) => r,
            None => {
                regions.push(RegionSnapshot {
                    id,
                    name: format!("region.{id}"),
                    count: 0,
                    events: vec![sim_core::Histogram::new(); 2],
                    io: Vec::new(),
                });
                regions.last_mut().unwrap()
            }
        };
        row.count += 1;
        row.events[0].record(a);
        row.events[1].record(b);
    }
    regions.sort_by(|a, b| b.event_sum(0).cmp(&a.event_sum(0)).then(a.id.cmp(&b.id)));
    let drained = records.len() as u64;
    Snapshot {
        seq,
        cycle,
        appended: drained + pending,
        drained,
        dropped,
        overwritten: 0,
        regions,
    }
}

/// Merges a list of snapshots left-to-right.
fn merge_all(snaps: &[Snapshot]) -> Snapshot {
    let mut out = Snapshot::empty();
    for s in snaps {
        out.merge(s);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hierarchical_merge_equals_flat_reference(
        instances in vec(
            (vec((0u64..5, 0u64..100_000, 0u64..1_000), 0..40), 0u64..3, 0u64..3),
            1..10,
        ),
        node_size in 1usize..4,
        rot in 0usize..8,
    ) {
        let snaps: Vec<Snapshot> = instances
            .iter()
            .enumerate()
            .map(|(i, (recs, dropped, pending))| {
                instance_snapshot(i as u64 + 1, (i as u64 + 1) * 1000, recs, *dropped, *pending)
            })
            .collect();

        // Flat reference: every instance's records folded into one snapshot
        // (single-aggregate model — no hierarchy at all).
        let mut flat_records: Vec<(u64, u64, u64)> = Vec::new();
        let (mut appended, mut drained, mut dropped) = (0u64, 0u64, 0u64);
        for (recs, d, pending) in &instances {
            flat_records.extend_from_slice(recs);
            drained += recs.len() as u64;
            appended += recs.len() as u64 + pending;
            dropped += d;
        }
        let mut reference =
            instance_snapshot(0, 0, &flat_records, dropped, appended - drained);
        reference.seq = snaps.iter().map(|s| s.seq).max().unwrap_or(0);
        reference.cycle = snaps.iter().map(|s| s.cycle).max().unwrap_or(0);

        // Hierarchy: chunk instances into nodes, merge each node, then merge
        // the node aggregates in a rotated (arbitrary) order.
        let nodes: Vec<Snapshot> = snaps.chunks(node_size).map(merge_all).collect();
        let mut fleet = Snapshot::empty();
        for i in 0..nodes.len() {
            fleet.merge(&nodes[(i + rot) % nodes.len()]);
        }
        prop_assert_eq!(&fleet, &reference);

        // Invariant preservation: the merged in-flight count is the sum of
        // the per-instance in-flight counts.
        let in_flight_sum: u64 = snaps.iter().map(Snapshot::in_flight).sum();
        prop_assert_eq!(fleet.in_flight(), in_flight_sum);
        prop_assert_eq!(fleet.appended, fleet.drained + fleet.overwritten + fleet.in_flight());

        // Commutativity at the pair level.
        if snaps.len() >= 2 {
            let mut ab = snaps[0].clone();
            ab.merge(&snaps[1]);
            let mut ba = snaps[1].clone();
            ba.merge(&snaps[0]);
            prop_assert_eq!(ab, ba);
        }

        // Associativity at the triple level: (a∪b)∪c == a∪(b∪c).
        if snaps.len() >= 3 {
            let mut left = snaps[0].clone();
            left.merge(&snaps[1]);
            left.merge(&snaps[2]);
            let mut bc = snaps[1].clone();
            bc.merge(&snaps[2]);
            let mut right = snaps[0].clone();
            right.merge(&bc);
            prop_assert_eq!(left, right);
        }

        // Identity element.
        let mut with_empty = fleet.clone();
        with_empty.merge(&Snapshot::empty());
        prop_assert_eq!(with_empty, fleet);
    }
}
