//! Property tests for the ring transport: wraparound, drop accounting,
//! and order preservation under randomized drain cadence.
//!
//! Every appended record carries a unique, per-thread-increasing region id
//! (`thread * 100_000 + sequence`), so the drained stream itself encodes
//! the append order and any loss.

use limit::harness::SessionBuilder;
use limit::reader::{CounterReader, LimitReader};
use limit::{Instrumenter, StreamConfig};
use proptest::prelude::*;
use sim_core::ThreadId;
use sim_cpu::EventKind;
use std::collections::HashMap;

/// Runs `threads` producers, each attempting `appends` ring appends, with
/// the collector draining every `every` cycles. Returns
/// `(per-thread drained region sequences, drained, dropped, overwritten)`.
fn run_case(
    threads: usize,
    appends: u64,
    capacity: u64,
    every: u64,
    overwrite: bool,
    stripes: usize,
) -> (HashMap<ThreadId, Vec<u64>>, u64, u64, u64) {
    let cfg = StreamConfig {
        capacity,
        overwrite,
    };
    let reader = LimitReader::with_events(vec![EventKind::Cycles]);
    let ins = Instrumenter::new(&reader);
    let mut b = SessionBuilder::new(2)
        .events(&[EventKind::Cycles])
        .stream(cfg);
    let mut asm = b.asm();
    for t in 0..threads {
        asm.export(&format!("t{t}"));
        reader.emit_thread_setup(&mut asm);
        for i in 0..appends {
            ins.emit_enter(&mut asm);
            asm.burst(20);
            ins.emit_exit_stream(&mut asm, t as u64 * 100_000 + i, cfg);
        }
        asm.halt();
    }
    let mut s = b.build(asm).unwrap();
    for t in 0..threads {
        s.spawn_instrumented(&format!("t{t}"), &[]).unwrap();
    }
    let mut c = telemetry::Collector::new(stripes, 1);
    c.attach(&s);
    let mut seen: HashMap<ThreadId, Vec<u64>> = HashMap::new();
    {
        let mut record = |tid: ThreadId, region: u64, _deltas: &[u64]| {
            seen.entry(tid).or_default().push(region);
        };
        s.kernel
            .run_with_hook(every, |m, _| c.drain_with(m, &mut record).map(|_| ()))
            .unwrap();
        c.drain_with(&mut s.kernel.machine, &mut record).unwrap();
    }
    (seen, c.drained(), c.dropped(), c.overwritten())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Drop policy: the drained stream is a prefix-preserving permutation
    /// of the per-thread append order (per-thread subsequences stay
    /// strictly increasing) and every attempted append is accounted:
    /// `attempts == drained + dropped`.
    #[test]
    fn drop_policy_accounts_every_append(
        threads in 1usize..4,
        appends in 10u64..60,
        cap_pow in 2u32..7,
        every in 400u64..20_000,
        stripes in 1usize..4,
    ) {
        let capacity = 1u64 << cap_pow;
        let (seen, drained, dropped, overwritten) =
            run_case(threads, appends, capacity, every, false, stripes);
        prop_assert_eq!(overwritten, 0);
        prop_assert_eq!(threads as u64 * appends, drained + dropped);
        let mut total_seen = 0u64;
        for (tid, regions) in &seen {
            total_seen += regions.len() as u64;
            for w in regions.windows(2) {
                prop_assert!(
                    w[0] < w[1],
                    "thread {} drained out of order: {} then {}", tid, w[0], w[1]
                );
            }
            // Per-thread ids all belong to that thread's id space.
            let t = regions[0] / 100_000;
            prop_assert!(regions.iter().all(|r| r / 100_000 == t));
        }
        prop_assert_eq!(total_seen, drained);
    }

    /// Overwrite policy: nothing is dropped at append time; laps are
    /// reconciled on drain and `attempts == drained + overwritten`. Order
    /// is still preserved per thread (a lap skips the oldest records but
    /// never reorders).
    #[test]
    fn overwrite_policy_reconciles_laps(
        threads in 1usize..3,
        appends in 10u64..60,
        cap_pow in 2u32..6,
        every in 400u64..20_000,
    ) {
        let capacity = 1u64 << cap_pow;
        let (seen, drained, dropped, overwritten) =
            run_case(threads, appends, capacity, every, true, 2);
        prop_assert_eq!(dropped, 0);
        prop_assert_eq!(threads as u64 * appends, drained + overwritten);
        for regions in seen.values() {
            for w in regions.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }
}
