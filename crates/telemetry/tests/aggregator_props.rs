//! Property tests for the sharded aggregator: merging shard snapshots in
//! any order over any partition of the record stream equals single-shard
//! aggregation (associativity + commutativity).

use proptest::collection::vec;
use proptest::prelude::*;
use telemetry::AggShard;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_merge_equals_single_shard(
        records in vec((0u64..6, 0u64..10_000, 0u64..10_000), 0..200),
        nshards in 1usize..5,
        rot in 0usize..4,
    ) {
        // Reference: everything folded into one shard, in stream order.
        let mut reference = AggShard::new(2);
        for &(region, a, b) in &records {
            reference.fold(region, &[a, b]);
        }
        // Partition round-robin across shards (stream order within each).
        let mut shards: Vec<AggShard> = (0..nshards).map(|_| AggShard::new(2)).collect();
        for (i, &(region, a, b)) in records.iter().enumerate() {
            shards[i % nshards].fold(region, &[a, b]);
        }
        // Merge in a rotated (arbitrary) order.
        let mut merged = AggShard::new(2);
        for i in 0..nshards {
            merged.merge(&shards[(i + rot) % nshards]);
        }
        prop_assert_eq!(&merged, &reference);
        // Commutativity at the pair level: b∪a == a∪b.
        if nshards >= 2 {
            let mut ab = shards[0].clone();
            ab.merge(&shards[1]);
            let mut ba = shards[1].clone();
            ba.merge(&shards[0]);
            prop_assert_eq!(ab, ba);
        }
        // Totals survive partitioning exactly.
        prop_assert_eq!(merged.total_count(), records.len() as u64);
    }
}
