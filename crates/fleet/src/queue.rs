//! Deterministic admission queue: `c` service slots, FIFO order.
//!
//! The node is modeled as `slots` concurrent service slots (sessions the
//! node runs at once). Sessions are admitted in arrival order; a session
//! whose arrival finds every slot busy waits in a FIFO queue. Because the
//! service time of instance *i* is its simulated run length — a function
//! of the instance seed alone — the whole queue is a cheap post-pass over
//! two arrays, decoupled from host parallelism: `--jobs` can never change
//! a start time, a sojourn, or the measured saturation point.

use analysis::QueueStats;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-session queueing outcome plus node-level statistics.
#[derive(Debug, Clone, Default)]
pub struct QueueOutcome {
    /// Cycle each session started service (>= its arrival).
    pub start: Vec<u64>,
    /// Cycle each session completed (start + service).
    pub completion: Vec<u64>,
    /// Admission wait per session (start − arrival).
    pub wait: Vec<u64>,
    /// Sojourn per session (completion − arrival = wait + service).
    pub sojourn: Vec<u64>,
    /// Node-level facts for the fleet classifier.
    pub stats: QueueStats,
}

/// Runs the c-slot FIFO recurrence over `arrivals` (nondecreasing cycles)
/// and `service` (cycles per session, same length).
///
/// # Panics
///
/// Panics when the input lengths differ or `slots` is zero.
pub fn simulate(arrivals: &[u64], service: &[u64], slots: usize) -> QueueOutcome {
    assert_eq!(
        arrivals.len(),
        service.len(),
        "one service time per arrival"
    );
    assert!(slots > 0, "a node needs at least one service slot");
    let n = arrivals.len();
    let mut out = QueueOutcome {
        start: Vec::with_capacity(n),
        completion: Vec::with_capacity(n),
        wait: Vec::with_capacity(n),
        sojourn: Vec::with_capacity(n),
        stats: QueueStats::default(),
    };
    if n == 0 {
        return out;
    }

    // Min-heap of slot free times. Popping the earliest-free slot for each
    // session in arrival order is exactly FIFO admission.
    let mut free: BinaryHeap<Reverse<u64>> = (0..slots).map(|_| Reverse(0)).collect();
    for i in 0..n {
        let Reverse(slot_free) = free.pop().expect("slots is non-zero");
        let start = arrivals[i].max(slot_free);
        let completion = start + service[i];
        free.push(Reverse(completion));
        out.start.push(start);
        out.completion.push(completion);
        out.wait.push(start - arrivals[i]);
        out.sojourn.push(completion - arrivals[i]);
    }

    // Max queue depth: sessions arrived but not yet started. Sweep the
    // merged event list; at equal times starts drain before arrivals count.
    let mut events: Vec<(u64, i8)> = Vec::with_capacity(2 * n);
    for &a in arrivals {
        events.push((a, 1));
    }
    for &s in &out.start {
        events.push((s, -1));
    }
    events.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let (mut depth, mut max_depth) = (0i64, 0i64);
    for (_, delta) in events {
        depth += delta as i64;
        max_depth = max_depth.max(depth);
    }
    out.stats.max_queue_depth = max_depth as u64;

    out.stats.mean_wait = out.wait.iter().sum::<u64>() as f64 / n as f64;
    // Offered load ρ = λ · E[S] / c, with λ measured over the arrival span.
    let span = arrivals[n - 1] - arrivals[0];
    if span > 0 {
        let lambda = (n - 1) as f64 / span as f64;
        let mean_service = service.iter().sum::<u64>() as f64 / n as f64;
        out.stats.utilization = lambda * mean_service / slots as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_slot_serializes_back_to_back_arrivals() {
        // Three sessions arrive together; one slot services them in order.
        let out = simulate(&[0, 0, 0], &[10, 20, 30], 1);
        assert_eq!(out.start, vec![0, 10, 30]);
        assert_eq!(out.completion, vec![10, 30, 60]);
        assert_eq!(out.wait, vec![0, 10, 30]);
        assert_eq!(out.sojourn, vec![10, 30, 60]);
        assert_eq!(out.stats.max_queue_depth, 2);
    }

    #[test]
    fn wide_spacing_never_waits() {
        let out = simulate(&[0, 1_000, 2_000], &[100, 100, 100], 2);
        assert_eq!(out.wait, vec![0, 0, 0]);
        assert_eq!(out.stats.max_queue_depth, 0);
        assert!(out.stats.utilization < 0.2);
    }

    #[test]
    fn two_slots_absorb_a_pair() {
        // Pairs arrive together: with 2 slots the pair runs concurrently,
        // the third session waits for the earlier completion.
        let out = simulate(&[0, 0, 0], &[50, 80, 10], 2);
        assert_eq!(out.start, vec![0, 0, 50]);
        assert_eq!(out.completion, vec![50, 80, 60]);
        assert_eq!(out.stats.max_queue_depth, 1);
    }

    #[test]
    fn sojourn_is_wait_plus_service_and_starts_are_monotone() {
        let arrivals = [0, 5, 7, 7, 30, 31];
        let service = [20, 3, 40, 2, 9, 9];
        let out = simulate(&arrivals, &service, 2);
        for i in 0..arrivals.len() {
            assert_eq!(out.sojourn[i], out.wait[i] + service[i]);
            assert!(out.start[i] >= arrivals[i]);
        }
        assert!(out.start.windows(2).all(|w| w[0] <= w[1]), "FIFO starts");
    }

    #[test]
    fn overload_shows_unbounded_queue_growth() {
        // Offered load 2× capacity: waits grow linearly with index.
        let arrivals: Vec<u64> = (0..100).map(|i| i * 50).collect();
        let service = vec![100u64; 100];
        let out = simulate(&arrivals, &service, 1);
        assert!(out.stats.utilization > 1.9);
        assert!(out.wait[99] > out.wait[50]);
        assert!(out.stats.max_queue_depth > 40);
    }

    #[test]
    fn empty_fleet_is_a_clean_zero() {
        let out = simulate(&[], &[], 4);
        assert!(out.sojourn.is_empty());
        assert_eq!(out.stats.utilization, 0.0);
    }
}
