//! Open-loop arrival processes on the virtual-cycle timeline.
//!
//! The load generator decides *when sessions arrive*, in guest cycles,
//! independent of how fast the node services them — that is what makes
//! the loop open. Two arms:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless interarrivals at the target
//!   rate; the classic open-loop baseline.
//! * [`ArrivalProcess::Bursty`] — a two-state Markov-modulated process
//!   (MMPP): a *calm* state with long gaps and a *burst* state with gaps
//!   compressed by `factor`, switching states with probability `switch_p`
//!   at each arrival. The long-run rate still meets the target; the
//!   clumping is what stresses the admission queue.
//!
//! All draws come from one caller-supplied [`DetRng`] consumed in
//! arrival-index order, so a fleet seed fully determines the timeline.

use sim_core::DetRng;

/// The shape of the arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Exponential interarrivals at the target rate.
    Poisson,
    /// Two-state MMPP: burst-state gaps are `factor`× shorter than the
    /// mean, calm-state gaps stretched to compensate, switching with
    /// probability `switch_p` per arrival.
    Bursty {
        /// Gap compression inside a burst (>= 1.0; 1.0 degenerates to
        /// Poisson).
        factor: f64,
        /// Per-arrival state-switch probability (0..=1).
        switch_p: f64,
    },
}

/// Target load: process shape plus rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalConfig {
    /// Process shape.
    pub process: ArrivalProcess,
    /// Target arrival rate in sessions per million cycles.
    pub rate_per_mcycle: f64,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            process: ArrivalProcess::Poisson,
            rate_per_mcycle: 2.0,
        }
    }
}

impl ArrivalConfig {
    /// Mean interarrival gap in cycles implied by the target rate.
    pub fn mean_gap(&self) -> f64 {
        1_000_000.0 / self.rate_per_mcycle.max(1e-12)
    }
}

/// Draws `n` arrival times (cycles, nondecreasing) from `rng`.
pub fn arrival_times(cfg: &ArrivalConfig, n: usize, rng: &mut DetRng) -> Vec<u64> {
    let base = cfg.mean_gap();
    let mut times = Vec::with_capacity(n);
    let mut now = 0u64;
    match cfg.process {
        ArrivalProcess::Poisson => {
            for _ in 0..n {
                now = now.saturating_add(rng.exp_u64(base));
                times.push(now);
            }
        }
        ArrivalProcess::Bursty { factor, switch_p } => {
            let factor = factor.max(1.0);
            let switch_p = switch_p.clamp(0.0, 1.0);
            // Equal expected time in each state (symmetric switching), so
            // the two state means must average to the target gap:
            //   burst = base / factor,  calm = 2·base − base/factor.
            let burst_gap = base / factor;
            let calm_gap = 2.0 * base - burst_gap;
            let mut bursting = false;
            for _ in 0..n {
                if rng.chance(switch_p) {
                    bursting = !bursting;
                }
                let mean = if bursting { burst_gap } else { calm_gap };
                now = now.saturating_add(rng.exp_u64(mean));
                times.push(now);
            }
        }
    }
    times
}

/// Measured long-run rate (arrivals per Mcycle) of a drawn timeline.
pub fn offered_rate(times: &[u64]) -> f64 {
    match (times.first(), times.last()) {
        (Some(&a), Some(&b)) if b > a => (times.len() - 1) as f64 * 1_000_000.0 / (b - a) as f64,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(process: ArrivalProcess, rate: f64) -> ArrivalConfig {
        ArrivalConfig {
            process,
            rate_per_mcycle: rate,
        }
    }

    #[test]
    fn poisson_is_deterministic_and_monotone() {
        let c = cfg(ArrivalProcess::Poisson, 4.0);
        let a = arrival_times(&c, 500, &mut DetRng::new(7));
        let b = arrival_times(&c, 500, &mut DetRng::new(7));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn poisson_hits_target_rate() {
        let c = cfg(ArrivalProcess::Poisson, 4.0);
        let times = arrival_times(&c, 4_000, &mut DetRng::new(42));
        let rate = offered_rate(&times);
        assert!(
            (rate - 4.0).abs() < 0.4,
            "measured {rate} arrivals/Mcycle, wanted ~4"
        );
    }

    #[test]
    fn bursty_hits_target_rate_but_clumps() {
        let target = 4.0;
        let burst = cfg(
            ArrivalProcess::Bursty {
                factor: 8.0,
                switch_p: 0.05,
            },
            target,
        );
        let times = arrival_times(&burst, 4_000, &mut DetRng::new(42));
        let rate = offered_rate(&times);
        assert!(
            (rate - target).abs() < 0.8,
            "measured {rate} arrivals/Mcycle, wanted ~{target}"
        );
        // Clumping: the gap distribution has higher dispersion than the
        // Poisson draw at the same rate and seed.
        let poisson = arrival_times(
            &cfg(ArrivalProcess::Poisson, target),
            4_000,
            &mut DetRng::new(42),
        );
        let cv2 = |ts: &[u64]| {
            let gaps: Vec<f64> = ts.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        assert!(
            cv2(&times) > cv2(&poisson) * 1.5,
            "bursty CV² {} not above poisson CV² {}",
            cv2(&times),
            cv2(&poisson)
        );
    }

    #[test]
    fn bursty_with_unit_factor_degenerates_to_target_gap() {
        let c = cfg(
            ArrivalProcess::Bursty {
                factor: 1.0,
                switch_p: 0.5,
            },
            2.0,
        );
        let times = arrival_times(&c, 2_000, &mut DetRng::new(9));
        let rate = offered_rate(&times);
        assert!((rate - 2.0).abs() < 0.3, "measured {rate}");
    }
}
