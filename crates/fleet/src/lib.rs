//! Fleet-scale simulation: open-loop load over thousands of guest
//! instances with hierarchical telemetry roll-up.
//!
//! One *instance* is a complete LiMiT session — its own [`sim_cpu`]
//! machine, kernel, and instrumented workload, streaming telemetry into
//! per-thread rings. A *fleet* is N such instances admitted by an
//! **open-loop** load generator: arrivals land on a virtual-cycle
//! timeline at a target rate regardless of whether the node keeps up, so
//! overload is representable (a closed-loop generator would throttle
//! itself and hide the knee).
//!
//! Determinism is the design constraint everything here bends around:
//!
//! * every instance derives its seed from the fleet seed **by index**
//!   (splitmix-style, [`instance_seed`]) — never by drawing from a shared
//!   RNG in worker order, which would tie results to host scheduling;
//! * the arrival process is drawn as a pre-pass on the host, before any
//!   worker runs ([`arrival`]);
//! * queueing (admission waits, sojourn latency, saturation) is a cheap
//!   deterministic post-pass over the arrival times and the instances'
//!   simulated run lengths ([`queue`]) — service time is a function of
//!   the instance seed alone, so the queue model never observes host
//!   parallelism;
//! * telemetry rolls up hierarchically — instance shards → node
//!   aggregates → fleet aggregate — through `Snapshot::merge`, which is
//!   associative and commutative, and node boundaries are deterministic
//!   instance-index chunks ([`driver`]).
//!
//! The result: `--jobs` changes wall-clock time only. The fleet
//! aggregate, the queue statistics, and the population findings are
//! byte-identical across any worker count.

pub mod arrival;
pub mod driver;
pub mod queue;

pub use arrival::{arrival_times, ArrivalConfig, ArrivalProcess};
pub use driver::{
    draw_arrivals, instance_seed, run_fleet, FleetConfig, FleetReport, InstanceResult,
    NodeAggregate, Workload, EVENTS, EVENT_NAMES,
};
pub use queue::{simulate as simulate_queue, QueueOutcome};
