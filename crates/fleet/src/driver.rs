//! The fleet driver: spawn N instances, shard them across the host
//! worker pool, roll telemetry up hierarchically, classify the
//! population.
//!
//! Execution is three deterministic phases:
//!
//! 1. **Arrival pre-pass** — the open-loop generator draws the arrival
//!    timeline from the fleet seed ([`crate::arrival`]).
//! 2. **Simulation fan-out** — every instance runs its own session
//!    (machine + kernel + workload, seeded by [`instance_seed`]) on the
//!    bounded host pool (`sim_core::parallel::parmap_with`, the same pool
//!    the experiment driver uses as `bench::parmap_with`). Workers only
//!    decide *when* an instance runs, never *what it computes*.
//! 3. **Roll-up post-pass** — per-instance final snapshots merge into
//!    node aggregates (deterministic instance-index chunks of size
//!    ⌈N/jobs⌉ — *not* host-thread assignment, which is
//!    scheduling-dependent) and then into the fleet aggregate; the
//!    admission queue replays over arrivals × service times
//!    ([`crate::queue`]); the population classifier names fleet-wide
//!    bottlenecks (`analysis::classify_fleet`).
//!
//! Teardown warnings from concurrent instances are serialized through a
//! per-instance host-side [`WarnSink`] instead of interleaving on stderr;
//! the report keeps them per instance and [`FleetReport::worst_offender`]
//! names the noisiest one.

use crate::arrival::{arrival_times, ArrivalConfig};
use crate::queue::{simulate, QueueOutcome};
use analysis::online::{classify, DetectorConfig, Finding};
use analysis::{classify_fleet, FleetFinding};
use limit::{LimitReader, LogMode, StreamConfig, WarnSink};
use sim_core::parallel::parmap_with;
use sim_core::DetRng;
use sim_cpu::EventKind;
use sim_os::KernelConfig;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use telemetry::{run_streaming, Collector, Snapshot};
use workloads::{memcached, mysqld, proxy};

/// Counters every fleet instance attaches (same trio as the single-
/// instance monitor: cycles rank regions, instructions + LLC misses feed
/// the memory-bound detector).
pub const EVENTS: [EventKind; 3] = [
    EventKind::Cycles,
    EventKind::Instructions,
    EventKind::LlcMisses,
];

/// Column names matching [`EVENTS`].
pub const EVENT_NAMES: [&str; 3] = ["cycles", "instrs", "llc"];

/// Workloads the fleet can run per instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// The MySQL-like storage-engine skeleton (lock-heavy).
    Mysqld,
    /// The memcached-like striped hash cache (memory-heavy).
    Memcached,
    /// The scatter-gather fan-out proxy (network-I/O-heavy; its final
    /// snapshots carry per-device wait stats, so a proxy fleet exercises
    /// the io path of the hierarchical roll-up).
    Proxy,
}

impl std::str::FromStr for Workload {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mysqld" => Ok(Workload::Mysqld),
            "memcached" => Ok(Workload::Memcached),
            "proxy" => Ok(Workload::Proxy),
            other => Err(format!(
                "unknown workload {other:?} (mysqld|memcached|proxy)"
            )),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Workload::Mysqld => "mysqld",
            Workload::Memcached => "memcached",
            Workload::Proxy => "proxy",
        })
    }
}

/// Fleet parameters (all have CLI flags on `limit-repro fleet`).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-instance workload.
    pub workload: Workload,
    /// Number of independent instances.
    pub instances: usize,
    /// Guest worker threads per instance.
    pub threads: usize,
    /// Queries (mysqld) / operations (memcached) / requests (proxy) per
    /// guest worker.
    pub queries: u64,
    /// Open-loop load: arrival process and target rate.
    pub arrival: ArrivalConfig,
    /// Concurrent service slots on the node (the admission-queue `c`).
    pub slots: usize,
    /// Fleet seed; every instance seed derives from it by index.
    pub seed: u64,
    /// Host worker threads (wall-clock only — never affects results).
    pub jobs: usize,
    /// Telemetry drain cadence in guest cycles.
    pub interval: u64,
    /// Per-thread ring capacity in records (power of two).
    pub capacity: u64,
    /// Minimum share of instances for a population finding.
    pub min_share: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workload: Workload::Mysqld,
            instances: 32,
            threads: 4,
            queries: 25,
            arrival: ArrivalConfig::default(),
            slots: 4,
            seed: 0xF1EE7,
            jobs: sim_core::parallel::default_jobs(),
            interval: 20_000,
            capacity: 256,
            min_share: 0.25,
        }
    }
}

impl FleetConfig {
    fn validate(&self) -> Result<(), String> {
        if self.instances == 0 {
            return Err("--instances must be non-zero".into());
        }
        if !self.capacity.is_power_of_two() {
            return Err(format!(
                "--capacity must be a power of two, got {}",
                self.capacity
            ));
        }
        if self.interval == 0 {
            return Err("--interval must be non-zero".into());
        }
        if self.slots == 0 {
            return Err("--slots must be non-zero".into());
        }
        if self.arrival.rate_per_mcycle <= 0.0 {
            return Err("--arrival-rate must be positive".into());
        }
        Ok(())
    }

    /// Node chunk width: instances `[k·w, (k+1)·w)` form node aggregate
    /// `k`. Defined by index, so the hierarchy is scheduling-independent.
    pub fn node_width(&self) -> usize {
        self.instances.div_ceil(self.jobs.max(1))
    }
}

/// Splitmix64-style per-instance seed derivation: a pure function of
/// `(fleet_seed, index)`, so instance i's entire simulation is fixed no
/// matter which host worker runs it or when.
pub fn instance_seed(fleet_seed: u64, index: u64) -> u64 {
    let mut z = fleet_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tag mixed into the fleet seed for the arrival-stream RNG, so arrival
/// draws never collide with any instance's seed.
const ARRIVAL_STREAM: u64 = 0xA221_11A1;

/// One instance's complete outcome.
#[derive(Debug, Clone)]
pub struct InstanceResult {
    /// Instance index (also its position in the arrival order).
    pub index: usize,
    /// The derived seed the instance ran under.
    pub seed: u64,
    /// Final telemetry snapshot (post final drain: nothing in flight).
    pub snapshot: Snapshot,
    /// Single-instance bottleneck findings on the final snapshot.
    pub findings: Vec<Finding>,
    /// Simulated run length in cycles — the session's service time.
    pub service_cycles: u64,
    /// Guest instructions retired (for aggregate throughput).
    pub instructions: u64,
    /// Teardown warnings captured by the instance's [`WarnSink`].
    pub warnings: Vec<String>,
}

/// One node's merged telemetry.
#[derive(Debug, Clone)]
pub struct NodeAggregate {
    /// Node index.
    pub node: usize,
    /// The instance-index range this node aggregates.
    pub first: usize,
    /// One past the last instance index.
    pub last: usize,
    /// Merged snapshot of the node's instances.
    pub snapshot: Snapshot,
}

/// Everything a fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The configuration the fleet ran under.
    pub cfg: FleetConfig,
    /// Per-instance outcomes, in instance order.
    pub instances: Vec<InstanceResult>,
    /// Node aggregates (deterministic index chunks).
    pub nodes: Vec<NodeAggregate>,
    /// The fleet aggregate: all instances merged.
    pub fleet: Snapshot,
    /// Arrival timeline (cycles), one entry per instance.
    pub arrivals: Vec<u64>,
    /// Admission-queue replay over arrivals × service times.
    pub queue: QueueOutcome,
    /// Fleet-wide findings: population bottlenecks, latency percentiles,
    /// overload.
    pub findings: Vec<FleetFinding>,
}

impl FleetReport {
    /// The instance with the most teardown warnings (ties → lowest
    /// index); `None` when the whole fleet tore down clean.
    pub fn worst_offender(&self) -> Option<&InstanceResult> {
        self.instances
            .iter()
            .filter(|i| !i.warnings.is_empty())
            .max_by(|a, b| {
                a.warnings
                    .len()
                    .cmp(&b.warnings.len())
                    .then(b.index.cmp(&a.index))
            })
    }

    /// Total teardown warnings across the fleet.
    pub fn total_warnings(&self) -> usize {
        self.instances.iter().map(|i| i.warnings.len()).sum()
    }

    /// Total guest instructions retired across the fleet.
    pub fn total_instructions(&self) -> u64 {
        self.instances.iter().map(|i| i.instructions).sum()
    }
}

/// The arrival timeline [`run_fleet`] will use for `cfg` — exposed so
/// sweeps (E15) can replay the admission queue at many rates over one
/// simulated fleet, since service times do not depend on arrivals.
pub fn draw_arrivals(cfg: &FleetConfig) -> Vec<u64> {
    let mut rng = DetRng::new(instance_seed(cfg.seed, ARRIVAL_STREAM));
    arrival_times(&cfg.arrival, cfg.instances, &mut rng)
}

/// Runs one instance end to end on the calling worker thread.
fn run_instance(cfg: &FleetConfig, index: usize) -> Result<InstanceResult, String> {
    let seed = instance_seed(cfg.seed, index as u64);
    let fail = |e: sim_core::SimError| format!("instance {index}: {e}");
    let mode = LogMode::Stream(StreamConfig::dropping(cfg.capacity));
    let reader = LimitReader::with_events(EVENTS.to_vec());
    let cores = cfg.threads.clamp(1, 8);
    let mut session = match cfg.workload {
        Workload::Mysqld => {
            // Fleet instances keep a small guest-memory footprint: the
            // single-instance defaults (4 MiB buffer pool, 4 MiB of
            // tables) make *allocation* dominate a short session's wall
            // time, and thousands of those zeroing passes are pure
            // memory-bandwidth — the one resource host workers cannot
            // scale. The lock topology (the thing the fleet classifier
            // measures) is unchanged.
            let wcfg = mysqld::MysqlConfig {
                threads: cfg.threads,
                queries_per_thread: cfg.queries,
                tables: 4,
                table_bytes: 16 * 1024,
                bufpool_bytes: 256 * 1024,
                seed,
                mode,
                ..Default::default()
            };
            mysqld::build(&wcfg, &reader, cores, &EVENTS, KernelConfig::default())
                .map_err(fail)?
                .0
        }
        Workload::Memcached => {
            let wcfg = memcached::MemcachedConfig {
                workers: cfg.threads,
                ops_per_worker: cfg.queries,
                seed,
                mode,
                ..Default::default()
            };
            memcached::build(&wcfg, &reader, cores, &EVENTS, KernelConfig::default())
                .map_err(fail)?
                .0
        }
        Workload::Proxy => {
            let wcfg = proxy::ProxyConfig {
                threads: cfg.threads,
                requests_per_thread: cfg.queries,
                seed,
                mode,
                ..Default::default()
            };
            proxy::build(&wcfg, &reader, cores, &EVENTS, KernelConfig::default())
                .map_err(fail)?
                .0
        }
    };

    // Serialize teardown warnings: N instances sharing stderr would
    // interleave lines; the sink keeps them per instance instead.
    let warnings = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&warnings);
    session.set_warn_sink(WarnSink::new(move |line: &str| {
        sink.lock().unwrap().push(line.to_string());
    }));

    let mut collector = Collector::new(cfg.threads.max(1), EVENTS.len());
    collector.attach(&session);
    let mut last: Option<Snapshot> = None;
    let report = run_streaming(&mut session, &mut collector, cfg.interval, |snap| {
        last = Some(snap.clone());
    })
    .map_err(|e| format!("instance {index}: {e}"))?;

    let snapshot = last.expect("run_streaming always publishes a final snapshot");
    let findings = classify(&snapshot, &EVENTS, &DetectorConfig::default());
    let instructions = session.kernel.machine.total_retired();
    let warnings = std::mem::take(&mut *warnings.lock().unwrap());
    Ok(InstanceResult {
        index,
        seed,
        snapshot,
        findings,
        service_cycles: report.total_cycles,
        instructions,
        warnings,
    })
}

/// Runs the whole fleet. `progress(done, total)` fires after each
/// instance completes (from worker threads, in completion order — use it
/// only for monotone counters, never for result data).
pub fn run_fleet<P>(cfg: &FleetConfig, progress: P) -> Result<FleetReport, String>
where
    P: Fn(usize, usize) + Sync,
{
    cfg.validate()?;
    let n = cfg.instances;

    // Phase 1: arrival pre-pass (host-side, before any worker runs).
    let arrivals = draw_arrivals(cfg);

    // Phase 2: simulation fan-out over the bounded host pool.
    let done = AtomicUsize::new(0);
    let results: Vec<Result<InstanceResult, String>> =
        parmap_with(cfg.jobs, (0..n).collect(), |i| {
            let r = run_instance(cfg, i);
            progress(done.fetch_add(1, Ordering::Relaxed) + 1, n);
            r
        });
    let mut instances = Vec::with_capacity(n);
    for r in results {
        instances.push(r?);
    }

    // Phase 3a: hierarchical roll-up over deterministic index chunks.
    let width = cfg.node_width();
    let mut nodes = Vec::new();
    for (k, chunk) in instances.chunks(width).enumerate() {
        let mut snapshot = Snapshot::empty();
        for inst in chunk {
            snapshot.merge(&inst.snapshot);
        }
        nodes.push(NodeAggregate {
            node: k,
            first: k * width,
            last: k * width + chunk.len(),
            snapshot,
        });
    }
    let mut fleet = Snapshot::empty();
    for node in &nodes {
        fleet.merge(&node.snapshot);
    }

    // Phase 3b: queue replay + population classification.
    let service: Vec<u64> = instances.iter().map(|i| i.service_cycles).collect();
    let queue = simulate(&arrivals, &service, cfg.slots);
    let per_instance: Vec<Vec<Finding>> = instances.iter().map(|i| i.findings.clone()).collect();
    let findings = classify_fleet(
        &per_instance,
        &queue.sojourn,
        &service,
        &queue.stats,
        cfg.min_share,
    );

    Ok(FleetReport {
        cfg: cfg.clone(),
        instances,
        nodes,
        fleet,
        arrivals,
        queue,
        findings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(jobs: usize) -> FleetConfig {
        FleetConfig {
            instances: 6,
            threads: 2,
            queries: 8,
            jobs,
            ..Default::default()
        }
    }

    #[test]
    fn instance_seeds_are_index_pure_and_distinct() {
        let a = instance_seed(1, 0);
        assert_eq!(a, instance_seed(1, 0));
        let seeds: Vec<u64> = (0..100).map(|i| instance_seed(0xF1EE7, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "seed collision");
        assert_ne!(
            instance_seed(1, 5),
            instance_seed(2, 5),
            "fleet seed ignored"
        );
    }

    #[test]
    fn fleet_aggregate_is_identical_across_jobs() {
        let a = run_fleet(&tiny(1), |_, _| {}).unwrap();
        let b = run_fleet(&tiny(3), |_, _| {}).unwrap();
        // Node chunking differs (1 node vs 3 nodes) but the fleet
        // aggregate, queue replay, and findings must not.
        assert_ne!(a.nodes.len(), b.nodes.len());
        assert_eq!(a.fleet, b.fleet);
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.queue.sojourn, b.queue.sojourn);
        assert_eq!(
            a.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>(),
            b.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fleet_aggregate_equals_sum_of_instances() {
        let r = run_fleet(&tiny(2), |_, _| {}).unwrap();
        let appended: u64 = r.instances.iter().map(|i| i.snapshot.appended).sum();
        let drained: u64 = r.instances.iter().map(|i| i.snapshot.drained).sum();
        assert_eq!(r.fleet.appended, appended);
        assert_eq!(r.fleet.drained, drained);
        assert_eq!(
            r.fleet.in_flight(),
            0,
            "final snapshots leave nothing in flight"
        );
        // Per-instance conservation too.
        for i in &r.instances {
            assert_eq!(
                i.snapshot.appended,
                i.snapshot.drained + i.snapshot.overwritten + i.snapshot.in_flight()
            );
        }
    }

    #[test]
    fn progress_reaches_total() {
        let peak = AtomicUsize::new(0);
        let r = run_fleet(&tiny(2), |done, total| {
            assert!(done <= total);
            peak.fetch_max(done, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(peak.load(Ordering::Relaxed), r.instances.len());
    }

    #[test]
    fn memcached_fleet_runs_too() {
        let cfg = FleetConfig {
            workload: Workload::Memcached,
            instances: 3,
            threads: 2,
            queries: 20,
            jobs: 2,
            ..Default::default()
        };
        let r = run_fleet(&cfg, |_, _| {}).unwrap();
        assert_eq!(r.instances.len(), 3);
        assert!(r.fleet.drained > 0);
        assert!(r.total_instructions() > 0);
    }

    #[test]
    fn proxy_fleet_rolls_up_io_stats() {
        let cfg = FleetConfig {
            workload: Workload::Proxy,
            instances: 3,
            threads: 2,
            queries: 8,
            jobs: 2,
            ..Default::default()
        };
        let r = run_fleet(&cfg, |_, _| {}).unwrap();
        assert_eq!(r.instances.len(), 3);
        // The roll-up's per-region io waits must equal the instance sums
        // (merge_io_stats is the only path that can produce them).
        for region in &r.fleet.regions {
            let want: u64 = r
                .instances
                .iter()
                .flat_map(|i| &i.snapshot.regions)
                .filter(|ir| ir.name == region.name)
                .map(|ir| ir.io_wait_sum())
                .sum();
            assert_eq!(region.io_wait_sum(), want, "{}", region.name);
        }
        let fanout_wait: u64 = r
            .fleet
            .regions
            .iter()
            .filter(|reg| reg.name == "proxy.fanout")
            .map(|reg| reg.io_wait_sum())
            .sum();
        assert!(fanout_wait > 0, "fan-out region recorded no net waits");
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let mut cfg = tiny(1);
        cfg.capacity = 100;
        assert!(run_fleet(&cfg, |_, _| {}).is_err());
        let mut cfg = tiny(1);
        cfg.instances = 0;
        assert!(run_fleet(&cfg, |_, _| {}).is_err());
        let mut cfg = tiny(1);
        cfg.arrival.rate_per_mcycle = 0.0;
        assert!(run_fleet(&cfg, |_, _| {}).is_err());
    }
}
