//! Deterministic pseudo-random number generation.
//!
//! All stochastic behaviour in the simulator — workload think times, address
//! streams, scheduler tie-breaking — flows from a [`DetRng`] seeded by the
//! experiment configuration, so every run is reproducible bit-for-bit.
//!
//! The generator is xoshiro256** (public domain construction by Blackman &
//! Vigna), implemented locally so the substrate carries no external RNG
//! dependency and its streams stay stable across toolchain updates.

/// A deterministic, splittable pseudo-random generator (xoshiro256**).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // SplitMix64 cannot produce an all-zero state from any seed, but keep
        // the invariant explicit: xoshiro must never be seeded all-zero.
        debug_assert!(s.iter().any(|&w| w != 0));
        DetRng { s }
    }

    /// Derives an independent child generator; used to give each simulated
    /// thread or workload component its own stream.
    pub fn split(&mut self, tag: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. Returns 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire's multiply-shift rejection method: unbiased and fast.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi, "range lo must be <= hi");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with the given probability of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Geometric-ish "burst length": samples an exponential with the given
    /// mean, clamped to at least 1. Used for think times and burst sizes.
    pub fn exp_u64(&mut self, mean: f64) -> u64 {
        let u = self.unit_f64().max(f64::MIN_POSITIVE);
        let v = -mean * u.ln();
        (v.round() as u64).max(1)
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Samples an index from a discrete distribution given by `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[u64]) -> usize {
        let total: u64 = weights.iter().sum();
        assert!(
            total > 0,
            "weighted_index needs a non-empty, non-zero weight set"
        );
        let mut pick = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            if pick < w {
                return i;
            }
            pick -= w;
        }
        unreachable!("weights summed to total; pick < total")
    }
}

impl DetRng {
    /// Next raw 32-bit value (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = DetRng::new(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.range(5, 8);
            assert!((5..=8).contains(&v));
            saw_lo |= v == 5;
            saw_hi |= v == 8;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut r = DetRng::new(11);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = DetRng::new(5);
        let mut a = parent.split(1);
        let mut b = parent.split(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let mut r = DetRng::new(13);
        for _ in 0..500 {
            let i = r.weighted_index(&[0, 5, 0, 5]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn exp_u64_has_roughly_right_mean() {
        let mut r = DetRng::new(17);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.exp_u64(100.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((80.0..120.0).contains(&mean), "mean was {mean}");
    }

    #[test]
    fn rngcore_fill_bytes_covers_partial_chunks() {
        let mut r = DetRng::new(19);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
