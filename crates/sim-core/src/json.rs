//! Minimal JSON emission for experiment results.
//!
//! The workspace's `serde` is an offline stub (no registry access, see
//! `vendor/serde`), so machine-readable output is built with this small
//! hand-rolled writer instead of a serializer derive. It covers exactly
//! what result files need: objects, arrays, strings, numbers, and booleans,
//! with correct string escaping and stable (insertion-order) keys so files
//! diff cleanly across PRs.

use std::fmt::Write as _;

/// A JSON value assembled by hand.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (emitted without a fractional part).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Finite float (non-finite values are emitted as `null`).
    Float(f64),
    /// String (escaped on render).
    Str(String),
    /// Array of values.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds/replaces a field on an object; panics on non-objects.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        let Json::Object(ref mut fields) = self else {
            panic!("Json::set on a non-object");
        };
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value.into(),
            None => fields.push((key.to_string(), value.into())),
        }
        self
    }

    /// Renders with 2-space indentation and a trailing newline (stable
    /// output for committed result files).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on one line with no whitespace — one NDJSON record (the
    /// telemetry monitor's snapshot stream).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.render_compact(&mut out);
        out
    }

    fn render_compact(&self, out: &mut String) {
        match self {
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_compact(out);
                }
                out.push('}');
            }
            other => other.render(out, 0),
        }
    }

    /// Parses a JSON document (the validation side of the NDJSON stream:
    /// `check-telemetry` re-reads what `monitor` wrote). Rejects trailing
    /// garbage.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a float (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Float(v) => Some(v),
            Json::Int(v) => Some(v as f64),
            Json::UInt(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    fn render(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.render(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    render_string(key, out);
                    out.push_str(": ");
                    value.render(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat("\"")?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume a maximal run of ordinary bytes in one slice.
                    // Quote and backslash are ASCII, so stopping only on
                    // them never splits a multi-byte scalar, and the input
                    // is a &str so the run is valid UTF-8. (Decoding one
                    // scalar at a time via from_utf8 on the whole tail made
                    // large-document parsing quadratic.)
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|e| e.to_string())
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|e| e.to_string())
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|e| e.to_string())
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected , or ] at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat("{")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected , or }} at byte {}", self.pos)),
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::object()
            .set("experiment", "e1")
            .set("wall_ms", 12.5)
            .set("ok", true)
            .set("tables", vec!["a\nb", "c"]);
        let s = j.pretty();
        assert!(s.starts_with("{\n"));
        assert!(s.contains("\"experiment\": \"e1\""));
        assert!(s.contains("\"wall_ms\": 12.5"));
        assert!(s.contains("\"a\\nb\""));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let s = Json::Str("he said \"hi\"\\\t\u{1}".to_string()).pretty();
        assert_eq!(s, "\"he said \\\"hi\\\"\\\\\\t\\u0001\"\n");
    }

    #[test]
    fn set_replaces_existing_keys_in_place() {
        let j = Json::object().set("a", 1i64).set("b", 2i64).set("a", 3i64);
        assert_eq!(j.pretty(), "{\n  \"a\": 3,\n  \"b\": 2\n}\n");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).pretty(), "null\n");
    }

    #[test]
    fn empty_containers_render_compactly() {
        assert_eq!(Json::object().pretty(), "{}\n");
        assert_eq!(Json::Array(vec![]).pretty(), "[]\n");
    }

    #[test]
    fn compact_renders_one_line() {
        let j = Json::object()
            .set("seq", 3u64)
            .set("regions", vec!["a", "b"]);
        assert_eq!(j.compact(), "{\"seq\":3,\"regions\":[\"a\",\"b\"]}");
    }

    #[test]
    fn parse_round_trips_compact_output() {
        let j = Json::object()
            .set("seq", 3u64)
            .set("neg", -7i64)
            .set("share", 0.25)
            .set("name", "mysql.table.acq \"x\"\n")
            .set("flag", true)
            .set("none", Json::Null)
            .set("rows", vec![1u64, 2, 3]);
        let back = Json::parse(&j.compact()).unwrap();
        assert_eq!(back, j);
        let pretty_back = Json::parse(&j.pretty()).unwrap();
        assert_eq!(pretty_back, j);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\":").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let j = Json::parse("{\"a\":{\"b\":[1,2.5,\"x\"]}}").unwrap();
        let arr = j.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert!(j.get("missing").is_none());
    }
}
