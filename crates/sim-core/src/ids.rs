//! Strongly-typed identifiers for simulation entities.
//!
//! Each id is a thin newtype over a small integer. Using distinct types (not
//! bare `usize`) makes cross-wiring between subsystems a compile error: a
//! scheduler cannot hand a [`CoreId`] to a function expecting a [`ThreadId`].

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw index.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies one simulated hardware core.
    CoreId,
    "core"
);

id_type!(
    /// Identifies one simulated guest thread (kernel task).
    ThreadId,
    "tid"
);

id_type!(
    /// Identifies one hardware performance counter slot within a core's PMU.
    CounterId,
    "pmc"
);

id_type!(
    /// Identifies one software lock instance inside a workload.
    LockId,
    "lock"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_through_u32() {
        let c = CoreId::new(7);
        assert_eq!(u32::from(c), 7);
        assert_eq!(CoreId::from(7u32), c);
        assert_eq!(c.index(), 7);
    }

    #[test]
    fn ids_are_distinct_types() {
        // This test is mostly a compile-time statement: CoreId and ThreadId
        // hash and compare independently.
        let mut cores = HashSet::new();
        cores.insert(CoreId::new(1));
        assert!(cores.contains(&CoreId::new(1)));
        assert!(!cores.contains(&CoreId::new(2)));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(ThreadId::new(3).to_string(), "tid3");
        assert_eq!(format!("{:?}", CounterId::new(0)), "pmc0");
        assert_eq!(LockId::new(12).to_string(), "lock12");
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(CoreId::new(1) < CoreId::new(2));
        assert_eq!(ThreadId::default(), ThreadId::new(0));
    }
}
