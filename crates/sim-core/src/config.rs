//! Top-level simulation configuration.
//!
//! [`SimConfig`] carries only substrate-wide knobs; subsystem-specific
//! configuration (cache geometry, PMU counter width, scheduler quantum)
//! lives next to the subsystem that consumes it and is aggregated by the
//! machine builder in `sim-cpu`/`sim-os`.

use crate::error::{SimError, SimResult};
use crate::time::Freq;
use serde::{Deserialize, Serialize};

/// Substrate-wide simulation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of simulated cores.
    pub cores: usize,
    /// Core clock frequency; converts cycles to wall-clock time in reports.
    pub freq: Freq,
    /// Seed for all deterministic randomness in a run.
    pub seed: u64,
    /// Hard cap on simulated cycles; exceeding it is a [`SimError::Timeout`].
    pub max_cycles: u64,
}

impl SimConfig {
    /// A small default machine: 8 cores at 2.5 GHz.
    pub fn new(cores: usize) -> Self {
        SimConfig {
            cores,
            freq: Freq::DEFAULT,
            seed: 0xC0FFEE,
            max_cycles: 20_000_000_000,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the core frequency.
    pub fn with_freq(mut self, freq: Freq) -> Self {
        self.freq = freq;
        self
    }

    /// Sets the simulated-cycle budget.
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> SimResult<()> {
        if self.cores == 0 {
            return Err(SimError::Config("at least one core is required".into()));
        }
        if self.cores > 1024 {
            return Err(SimError::Config(format!(
                "{} cores exceeds the 1024-core limit",
                self.cores
            )));
        }
        if self.max_cycles == 0 {
            return Err(SimError::Config("max_cycles must be non-zero".into()));
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SimConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_cores_rejected() {
        let err = SimConfig::new(0).validate().unwrap_err();
        assert_eq!(err.category(), "config");
    }

    #[test]
    fn too_many_cores_rejected() {
        assert!(SimConfig::new(4096).validate().is_err());
    }

    #[test]
    fn zero_budget_rejected() {
        assert!(SimConfig::new(2).with_max_cycles(0).validate().is_err());
    }

    #[test]
    fn builder_methods_apply() {
        let c = SimConfig::new(4)
            .with_seed(99)
            .with_freq(Freq::from_ghz(3))
            .with_max_cycles(123);
        assert_eq!(c.seed, 99);
        assert_eq!(c.freq, Freq::from_ghz(3));
        assert_eq!(c.max_cycles, 123);
    }
}
