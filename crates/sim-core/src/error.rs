//! The shared error type for the simulation stack.
//!
//! Every fallible operation across the workspace returns [`SimResult`]. The
//! variants are deliberately coarse: fine-grained context travels in the
//! message strings, which are always built at the failure site where the
//! interesting values are in scope.

use std::fmt;

/// Errors produced anywhere in the simulation stack.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value was rejected (zero cores, non-power-of-two cache
    /// size, counter width out of range, ...).
    Config(String),
    /// A guest program referenced an undefined label, register, or address.
    Program(String),
    /// The guest performed an illegal operation at runtime (fault): e.g.
    /// `rdpmc` with user access disabled, access to an unmapped page.
    Fault(String),
    /// A syscall was invoked with invalid arguments or an unknown number.
    Syscall(String),
    /// A hardware resource was exhausted (no free counter slot, no free fd).
    Resource(String),
    /// The simulation exceeded its configured cycle budget without all
    /// threads exiting — usually a guest-code livelock.
    Timeout(String),
    /// An experiment harness invariant was violated.
    Harness(String),
}

impl SimError {
    /// Short machine-readable category name for the error.
    pub fn category(&self) -> &'static str {
        match self {
            SimError::Config(_) => "config",
            SimError::Program(_) => "program",
            SimError::Fault(_) => "fault",
            SimError::Syscall(_) => "syscall",
            SimError::Resource(_) => "resource",
            SimError::Timeout(_) => "timeout",
            SimError::Harness(_) => "harness",
        }
    }

    /// The human-readable detail message.
    pub fn message(&self) -> &str {
        match self {
            SimError::Config(m)
            | SimError::Program(m)
            | SimError::Fault(m)
            | SimError::Syscall(m)
            | SimError::Resource(m)
            | SimError::Timeout(m)
            | SimError::Harness(m) => m,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.category(), self.message())
    }
}

impl std::error::Error for SimError {}

/// Result alias used across the workspace.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = SimError::Fault("rdpmc disabled".into());
        assert_eq!(e.to_string(), "fault error: rdpmc disabled");
        assert_eq!(e.category(), "fault");
        assert_eq!(e.message(), "rdpmc disabled");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SimError::Config("bad".into()));
    }

    #[test]
    fn categories_are_distinct() {
        let all = [
            SimError::Config(String::new()),
            SimError::Program(String::new()),
            SimError::Fault(String::new()),
            SimError::Syscall(String::new()),
            SimError::Resource(String::new()),
            SimError::Timeout(String::new()),
            SimError::Harness(String::new()),
        ];
        let mut cats: Vec<_> = all.iter().map(|e| e.category()).collect();
        cats.sort_unstable();
        cats.dedup();
        assert_eq!(cats.len(), all.len());
    }
}
