//! Host-side parallel experiment driver.
//!
//! Experiments are deterministic and independent, so sweep cells (thread
//! counts × methods, sampling periods, ablation arms) can run on separate
//! host threads. [`parmap`] preserves input order and propagates panics.
//!
//! The pool is **bounded**: at most `jobs` host threads exist at a time
//! (default [`default_jobs`], i.e. `std::thread::available_parallelism()`),
//! pulling cells off a shared queue. The seed implementation spawned one
//! unbounded thread per cell, which oversubscribed the host as soon as a
//! sweep grew past the core count.
//!
//! Panic safety: a panicking cell aborts the sweep — remaining queued cells
//! are dropped, every worker is joined, and the **first** panic is
//! re-raised with the `experiment thread panicked` prefix. No worker is
//! ever orphaned and no lock is held across user code.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::thread;

/// The default pool width: the host's available parallelism (1 if unknown).
pub fn default_jobs() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on a pool of [`default_jobs`] worker threads,
/// returning results in input order.
///
/// # Panics
///
/// Propagates the first panic from `f` (message prefixed with
/// `experiment thread panicked`).
pub fn parmap<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    parmap_with(default_jobs(), items, f)
}

/// [`parmap`] with an explicit pool width (clamped to `1..=items.len()`).
pub fn parmap_with<I, T, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n);
    if n <= 1 || jobs == 1 {
        // Same panic contract as the pooled path: the first panic is
        // re-raised with the `experiment thread panicked` prefix.
        return items
            .into_iter()
            .map(|item| match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(out) => out,
                Err(payload) => repanic(payload),
            })
            .collect();
    }

    let queue = Mutex::new(items.into_iter().enumerate());
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let aborted = AtomicBool::new(false);
    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                if aborted.load(Ordering::Acquire) {
                    break;
                }
                // Lock scope is just the queue pop; user code runs unlocked.
                let Some((idx, item)) = queue.lock().unwrap().next() else {
                    break;
                };
                match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(out) => *results[idx].lock().unwrap() = Some(out),
                    Err(payload) => {
                        aborted.store(true, Ordering::Release);
                        first_panic.lock().unwrap().get_or_insert(payload);
                        break;
                    }
                }
            });
        }
        // `thread::scope` joins every worker here, panicked or not.
    });

    if let Some(payload) = first_panic.into_inner().unwrap() {
        repanic(payload);
    }

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every cell completed without panicking")
        })
        .collect()
}

fn repanic(payload: Box<dyn std::any::Any + Send>) -> ! {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    panic!("experiment thread panicked: {msg}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parmap((0..16).collect(), |x: i32| x * x);
        assert_eq!(out, (0..16).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn preserves_order_with_narrow_pool() {
        let out = parmap_with(2, (0..64).collect(), |x: i32| x * 3);
        assert_eq!(out, (0..64).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn runs_closures_in_parallel_without_interference() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let counter = AtomicU32::new(0);
        let out = parmap(vec![1u32; 8], |x| {
            counter.fetch_add(x, Ordering::SeqCst);
            x
        });
        assert_eq!(out.len(), 8);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(parmap(vec![7], |x: u64| x + 1), vec![8]);
    }

    #[test]
    fn pool_never_exceeds_requested_width() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        parmap_with(3, (0..32).collect(), |x: u32| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            live.fetch_sub(1, Ordering::SeqCst);
            x
        });
        assert!(peak.load(Ordering::SeqCst) <= 3, "pool width exceeded");
    }

    #[test]
    #[should_panic(expected = "experiment thread panicked")]
    fn panics_propagate() {
        let _ = parmap(vec![1, 2], |x: i32| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn panic_joins_all_workers_and_preserves_message() {
        let err = std::panic::catch_unwind(|| {
            parmap_with(2, (0..100).collect(), |x: i32| {
                if x == 5 {
                    panic!("cell 5 exploded");
                }
                x
            })
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("experiment thread panicked") && msg.contains("cell 5 exploded"),
            "got: {msg}"
        );
    }
}
