//! Guest time: cycle counts and core frequency.
//!
//! Every paper-style quantity this reproduction reports (nanoseconds per
//! counter read, microseconds per syscall, percent overhead) is derived from
//! guest [`Cycles`] at a configured [`Freq`]. The default frequency is
//! 2.5 GHz, i.e. one cycle is 0.4 ns, comparable to the Nehalem-class parts
//! the original paper measured on.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or instant measured in guest core cycles.
///
/// `Cycles` is an absolute point on a core's clock when used as an instant
/// and a span when used as a duration; the arithmetic is the same either way.
/// Saturating subtraction is provided via [`Cycles::saturating_sub`] for
/// situations where clock skew could otherwise underflow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// The maximum representable cycle count (used as an "infinite" deadline).
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Creates a cycle count from a raw value.
    pub const fn new(raw: u64) -> Self {
        Cycles(raw)
    }

    /// Returns the raw cycle count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Subtracts, clamping at zero rather than panicking on underflow.
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Converts to nanoseconds at the given core frequency.
    pub fn to_nanos(self, freq: Freq) -> f64 {
        self.0 as f64 / freq.ghz()
    }

    /// Converts to microseconds at the given core frequency.
    pub fn to_micros(self, freq: Freq) -> f64 {
        self.to_nanos(freq) / 1_000.0
    }

    /// Converts to milliseconds at the given core frequency.
    pub fn to_millis(self, freq: Freq) -> f64 {
        self.to_nanos(freq) / 1_000_000.0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl From<u64> for Cycles {
    fn from(raw: u64) -> Self {
        Cycles(raw)
    }
}

impl fmt::Debug for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// A core clock frequency.
///
/// Stored in kilohertz so common frequencies are exactly representable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Freq {
    khz: u64,
}

impl Freq {
    /// The default simulated core frequency: 2.5 GHz.
    pub const DEFAULT: Freq = Freq::from_mhz(2_500);

    /// Creates a frequency from megahertz.
    pub const fn from_mhz(mhz: u64) -> Self {
        Freq { khz: mhz * 1_000 }
    }

    /// Creates a frequency from gigahertz (whole GHz only).
    pub const fn from_ghz(ghz: u64) -> Self {
        Freq::from_mhz(ghz * 1_000)
    }

    /// Frequency in GHz as a float (cycles per nanosecond).
    pub fn ghz(self) -> f64 {
        self.khz as f64 / 1_000_000.0
    }

    /// Frequency in MHz.
    pub const fn mhz(self) -> u64 {
        self.khz / 1_000
    }

    /// Number of cycles elapsed in the given number of nanoseconds.
    pub fn cycles_in_nanos(self, nanos: u64) -> Cycles {
        Cycles(nanos * self.khz / 1_000_000)
    }

    /// Number of cycles elapsed in the given number of microseconds.
    pub fn cycles_in_micros(self, micros: u64) -> Cycles {
        self.cycles_in_nanos(micros * 1_000)
    }

    /// Number of cycles elapsed in the given number of milliseconds.
    pub fn cycles_in_millis(self, millis: u64) -> Cycles {
        self.cycles_in_nanos(millis * 1_000_000)
    }
}

impl Default for Freq {
    fn default() -> Self {
        Freq::DEFAULT
    }
}

impl fmt::Debug for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MHz", self.mhz())
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}GHz", self.ghz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(100);
        let b = Cycles::new(40);
        assert_eq!(a + b, Cycles::new(140));
        assert_eq!(a - b, Cycles::new(60));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!(a * 3, Cycles::new(300));
        assert_eq!(a / 4, Cycles::new(25));
        let total: Cycles = [a, b, Cycles::new(1)].into_iter().sum();
        assert_eq!(total, Cycles::new(141));
    }

    #[test]
    fn nanos_at_default_frequency() {
        // 2.5 GHz: 1 cycle = 0.4 ns.
        let f = Freq::DEFAULT;
        assert!((Cycles::new(100).to_nanos(f) - 40.0).abs() < 1e-9);
        assert!((Cycles::new(2_500).to_micros(f) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn freq_conversions_round_trip() {
        let f = Freq::from_ghz(3);
        assert_eq!(f.mhz(), 3_000);
        assert_eq!(f.cycles_in_nanos(10), Cycles::new(30));
        assert_eq!(f.cycles_in_micros(2), Cycles::new(6_000));
        assert_eq!(f.cycles_in_millis(1), Cycles::new(3_000_000));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cycles::new(17).to_string(), "17cy");
        assert_eq!(Freq::DEFAULT.to_string(), "2.50GHz");
        assert_eq!(format!("{:?}", Freq::from_mhz(2_500)), "2500MHz");
    }
}
