//! Measurement containers: histograms and running summaries.
//!
//! The analysis crate builds the paper's distribution figures (e.g. the
//! MySQL critical-section-length histogram, experiment E6) out of
//! [`Histogram`], and its tables out of [`Summary`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket `i` covers `[2^(i-1), 2^i)` for `i >= 1`; bucket 0 holds exact
/// zeros and ones share bucket 1's lower edge (value 1 lands in bucket 1).
/// Log buckets match how the paper presents cycle distributions that span
/// five decades (tens of cycles to tens of millions).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Lower edge of bucket `i` (inclusive).
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Upper edge of bucket `i` (exclusive); `u64::MAX` for the last bucket.
    pub fn bucket_hi(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        if b >= self.buckets.len() {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = Self::bucket_of(value);
        if b >= self.buckets.len() {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += *src;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (exact, unlike `mean() * count()`).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Whether the histogram holds no samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of all samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate quantile (0.0..=1.0) from the bucket boundaries.
    ///
    /// The result is the upper edge of the bucket containing the requested
    /// rank, so the true quantile is within a factor of 2. `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Self::bucket_hi(i).min(self.max).max(Self::bucket_lo(i)));
            }
        }
        Some(self.max)
    }

    /// Fraction of samples strictly below `threshold`.
    pub fn fraction_below(&self, threshold: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let b = Self::bucket_of(threshold);
        // All complete buckets below the threshold's bucket count fully;
        // within the threshold's own bucket we cannot resolve further, so we
        // include it only if the threshold is at the bucket's upper edge.
        let mut below = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if i < b || (i == b && threshold >= Self::bucket_hi(i)) {
                below += n;
            }
        }
        below as f64 / self.count as f64
    }

    /// Iterates over non-empty buckets as `(lo, hi, count)`.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_lo(i), Self::bucket_hi(i), n))
    }

    /// Renders an ASCII bar chart of the distribution, `width` chars wide.
    pub fn render_ascii(&self, width: usize) -> String {
        let mut out = String::new();
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (lo, hi, n) in self.iter_buckets() {
            let bar = (n as f64 / peak as f64 * width as f64).round() as usize;
            let pct = n as f64 / self.count.max(1) as f64 * 100.0;
            out.push_str(&format!(
                "{:>12} - {:<12} | {:<width$} {:>7} ({pct:>5.1}%)\n",
                lo,
                hi,
                "#".repeat(bar.max(if n > 0 { 1 } else { 0 })),
                n,
                width = width
            ));
        }
        out
    }
}

/// A running summary of `f64` observations: count, mean, variance (Welford),
/// min, max.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Sample standard deviation, or `None` with fewer than two observations.
    pub fn stddev(&self) -> Option<f64> {
        (self.count > 1).then(|| (self.m2 / (self.count - 1) as f64).sqrt())
    }

    /// Minimum observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(m) => write!(
                f,
                "n={} mean={:.2} sd={:.2} min={:.2} max={:.2}",
                self.count,
                m,
                self.stddev().unwrap_or(0.0),
                self.min,
                self.max
            ),
            None => write!(f, "n=0"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(Histogram::bucket_lo(0), 0);
        assert_eq!(Histogram::bucket_hi(0), 1);
        assert_eq!(Histogram::bucket_lo(1), 1);
        assert_eq!(Histogram::bucket_hi(1), 2);
        assert_eq!(Histogram::bucket_lo(5), 16);
        assert_eq!(Histogram::bucket_hi(5), 32);
    }

    #[test]
    fn record_and_basic_stats() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean().unwrap() - (1105.0 / 6.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_returns_none() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantile_is_within_bucket_resolution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let med = h.quantile(0.5).unwrap();
        // True median is 500; the bucket answer must be within a factor of 2.
        assert!((256..=1024).contains(&med), "median bucket was {med}");
        let p100 = h.quantile(1.0).unwrap();
        assert!(p100 >= 512);
    }

    #[test]
    fn fraction_below_counts_full_buckets() {
        let mut h = Histogram::new();
        h.record_n(4, 10); // bucket [4,8)
        h.record_n(100, 10); // bucket [64,128)
        assert!((h.fraction_below(64) - 0.5).abs() < 1e-9);
        assert!((h.fraction_below(8) - 0.5).abs() < 1e-9);
        assert_eq!(h.fraction_below(1), 0.0);
        assert!((h.fraction_below(u64::MAX) - 0.5).abs() < 0.51); // last bucket unresolved
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(500);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(2));
        assert_eq!(a.max(), Some(500));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(7);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn ascii_render_has_one_line_per_nonempty_bucket() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(1000);
        let s = h.render_ascii(20);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains('#'));
    }

    #[test]
    fn summary_welford_matches_naive() {
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        let mut s = Summary::new();
        for &x in &xs {
            s.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean().unwrap() - mean).abs() < 1e-9);
        assert!((s.stddev().unwrap() - var.sqrt()).abs() < 1e-9);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(100.0));
    }

    #[test]
    fn summary_display() {
        let mut s = Summary::new();
        assert_eq!(s.to_string(), "n=0");
        s.record(2.0);
        assert!(s.to_string().starts_with("n=1"));
    }
}
