//! Simulation substrate shared by every other crate in the workspace.
//!
//! `sim-core` deliberately knows nothing about CPUs, caches, or kernels. It
//! provides the vocabulary the rest of the stack is written in:
//!
//! * strongly-typed identifiers ([`ids`]) so a core id can never be confused
//!   with a thread id,
//! * guest time ([`time`]): cycles, frequencies, and conversion to wall-clock
//!   nanoseconds at a configured core frequency,
//! * deterministic pseudo-randomness ([`rng`]) so every experiment in the
//!   reproduction is replayable bit-for-bit,
//! * measurement containers ([`stats`]): log-bucketed histograms, running
//!   summaries, and percentile extraction used by the analysis crate,
//! * a bounded host-side worker pool ([`parallel`]) shared by the
//!   experiment driver (`bench`) and the fleet layer (`fleet`),
//! * experiment configuration ([`config`]) serialized with `serde`,
//! * the shared error type ([`error`]).

pub mod config;
pub mod error;
pub mod hash;
pub mod ids;
pub mod json;
pub mod parallel;
pub mod rng;
pub mod stats;
pub mod time;

pub use config::SimConfig;
pub use error::{SimError, SimResult};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use ids::{CoreId, CounterId, LockId, ThreadId};
pub use rng::DetRng;
pub use stats::{Histogram, Summary};
pub use time::{Cycles, Freq};
