//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use sim_core::{Cycles, DetRng, Freq, Histogram, Summary};

proptest! {
    /// Every recorded sample lands in a bucket whose bounds contain it,
    /// and aggregate statistics match a naive recomputation.
    #[test]
    fn histogram_matches_naive_statistics(samples in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), samples.iter().copied().min());
        prop_assert_eq!(h.max(), samples.iter().copied().max());
        let naive_mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        prop_assert!((h.mean().unwrap() - naive_mean).abs() < 1e-6);
        // Bucket counts sum to the sample count.
        let bucket_total: u64 = h.iter_buckets().map(|(_, _, n)| n).sum();
        prop_assert_eq!(bucket_total, h.count());
        // Every sample is containable: its bucket bounds bracket it.
        for &s in &samples {
            let found = h
                .iter_buckets()
                .any(|(lo, hi, _)| s >= lo && (s < hi || hi == u64::MAX));
            prop_assert!(found, "sample {} has no bucket", s);
        }
    }

    /// Quantiles are monotone in q and within the recorded min/max.
    #[test]
    fn histogram_quantiles_are_monotone(samples in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0];
        let mut prev = 0u64;
        for &q in &qs {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
        // The upper quantile cannot be below the true median/2 (bucket
        // resolution bound).
        prop_assert!(h.quantile(1.0).unwrap() >= h.max().unwrap() / 2);
    }

    /// Merging two histograms equals recording the concatenation.
    #[test]
    fn histogram_merge_is_concatenation(
        a in prop::collection::vec(0u64..100_000, 0..100),
        b in prop::collection::vec(0u64..100_000, 0..100),
    ) {
        let mut ha = Histogram::new();
        for &s in &a { ha.record(s); }
        let mut hb = Histogram::new();
        for &s in &b { hb.record(s); }
        ha.merge(&hb);
        let mut hc = Histogram::new();
        for &s in a.iter().chain(&b) { hc.record(s); }
        prop_assert_eq!(ha, hc);
    }

    /// Welford summary matches naive mean/variance for arbitrary inputs.
    #[test]
    fn summary_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 2..100)) {
        let mut s = Summary::new();
        for &x in &xs { s.record(x); }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        prop_assert!((s.mean().unwrap() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.stddev().unwrap() - var.sqrt()).abs() < 1e-5 * var.sqrt().max(1.0));
    }

    /// RNG bounded draws respect bounds for arbitrary seeds and bounds.
    #[test]
    fn rng_below_is_always_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut r = DetRng::new(seed);
        for _ in 0..50 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    /// Identical seeds give identical streams; split streams diverge.
    #[test]
    fn rng_determinism(seed in any::<u64>()) {
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        prop_assert_eq!(va, vb);
    }

    /// Cycle/time conversions round-trip within rounding error.
    #[test]
    fn freq_conversions_are_consistent(mhz in 100u64..6_000, nanos in 0u64..1_000_000) {
        let f = Freq::from_mhz(mhz);
        let cy = f.cycles_in_nanos(nanos);
        let back = cy.to_nanos(f);
        prop_assert!((back - nanos as f64).abs() <= 1.0 / f.ghz() + 1e-9,
            "nanos {} -> {} -> {}", nanos, cy, back);
    }

    /// Cycles arithmetic is associative over sums.
    #[test]
    fn cycles_sum_matches_u64(xs in prop::collection::vec(0u64..1_000_000, 0..50)) {
        let total: Cycles = xs.iter().map(|&x| Cycles::new(x)).sum();
        prop_assert_eq!(total.get(), xs.iter().sum::<u64>());
    }
}
