//! A MySQL-like storage-engine skeleton (case study of experiments
//! E2/E6/E7).
//!
//! The workload reproduces the *synchronization topology* the paper's
//! MySQL study measures, not SQL semantics:
//!
//! * a pool of worker threads, each executing a stream of queries,
//! * per-table locks guarding short row accesses,
//! * one global **buffer-pool mutex** touched by every query,
//! * one global **log mutex** touched by every update,
//! * think time between queries.
//!
//! Every lock is instrumented twice: an *acquire* region (enter before the
//! lock, exit after — measures wait + handoff) and a *hold* region (enter
//! after the lock, exit before unlock — measures critical-section length).
//! With a LiMiT reader those regions cost ~tens of cycles to measure; with
//! the syscall baselines they cost microseconds — experiment E2's
//! comparison.

use crate::{locks, prng};
use limit::harness::{Session, SessionBuilder};
use limit::report::Regions;
use limit::{CounterReader, Instrumenter, LogMode};
use sim_core::{SimError, SimResult};
use sim_cpu::{AluOp, Asm, Cond, EventKind, MemLayout, Reg};
use sim_os::{KernelConfig, RunReport};

/// MySQL-workload parameters.
#[derive(Debug, Clone)]
pub struct MysqlConfig {
    /// Worker threads (connections).
    pub threads: usize,
    /// Number of tables (power of two).
    pub tables: u64,
    /// Bytes per table (power of two).
    pub table_bytes: u64,
    /// Queries per worker.
    pub queries_per_thread: u64,
    /// Rows touched per query.
    pub rows_per_query: u64,
    /// Updates per 1024 queries (the rest are selects).
    pub update_per_1024: u64,
    /// Think-time instructions between queries.
    pub think_instrs: u32,
    /// Buffer-pool bytes (power of two).
    pub bufpool_bytes: u64,
    /// Buffer-pool probes per query.
    pub bufpool_probes: u64,
    /// Base RNG seed (each worker derives its own).
    pub seed: u64,
    /// Instrumentation logging mode: per-event record log, bounded
    /// aggregate table, or streaming ring (see [`LogMode`]).
    pub mode: LogMode,
}

impl Default for MysqlConfig {
    fn default() -> Self {
        MysqlConfig {
            threads: 8,
            tables: 16,
            table_bytes: 256 * 1024,
            queries_per_thread: 200,
            rows_per_query: 4,
            update_per_1024: 256, // 25%
            think_instrs: 2_500,
            bufpool_bytes: 4 * 1024 * 1024,
            bufpool_probes: 4,
            seed: 0x5EED,
            mode: LogMode::Log,
        }
    }
}

impl MysqlConfig {
    /// Validates power-of-two and non-zero requirements.
    pub fn validate(&self) -> SimResult<()> {
        for (name, v) in [
            ("tables", self.tables),
            ("table_bytes", self.table_bytes),
            ("bufpool_bytes", self.bufpool_bytes),
        ] {
            if !v.is_power_of_two() {
                return Err(SimError::Config(format!("{name} must be a power of two")));
            }
        }
        if self.threads == 0 || self.queries_per_thread == 0 || self.rows_per_query == 0 {
            return Err(SimError::Config(
                "threads, queries and rows must be non-zero".into(),
            ));
        }
        if self.update_per_1024 > 1024 {
            return Err(SimError::Config("update_per_1024 must be <= 1024".into()));
        }
        Ok(())
    }
}

/// Region ids of the six instrumented lock regions.
#[derive(Debug, Clone, Copy)]
pub struct MysqlRegions {
    /// Table-lock acquire (wait) regions.
    pub acq_table: u64,
    /// Table-lock hold (critical-section) regions.
    pub hold_table: u64,
    /// Buffer-pool-mutex acquire.
    pub acq_buf: u64,
    /// Buffer-pool-mutex hold.
    pub hold_buf: u64,
    /// Log-mutex acquire.
    pub acq_log: u64,
    /// Log-mutex hold.
    pub hold_log: u64,
}

impl MysqlRegions {
    fn define(regions: &mut Regions) -> Self {
        MysqlRegions {
            acq_table: regions.define("mysql.table.acq"),
            hold_table: regions.define("mysql.table.hold"),
            acq_buf: regions.define("mysql.bufpool.acq"),
            hold_buf: regions.define("mysql.bufpool.hold"),
            acq_log: regions.define("mysql.log.acq"),
            hold_log: regions.define("mysql.log.hold"),
        }
    }

    /// `(id, name)` pairs for the hold regions (histogram reporting).
    pub fn hold_regions(&self) -> [(u64, &'static str); 3] {
        [
            (self.hold_table, "table"),
            (self.hold_buf, "bufpool"),
            (self.hold_log, "log"),
        ]
    }

    /// `(id, name)` pairs for the acquire regions.
    pub fn acq_regions(&self) -> [(u64, &'static str); 3] {
        [
            (self.acq_table, "table"),
            (self.acq_buf, "bufpool"),
            (self.acq_log, "log"),
        ]
    }
}

/// Addresses and region ids of an emitted MySQL image.
#[derive(Debug, Clone)]
pub struct MysqlImage {
    /// Worker entry symbol.
    pub entry: &'static str,
    /// Region ids.
    pub regions: MysqlRegions,
    /// Base address of the per-table lock array (64-byte stride).
    pub lock_base: u64,
    /// Buffer-pool mutex address.
    pub bufpool_lock: u64,
    /// Log mutex address.
    pub log_lock: u64,
    /// The configuration the image was emitted for.
    pub cfg: MysqlConfig,
}

/// Emits the worker program into `asm`, allocating shared data in
/// `layout`. Instrumentation is emitted only when the reader attaches at
/// least one counter.
pub fn emit(
    asm: &mut Asm,
    layout: &mut MemLayout,
    regions: &mut Regions,
    reader: &dyn CounterReader,
    cfg: &MysqlConfig,
) -> SimResult<MysqlImage> {
    cfg.validate()?;
    let r = MysqlRegions::define(regions);
    let lock_base = layout.alloc(cfg.tables * 64, 64);
    let bufpool_lock = layout.alloc(8, 64);
    let log_lock = layout.alloc(8, 64);
    let log_cursor = layout.alloc(8, 64);
    let log_data = layout.alloc(64 * 1024, 64);
    let table_base = layout.alloc(cfg.tables * cfg.table_bytes, 4096);
    let bufpool_base = layout.alloc(cfg.bufpool_bytes, 4096);

    let ins = Instrumenter::new(reader);
    let instrumented = reader.counters() > 0;
    let enter = |asm: &mut Asm| {
        if instrumented {
            ins.emit_enter(asm);
        }
    };
    let mode = cfg.mode;
    let exit = |asm: &mut Asm, region: u64| {
        if instrumented {
            ins.emit_exit_mode(asm, region, mode);
        }
    };

    // Row-access loop shared by select (loads) and update (stores).
    let emit_rows = |asm: &mut Asm, write: bool, cfg: &MysqlConfig| {
        asm.imm(Reg::R12, cfg.rows_per_query);
        let rtop = asm.new_label();
        asm.bind(rtop);
        prng::emit_next_below(asm, Reg::R8, Reg::R10, cfg.table_bytes);
        asm.alui(AluOp::And, Reg::R10, !7u64);
        asm.mov(Reg::R11, Reg::R14);
        asm.add(Reg::R11, Reg::R10);
        if write {
            asm.store(Reg::R8, Reg::R11, 0);
        } else {
            asm.load(Reg::R6, Reg::R11, 0);
        }
        asm.alui_sub(Reg::R12, 1);
        asm.br(Cond::Ne, Reg::R12, Reg::R2, rtop);
    };

    asm.export("mysql_worker");
    // Save the seed argument before reader setup clobbers r1.
    asm.mov(Reg::R8, Reg::R1);
    reader.emit_thread_setup(asm);
    asm.imm(Reg::R2, 0); // dedicated zero register (safe across syscalls)
    asm.imm(Reg::R9, cfg.queries_per_thread);

    let qloop = asm.new_label();
    asm.bind(qloop);

    // Think time (network / parse stand-in).
    if cfg.think_instrs > 0 {
        asm.burst(cfg.think_instrs);
    }

    // Pick a table: r13 = lock addr, r14 = table data base.
    prng::emit_next_below(asm, Reg::R8, Reg::R10, cfg.tables);
    asm.mov(Reg::R13, Reg::R10);
    asm.alui(AluOp::Shl, Reg::R13, 6);
    asm.alui_add(Reg::R13, lock_base);
    asm.mov(Reg::R14, Reg::R10);
    asm.alui(
        AluOp::Shl,
        Reg::R14,
        cfg.table_bytes.trailing_zeros() as u64,
    );
    asm.alui_add(Reg::R14, table_base);

    // Query type.
    prng::emit_next_below(asm, Reg::R8, Reg::R10, 1024);
    asm.imm(Reg::R12, cfg.update_per_1024);
    let do_update = asm.new_label();
    let after_table = asm.new_label();
    asm.br(Cond::Lt, Reg::R10, Reg::R12, do_update);

    // --- SELECT: table lock, read rows. ---
    enter(asm);
    locks::emit_lock(asm, Reg::R13);
    exit(asm, r.acq_table);
    enter(asm);
    emit_rows(asm, false, cfg);
    exit(asm, r.hold_table);
    locks::emit_unlock(asm, Reg::R13);
    asm.jmp(after_table);

    // --- UPDATE: table lock, write rows, then the log mutex. ---
    asm.bind(do_update);
    enter(asm);
    locks::emit_lock(asm, Reg::R13);
    exit(asm, r.acq_table);
    enter(asm);
    emit_rows(asm, true, cfg);
    exit(asm, r.hold_table);
    locks::emit_unlock(asm, Reg::R13);

    asm.imm(Reg::R13, log_lock);
    enter(asm);
    locks::emit_lock(asm, Reg::R13);
    exit(asm, r.acq_log);
    enter(asm);
    // Append a few words to the shared redo log.
    asm.imm(Reg::R6, 32);
    asm.imm(Reg::R11, log_cursor);
    asm.fetch_add(Reg::R6, Reg::R11, 0); // r6 = old cursor
    asm.alui(AluOp::And, Reg::R6, 64 * 1024 - 1);
    asm.alui(AluOp::And, Reg::R6, !7u64);
    asm.alui_add(Reg::R6, log_data);
    for w in 0..4 {
        asm.store(Reg::R8, Reg::R6, 8 * w);
    }
    exit(asm, r.hold_log);
    locks::emit_unlock(asm, Reg::R13);

    asm.bind(after_table);

    // --- Buffer-pool lookups (every query). ---
    asm.imm(Reg::R13, bufpool_lock);
    enter(asm);
    locks::emit_lock(asm, Reg::R13);
    exit(asm, r.acq_buf);
    enter(asm);
    for _ in 0..cfg.bufpool_probes {
        prng::emit_next_below(asm, Reg::R8, Reg::R10, cfg.bufpool_bytes);
        asm.alui(AluOp::And, Reg::R10, !7u64);
        asm.imm(Reg::R11, bufpool_base);
        asm.add(Reg::R11, Reg::R10);
        asm.load(Reg::R6, Reg::R11, 0);
    }
    exit(asm, r.hold_buf);
    locks::emit_unlock(asm, Reg::R13);

    asm.alui_sub(Reg::R9, 1);
    asm.br(Cond::Ne, Reg::R9, Reg::R2, qloop);
    asm.halt();

    Ok(MysqlImage {
        entry: "mysql_worker",
        regions: r,
        lock_base,
        bufpool_lock,
        log_lock,
        cfg: cfg.clone(),
    })
}

/// A completed MySQL run: the session (for record extraction), the image,
/// and the kernel report.
#[derive(Debug)]
pub struct MysqlRun {
    /// The finished session.
    pub session: Session,
    /// The emitted image.
    pub image: MysqlImage,
    /// The kernel's run report.
    pub report: RunReport,
}

/// Builds a MySQL workload — session configured per `cfg.mode`, all
/// workers spawned — without running it. The caller drives the kernel
/// (the telemetry monitor attaches a collector and uses
/// `run_with_hook`-style execution; plain callers use [`run`]).
pub fn build(
    cfg: &MysqlConfig,
    reader: &dyn CounterReader,
    cores: usize,
    events: &[EventKind],
    kernel_cfg: KernelConfig,
) -> SimResult<(Session, MysqlImage)> {
    let builder = SessionBuilder::new(cores).kernel_config(kernel_cfg);
    build_on(cfg, reader, builder, events)
}

/// Like [`build`], on a machine described by a full runtime parameter set
/// (cores, cycle costs, hierarchy latencies, kernel scheduling costs) —
/// the what-if engine's per-arm entry point.
pub fn build_with_params(
    cfg: &MysqlConfig,
    reader: &dyn CounterReader,
    params: &limit::MachineParams,
    events: &[EventKind],
) -> SimResult<(Session, MysqlImage)> {
    build_on(cfg, reader, SessionBuilder::from_params(params)?, events)
}

/// Like [`build_with_params`], with an explicit interpreter mode — the
/// entry point for differential tests that pin block-stepped and
/// single-stepped execution to the same perturbed machine.
pub fn build_with_params_exec(
    cfg: &MysqlConfig,
    reader: &dyn CounterReader,
    params: &limit::MachineParams,
    events: &[EventKind],
    exec: sim_os::ExecMode,
) -> SimResult<(Session, MysqlImage)> {
    let builder = SessionBuilder::from_params(params)?;
    let kcfg = KernelConfig {
        exec,
        ..params.kernel_config()
    };
    build_on(cfg, reader, builder.kernel_config(kcfg), events)
}

fn build_on(
    cfg: &MysqlConfig,
    reader: &dyn CounterReader,
    builder: SessionBuilder,
    events: &[EventKind],
) -> SimResult<(Session, MysqlImage)> {
    let mut layout = MemLayout::default();
    let mut regions = Regions::new();
    let mut asm = Asm::new();
    let image = emit(&mut asm, &mut layout, &mut regions, reader, cfg)?;
    let mut builder = builder.events(events).with_layout(layout);
    match cfg.mode {
        LogMode::Log => {}
        LogMode::Aggregate => builder = builder.aggregate_regions(regions.len()),
        LogMode::Stream(stream_cfg) => builder = builder.stream(stream_cfg),
    }
    let mut session = builder.build(asm)?;
    session.regions = regions;
    let mut seed = sim_core::DetRng::new(cfg.seed);
    for _ in 0..cfg.threads {
        let worker_seed = seed.next_u64();
        session.spawn_instrumented(image.entry, &[worker_seed])?;
    }
    Ok((session, image))
}

/// Builds, runs, and returns a MySQL workload under the given reader.
pub fn run(
    cfg: &MysqlConfig,
    reader: &dyn CounterReader,
    cores: usize,
    events: &[EventKind],
    kernel_cfg: KernelConfig,
) -> SimResult<MysqlRun> {
    let (mut session, image) = build(cfg, reader, cores, events, kernel_cfg)?;
    let report = session.run()?;
    Ok(MysqlRun {
        session,
        image,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::reader::{LimitReader, NullReader};

    fn small_cfg() -> MysqlConfig {
        MysqlConfig {
            threads: 4,
            tables: 4,
            table_bytes: 16 * 1024,
            queries_per_thread: 30,
            rows_per_query: 4,
            bufpool_bytes: 64 * 1024,
            ..Default::default()
        }
    }

    #[test]
    fn config_validation_rejects_bad_shapes() {
        let mut c = small_cfg();
        c.tables = 3;
        assert!(c.validate().is_err());
        let mut c = small_cfg();
        c.update_per_1024 = 2000;
        assert!(c.validate().is_err());
        let mut c = small_cfg();
        c.threads = 0;
        assert!(c.validate().is_err());
        assert!(small_cfg().validate().is_ok());
    }

    #[test]
    fn uninstrumented_run_completes() {
        let run = run(
            &small_cfg(),
            &NullReader::new(),
            4,
            &[],
            KernelConfig::default(),
        )
        .unwrap();
        assert!(run.report.total_cycles > 0);
        // All workers exited.
        assert!(run.session.kernel.threads().iter().all(|t| t.is_exited()));
    }

    #[test]
    fn instrumented_run_produces_records_for_all_regions() {
        let events = [EventKind::Cycles, EventKind::Instructions];
        let reader = LimitReader::with_events(events.to_vec());
        let run = run(&small_cfg(), &reader, 4, &events, KernelConfig::default()).unwrap();
        let records = run.session.all_records().unwrap();
        let cfg = &run.image.cfg;
        let per_thread_queries = cfg.queries_per_thread;
        // Each query produces: table acq+hold, bufpool acq+hold, and
        // updates add log acq+hold. Lower bound: 4 regions per query.
        let min = cfg.threads as u64 * per_thread_queries * 4;
        assert!(
            records.len() as u64 >= min,
            "records {} < {min}",
            records.len()
        );
        // Every defined region shows up.
        for (id, _) in run
            .image
            .regions
            .hold_regions()
            .iter()
            .chain(run.image.regions.acq_regions().iter())
        {
            assert!(
                records.iter().any(|(_, rec)| rec.region == *id),
                "region {id} missing"
            );
        }
    }

    #[test]
    fn hold_times_are_short_and_waits_grow_with_contention() {
        let events = [EventKind::Cycles];
        let reader = LimitReader::with_events(events.to_vec());
        // Heavy contention: many threads, one table, one core pair.
        let cfg = MysqlConfig {
            threads: 8,
            tables: 1,
            queries_per_thread: 25,
            think_instrs: 50,
            ..small_cfg()
        };
        let run = run(&cfg, &reader, 2, &events, KernelConfig::default()).unwrap();
        let records = run.session.all_records().unwrap();
        let hold: Vec<u64> = records
            .iter()
            .filter(|(_, r)| r.region == run.image.regions.hold_table)
            .map(|(_, r)| r.deltas[0])
            .collect();
        let acq: Vec<u64> = records
            .iter()
            .filter(|(_, r)| r.region == run.image.regions.acq_table)
            .map(|(_, r)| r.deltas[0])
            .collect();
        assert!(!hold.is_empty() && !acq.is_empty());
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        // Hold times: a handful of row accesses — hundreds of cycles, not
        // tens of thousands (cycle counters are virtualized, so time spent
        // descheduled does not pollute them).
        assert!(mean(&hold) < 20_000.0, "mean hold {} too long", mean(&hold));
        assert!(run.report.futex.0 > 0, "contention must cause blocking");
    }

    #[test]
    fn aggregate_mode_matches_per_event_counts() {
        let events = [EventKind::Cycles, EventKind::Instructions];
        let reader = LimitReader::with_events(events.to_vec());
        let log_run = run(&small_cfg(), &reader, 4, &events, KernelConfig::default()).unwrap();
        let reader = LimitReader::with_events(events.to_vec());
        let agg_cfg = MysqlConfig {
            mode: LogMode::Aggregate,
            ..small_cfg()
        };
        let agg_run = run(&agg_cfg, &reader, 4, &events, KernelConfig::default()).unwrap();
        let records = log_run.session.all_records().unwrap();
        let aggregates = agg_run.session.aggregates_total().unwrap();
        // Same region execution counts either way (the workload is
        // deterministic in structure; only instrumentation encoding
        // differs).
        for agg in &aggregates {
            let log_count = records
                .iter()
                .filter(|(_, r)| r.region == agg.region)
                .count() as u64;
            assert_eq!(agg.count, log_count, "region {}", agg.region);
        }
        let total: u64 = aggregates.iter().map(|a| a.count).sum();
        assert_eq!(total, records.len() as u64);
    }

    #[test]
    fn deterministic_given_seed() {
        let events = [EventKind::Instructions];
        let mk = || {
            let reader = LimitReader::with_events(events.to_vec());
            run(&small_cfg(), &reader, 2, &events, KernelConfig::default()).unwrap()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.report.total_cycles, b.report.total_cycles);
        assert_eq!(
            a.session.all_records().unwrap(),
            b.session.all_records().unwrap()
        );
    }
}
