//! An Apache-like web server (supporting case study, experiment E9).
//!
//! Request-per-thread workers, each processing a stream of requests with
//! three phases: **parse** (compute + light branching), **handler**
//! (document lookup: random reads over a large docs region — some requests
//! hit hot documents, some cold) and **log** (a shared access-log mutex +
//! appends). Each phase is an instrumented region and a named PC range, so
//! per-request accounting — the thing syscall-priced probes are too heavy
//! to do — is one LiMiT read pair per phase boundary.

use crate::{locks, prng};
use limit::harness::{Session, SessionBuilder};
use limit::report::Regions;
use limit::{CounterReader, Instrumenter};
use sim_core::{SimError, SimResult};
use sim_cpu::{AluOp, Asm, Cond, EventKind, MemLayout, Reg};
use sim_os::{KernelConfig, RunReport};

/// Apache-workload parameters.
#[derive(Debug, Clone)]
pub struct ApacheConfig {
    /// Worker threads.
    pub workers: usize,
    /// Requests per worker.
    pub requests_per_worker: u64,
    /// Docs region size in bytes (power of two).
    pub docs_bytes: u64,
    /// Random document reads per request.
    pub reads_per_request: u64,
    /// Parse-phase instructions.
    pub parse_instrs: u32,
    /// Handler compute instructions (beyond the reads).
    pub handler_instrs: u32,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ApacheConfig {
    fn default() -> Self {
        ApacheConfig {
            workers: 8,
            requests_per_worker: 100,
            docs_bytes: 8 << 20,
            reads_per_request: 48,
            parse_instrs: 300,
            handler_instrs: 800,
            seed: 0xA9AC,
        }
    }
}

impl ApacheConfig {
    /// Validates sizes.
    pub fn validate(&self) -> SimResult<()> {
        if !self.docs_bytes.is_power_of_two() {
            return Err(SimError::Config("docs_bytes must be a power of two".into()));
        }
        if self.workers == 0 || self.requests_per_worker == 0 {
            return Err(SimError::Config(
                "workers and requests must be non-zero".into(),
            ));
        }
        Ok(())
    }
}

/// Region ids for the Apache phases.
#[derive(Debug, Clone, Copy)]
pub struct ApacheRegions {
    /// Parse phase.
    pub parse: u64,
    /// Handler phase.
    pub handler: u64,
    /// Log phase (mutex + append).
    pub log: u64,
}

impl ApacheRegions {
    /// `(id, name)` pairs in request order.
    pub fn phases(&self) -> [(u64, &'static str); 3] {
        [
            (self.parse, "parse"),
            (self.handler, "handler"),
            (self.log, "log"),
        ]
    }
}

/// An emitted Apache image.
#[derive(Debug, Clone)]
pub struct ApacheImage {
    /// Worker entry symbol.
    pub entry: &'static str,
    /// Region ids.
    pub regions: ApacheRegions,
    /// The access-log mutex address.
    pub log_lock: u64,
    /// The shared log-cursor address (advances 32 bytes per request).
    pub log_cursor: u64,
    /// The configuration.
    pub cfg: ApacheConfig,
}

/// Emits the worker program.
pub fn emit(
    asm: &mut Asm,
    layout: &mut MemLayout,
    regions: &mut Regions,
    reader: &dyn CounterReader,
    cfg: &ApacheConfig,
) -> SimResult<ApacheImage> {
    cfg.validate()?;
    let docs = layout.alloc(cfg.docs_bytes, 4096);
    let log_lock = layout.alloc(8, 64);
    let log_cursor = layout.alloc(8, 64);
    let log_data = layout.alloc(128 * 1024, 64);

    let r = ApacheRegions {
        parse: regions.define("apache.parse"),
        handler: regions.define("apache.handler"),
        log: regions.define("apache.log"),
    };
    let ins = Instrumenter::new(reader);
    let instrumented = reader.counters() > 0;

    asm.export("apache_worker");
    asm.mov(Reg::R8, Reg::R1); // seed, before setup clobbers r1
    reader.emit_thread_setup(asm);
    asm.imm(Reg::R2, 0);
    asm.imm(Reg::R9, cfg.requests_per_worker);

    let rq_top = asm.new_label();
    asm.bind(rq_top);

    // --- parse ---
    if instrumented {
        ins.emit_enter(asm);
    }
    asm.begin_range("apache.parse");
    asm.burst(cfg.parse_instrs);
    // A few data-dependent branches (header parsing).
    asm.imm(Reg::R12, 6);
    let pt = asm.new_label();
    let podd = asm.new_label();
    let pnext = asm.new_label();
    asm.bind(pt);
    prng::emit_next_below(asm, Reg::R8, Reg::R10, 2);
    asm.br(Cond::Eq, Reg::R10, Reg::R2, podd);
    asm.burst(10);
    asm.jmp(pnext);
    asm.bind(podd);
    asm.burst(14);
    asm.bind(pnext);
    asm.alui_sub(Reg::R12, 1);
    asm.br(Cond::Ne, Reg::R12, Reg::R2, pt);
    asm.end_range("apache.parse");
    if instrumented {
        ins.emit_exit(asm, r.parse);
    }

    // --- handler ---
    if instrumented {
        ins.emit_enter(asm);
    }
    asm.begin_range("apache.handler");
    asm.burst(cfg.handler_instrs);
    asm.imm(Reg::R12, cfg.reads_per_request);
    let ht = asm.new_label();
    asm.bind(ht);
    prng::emit_next_below(asm, Reg::R8, Reg::R10, cfg.docs_bytes);
    asm.alui(AluOp::And, Reg::R10, !7u64);
    asm.imm(Reg::R11, docs);
    asm.add(Reg::R11, Reg::R10);
    asm.load(Reg::R6, Reg::R11, 0);
    asm.alui_sub(Reg::R12, 1);
    asm.br(Cond::Ne, Reg::R12, Reg::R2, ht);
    asm.end_range("apache.handler");
    if instrumented {
        ins.emit_exit(asm, r.handler);
    }

    // --- log ---
    if instrumented {
        ins.emit_enter(asm);
    }
    asm.begin_range("apache.log");
    asm.imm(Reg::R13, log_lock);
    locks::emit_lock(asm, Reg::R13);
    asm.imm(Reg::R6, 32);
    asm.imm(Reg::R11, log_cursor);
    asm.fetch_add(Reg::R6, Reg::R11, 0);
    asm.alui(AluOp::And, Reg::R6, 128 * 1024 - 1);
    asm.alui(AluOp::And, Reg::R6, !7u64);
    asm.alui_add(Reg::R6, log_data);
    for w in 0..4 {
        asm.store(Reg::R8, Reg::R6, 8 * w);
    }
    locks::emit_unlock(asm, Reg::R13);
    asm.end_range("apache.log");
    if instrumented {
        ins.emit_exit(asm, r.log);
    }

    asm.alui_sub(Reg::R9, 1);
    asm.br(Cond::Ne, Reg::R9, Reg::R2, rq_top);
    asm.halt();

    Ok(ApacheImage {
        entry: "apache_worker",
        regions: r,
        log_lock,
        log_cursor,
        cfg: cfg.clone(),
    })
}

/// A completed Apache run.
#[derive(Debug)]
pub struct ApacheRun {
    /// The finished session.
    pub session: Session,
    /// The emitted image.
    pub image: ApacheImage,
    /// The kernel's run report.
    pub report: RunReport,
}

/// Builds the Apache workload — all workers spawned — without running
/// it, so the caller can attach a flight recorder or drive the kernel
/// itself (see [`crate::mysqld::build`]).
pub fn build(
    cfg: &ApacheConfig,
    reader: &dyn CounterReader,
    cores: usize,
    events: &[EventKind],
    kernel_cfg: KernelConfig,
) -> SimResult<(Session, ApacheImage)> {
    let mut layout = MemLayout::default();
    let mut regions = Regions::new();
    let mut asm = Asm::new();
    let image = emit(&mut asm, &mut layout, &mut regions, reader, cfg)?;
    let mut session = SessionBuilder::new(cores)
        .events(events)
        .with_layout(layout)
        .kernel_config(kernel_cfg)
        .build(asm)?;
    session.regions = regions;
    let mut seed = sim_core::DetRng::new(cfg.seed);
    for _ in 0..cfg.workers {
        let s = seed.next_u64();
        session.spawn_instrumented(image.entry, &[s])?;
    }
    Ok((session, image))
}

/// Builds, runs, and returns the Apache workload under the given reader.
pub fn run(
    cfg: &ApacheConfig,
    reader: &dyn CounterReader,
    cores: usize,
    events: &[EventKind],
    kernel_cfg: KernelConfig,
) -> SimResult<ApacheRun> {
    let (mut session, image) = build(cfg, reader, cores, events, kernel_cfg)?;
    let report = session.run()?;
    Ok(ApacheRun {
        session,
        image,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::reader::{LimitReader, NullReader};

    fn small_cfg() -> ApacheConfig {
        ApacheConfig {
            workers: 4,
            requests_per_worker: 25,
            docs_bytes: 256 << 10,
            reads_per_request: 16,
            ..Default::default()
        }
    }

    #[test]
    fn uninstrumented_run_completes() {
        let run = run(
            &small_cfg(),
            &NullReader::new(),
            4,
            &[],
            KernelConfig::default(),
        )
        .unwrap();
        assert!(run.report.total_cycles > 0);
    }

    #[test]
    fn per_phase_records_cover_every_request() {
        let events = [EventKind::Cycles, EventKind::LlcMisses];
        let reader = LimitReader::with_events(events.to_vec());
        let cfg = small_cfg();
        let run = run(&cfg, &reader, 4, &events, KernelConfig::default()).unwrap();
        let records = run.session.all_records().unwrap();
        let expected = cfg.workers as u64 * cfg.requests_per_worker;
        for (id, name) in run.image.regions.phases() {
            let n = records.iter().filter(|(_, r)| r.region == id).count() as u64;
            assert_eq!(n, expected, "{name} records");
        }
    }

    #[test]
    fn handler_dominates_llc_misses() {
        let events = [EventKind::Cycles, EventKind::LlcMisses];
        let reader = LimitReader::with_events(events.to_vec());
        let cfg = ApacheConfig {
            docs_bytes: 16 << 20, // well beyond the LLC
            ..small_cfg()
        };
        let run = run(&cfg, &reader, 4, &events, KernelConfig::default()).unwrap();
        let records = run.session.all_records().unwrap();
        let misses = |id: u64| -> u64 {
            records
                .iter()
                .filter(|(_, r)| r.region == id)
                .map(|(_, r)| r.deltas[1])
                .sum()
        };
        let handler = misses(run.image.regions.handler);
        let parse = misses(run.image.regions.parse);
        assert!(
            handler > 10 * parse.max(1),
            "handler={handler} parse={parse}"
        );
    }

    #[test]
    fn log_mutex_serializes_appends() {
        let cfg = small_cfg();
        let run = run(&cfg, &NullReader::new(), 4, &[], KernelConfig::default()).unwrap();
        // The shared cursor advanced 32 bytes per request, exactly — only
        // possible if the mutex serialized every append.
        let cursor = run.session.read_u64(run.image.log_cursor).unwrap();
        assert_eq!(cursor, 32 * cfg.workers as u64 * cfg.requests_per_worker);
    }

    #[test]
    fn phase_pc_ranges_are_exported() {
        let mut asm = Asm::new();
        let mut layout = MemLayout::default();
        let mut regions = Regions::new();
        emit(
            &mut asm,
            &mut layout,
            &mut regions,
            &NullReader::new(),
            &small_cfg(),
        )
        .unwrap();
        let prog = asm.assemble().unwrap();
        for name in ["apache.parse", "apache.handler", "apache.log"] {
            assert!(prog.range(name).is_ok(), "missing range {name}");
        }
    }
}
