//! Guest mutexes: glibc-style three-state futex locks.
//!
//! States: 0 = free, 1 = locked, 2 = locked with waiters. The fast path is
//! two instructions (immediate + atomic exchange); the slow path marks the
//! lock contended and blocks in `futex_wait`. Unlock is an atomic exchange
//! plus a conditional `futex_wake` only when waiters might exist — so an
//! uncontended acquire/release pair never enters the kernel, exactly like
//! production futex locks. Lock hold times and handoff latencies therefore
//! respond to contention the way the MySQL case study requires.
//!
//! Register discipline: both helpers clobber `r4` (and `r0`/`r1` on the
//! slow path only). The lock-word address register is preserved.

use sim_cpu::{Asm, Cond, Reg};
use sim_os::syscall::nr;

/// Polite-read spin iterations before a contended acquire blocks.
pub const SPIN_LIMIT: u64 = 24;

/// Emits an adaptive acquire of the lock word whose address is in `addr`.
///
/// Three phases, like glibc's adaptive mutex: an atomic fast path
/// (`0 -> 1`), a bounded polite-read spin, then mark-contended (`-> 2`)
/// and block in `futex_wait`. Every acquire attempt after the fast path
/// writes 2, so a sleeping waiter's contended mark can never be clobbered
/// (no lost wakeups). The spin burns *user* cycles, so contention is
/// visible to virtualized cycle counters — as it is on real hardware.
///
/// Clobbers `r0`/`r1`/`r4`/`r5`.
pub fn emit_lock(asm: &mut Asm, addr: Reg) {
    debug_assert!(![Reg::R4, Reg::R5, Reg::R0, Reg::R1].contains(&addr));
    let done = asm.new_label();
    let spin_top = asm.new_label();
    let attempt = asm.new_label();
    let block = asm.new_label();
    // Fast path: 0 -> 1.
    asm.imm(Reg::R4, 1);
    asm.xchg(Reg::R4, addr, 0);
    asm.imm(Reg::R0, 0);
    asm.br(Cond::Eq, Reg::R4, Reg::R0, done);
    // Spin phase: read-only polling with a pause, bounded.
    asm.imm(Reg::R5, SPIN_LIMIT);
    asm.bind(spin_top);
    asm.load(Reg::R4, addr, 0);
    asm.imm(Reg::R0, 0);
    asm.br(Cond::Eq, Reg::R4, Reg::R0, attempt);
    asm.burst(4); // pause
    asm.alui_sub(Reg::R5, 1);
    asm.imm(Reg::R0, 0);
    asm.br(Cond::Ne, Reg::R5, Reg::R0, spin_top);
    asm.jmp(block);
    // The word looked free: try to take it, marking contended.
    asm.bind(attempt);
    asm.imm(Reg::R4, 2);
    asm.xchg(Reg::R4, addr, 0);
    asm.imm(Reg::R0, 0);
    asm.br(Cond::Eq, Reg::R4, Reg::R0, done);
    asm.alui_sub(Reg::R5, 1);
    asm.imm(Reg::R0, 0);
    asm.br(Cond::Ne, Reg::R5, Reg::R0, spin_top);
    // Blocking phase: mark contended and wait while the word is 2.
    asm.bind(block);
    asm.imm(Reg::R4, 2);
    asm.xchg(Reg::R4, addr, 0);
    asm.imm(Reg::R0, 0);
    asm.br(Cond::Eq, Reg::R4, Reg::R0, done);
    asm.mov(Reg::R0, addr);
    asm.imm(Reg::R1, 2);
    asm.syscall(nr::FUTEX_WAIT);
    asm.jmp(block);
    asm.bind(done);
}

/// Emits a release of the lock word whose address is in `addr`.
///
/// Clobbers `r4`/`r5`, and `r0`/`r1` on the wake path.
pub fn emit_unlock(asm: &mut Asm, addr: Reg) {
    debug_assert!(![Reg::R4, Reg::R5, Reg::R0, Reg::R1].contains(&addr));
    let done = asm.new_label();
    asm.imm(Reg::R4, 0);
    asm.xchg(Reg::R4, addr, 0);
    // Old value 1: nobody waiting, skip the kernel.
    asm.imm(Reg::R5, 1);
    asm.br(Cond::Eq, Reg::R4, Reg::R5, done);
    asm.mov(Reg::R0, addr);
    asm.imm(Reg::R1, 1);
    asm.syscall(nr::FUTEX_WAKE);
    asm.bind(done);
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::harness::SessionBuilder;

    /// N threads each increment a shared (non-atomic) counter M times under
    /// the lock; the final value proves mutual exclusion.
    fn run_counter_race(threads: usize, cores: usize, incs: u64) -> u64 {
        let lock_addr = 0x40000u64;
        let counter_addr = 0x40040u64;
        let mut b = SessionBuilder::new(cores);
        let mut asm = b.asm();
        asm.export("worker");
        asm.imm(Reg::R13, lock_addr);
        asm.imm(Reg::R12, counter_addr);
        asm.imm(Reg::R9, incs);
        asm.imm(Reg::R10, 0);
        let top = asm.new_label();
        asm.bind(top);
        emit_lock(&mut asm, Reg::R13);
        // Deliberately non-atomic read-modify-write: only the lock
        // serializes it. A burst inside widens the race window.
        asm.load(Reg::R11, Reg::R12, 0);
        asm.burst(20);
        asm.alui_add(Reg::R11, 1);
        asm.store(Reg::R11, Reg::R12, 0);
        emit_unlock(&mut asm, Reg::R13);
        asm.alui_sub(Reg::R9, 1);
        asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
        asm.halt();
        let kcfg = sim_os::KernelConfig {
            quantum: 5_000, // frequent preemption widens races
            ..Default::default()
        };
        let mut s = b.kernel_config(kcfg).build(asm).unwrap();
        for _ in 0..threads {
            s.spawn_instrumented("worker", &[]).unwrap();
        }
        s.run().unwrap();
        s.read_u64(counter_addr).unwrap()
    }

    #[test]
    fn lock_provides_mutual_exclusion_single_core() {
        assert_eq!(run_counter_race(4, 1, 200), 800);
    }

    #[test]
    fn lock_provides_mutual_exclusion_multi_core() {
        assert_eq!(run_counter_race(4, 4, 200), 800);
    }

    #[test]
    fn contended_lock_blocks_rather_than_spins() {
        // One thread holds the lock for a long burst; the waiter must
        // futex-block (observable as futex waits in the report).
        let lock_addr = 0x40000u64;
        let mut b = SessionBuilder::new(2);
        let mut asm = b.asm();
        asm.export("holder");
        asm.imm(Reg::R13, lock_addr);
        emit_lock(&mut asm, Reg::R13);
        asm.burst(60_000);
        emit_unlock(&mut asm, Reg::R13);
        asm.halt();
        asm.export("waiter");
        asm.burst(1_000); // let the holder grab it first
        asm.imm(Reg::R13, lock_addr);
        emit_lock(&mut asm, Reg::R13);
        emit_unlock(&mut asm, Reg::R13);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.spawn_instrumented("holder", &[]).unwrap();
        s.spawn_instrumented("waiter", &[]).unwrap();
        let report = s.run().unwrap();
        assert!(report.futex.0 >= 1, "waiter must block: {:?}", report.futex);
        assert!(report.futex.1 >= 1, "holder must wake: {:?}", report.futex);
    }

    #[test]
    fn uncontended_lock_never_enters_the_kernel() {
        let lock_addr = 0x40000u64;
        let mut b = SessionBuilder::new(1);
        let mut asm = b.asm();
        asm.export("solo");
        asm.imm(Reg::R13, lock_addr);
        asm.imm(Reg::R9, 100);
        asm.imm(Reg::R10, 0);
        let top = asm.new_label();
        asm.bind(top);
        emit_lock(&mut asm, Reg::R13);
        emit_unlock(&mut asm, Reg::R13);
        asm.alui_sub(Reg::R9, 1);
        asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.spawn_instrumented("solo", &[]).unwrap();
        let report = s.run().unwrap();
        assert_eq!(report.futex, (0, 0), "no futex traffic when uncontended");
        assert_eq!(report.syscalls, 0);
    }

    #[test]
    fn lock_word_returns_to_zero() {
        let lock_addr = 0x40000u64;
        let mut b = SessionBuilder::new(2);
        let mut asm = b.asm();
        asm.export("worker");
        asm.imm(Reg::R13, lock_addr);
        asm.imm(Reg::R9, 50);
        asm.imm(Reg::R10, 0);
        let top = asm.new_label();
        asm.bind(top);
        emit_lock(&mut asm, Reg::R13);
        asm.burst(30);
        emit_unlock(&mut asm, Reg::R13);
        asm.alui_sub(Reg::R9, 1);
        asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.spawn_instrumented("worker", &[]).unwrap();
        s.spawn_instrumented("worker", &[]).unwrap();
        s.run().unwrap();
        assert_eq!(s.read_u64(lock_addr).unwrap(), 0);
    }
}
