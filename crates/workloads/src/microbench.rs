//! The read-cost microbenchmark (experiment E1): how many cycles does one
//! counter read cost under each access method?

use limit::harness::{Session, SessionBuilder};
use limit::CounterReader;
use sim_core::{Cycles, SimResult};
use sim_cpu::{Cond, EventKind, Reg};
use sim_os::syscall::nr;

/// Result of one read-cost measurement.
#[derive(Debug, Clone)]
pub struct ReadCost {
    /// Method name ("limit", "perf", "papi", "rdtsc", "none").
    pub method: &'static str,
    /// Number of reads in the timed loop.
    pub reads: u64,
    /// Total guest cycles for the read loop (rdtsc-bracketed).
    pub total_cycles: u64,
    /// Guest cycles for an identical loop with the read replaced by a nop.
    pub baseline_cycles: u64,
}

impl ReadCost {
    /// Net cycles per read, loop overhead subtracted.
    pub fn cycles_per_read(&self) -> f64 {
        self.total_cycles.saturating_sub(self.baseline_cycles) as f64 / self.reads as f64
    }

    /// Net nanoseconds per read at the given frequency.
    pub fn nanos_per_read(&self, freq: sim_core::Freq) -> f64 {
        Cycles::new(self.cycles_per_read().round() as u64).to_nanos(freq)
    }
}

fn timed_loop(
    reader: &dyn CounterReader,
    reads: u64,
    with_read: bool,
) -> SimResult<(u64, Session)> {
    let events = [EventKind::Instructions];
    let mut b = SessionBuilder::new(1).events(&events);
    let mut asm = b.asm();
    asm.export("main");
    reader.emit_thread_setup(&mut asm);
    asm.imm(Reg::R9, reads);
    asm.imm(Reg::R10, 0);
    asm.rdtsc(Reg::R12);
    let top = asm.new_label();
    asm.bind(top);
    if with_read {
        reader.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
    } else {
        asm.nop();
    }
    asm.alui_sub(Reg::R9, 1);
    asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
    asm.rdtsc(Reg::R13);
    asm.sub(Reg::R13, Reg::R12);
    asm.mov(Reg::R0, Reg::R13);
    asm.syscall(nr::LOG_VALUE);
    asm.halt();
    let mut s = b.build(asm)?;
    s.spawn_instrumented("main", &[])?;
    s.run()?;
    Ok((s.kernel.log()[0], s))
}

/// Measures the per-read cost of a method over `reads` reads.
///
/// The reader must attach at least one counter (use 1 for an apples-to-
/// apples comparison); the baseline loop replaces the read with a `nop`.
pub fn measure_read_cost(reader: &dyn CounterReader, reads: u64) -> SimResult<ReadCost> {
    let (total_cycles, _) = timed_loop(reader, reads, true)?;
    let (baseline_cycles, _) = timed_loop(reader, reads, false)?;
    Ok(ReadCost {
        method: reader.name(),
        reads,
        total_cycles,
        baseline_cycles,
    })
}

/// Measures the cost of reading `counters` counters back-to-back (one
/// "measurement event" in a tool that records several events per region).
/// The baseline loop replaces the reads with an equal number of nops.
pub fn measure_multi_read_cost(
    reader: &dyn CounterReader,
    counters: usize,
    reads: u64,
) -> SimResult<ReadCost> {
    assert!(counters >= 1 && counters <= reader.counters().max(1));
    let run = |with_read: bool| -> SimResult<u64> {
        let events = [
            EventKind::Instructions,
            EventKind::Cycles,
            EventKind::LlcMisses,
            EventKind::BranchMisses,
        ];
        let mut b = SessionBuilder::new(1).events(&events[..counters.max(1)]);
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        asm.imm(Reg::R9, reads);
        asm.imm(Reg::R10, 0);
        asm.rdtsc(Reg::R12);
        let top = asm.new_label();
        asm.bind(top);
        for i in 0..counters {
            if with_read {
                reader.emit_read(&mut asm, i, Reg::R4, Reg::R5);
            } else {
                asm.nop();
            }
        }
        asm.alui_sub(Reg::R9, 1);
        asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
        asm.rdtsc(Reg::R13);
        asm.sub(Reg::R13, Reg::R12);
        asm.mov(Reg::R0, Reg::R13);
        asm.syscall(nr::LOG_VALUE);
        asm.halt();
        let mut s = b.build(asm)?;
        s.spawn_instrumented("main", &[])?;
        s.run()?;
        Ok(s.kernel.log()[0])
    };
    Ok(ReadCost {
        method: reader.name(),
        reads,
        total_cycles: run(true)?,
        baseline_cycles: run(false)?,
    })
}

/// Collects per-read latency samples: each read is bracketed by `rdtsc`
/// pairs and the raw deltas (including the two rdtsc executions) are
/// written to a guest array extracted afterwards.
pub fn read_latency_samples(reader: &dyn CounterReader, reads: u64) -> SimResult<Vec<u64>> {
    let events = [EventKind::Instructions];
    let mut layout = sim_cpu::MemLayout::default();
    let out_base = layout.alloc(reads * 8, 64);
    let mut b = SessionBuilder::new(1).events(&events).with_layout(layout);
    let mut asm = b.asm();
    asm.export("main");
    reader.emit_thread_setup(&mut asm);
    asm.imm(Reg::R9, reads);
    asm.imm(Reg::R10, 0);
    asm.imm(Reg::R11, out_base);
    let top = asm.new_label();
    asm.bind(top);
    asm.rdtsc(Reg::R12);
    reader.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
    asm.rdtsc(Reg::R13);
    asm.sub(Reg::R13, Reg::R12);
    asm.store(Reg::R13, Reg::R11, 0);
    asm.alui_add(Reg::R11, 8);
    asm.alui_sub(Reg::R9, 1);
    asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
    asm.halt();
    let mut s = b.build(asm)?;
    s.spawn_instrumented("main", &[])?;
    s.run()?;
    (0..reads).map(|i| s.read_u64(out_base + i * 8)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::reader::LimitReader;

    #[test]
    fn limit_read_costs_low_tens_of_nanoseconds() {
        let reader = LimitReader::new(1);
        let rc = measure_read_cost(&reader, 1_000).unwrap();
        let cy = rc.cycles_per_read();
        // The paper's headline: a precise virtualized read in low tens of
        // ns. At 2.5 GHz that is roughly 25..125 cycles.
        assert!((25.0..125.0).contains(&cy), "limit read cost {cy} cycles");
        let ns = rc.nanos_per_read(sim_core::Freq::DEFAULT);
        assert!((10.0..50.0).contains(&ns), "{ns} ns");
    }

    #[test]
    fn latency_samples_are_stable_without_interference() {
        let reader = LimitReader::new(1);
        let samples = read_latency_samples(&reader, 200).unwrap();
        assert_eq!(samples.len(), 200);
        // Steady state: after the first few (cache-cold) reads, latency is
        // flat.
        let warm = &samples[5..];
        let min = *warm.iter().min().unwrap();
        let max = *warm.iter().max().unwrap();
        assert!(min > 0);
        assert!(max < min + 100, "min={min} max={max}");
    }
}
