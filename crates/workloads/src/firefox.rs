//! A Firefox-like event-loop application (case study of E5/E8).
//!
//! The paper's Firefox insight is that interactive applications run *many
//! very short, heterogeneous tasks* whose per-class behaviour sampling
//! profilers blur together. The reproduction models the browser main
//! thread as an event loop dispatching five task classes with distinct
//! lengths and microarchitectural signatures, plus streaming helper
//! threads (image decoders):
//!
//! | class | length | signature |
//! |---|---|---|
//! | `ui`     | ~150 instr  | pure compute |
//! | `js`     | ~1 k instr  | data-dependent branches (mispredicts) |
//! | `layout` | ~2 k instr  | pointer-chasey reads over the DOM |
//! | `paint`  | ~1.5 k instr| sequential stores to the framebuffer |
//! | `gc`     | ~10 k instr | random reads over the whole heap |
//!
//! Every task body is wrapped both in an instrumented *region* (precise
//! per-task deltas under a LiMiT/perf reader) and in a named *PC range*
//! (`fx.task.<class>`) so sampling hits can be attributed post-run — the
//! two attribution paths experiment E5 compares.

use crate::prng;
use limit::harness::{Session, SessionBuilder};
use limit::report::Regions;
use limit::{CounterReader, Instrumenter};
use sim_core::{SimError, SimResult};
use sim_cpu::{AluOp, Asm, Cond, EventKind, MemLayout, Reg};
use sim_os::{KernelConfig, RunReport};

/// Task classes, in dispatch order.
pub const TASK_CLASSES: [&str; 5] = ["ui", "js", "layout", "paint", "gc"];

/// Firefox-workload parameters.
#[derive(Debug, Clone)]
pub struct FirefoxConfig {
    /// Main-loop iterations (tasks dispatched).
    pub tasks: u64,
    /// Helper (image-decoder) threads.
    pub helpers: usize,
    /// DOM size in bytes (power of two).
    pub dom_bytes: u64,
    /// JS/GC heap size in bytes (power of two).
    pub heap_bytes: u64,
    /// Framebuffer size in bytes (power of two).
    pub fb_bytes: u64,
    /// Image-buffer size per helper in bytes (power of two).
    pub img_bytes: u64,
    /// Dispatch weights out of 1024 for `ui, js, layout, paint, gc`.
    pub weights: [u64; 5],
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for FirefoxConfig {
    fn default() -> Self {
        FirefoxConfig {
            tasks: 400,
            helpers: 2,
            dom_bytes: 1 << 20,
            heap_bytes: 4 << 20,
            fb_bytes: 512 << 10,
            img_bytes: 1 << 20,
            // Mostly short tasks; GC is rare.
            weights: [440, 280, 160, 128, 16],
            seed: 0xF0F0,
        }
    }
}

impl FirefoxConfig {
    /// Validates sizes and weights.
    pub fn validate(&self) -> SimResult<()> {
        for (name, v) in [
            ("dom_bytes", self.dom_bytes),
            ("heap_bytes", self.heap_bytes),
            ("fb_bytes", self.fb_bytes),
            ("img_bytes", self.img_bytes),
        ] {
            if !v.is_power_of_two() {
                return Err(SimError::Config(format!("{name} must be a power of two")));
            }
        }
        if self.weights.iter().sum::<u64>() != 1024 {
            return Err(SimError::Config("weights must sum to 1024".into()));
        }
        if self.tasks == 0 {
            return Err(SimError::Config("tasks must be non-zero".into()));
        }
        Ok(())
    }
}

/// Region ids per task class, in [`TASK_CLASSES`] order.
#[derive(Debug, Clone, Copy)]
pub struct FirefoxRegions {
    /// Region ids for `ui, js, layout, paint, gc`.
    pub task: [u64; 5],
}

/// An emitted Firefox image.
#[derive(Debug, Clone)]
pub struct FirefoxImage {
    /// Main-thread entry symbol.
    pub entry_main: &'static str,
    /// Helper-thread entry symbol.
    pub entry_helper: &'static str,
    /// Region ids.
    pub regions: FirefoxRegions,
    /// The configuration.
    pub cfg: FirefoxConfig,
}

/// Emits the main-loop and helper programs.
pub fn emit(
    asm: &mut Asm,
    layout: &mut MemLayout,
    regions: &mut Regions,
    reader: &dyn CounterReader,
    cfg: &FirefoxConfig,
) -> SimResult<FirefoxImage> {
    cfg.validate()?;
    let dom = layout.alloc(cfg.dom_bytes, 4096);
    let heap = layout.alloc(cfg.heap_bytes, 4096);
    let fb = layout.alloc(cfg.fb_bytes, 4096);
    let img = layout.alloc(cfg.img_bytes * cfg.helpers.max(1) as u64, 4096);

    let task_ids = [
        regions.define("fx.ui"),
        regions.define("fx.js"),
        regions.define("fx.layout"),
        regions.define("fx.paint"),
        regions.define("fx.gc"),
    ];
    let ins = Instrumenter::new(reader);
    let instrumented = reader.counters() > 0;

    asm.export("fx_main");
    asm.mov(Reg::R8, Reg::R1); // seed before setup clobbers r1
    reader.emit_thread_setup(asm);
    asm.imm(Reg::R2, 0);
    asm.imm(Reg::R9, cfg.tasks);

    let loop_top = asm.new_label();
    let dispatch_end = asm.new_label();
    asm.bind(loop_top);

    // Dispatch on cumulative weights.
    prng::emit_next_below(asm, Reg::R8, Reg::R10, 1024);
    let mut class_labels = Vec::new();
    let mut acc = 0u64;
    for w in cfg.weights.iter().take(4) {
        acc += w;
        let l = asm.new_label();
        asm.imm(Reg::R12, acc);
        asm.br(Cond::Lt, Reg::R10, Reg::R12, l);
        class_labels.push(l);
    }
    let gc_label = asm.new_label();
    asm.jmp(gc_label);
    class_labels.push(gc_label);

    // Emit each class body: label, range, instrumented region, then loop.
    for (i, class) in TASK_CLASSES.iter().enumerate() {
        asm.bind(class_labels[i]);
        let range = format!("fx.task.{class}");
        asm.begin_range(&range);
        if instrumented {
            ins.emit_enter(asm);
        }
        match *class {
            "ui" => {
                asm.burst(150);
            }
            "js" => {
                // 40 rounds of data-dependent branching compute.
                asm.imm(Reg::R12, 40);
                let t = asm.new_label();
                let odd = asm.new_label();
                let next = asm.new_label();
                asm.bind(t);
                prng::emit_next_below(asm, Reg::R8, Reg::R10, 2);
                asm.br(Cond::Eq, Reg::R10, Reg::R2, odd);
                asm.burst(25);
                asm.jmp(next);
                asm.bind(odd);
                asm.burst(15);
                asm.bind(next);
                asm.alui_sub(Reg::R12, 1);
                asm.br(Cond::Ne, Reg::R12, Reg::R2, t);
            }
            "layout" => {
                // 120 random DOM reads with a little compute each.
                asm.imm(Reg::R12, 120);
                let t = asm.new_label();
                asm.bind(t);
                prng::emit_next_below(asm, Reg::R8, Reg::R10, cfg.dom_bytes);
                asm.alui(AluOp::And, Reg::R10, !7u64);
                asm.imm(Reg::R11, dom);
                asm.add(Reg::R11, Reg::R10);
                asm.load(Reg::R6, Reg::R11, 0);
                asm.burst(8);
                asm.alui_sub(Reg::R12, 1);
                asm.br(Cond::Ne, Reg::R12, Reg::R2, t);
            }
            "paint" => {
                // Stream stores across 64 framebuffer lines + blend cost.
                prng::emit_next_below(asm, Reg::R8, Reg::R10, cfg.fb_bytes / 2);
                asm.alui(AluOp::And, Reg::R10, !63u64);
                asm.imm(Reg::R11, fb);
                asm.add(Reg::R11, Reg::R10);
                asm.imm(Reg::R12, 64);
                let t = asm.new_label();
                asm.bind(t);
                asm.store(Reg::R8, Reg::R11, 0);
                asm.alui_add(Reg::R11, 64);
                asm.burst(16);
                asm.alui_sub(Reg::R12, 1);
                asm.br(Cond::Ne, Reg::R12, Reg::R2, t);
            }
            "gc" => {
                // 600 random reads across the whole heap.
                asm.imm(Reg::R12, 600);
                let t = asm.new_label();
                asm.bind(t);
                prng::emit_next_below(asm, Reg::R8, Reg::R10, cfg.heap_bytes);
                asm.alui(AluOp::And, Reg::R10, !7u64);
                asm.imm(Reg::R11, heap);
                asm.add(Reg::R11, Reg::R10);
                asm.load(Reg::R6, Reg::R11, 0);
                asm.burst(10);
                asm.alui_sub(Reg::R12, 1);
                asm.br(Cond::Ne, Reg::R12, Reg::R2, t);
            }
            _ => unreachable!(),
        }
        if instrumented {
            ins.emit_exit(asm, task_ids[i]);
        }
        asm.end_range(&range);
        asm.jmp(dispatch_end);
    }

    asm.bind(dispatch_end);
    asm.alui_sub(Reg::R9, 1);
    asm.br(Cond::Ne, Reg::R9, Reg::R2, loop_top);
    asm.halt();

    // Helper: stream-decode an image buffer repeatedly.
    asm.export("fx_helper");
    asm.mov(Reg::R8, Reg::R1); // helper index
    reader.emit_thread_setup(asm);
    asm.imm(Reg::R2, 0);
    // r11 = this helper's image buffer.
    asm.mov(Reg::R11, Reg::R8);
    asm.alui(AluOp::Mul, Reg::R11, cfg.img_bytes);
    asm.alui_add(Reg::R11, img);
    asm.imm(Reg::R9, 3); // decode passes
    let hp = asm.new_label();
    asm.bind(hp);
    asm.mov(Reg::R13, Reg::R11);
    asm.imm(Reg::R12, cfg.img_bytes / 64);
    let ht = asm.new_label();
    asm.bind(ht);
    asm.load(Reg::R6, Reg::R13, 0);
    asm.burst(6);
    asm.store(Reg::R6, Reg::R13, 8);
    asm.alui_add(Reg::R13, 64);
    asm.alui_sub(Reg::R12, 1);
    asm.br(Cond::Ne, Reg::R12, Reg::R2, ht);
    asm.alui_sub(Reg::R9, 1);
    asm.br(Cond::Ne, Reg::R9, Reg::R2, hp);
    asm.halt();

    Ok(FirefoxImage {
        entry_main: "fx_main",
        entry_helper: "fx_helper",
        regions: FirefoxRegions { task: task_ids },
        cfg: cfg.clone(),
    })
}

/// A completed Firefox run.
#[derive(Debug)]
pub struct FirefoxRun {
    /// The finished session.
    pub session: Session,
    /// The emitted image.
    pub image: FirefoxImage,
    /// The kernel's run report.
    pub report: RunReport,
}

/// Builds the Firefox workload — all threads spawned — without running
/// it, so the caller can attach a flight recorder or drive the kernel
/// itself (see [`crate::mysqld::build`]).
pub fn build(
    cfg: &FirefoxConfig,
    reader: &dyn CounterReader,
    cores: usize,
    events: &[EventKind],
    kernel_cfg: KernelConfig,
) -> SimResult<(Session, FirefoxImage)> {
    let mut layout = MemLayout::default();
    let mut regions = Regions::new();
    let mut asm = Asm::new();
    let image = emit(&mut asm, &mut layout, &mut regions, reader, cfg)?;
    let mut session = SessionBuilder::new(cores)
        .events(events)
        .with_layout(layout)
        .kernel_config(kernel_cfg)
        .build(asm)?;
    session.regions = regions;
    session.spawn_instrumented(image.entry_main, &[cfg.seed])?;
    for h in 0..cfg.helpers {
        session.spawn_instrumented(image.entry_helper, &[h as u64])?;
    }
    Ok((session, image))
}

/// Builds, runs, and returns the Firefox workload under the given reader.
pub fn run(
    cfg: &FirefoxConfig,
    reader: &dyn CounterReader,
    cores: usize,
    events: &[EventKind],
    kernel_cfg: KernelConfig,
) -> SimResult<FirefoxRun> {
    let (mut session, image) = build(cfg, reader, cores, events, kernel_cfg)?;
    let report = session.run()?;
    Ok(FirefoxRun {
        session,
        image,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::reader::{LimitReader, NullReader};

    fn small_cfg() -> FirefoxConfig {
        FirefoxConfig {
            tasks: 120,
            helpers: 1,
            dom_bytes: 64 << 10,
            heap_bytes: 256 << 10,
            fb_bytes: 64 << 10,
            img_bytes: 64 << 10,
            ..Default::default()
        }
    }

    #[test]
    fn weights_must_sum_to_1024() {
        let mut c = small_cfg();
        c.weights = [1, 1, 1, 1, 1];
        assert!(c.validate().is_err());
        assert!(small_cfg().validate().is_ok());
    }

    #[test]
    fn uninstrumented_run_completes() {
        let run = run(
            &small_cfg(),
            &NullReader::new(),
            2,
            &[],
            KernelConfig::default(),
        )
        .unwrap();
        assert!(run.report.total_cycles > 0);
    }

    #[test]
    fn task_mix_matches_weights_roughly() {
        let events = [EventKind::Cycles];
        let reader = LimitReader::with_events(events.to_vec());
        let cfg = FirefoxConfig {
            tasks: 600,
            ..small_cfg()
        };
        let run = run(&cfg, &reader, 2, &events, KernelConfig::default()).unwrap();
        let records = run.session.all_records().unwrap();
        let count = |id: u64| records.iter().filter(|(_, r)| r.region == id).count() as f64;
        let total: f64 = run.image.regions.task.iter().map(|&id| count(id)).sum();
        assert!((total - 600.0).abs() < 1.0, "one record per task: {total}");
        // UI should dominate; GC should be rare.
        let ui = count(run.image.regions.task[0]) / total;
        let gc = count(run.image.regions.task[4]) / total;
        assert!(ui > 0.3, "ui fraction {ui}");
        assert!(gc < 0.08, "gc fraction {gc}");
    }

    #[test]
    fn task_classes_have_distinct_cycle_signatures() {
        let events = [EventKind::Cycles];
        let reader = LimitReader::with_events(events.to_vec());
        let cfg = FirefoxConfig {
            tasks: 400,
            ..small_cfg()
        };
        let run = run(&cfg, &reader, 1, &events, KernelConfig::default()).unwrap();
        let records = run.session.all_records().unwrap();
        let mean = |id: u64| {
            let v: Vec<u64> = records
                .iter()
                .filter(|(_, r)| r.region == id)
                .map(|(_, r)| r.deltas[0])
                .collect();
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<u64>() as f64 / v.len() as f64
            }
        };
        let ui = mean(run.image.regions.task[0]);
        let gc = mean(run.image.regions.task[4]);
        assert!(ui > 0.0);
        // GC tasks are an order of magnitude (or more) longer than UI.
        assert!(gc > 8.0 * ui, "ui={ui} gc={gc}");
    }

    #[test]
    fn task_pc_ranges_are_exported() {
        let mut asm = Asm::new();
        let mut layout = MemLayout::default();
        let mut regions = Regions::new();
        emit(
            &mut asm,
            &mut layout,
            &mut regions,
            &NullReader::new(),
            &small_cfg(),
        )
        .unwrap();
        let prog = asm.assemble().unwrap();
        for class in TASK_CLASSES {
            assert!(
                prog.range(&format!("fx.task.{class}")).is_ok(),
                "missing range for {class}"
            );
        }
    }
}
