//! A log-structured store with fsync-bound commits (case study of
//! experiment E18).
//!
//! The workload reproduces the *I/O topology* of a write-ahead-logging
//! storage engine, not its data structures:
//!
//! * worker threads batch appends into an in-memory segment buffer
//!   (`store.append` — pure compute and stores),
//! * every batch commits with a blocking fsync (`store.commit` — the
//!   thread parks on the `fsync` device until the barrier completes),
//! * an occasional segment read from disk rides along in the append path
//!   (compaction stand-in), so the `disk` device sees traffic the what-if
//!   ranking must *not* blame.
//!
//! Because the kernel charges blocking-I/O waits into the parked thread's
//! virtualized cycle counter, the commit region's cycle deltas are
//! dominated by fsync latency — the signature the `io-bound` classifier
//! and the `fsync-latency` what-if knob both key on.

use crate::prng;
use limit::harness::{Session, SessionBuilder};
use limit::report::Regions;
use limit::{CounterReader, Instrumenter, LogMode};
use sim_core::{SimError, SimResult};
use sim_cpu::{AluOp, Asm, Cond, EventKind, MemLayout, Reg};
use sim_os::io::{DEV_DISK, DEV_FSYNC};
use sim_os::syscall::nr;
use sim_os::{KernelConfig, RunReport};

/// Log-store workload parameters.
#[derive(Debug, Clone)]
pub struct LogstoreConfig {
    /// Worker threads.
    pub threads: usize,
    /// Commit batches per worker.
    pub commits_per_thread: u64,
    /// Appends batched into each commit.
    pub appends_per_commit: u64,
    /// Serialization instructions per append (encode stand-in).
    pub append_instrs: u32,
    /// Per-worker segment-buffer bytes (power of two).
    pub buffer_bytes: u64,
    /// Disk segment reads per 1024 appends (compaction stand-in).
    pub disk_reads_per_1024: u64,
    /// Base RNG seed (each worker derives its own).
    pub seed: u64,
    /// Instrumentation logging mode (see [`LogMode`]).
    pub mode: LogMode,
}

impl Default for LogstoreConfig {
    fn default() -> Self {
        LogstoreConfig {
            threads: 4,
            commits_per_thread: 24,
            appends_per_commit: 16,
            append_instrs: 300,
            buffer_bytes: 64 * 1024,
            disk_reads_per_1024: 64, // ~6% of appends
            seed: 0x5706_5EED,
            mode: LogMode::Log,
        }
    }
}

impl LogstoreConfig {
    /// Validates power-of-two and non-zero requirements.
    pub fn validate(&self) -> SimResult<()> {
        if !self.buffer_bytes.is_power_of_two() {
            return Err(SimError::Config(
                "buffer_bytes must be a power of two".into(),
            ));
        }
        if self.threads == 0 || self.commits_per_thread == 0 || self.appends_per_commit == 0 {
            return Err(SimError::Config(
                "threads, commits and appends must be non-zero".into(),
            ));
        }
        if self.disk_reads_per_1024 > 1024 {
            return Err(SimError::Config(
                "disk_reads_per_1024 must be <= 1024".into(),
            ));
        }
        Ok(())
    }
}

/// Region ids of the two instrumented phases.
#[derive(Debug, Clone, Copy)]
pub struct LogstoreRegions {
    /// Append batching (compute + stores + occasional disk read).
    pub append: u64,
    /// Commit barrier (fsync wait).
    pub commit: u64,
}

impl LogstoreRegions {
    fn define(regions: &mut Regions) -> Self {
        LogstoreRegions {
            append: regions.define("store.append"),
            commit: regions.define("store.commit"),
        }
    }
}

/// Addresses and region ids of an emitted log-store image.
#[derive(Debug, Clone)]
pub struct LogstoreImage {
    /// Worker entry symbol.
    pub entry: &'static str,
    /// Region ids.
    pub regions: LogstoreRegions,
    /// Base of the per-worker segment buffers (`buffer_bytes` stride).
    pub buffer_base: u64,
    /// The configuration the image was emitted for.
    pub cfg: LogstoreConfig,
}

/// Emits the worker program into `asm`, allocating shared data in
/// `layout`. Instrumentation is emitted only when the reader attaches at
/// least one counter.
pub fn emit(
    asm: &mut Asm,
    layout: &mut MemLayout,
    regions: &mut Regions,
    reader: &dyn CounterReader,
    cfg: &LogstoreConfig,
) -> SimResult<LogstoreImage> {
    cfg.validate()?;
    let r = LogstoreRegions::define(regions);
    let buffer_base = layout.alloc(cfg.threads as u64 * cfg.buffer_bytes, 4096);

    let ins = Instrumenter::new(reader);
    let instrumented = reader.counters() > 0;
    let enter = |asm: &mut Asm| {
        if instrumented {
            ins.emit_enter(asm);
        }
    };
    let mode = cfg.mode;
    let exit = |asm: &mut Asm, region: u64| {
        if instrumented {
            ins.emit_exit_mode(asm, region, mode);
        }
    };

    asm.export("logstore_worker");
    // Save spawn args before reader setup clobbers r1/r2: r1 = seed,
    // r2 = worker index.
    asm.mov(Reg::R8, Reg::R1);
    asm.mov(Reg::R14, Reg::R2);
    reader.emit_thread_setup(asm);
    // r14 = this worker's segment buffer base.
    asm.alui(
        AluOp::Shl,
        Reg::R14,
        cfg.buffer_bytes.trailing_zeros() as u64,
    );
    asm.alui_add(Reg::R14, buffer_base);
    asm.imm(Reg::R2, 0); // dedicated zero register
    asm.imm(Reg::R9, cfg.commits_per_thread);

    let cloop = asm.new_label();
    asm.bind(cloop);

    // --- Append batch: encode work + buffer stores, rare disk read. ---
    enter(asm);
    asm.imm(Reg::R12, cfg.appends_per_commit);
    let atop = asm.new_label();
    asm.bind(atop);
    if cfg.append_instrs > 0 {
        asm.burst(cfg.append_instrs);
    }
    prng::emit_next_below(asm, Reg::R8, Reg::R10, cfg.buffer_bytes);
    asm.alui(AluOp::And, Reg::R10, !7u64);
    asm.mov(Reg::R11, Reg::R14);
    asm.add(Reg::R11, Reg::R10);
    asm.store(Reg::R8, Reg::R11, 0);
    if cfg.disk_reads_per_1024 > 0 {
        // Compaction stand-in: a blocking segment read from disk.
        prng::emit_next_below(asm, Reg::R8, Reg::R10, 1024);
        asm.imm(Reg::R13, cfg.disk_reads_per_1024);
        let no_read = asm.new_label();
        asm.br(Cond::Ge, Reg::R10, Reg::R13, no_read);
        asm.imm(Reg::R0, DEV_DISK as u64);
        asm.imm(Reg::R1, r.append);
        asm.syscall(nr::IO_SUBMIT);
        asm.bind(no_read);
    }
    asm.alui_sub(Reg::R12, 1);
    asm.br(Cond::Ne, Reg::R12, Reg::R2, atop);
    exit(asm, r.append);

    // --- Commit: block on the fsync barrier. ---
    enter(asm);
    asm.imm(Reg::R0, DEV_FSYNC as u64);
    asm.imm(Reg::R1, r.commit);
    asm.syscall(nr::IO_SUBMIT);
    exit(asm, r.commit);

    asm.alui_sub(Reg::R9, 1);
    asm.br(Cond::Ne, Reg::R9, Reg::R2, cloop);
    asm.halt();

    Ok(LogstoreImage {
        entry: "logstore_worker",
        regions: r,
        buffer_base,
        cfg: cfg.clone(),
    })
}

/// A completed log-store run.
#[derive(Debug)]
pub struct LogstoreRun {
    /// The finished session.
    pub session: Session,
    /// The emitted image.
    pub image: LogstoreImage,
    /// The kernel's run report.
    pub report: RunReport,
}

/// Builds a log-store workload — session configured per `cfg.mode`, all
/// workers spawned — without running it.
pub fn build(
    cfg: &LogstoreConfig,
    reader: &dyn CounterReader,
    cores: usize,
    events: &[EventKind],
    kernel_cfg: KernelConfig,
) -> SimResult<(Session, LogstoreImage)> {
    let builder = SessionBuilder::new(cores).kernel_config(kernel_cfg);
    build_on(cfg, reader, builder, events)
}

/// Like [`build`], on a machine described by a full runtime parameter set
/// — the what-if engine's per-arm entry point.
pub fn build_with_params(
    cfg: &LogstoreConfig,
    reader: &dyn CounterReader,
    params: &limit::MachineParams,
    events: &[EventKind],
) -> SimResult<(Session, LogstoreImage)> {
    build_on(cfg, reader, SessionBuilder::from_params(params)?, events)
}

/// Like [`build_with_params`], with an explicit interpreter mode — the
/// entry point for differential tests that pin block-stepped and
/// single-stepped execution to the same machine.
pub fn build_with_params_exec(
    cfg: &LogstoreConfig,
    reader: &dyn CounterReader,
    params: &limit::MachineParams,
    events: &[EventKind],
    exec: sim_os::ExecMode,
) -> SimResult<(Session, LogstoreImage)> {
    let builder = SessionBuilder::from_params(params)?;
    let kcfg = KernelConfig {
        exec,
        ..params.kernel_config()
    };
    build_on(cfg, reader, builder.kernel_config(kcfg), events)
}

fn build_on(
    cfg: &LogstoreConfig,
    reader: &dyn CounterReader,
    builder: SessionBuilder,
    events: &[EventKind],
) -> SimResult<(Session, LogstoreImage)> {
    let mut layout = MemLayout::default();
    let mut regions = Regions::new();
    let mut asm = Asm::new();
    let image = emit(&mut asm, &mut layout, &mut regions, reader, cfg)?;
    let mut builder = builder.events(events).with_layout(layout);
    match cfg.mode {
        LogMode::Log => {}
        LogMode::Aggregate => builder = builder.aggregate_regions(regions.len()),
        LogMode::Stream(stream_cfg) => builder = builder.stream(stream_cfg),
    }
    let mut session = builder.build(asm)?;
    session.regions = regions;
    let mut seed = sim_core::DetRng::new(cfg.seed);
    for i in 0..cfg.threads {
        let worker_seed = seed.next_u64();
        session.spawn_instrumented(image.entry, &[worker_seed, i as u64])?;
    }
    Ok((session, image))
}

/// Builds, runs, and returns a log-store workload under the given reader.
pub fn run(
    cfg: &LogstoreConfig,
    reader: &dyn CounterReader,
    cores: usize,
    events: &[EventKind],
    kernel_cfg: KernelConfig,
) -> SimResult<LogstoreRun> {
    let (mut session, image) = build(cfg, reader, cores, events, kernel_cfg)?;
    let report = session.run()?;
    Ok(LogstoreRun {
        session,
        image,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::reader::{LimitReader, NullReader};

    fn small_cfg() -> LogstoreConfig {
        LogstoreConfig {
            threads: 2,
            commits_per_thread: 6,
            appends_per_commit: 4,
            append_instrs: 50,
            buffer_bytes: 4 * 1024,
            ..Default::default()
        }
    }

    #[test]
    fn config_validation_rejects_bad_shapes() {
        let mut c = small_cfg();
        c.buffer_bytes = 3000;
        assert!(c.validate().is_err());
        let mut c = small_cfg();
        c.commits_per_thread = 0;
        assert!(c.validate().is_err());
        let mut c = small_cfg();
        c.disk_reads_per_1024 = 2000;
        assert!(c.validate().is_err());
        assert!(small_cfg().validate().is_ok());
    }

    #[test]
    fn uninstrumented_run_completes_and_blocks_on_fsync() {
        let run = run(
            &small_cfg(),
            &NullReader::new(),
            2,
            &[],
            KernelConfig::default(),
        )
        .unwrap();
        assert!(run.session.kernel.threads().iter().all(|t| t.is_exited()));
        // One fsync per commit, at least.
        let min = (small_cfg().threads as u64) * small_cfg().commits_per_thread;
        assert!(run.report.io_submits >= min, "{}", run.report.io_submits);
        assert!(run.report.io_wait_cycles > 0);
    }

    #[test]
    fn commit_cycles_are_dominated_by_fsync_waits() {
        let events = [EventKind::Cycles];
        let reader = LimitReader::with_events(events.to_vec());
        let run = run(&small_cfg(), &reader, 2, &events, KernelConfig::default()).unwrap();
        let records = run.session.all_records().unwrap();
        let mean = |region: u64| {
            let v: Vec<u64> = records
                .iter()
                .filter(|(_, r)| r.region == region)
                .map(|(_, r)| r.deltas[0])
                .collect();
            assert!(!v.is_empty(), "region {region} missing");
            v.iter().sum::<u64>() as f64 / v.len() as f64
        };
        // The fsync distribution's minimum is 200k cycles; commit's
        // compute is a few hundred. Append's mean stays well below.
        let commit = mean(run.image.regions.commit);
        let append = mean(run.image.regions.append);
        assert!(commit >= 200_000.0, "commit mean {commit}");
        assert!(commit > 4.0 * append, "commit {commit} vs append {append}");
    }

    #[test]
    fn deterministic_given_seed() {
        let events = [EventKind::Cycles, EventKind::Instructions];
        let mk = || {
            let reader = LimitReader::with_events(events.to_vec());
            run(&small_cfg(), &reader, 2, &events, KernelConfig::default()).unwrap()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.report.total_cycles, b.report.total_cycles);
        assert_eq!(a.report.io_wait_cycles, b.report.io_wait_cycles);
        assert_eq!(
            a.session.all_records().unwrap(),
            b.session.all_records().unwrap()
        );
    }
}
