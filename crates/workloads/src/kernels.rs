//! Kernels with statically known event counts — ground truth for the
//! correctness experiments (E3/E4).
//!
//! Each emitter returns the exact number of instructions/branches the
//! emitted code retires, so a test can compare a virtualized counter value
//! against arithmetic rather than against another measurement.

use crate::prng;
use sim_cpu::{Asm, Cond, Reg};
use sim_mem::LINE_BYTES;

/// What a kernel will retire, exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExactCounts {
    /// Retired instructions.
    pub instructions: u64,
    /// Retired branch instructions (conditional + jumps).
    pub branches: u64,
    /// Retired loads.
    pub loads: u64,
    /// Retired stores.
    pub stores: u64,
}

/// Emits a counted loop: `iters` iterations of `burst(body)` + decrement +
/// branch. Returns the exact counts of the emitted code (excluding
/// anything the caller emits around it).
pub fn emit_counted_loop(asm: &mut Asm, iters: u64, body: u32) -> ExactCounts {
    asm.imm(Reg::R9, iters);
    asm.imm(Reg::R10, 0);
    let top = asm.new_label();
    asm.bind(top);
    asm.burst(body);
    asm.alui_sub(Reg::R9, 1);
    asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
    ExactCounts {
        instructions: 2 + iters * (body as u64 + 2),
        branches: iters,
        loads: 0,
        stores: 0,
    }
}

/// Emits a strided walk over `[base, base+len)`: `iters` loads with the
/// given stride (wrapping), touching a new cache line per access when
/// `stride >= 64`. Returns exact counts.
pub fn emit_strided_reads(
    asm: &mut Asm,
    base: u64,
    len: u64,
    stride: u64,
    iters: u64,
) -> ExactCounts {
    assert!(len.is_power_of_two(), "len must be a power of two");
    asm.imm(Reg::R9, iters);
    asm.imm(Reg::R10, 0);
    asm.imm(Reg::R11, base);
    asm.imm(Reg::R12, 0); // offset
    let top = asm.new_label();
    asm.bind(top);
    asm.mov(Reg::R13, Reg::R11);
    asm.add(Reg::R13, Reg::R12);
    asm.load(Reg::R14, Reg::R13, 0);
    asm.alui_add(Reg::R12, stride);
    asm.alui(sim_cpu::AluOp::And, Reg::R12, len - 1);
    asm.alui_sub(Reg::R9, 1);
    asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
    ExactCounts {
        instructions: 4 + iters * 7,
        branches: iters,
        loads: iters,
        stores: 0,
    }
}

/// Emits a random-access read loop over a power-of-two working set,
/// driven by the guest LCG seeded from `seed`. Returns exact counts.
/// Distinct working-set sizes produce distinct miss rates — the knob the
/// cache-behaviour experiments sweep.
pub fn emit_random_reads(
    asm: &mut Asm,
    base: u64,
    working_set: u64,
    iters: u64,
    seed: u64,
) -> ExactCounts {
    assert!(working_set.is_power_of_two());
    asm.imm(Reg::R8, seed);
    asm.imm(Reg::R9, iters);
    asm.imm(Reg::R10, 0);
    asm.imm(Reg::R11, base);
    let top = asm.new_label();
    asm.bind(top);
    // 5 instrs: lcg+mask -> r12
    prng::emit_next_below(asm, Reg::R8, Reg::R12, working_set);
    asm.alui(sim_cpu::AluOp::And, Reg::R12, !7u64); // align 8
    asm.mov(Reg::R13, Reg::R11);
    asm.add(Reg::R13, Reg::R12);
    asm.load(Reg::R14, Reg::R13, 0);
    asm.alui_sub(Reg::R9, 1);
    asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
    ExactCounts {
        instructions: 4 + iters * 11,
        branches: iters,
        loads: iters,
        stores: 0,
    }
}

/// Emits a line-stamping store loop that dirties `lines` consecutive cache
/// lines starting at `base`. Returns exact counts.
pub fn emit_line_stores(asm: &mut Asm, base: u64, lines: u64) -> ExactCounts {
    asm.imm(Reg::R9, lines);
    asm.imm(Reg::R10, 0);
    asm.imm(Reg::R11, base);
    asm.imm(Reg::R12, 0xABCD);
    let top = asm.new_label();
    asm.bind(top);
    asm.store(Reg::R12, Reg::R11, 0);
    asm.alui_add(Reg::R11, LINE_BYTES);
    asm.alui_sub(Reg::R9, 1);
    asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
    ExactCounts {
        instructions: 4 + lines * 4,
        branches: lines,
        loads: 0,
        stores: lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::harness::SessionBuilder;
    use limit::reader::{CounterReader, LimitReader};
    use sim_cpu::EventKind;

    /// Runs a kernel emitter under LiMiT counters for instructions,
    /// branches, loads, stores and returns the measured totals between
    /// setup and halt.
    fn measure(emit: impl FnOnce(&mut Asm) -> ExactCounts) -> (ExactCounts, ExactCounts) {
        let events = [
            EventKind::Instructions,
            EventKind::Branches,
            EventKind::Loads,
            EventKind::Stores,
        ];
        let reader = LimitReader::with_events(events.to_vec());
        let mut b = SessionBuilder::new(1).events(&events);
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        let expected = emit(&mut asm);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        let tid = s.spawn_instrumented("main", &[]).unwrap();
        s.run().unwrap();
        // Counter 0 (instructions) starts counting when its own LIMIT_OPEN
        // returns, so it also sees the remaining opens of counters 1..3
        // (5 user instructions each) and the final halt.
        let setup_tail = 5 * (events.len() as u64 - 1);
        let measured = ExactCounts {
            instructions: s.counter_total(tid, 0).unwrap() - 1 - setup_tail,
            branches: s.counter_total(tid, 1).unwrap(),
            loads: s.counter_total(tid, 2).unwrap(),
            stores: s.counter_total(tid, 3).unwrap(),
        };
        (expected, measured)
    }

    #[test]
    fn counted_loop_counts_are_exact() {
        let (e, m) = measure(|asm| emit_counted_loop(asm, 100, 25));
        assert_eq!(e, m);
    }

    #[test]
    fn strided_reads_counts_are_exact() {
        let (e, m) = measure(|asm| emit_strided_reads(asm, 0x100000, 1 << 16, 64, 500));
        assert_eq!(e, m);
    }

    #[test]
    fn random_reads_counts_are_exact() {
        let (e, m) = measure(|asm| emit_random_reads(asm, 0x100000, 1 << 16, 300, 9));
        assert_eq!(e, m);
    }

    #[test]
    fn line_stores_counts_are_exact() {
        let (e, m) = measure(|asm| emit_line_stores(asm, 0x200000, 128));
        assert_eq!(e, m);
    }

    #[test]
    fn bigger_working_set_misses_more() {
        fn llc_misses(ws: u64) -> u64 {
            let reader = LimitReader::with_events(vec![EventKind::L1dMisses]);
            let mut b = SessionBuilder::new(1).events(&[EventKind::L1dMisses]);
            let mut asm = b.asm();
            asm.export("main");
            reader.emit_thread_setup(&mut asm);
            emit_random_reads(&mut asm, 0x100000, ws, 5_000, 3);
            asm.halt();
            let mut s = b.build(asm).unwrap();
            let tid = s.spawn_instrumented("main", &[]).unwrap();
            s.run().unwrap();
            s.counter_total(tid, 0).unwrap()
        }
        let small = llc_misses(16 * 1024); // fits in 32 KiB L1
        let large = llc_misses(4 * 1024 * 1024); // far exceeds L1
        assert!(
            large > small * 5,
            "expected steep miss growth: small={small} large={large}"
        );
    }
}
