//! A guest-side linear congruential generator.
//!
//! Workloads need data-dependent control flow and addresses *inside the
//! guest* (so instrumentation overhead measurements include realistic
//! branch and cache behaviour). The LCG is Knuth's MMIX multiplier; the
//! useful bits are taken from the top of the state.
//!
//! Register discipline: `emit_next` clobbers only the named registers.

use sim_cpu::{AluOp, Asm, Reg};

/// The MMIX LCG multiplier.
pub const LCG_MUL: u64 = 6364136223846793005;
/// The MMIX LCG increment.
pub const LCG_INC: u64 = 1442695040888963407;

/// Advances the LCG in `state` and leaves `state >> 33` in `out`.
///
/// 4 instructions; clobbers `out` only (besides updating `state`).
pub fn emit_next(asm: &mut Asm, state: Reg, out: Reg) {
    debug_assert!(state != out);
    asm.alui(AluOp::Mul, state, LCG_MUL);
    asm.alui(AluOp::Add, state, LCG_INC);
    asm.mov(out, state);
    asm.alui(AluOp::Shr, out, 33);
}

/// Advances the LCG and leaves a value in `[0, bound)` in `out`, where
/// `bound` is a power of two. 5 instructions.
pub fn emit_next_below(asm: &mut Asm, state: Reg, out: Reg, bound: u64) {
    assert!(bound.is_power_of_two(), "bound must be a power of two");
    emit_next(asm, state, out);
    asm.alui(AluOp::And, out, bound - 1);
}

/// The host-side mirror of the guest LCG, for building expected values in
/// tests and for pre-planning workload inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostLcg {
    /// Current state.
    pub state: u64,
}

impl HostLcg {
    /// Starts from a seed.
    pub fn new(seed: u64) -> Self {
        HostLcg { state: seed }
    }

    /// The next raw output (`state >> 33` after advancing).
    pub fn next_raw(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC);
        self.state >> 33
    }

    /// The next value below a power-of-two bound.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_raw() & (bound - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::harness::SessionBuilder;
    use sim_os::syscall::nr;

    #[test]
    fn guest_and_host_lcg_agree() {
        let mut b = SessionBuilder::new(1);
        let mut asm = b.asm();
        asm.export("main");
        asm.imm(Reg::R8, 42);
        for _ in 0..3 {
            emit_next(&mut asm, Reg::R8, Reg::R9);
            asm.mov(Reg::R0, Reg::R9);
            asm.syscall(nr::LOG_VALUE);
        }
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.spawn_instrumented("main", &[]).unwrap();
        s.run().unwrap();
        let mut host = HostLcg::new(42);
        let expect: Vec<u64> = (0..3).map(|_| host.next_raw()).collect();
        assert_eq!(s.kernel.log(), expect.as_slice());
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut h = HostLcg::new(7);
        for _ in 0..1000 {
            assert!(h.next_below(64) < 64);
        }
    }

    #[test]
    fn outputs_spread_over_range() {
        let mut h = HostLcg::new(1);
        let mut seen = [false; 16];
        for _ in 0..200 {
            seen[h.next_below(16) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 16 buckets hit: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_bound_panics() {
        let mut asm = Asm::new();
        emit_next_below(&mut asm, Reg::R8, Reg::R9, 100);
    }
}
