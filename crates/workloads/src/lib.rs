//! Synthetic application workloads for the reproduction's case studies.
//!
//! Each workload emits guest code parameterized by a
//! [`limit::CounterReader`], so the same application can be run
//! uninstrumented, LiMiT-instrumented, perf-instrumented, PAPI-
//! instrumented, or under the sampling profiler — the comparison the
//! paper's overhead and precision experiments make.
//!
//! * [`locks`] — glibc-style futex mutexes in guest code (atomic fast
//!   path, `futex` slow path); every application lock is built on these.
//! * [`prng`] — a guest-side LCG for data-dependent control flow and
//!   address generation (deterministic per seed).
//! * [`kernels`] — kernels with *statically known* event counts, the
//!   ground truth for the correctness experiments (E3/E4).
//! * [`microbench`] — the read-cost microbenchmark behind the paper's
//!   headline table (E1).
//! * [`mysqld`] — a MySQL-like storage-engine skeleton: worker threads,
//!   table locks, a buffer-pool mutex, a log mutex (E2/E6/E7).
//! * [`firefox`] — an event-loop application with short heterogeneous
//!   tasks and helper threads (E5/E8).
//! * [`apache`] — a request-per-thread web server with per-request phases
//!   (E9).
//! * [`logstore`] — a log-structured store with fsync-bound commits
//!   (E18).
//! * [`proxy`] — a scatter-gather proxy doing blocking network fan-out
//!   (E18).

pub mod apache;
pub mod firefox;
pub mod kernels;
pub mod locks;
pub mod logstore;
pub mod memcached;
pub mod microbench;
pub mod mysqld;
pub mod prng;
pub mod proxy;
pub mod suite;
