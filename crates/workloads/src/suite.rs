//! A microbenchmark characterization suite: six kernels with archetypal
//! microarchitectural signatures, used to validate that the substrate's
//! counters separate behaviours the way real PMUs do (and as fodder for
//! the TLB/prefetcher ablations).
//!
//! | kernel | signature |
//! |---|---|
//! | `dense_compute` | ALU-bound, IPC ≈ 1, no memory traffic |
//! | `stream_copy`   | sequential load+store, prefetch-friendly |
//! | `random_access` | uniform reads over a large set, cache/TLB-hostile |
//! | `pointer_chase` | serially dependent loads through a permutation |
//! | `branch_heavy`  | data-dependent branches, mispredict-bound |
//! | `stride_walk`   | fixed-stride reads, one line per access |

use crate::prng;
use limit::harness::{Session, SessionBuilder};
use limit::{CounterReader, LimitReader};
use sim_core::{DetRng, SimResult};
use sim_cpu::{AluOp, Asm, Cond, EventKind, MachineConfig, MemLayout, Reg};
use sim_os::KernelConfig;

/// Names of all suite kernels, in emission order.
pub const KERNEL_NAMES: [&str; 6] = [
    "dense_compute",
    "stream_copy",
    "random_access",
    "pointer_chase",
    "branch_heavy",
    "stride_walk",
];

/// An emitted suite image.
#[derive(Debug, Clone)]
pub struct SuiteImage {
    /// Initial guest-memory words to install before running
    /// (`pointer_chase`'s permutation ring).
    pub init: Vec<(u64, u64)>,
    /// Iterations each kernel runs.
    pub iters: u64,
}

/// Emits all six kernels, each as a `suite.<name>` entry that performs the
/// reader's thread setup and then iterates its body `iters` times.
/// `ws_bytes` (power of two, ≥ 4 KiB) sizes the memory kernels' working
/// sets.
pub fn emit(
    asm: &mut Asm,
    layout: &mut MemLayout,
    reader: &dyn CounterReader,
    iters: u64,
    ws_bytes: u64,
) -> SuiteImage {
    assert!(ws_bytes.is_power_of_two() && ws_bytes >= 4096);
    let stream_src = layout.alloc(ws_bytes, 4096);
    let stream_dst = layout.alloc(ws_bytes, 4096);
    let rand_base = layout.alloc(ws_bytes, 4096);
    let chase_base = layout.alloc(ws_bytes, 4096);
    let stride_base = layout.alloc(ws_bytes, 4096);

    let prologue = |asm: &mut Asm, name: &str| {
        asm.export(&format!("suite.{name}"));
        reader.emit_thread_setup(asm);
        asm.imm(Reg::R2, 0);
        asm.imm(Reg::R9, iters);
    };
    let close = |asm: &mut Asm, top: sim_cpu::Label| {
        asm.alui_sub(Reg::R9, 1);
        asm.br(Cond::Ne, Reg::R9, Reg::R2, top);
        asm.halt();
    };

    // dense_compute: pure ALU.
    prologue(asm, "dense_compute");
    asm.imm(Reg::R8, 0x1234_5678);
    let top = asm.new_label();
    asm.bind(top);
    asm.burst(48);
    asm.alui(AluOp::Mul, Reg::R8, 0x9E37_79B9);
    asm.alui(AluOp::Xor, Reg::R8, 0x55);
    close(asm, top);

    // stream_copy: sequential 64B-granular load + store.
    prologue(asm, "stream_copy");
    asm.imm(Reg::R10, 0); // offset
    let top = asm.new_label();
    asm.bind(top);
    asm.imm(Reg::R11, stream_src);
    asm.add(Reg::R11, Reg::R10);
    asm.load(Reg::R12, Reg::R11, 0);
    asm.imm(Reg::R11, stream_dst);
    asm.add(Reg::R11, Reg::R10);
    asm.store(Reg::R12, Reg::R11, 0);
    asm.alui_add(Reg::R10, 64);
    asm.alui(AluOp::And, Reg::R10, ws_bytes - 1);
    close(asm, top);

    // random_access: uniform reads.
    prologue(asm, "random_access");
    asm.imm(Reg::R8, 0xABCD);
    let top = asm.new_label();
    asm.bind(top);
    prng::emit_next_below(asm, Reg::R8, Reg::R10, ws_bytes);
    asm.alui(AluOp::And, Reg::R10, !7u64);
    asm.imm(Reg::R11, rand_base);
    asm.add(Reg::R11, Reg::R10);
    asm.load(Reg::R12, Reg::R11, 0);
    close(asm, top);

    // pointer_chase: serially dependent loads through a permutation ring
    // materialized host-side (one pointer per cache line).
    prologue(asm, "pointer_chase");
    asm.imm(Reg::R10, chase_base);
    let top = asm.new_label();
    asm.bind(top);
    asm.load(Reg::R10, Reg::R10, 0); // r10 = *r10
    close(asm, top);

    // branch_heavy: data-dependent two-way branches.
    prologue(asm, "branch_heavy");
    asm.imm(Reg::R8, 0xBEEF);
    let top = asm.new_label();
    let odd = asm.new_label();
    let join = asm.new_label();
    asm.bind(top);
    prng::emit_next_below(asm, Reg::R8, Reg::R10, 2);
    asm.br(Cond::Eq, Reg::R10, Reg::R2, odd);
    asm.burst(3);
    asm.jmp(join);
    asm.bind(odd);
    asm.burst(5);
    asm.bind(join);
    close(asm, top);

    // stride_walk: one new line per access, fixed stride.
    prologue(asm, "stride_walk");
    asm.imm(Reg::R10, 0);
    let top = asm.new_label();
    asm.bind(top);
    asm.imm(Reg::R11, stride_base);
    asm.add(Reg::R11, Reg::R10);
    asm.load(Reg::R12, Reg::R11, 0);
    asm.alui_add(Reg::R10, 64);
    asm.alui(AluOp::And, Reg::R10, ws_bytes - 1);
    close(asm, top);

    // Host-side init: a single random cycle over the chase region's lines
    // (Sattolo's algorithm) so the chase visits every line once per lap
    // with no short cycles.
    let lines = (ws_bytes / 64) as usize;
    let mut order: Vec<u64> = (0..lines as u64).collect();
    let mut rng = DetRng::new(0xC0DE);
    for i in (1..lines).rev() {
        let j = rng.below(i as u64) as usize; // j < i: Sattolo
        order.swap(i, j);
    }
    let mut init = Vec::with_capacity(lines);
    for i in 0..lines {
        let from = chase_base + order[i] * 64;
        let to = chase_base + order[(i + 1) % lines] * 64;
        init.push((from, to));
    }

    SuiteImage { init, iters }
}

/// One kernel's measured characterization.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Kernel name.
    pub name: &'static str,
    /// Counter totals in the order of the events passed to [`run_kernel`].
    pub totals: Vec<u64>,
}

/// Runs one suite kernel solo under LiMiT counters for `events` on the
/// given machine configuration, returning its counter totals.
pub fn run_kernel(
    name: &'static str,
    events: &[EventKind],
    machine: MachineConfig,
    iters: u64,
    ws_bytes: u64,
) -> SimResult<KernelProfile> {
    let reader = LimitReader::with_events(events.to_vec());
    let mut layout = MemLayout::default();
    let mut asm = Asm::new();
    let image = emit(&mut asm, &mut layout, &reader, iters, ws_bytes);
    let mut session: Session = SessionBuilder::new(machine.cores)
        .events(events)
        .with_layout(layout)
        .machine_config(machine)
        .kernel_config(KernelConfig::default())
        .build(asm)?;
    for &(addr, val) in &image.init {
        session.write_u64(addr, val)?;
    }
    let tid = session.spawn_instrumented(&format!("suite.{name}"), &[])?;
    session.run()?;
    let totals = (0..events.len())
        .map(|i| session.counter_total(tid, i))
        .collect::<SimResult<_>>()?;
    Ok(KernelProfile { name, totals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::NullReader;

    #[test]
    fn suite_emits_all_entries_and_a_full_chase_cycle() {
        let mut asm = Asm::new();
        let mut layout = MemLayout::default();
        let img = emit(&mut asm, &mut layout, &NullReader::new(), 100, 64 * 1024);
        let prog = asm.assemble().unwrap();
        for name in KERNEL_NAMES {
            assert!(prog.entry(&format!("suite.{name}")).is_ok(), "{name}");
        }
        let lines = 64 * 1024 / 64;
        assert_eq!(img.init.len(), lines);
        let mut seen = std::collections::HashSet::new();
        for &(_, to) in &img.init {
            assert!(seen.insert(to), "duplicate chase target");
        }
    }

    #[test]
    fn kernels_have_their_archetypal_signatures() {
        let events = [
            EventKind::Cycles,
            EventKind::Instructions,
            EventKind::L1dMisses,
            EventKind::BranchMisses,
        ];
        let machine = MachineConfig::new(1);
        let profile = |name| run_kernel(name, &events, machine.clone(), 2_000, 256 * 1024).unwrap();

        let dense = profile("dense_compute");
        let chase = profile("pointer_chase");
        let branchy = profile("branch_heavy");
        let stream = profile("stream_copy");

        let cpi = |p: &KernelProfile| p.totals[0] as f64 / p.totals[1] as f64;
        // Dense compute: ~1 cycle/instruction.
        assert!(cpi(&dense) < 1.1, "dense CPI {}", cpi(&dense));
        // Pointer chase: dominated by serial memory latency.
        assert!(cpi(&chase) > 10.0, "chase CPI {}", cpi(&chase));
        // Branch-heavy: mispredicts per instruction far above dense.
        let bmiss_rate = |p: &KernelProfile| p.totals[3] as f64 / p.totals[1] as f64;
        assert!(
            bmiss_rate(&branchy) > 10.0 * bmiss_rate(&dense).max(1e-6),
            "branchy {} dense {}",
            bmiss_rate(&branchy),
            bmiss_rate(&dense)
        );
        // Stream touches one line per 64B: about one L1 miss per iteration.
        let miss_per_iter = stream.totals[2] as f64 / 2_000.0;
        assert!(
            (1.5..2.5).contains(&miss_per_iter),
            "stream misses/iter {miss_per_iter} (src + dst lines)"
        );
    }

    #[test]
    fn pointer_chase_visits_every_line_per_lap() {
        // With iters == lines, the chase must return to the start: verify
        // by checking the final pointer register equals the chase base.
        // (Covered indirectly: a short cycle would revisit lines and show
        // as L1 hits; a full lap over a 256 KiB ring in a 32 KiB L1 misses
        // almost every load.)
        let events = [EventKind::L1dMisses, EventKind::Loads];
        let lines = 256 * 1024 / 64; // 4096
        let p = run_kernel(
            "pointer_chase",
            &events,
            MachineConfig::new(1),
            lines as u64,
            256 * 1024,
        )
        .unwrap();
        let misses = p.totals[0] as f64;
        let loads = p.totals[1] as f64;
        assert!(loads >= lines as f64);
        assert!(
            misses / loads > 0.85,
            "full-lap chase should miss nearly always: {misses}/{loads}"
        );
    }
}
