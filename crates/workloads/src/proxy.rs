//! A fan-out proxy: parse a request, call N backends over the network
//! (companion I/O workload of experiment E18).
//!
//! The workload reproduces the *I/O topology* of a scatter-gather reverse
//! proxy:
//!
//! * worker threads each handle a stream of requests,
//! * `proxy.parse` — header parsing and routing (pure compute plus a few
//!   table loads),
//! * `proxy.fanout` — one blocking network round-trip per backend, issued
//!   sequentially (the guest ISA has no async I/O), so the region's cycle
//!   deltas sum `fanout` draws from the `net` device's latency
//!   distribution.
//!
//! With the default net distribution (mean 125 k cycles, max 1 M) the
//! per-call waits sit *below* the slow-I/O threshold — the proxy is
//! I/O-heavy but not "slow-I/O" in renacer's sense, the contrast the
//! telemetry tier's slow-call column is meant to surface.

use crate::prng;
use limit::harness::{Session, SessionBuilder};
use limit::report::Regions;
use limit::{CounterReader, Instrumenter, LogMode};
use sim_core::{SimError, SimResult};
use sim_cpu::{AluOp, Asm, Cond, EventKind, MemLayout, Reg};
use sim_os::io::DEV_NET;
use sim_os::syscall::nr;
use sim_os::{KernelConfig, RunReport};

/// Proxy workload parameters.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Worker threads.
    pub threads: usize,
    /// Requests per worker.
    pub requests_per_thread: u64,
    /// Backend calls per request.
    pub fanout: u64,
    /// Parse/route instructions per request.
    pub parse_instrs: u32,
    /// Routing-table bytes (power of two).
    pub table_bytes: u64,
    /// Base RNG seed (each worker derives its own).
    pub seed: u64,
    /// Instrumentation logging mode (see [`LogMode`]).
    pub mode: LogMode,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            threads: 4,
            requests_per_thread: 32,
            fanout: 4,
            parse_instrs: 800,
            table_bytes: 16 * 1024,
            seed: 0x9809_5EED,
            mode: LogMode::Log,
        }
    }
}

impl ProxyConfig {
    /// Validates power-of-two and non-zero requirements.
    pub fn validate(&self) -> SimResult<()> {
        if !self.table_bytes.is_power_of_two() {
            return Err(SimError::Config(
                "table_bytes must be a power of two".into(),
            ));
        }
        if self.threads == 0 || self.requests_per_thread == 0 || self.fanout == 0 {
            return Err(SimError::Config(
                "threads, requests and fanout must be non-zero".into(),
            ));
        }
        Ok(())
    }
}

/// Region ids of the two instrumented phases.
#[derive(Debug, Clone, Copy)]
pub struct ProxyRegions {
    /// Request parsing and routing.
    pub parse: u64,
    /// Backend fan-out (net waits).
    pub fanout: u64,
}

impl ProxyRegions {
    fn define(regions: &mut Regions) -> Self {
        ProxyRegions {
            parse: regions.define("proxy.parse"),
            fanout: regions.define("proxy.fanout"),
        }
    }
}

/// Addresses and region ids of an emitted proxy image.
#[derive(Debug, Clone)]
pub struct ProxyImage {
    /// Worker entry symbol.
    pub entry: &'static str,
    /// Region ids.
    pub regions: ProxyRegions,
    /// Routing-table base address.
    pub table_base: u64,
    /// The configuration the image was emitted for.
    pub cfg: ProxyConfig,
}

/// Emits the worker program into `asm`, allocating shared data in
/// `layout`. Instrumentation is emitted only when the reader attaches at
/// least one counter.
pub fn emit(
    asm: &mut Asm,
    layout: &mut MemLayout,
    regions: &mut Regions,
    reader: &dyn CounterReader,
    cfg: &ProxyConfig,
) -> SimResult<ProxyImage> {
    cfg.validate()?;
    let r = ProxyRegions::define(regions);
    let table_base = layout.alloc(cfg.table_bytes, 4096);

    let ins = Instrumenter::new(reader);
    let instrumented = reader.counters() > 0;
    let enter = |asm: &mut Asm| {
        if instrumented {
            ins.emit_enter(asm);
        }
    };
    let mode = cfg.mode;
    let exit = |asm: &mut Asm, region: u64| {
        if instrumented {
            ins.emit_exit_mode(asm, region, mode);
        }
    };

    asm.export("proxy_worker");
    // Save the seed argument before reader setup clobbers r1.
    asm.mov(Reg::R8, Reg::R1);
    reader.emit_thread_setup(asm);
    asm.imm(Reg::R2, 0); // dedicated zero register
    asm.imm(Reg::R9, cfg.requests_per_thread);

    let qloop = asm.new_label();
    asm.bind(qloop);

    // --- Parse: header scan + routing-table probes. ---
    enter(asm);
    if cfg.parse_instrs > 0 {
        asm.burst(cfg.parse_instrs);
    }
    for _ in 0..4 {
        prng::emit_next_below(asm, Reg::R8, Reg::R10, cfg.table_bytes);
        asm.alui(AluOp::And, Reg::R10, !7u64);
        asm.imm(Reg::R11, table_base);
        asm.add(Reg::R11, Reg::R10);
        asm.load(Reg::R6, Reg::R11, 0);
    }
    exit(asm, r.parse);

    // --- Fan-out: one blocking net round-trip per backend. ---
    enter(asm);
    asm.imm(Reg::R12, cfg.fanout);
    let ftop = asm.new_label();
    asm.bind(ftop);
    asm.imm(Reg::R0, DEV_NET as u64);
    asm.imm(Reg::R1, r.fanout);
    asm.syscall(nr::IO_SUBMIT);
    asm.alui_sub(Reg::R12, 1);
    asm.br(Cond::Ne, Reg::R12, Reg::R2, ftop);
    exit(asm, r.fanout);

    asm.alui_sub(Reg::R9, 1);
    asm.br(Cond::Ne, Reg::R9, Reg::R2, qloop);
    asm.halt();

    Ok(ProxyImage {
        entry: "proxy_worker",
        regions: r,
        table_base,
        cfg: cfg.clone(),
    })
}

/// A completed proxy run.
#[derive(Debug)]
pub struct ProxyRun {
    /// The finished session.
    pub session: Session,
    /// The emitted image.
    pub image: ProxyImage,
    /// The kernel's run report.
    pub report: RunReport,
}

/// Builds a proxy workload — session configured per `cfg.mode`, all
/// workers spawned — without running it.
pub fn build(
    cfg: &ProxyConfig,
    reader: &dyn CounterReader,
    cores: usize,
    events: &[EventKind],
    kernel_cfg: KernelConfig,
) -> SimResult<(Session, ProxyImage)> {
    let builder = SessionBuilder::new(cores).kernel_config(kernel_cfg);
    build_on(cfg, reader, builder, events)
}

/// Like [`build`], on a machine described by a full runtime parameter set
/// — the what-if engine's per-arm entry point.
pub fn build_with_params(
    cfg: &ProxyConfig,
    reader: &dyn CounterReader,
    params: &limit::MachineParams,
    events: &[EventKind],
) -> SimResult<(Session, ProxyImage)> {
    build_on(cfg, reader, SessionBuilder::from_params(params)?, events)
}

/// Like [`build_with_params`], with an explicit interpreter mode — the
/// entry point for differential tests that pin block-stepped and
/// single-stepped execution to the same machine.
pub fn build_with_params_exec(
    cfg: &ProxyConfig,
    reader: &dyn CounterReader,
    params: &limit::MachineParams,
    events: &[EventKind],
    exec: sim_os::ExecMode,
) -> SimResult<(Session, ProxyImage)> {
    let builder = SessionBuilder::from_params(params)?;
    let kcfg = KernelConfig {
        exec,
        ..params.kernel_config()
    };
    build_on(cfg, reader, builder.kernel_config(kcfg), events)
}

fn build_on(
    cfg: &ProxyConfig,
    reader: &dyn CounterReader,
    builder: SessionBuilder,
    events: &[EventKind],
) -> SimResult<(Session, ProxyImage)> {
    let mut layout = MemLayout::default();
    let mut regions = Regions::new();
    let mut asm = Asm::new();
    let image = emit(&mut asm, &mut layout, &mut regions, reader, cfg)?;
    let mut builder = builder.events(events).with_layout(layout);
    match cfg.mode {
        LogMode::Log => {}
        LogMode::Aggregate => builder = builder.aggregate_regions(regions.len()),
        LogMode::Stream(stream_cfg) => builder = builder.stream(stream_cfg),
    }
    let mut session = builder.build(asm)?;
    session.regions = regions;
    let mut seed = sim_core::DetRng::new(cfg.seed);
    for _ in 0..cfg.threads {
        let worker_seed = seed.next_u64();
        session.spawn_instrumented(image.entry, &[worker_seed])?;
    }
    Ok((session, image))
}

/// Builds, runs, and returns a proxy workload under the given reader.
pub fn run(
    cfg: &ProxyConfig,
    reader: &dyn CounterReader,
    cores: usize,
    events: &[EventKind],
    kernel_cfg: KernelConfig,
) -> SimResult<ProxyRun> {
    let (mut session, image) = build(cfg, reader, cores, events, kernel_cfg)?;
    let report = session.run()?;
    Ok(ProxyRun {
        session,
        image,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::reader::{LimitReader, NullReader};

    fn small_cfg() -> ProxyConfig {
        ProxyConfig {
            threads: 2,
            requests_per_thread: 8,
            fanout: 3,
            parse_instrs: 200,
            table_bytes: 4 * 1024,
            ..Default::default()
        }
    }

    #[test]
    fn config_validation_rejects_bad_shapes() {
        let mut c = small_cfg();
        c.table_bytes = 3000;
        assert!(c.validate().is_err());
        let mut c = small_cfg();
        c.fanout = 0;
        assert!(c.validate().is_err());
        assert!(small_cfg().validate().is_ok());
    }

    #[test]
    fn uninstrumented_run_issues_fanout_net_calls() {
        let cfg = small_cfg();
        let run = run(&cfg, &NullReader::new(), 2, &[], KernelConfig::default()).unwrap();
        assert!(run.session.kernel.threads().iter().all(|t| t.is_exited()));
        let want = cfg.threads as u64 * cfg.requests_per_thread * cfg.fanout;
        assert_eq!(run.report.io_submits, want);
    }

    #[test]
    fn fanout_cycles_scale_with_fanout_breadth() {
        let events = [EventKind::Cycles];
        let mk = |fanout| {
            let reader = LimitReader::with_events(events.to_vec());
            let cfg = ProxyConfig {
                fanout,
                ..small_cfg()
            };
            let run = run(&cfg, &reader, 2, &events, KernelConfig::default()).unwrap();
            let records = run.session.all_records().unwrap();
            let v: Vec<u64> = records
                .iter()
                .filter(|(_, r)| r.region == run.image.regions.fanout)
                .map(|(_, r)| r.deltas[0])
                .collect();
            v.iter().sum::<u64>() as f64 / v.len() as f64
        };
        let narrow = mk(1);
        let wide = mk(6);
        // Six sequential round-trips cost several times one round-trip
        // (not exactly 6x: different draws from the latency stream).
        assert!(wide > 3.0 * narrow, "wide {wide} vs narrow {narrow}");
    }

    #[test]
    fn deterministic_given_seed() {
        let events = [EventKind::Cycles, EventKind::Instructions];
        let mk = || {
            let reader = LimitReader::with_events(events.to_vec());
            run(&small_cfg(), &reader, 2, &events, KernelConfig::default()).unwrap()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.report.total_cycles, b.report.total_cycles);
        assert_eq!(a.report.io_wait_cycles, b.report.io_wait_cycles);
        assert_eq!(
            a.session.all_records().unwrap(),
            b.session.all_records().unwrap()
        );
    }
}
