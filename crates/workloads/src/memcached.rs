//! A memcached-like key-value server with striped bucket locks (extension
//! experiment E12).
//!
//! The interesting knob is **lock striping**: the hash table's buckets are
//! guarded by `stripes` locks (`stripe = bucket mod stripes`). With one
//! stripe the store serializes like a global-lock cache; with many
//! stripes contention vanishes. Sweeping the stripe count — measured with
//! per-operation LiMiT instrumentation — is exactly the kind of
//! architectural what-if the paper argues precise counting enables:
//! the answer ("how many stripes until synchronization stops being the
//! bottleneck?") requires measuring lock acquire costs far shorter than a
//! sampling interval.

use crate::{locks, prng};
use limit::harness::{Session, SessionBuilder};
use limit::report::Regions;
use limit::{CounterReader, Instrumenter, LogMode};
use sim_core::{SimError, SimResult};
use sim_cpu::{AluOp, Asm, Cond, EventKind, MemLayout, Reg};
use sim_os::{KernelConfig, RunReport};

/// Memcached-workload parameters.
#[derive(Debug, Clone)]
pub struct MemcachedConfig {
    /// Worker threads.
    pub workers: usize,
    /// Operations per worker.
    pub ops_per_worker: u64,
    /// Hash-table buckets (power of two); one cache line each.
    pub buckets: u64,
    /// Lock stripes (power of two, ≤ buckets).
    pub stripes: u64,
    /// SETs per 1024 operations (the rest are GETs).
    pub set_per_1024: u64,
    /// Request parse/respond instructions per op.
    pub op_instrs: u32,
    /// Atomic read-modify-writes on the bucket's bookkeeping word inside
    /// the critical section (item refcount + stats updates, as in real
    /// memcached). 0 — the default — emits nothing, keeping the
    /// instruction stream identical to earlier revisions; E16's
    /// lock-bound shape raises it so the held section is dominated by
    /// atomic cost.
    pub hold_rmws: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Instrumentation logging mode: per-event record log, bounded
    /// aggregate table, or streaming ring (see [`LogMode`]).
    pub mode: LogMode,
}

impl Default for MemcachedConfig {
    fn default() -> Self {
        MemcachedConfig {
            workers: 8,
            ops_per_worker: 400,
            buckets: 4_096,
            stripes: 16,
            set_per_1024: 102, // ~10%
            op_instrs: 250,
            hold_rmws: 0,
            seed: 0xCAC4E,
            mode: LogMode::Log,
        }
    }
}

impl MemcachedConfig {
    /// Validates shape requirements.
    pub fn validate(&self) -> SimResult<()> {
        if !self.buckets.is_power_of_two() || !self.stripes.is_power_of_two() {
            return Err(SimError::Config(
                "buckets and stripes must be powers of two".into(),
            ));
        }
        if self.stripes > self.buckets {
            return Err(SimError::Config("stripes must be <= buckets".into()));
        }
        if self.workers == 0 || self.ops_per_worker == 0 {
            return Err(SimError::Config("workers and ops must be non-zero".into()));
        }
        if self.set_per_1024 > 1024 {
            return Err(SimError::Config("set_per_1024 must be <= 1024".into()));
        }
        Ok(())
    }
}

/// Region ids for the instrumented sections.
#[derive(Debug, Clone, Copy)]
pub struct MemcachedRegions {
    /// Stripe-lock acquire (wait + handoff).
    pub acq: u64,
    /// Bucket critical section (probe/update under the lock).
    pub hold: u64,
}

/// An emitted memcached image.
#[derive(Debug, Clone)]
pub struct MemcachedImage {
    /// Worker entry symbol.
    pub entry: &'static str,
    /// Region ids.
    pub regions: MemcachedRegions,
    /// Base of the stripe-lock array (64-byte stride).
    pub lock_base: u64,
    /// Base of the bucket array (64 bytes per bucket).
    pub table_base: u64,
    /// The configuration.
    pub cfg: MemcachedConfig,
}

/// Emits the worker program.
pub fn emit(
    asm: &mut Asm,
    layout: &mut MemLayout,
    regions: &mut Regions,
    reader: &dyn CounterReader,
    cfg: &MemcachedConfig,
) -> SimResult<MemcachedImage> {
    cfg.validate()?;
    let lock_base = layout.alloc(cfg.stripes * 64, 64);
    let table_base = layout.alloc(cfg.buckets * 64, 4096);
    let r = MemcachedRegions {
        acq: regions.define("mc.lock.acq"),
        hold: regions.define("mc.bucket.hold"),
    };
    let ins = Instrumenter::new(reader);
    let instrumented = reader.counters() > 0;

    asm.export("mc_worker");
    asm.mov(Reg::R8, Reg::R1); // seed, before setup clobbers r1
    reader.emit_thread_setup(asm);
    asm.imm(Reg::R2, 0);
    asm.imm(Reg::R9, cfg.ops_per_worker);

    let top = asm.new_label();
    asm.bind(top);

    // Parse/respond compute.
    asm.burst(cfg.op_instrs);

    // key -> bucket (r10), stripe lock addr (r13), bucket addr (r14).
    prng::emit_next_below(asm, Reg::R8, Reg::R10, cfg.buckets);
    asm.mov(Reg::R13, Reg::R10);
    asm.alui(AluOp::And, Reg::R13, cfg.stripes - 1);
    asm.alui(AluOp::Shl, Reg::R13, 6);
    asm.alui_add(Reg::R13, lock_base);
    asm.mov(Reg::R14, Reg::R10);
    asm.alui(AluOp::Shl, Reg::R14, 6);
    asm.alui_add(Reg::R14, table_base);

    // GET or SET?
    prng::emit_next_below(asm, Reg::R8, Reg::R10, 1024);
    asm.imm(Reg::R12, cfg.set_per_1024);

    if instrumented {
        ins.emit_enter(asm);
    }
    locks::emit_lock(asm, Reg::R13);
    if instrumented {
        ins.emit_exit_mode(asm, r.acq, cfg.mode);
        ins.emit_enter(asm);
    }
    // Bucket probe: 3 chained words (key, value, metadata).
    asm.load(Reg::R6, Reg::R14, 0);
    asm.load(Reg::R6, Reg::R14, 8);
    asm.load(Reg::R6, Reg::R14, 16);
    let skip_set = asm.new_label();
    asm.br(Cond::Ge, Reg::R10, Reg::R12, skip_set);
    // SET: update value + metadata.
    asm.store(Reg::R8, Reg::R14, 8);
    asm.store(Reg::R9, Reg::R14, 16);
    asm.bind(skip_set);
    // Item bookkeeping: refcount/stats RMWs on the bucket's fourth word.
    for _ in 0..cfg.hold_rmws {
        asm.imm(Reg::R4, 1);
        asm.xchg(Reg::R4, Reg::R14, 24);
    }
    if instrumented {
        ins.emit_exit_mode(asm, r.hold, cfg.mode);
    }
    locks::emit_unlock(asm, Reg::R13);

    asm.alui_sub(Reg::R9, 1);
    asm.br(Cond::Ne, Reg::R9, Reg::R2, top);
    asm.halt();

    Ok(MemcachedImage {
        entry: "mc_worker",
        regions: r,
        lock_base,
        table_base,
        cfg: cfg.clone(),
    })
}

/// A completed memcached run.
#[derive(Debug)]
pub struct MemcachedRun {
    /// The finished session.
    pub session: Session,
    /// The emitted image.
    pub image: MemcachedImage,
    /// The kernel's run report.
    pub report: RunReport,
}

impl MemcachedRun {
    /// Operations completed across all workers.
    pub fn total_ops(&self) -> u64 {
        self.image.cfg.workers as u64 * self.image.cfg.ops_per_worker
    }

    /// Throughput in operations per million guest cycles.
    pub fn ops_per_mcycle(&self) -> f64 {
        self.total_ops() as f64 / (self.report.total_cycles as f64 / 1e6)
    }
}

/// Builds the memcached workload — session configured per `cfg.mode`,
/// all workers spawned — without running it (see [`crate::mysqld::build`]
/// for the telemetry-monitor use case).
pub fn build(
    cfg: &MemcachedConfig,
    reader: &dyn CounterReader,
    cores: usize,
    events: &[EventKind],
    kernel_cfg: KernelConfig,
) -> SimResult<(Session, MemcachedImage)> {
    let builder = SessionBuilder::new(cores).kernel_config(kernel_cfg);
    build_on(cfg, reader, builder, events)
}

/// Like [`build`], on a machine described by a full runtime parameter set
/// (see [`crate::mysqld::build_with_params`]).
pub fn build_with_params(
    cfg: &MemcachedConfig,
    reader: &dyn CounterReader,
    params: &limit::MachineParams,
    events: &[EventKind],
) -> SimResult<(Session, MemcachedImage)> {
    build_on(cfg, reader, SessionBuilder::from_params(params)?, events)
}

/// Like [`build_with_params`], with an explicit interpreter mode (see
/// [`crate::mysqld::build_with_params_exec`]).
pub fn build_with_params_exec(
    cfg: &MemcachedConfig,
    reader: &dyn CounterReader,
    params: &limit::MachineParams,
    events: &[EventKind],
    exec: sim_os::ExecMode,
) -> SimResult<(Session, MemcachedImage)> {
    let builder = SessionBuilder::from_params(params)?;
    let kcfg = KernelConfig {
        exec,
        ..params.kernel_config()
    };
    build_on(cfg, reader, builder.kernel_config(kcfg), events)
}

fn build_on(
    cfg: &MemcachedConfig,
    reader: &dyn CounterReader,
    builder: SessionBuilder,
    events: &[EventKind],
) -> SimResult<(Session, MemcachedImage)> {
    let mut layout = MemLayout::default();
    let mut regions = Regions::new();
    let mut asm = Asm::new();
    let image = emit(&mut asm, &mut layout, &mut regions, reader, cfg)?;
    let mut builder = builder.events(events).with_layout(layout);
    match cfg.mode {
        LogMode::Log => {}
        LogMode::Aggregate => builder = builder.aggregate_regions(regions.len()),
        LogMode::Stream(stream_cfg) => builder = builder.stream(stream_cfg),
    }
    let mut session = builder.build(asm)?;
    session.regions = regions;
    let mut seed = sim_core::DetRng::new(cfg.seed);
    for _ in 0..cfg.workers {
        let s = seed.next_u64();
        session.spawn_instrumented(image.entry, &[s])?;
    }
    Ok((session, image))
}

/// Builds, runs, and returns the memcached workload under the given reader.
pub fn run(
    cfg: &MemcachedConfig,
    reader: &dyn CounterReader,
    cores: usize,
    events: &[EventKind],
    kernel_cfg: KernelConfig,
) -> SimResult<MemcachedRun> {
    let (mut session, image) = build(cfg, reader, cores, events, kernel_cfg)?;
    let report = session.run()?;
    Ok(MemcachedRun {
        session,
        image,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::reader::{LimitReader, NullReader};

    fn small_cfg() -> MemcachedConfig {
        MemcachedConfig {
            workers: 4,
            ops_per_worker: 60,
            buckets: 256,
            ..Default::default()
        }
    }

    #[test]
    fn config_validation() {
        assert!(small_cfg().validate().is_ok());
        let mut c = small_cfg();
        c.stripes = c.buckets * 2;
        assert!(c.validate().is_err());
        let mut c = small_cfg();
        c.buckets = 100;
        assert!(c.validate().is_err());
    }

    #[test]
    fn uninstrumented_run_completes() {
        let run = run(
            &small_cfg(),
            &NullReader::new(),
            4,
            &[],
            KernelConfig::default(),
        )
        .unwrap();
        assert!(run.report.total_cycles > 0);
        assert!(run.ops_per_mcycle() > 0.0);
    }

    #[test]
    fn every_op_produces_acq_and_hold_records() {
        let events = [EventKind::Cycles];
        let reader = LimitReader::with_events(events.to_vec());
        let cfg = small_cfg();
        let run = run(&cfg, &reader, 4, &events, KernelConfig::default()).unwrap();
        let records = run.session.all_records().unwrap();
        let expected = cfg.workers as u64 * cfg.ops_per_worker;
        for (id, name) in [
            (run.image.regions.acq, "acq"),
            (run.image.regions.hold, "hold"),
        ] {
            let n = records.iter().filter(|(_, r)| r.region == id).count() as u64;
            assert_eq!(n, expected, "{name}");
        }
    }

    #[test]
    fn single_stripe_contends_many_stripes_do_not() {
        let mk = |stripes: u64| {
            let cfg = MemcachedConfig {
                workers: 8,
                ops_per_worker: 80,
                stripes,
                op_instrs: 60, // little non-critical work: maximal pressure
                ..small_cfg()
            };
            run(&cfg, &NullReader::new(), 8, &[], KernelConfig::default()).unwrap()
        };
        let coarse = mk(1);
        let fine = mk(64);
        assert!(
            coarse.report.futex.0 > 10 * fine.report.futex.0.max(1),
            "coarse {} vs fine {} futex waits",
            coarse.report.futex.0,
            fine.report.futex.0
        );
        assert!(
            fine.ops_per_mcycle() > 1.5 * coarse.ops_per_mcycle(),
            "striping must raise throughput: {} vs {}",
            fine.ops_per_mcycle(),
            coarse.ops_per_mcycle()
        );
    }

    #[test]
    fn table_updates_are_serialized() {
        // All workers SET every op on a single-stripe table: the metadata
        // word of each bucket is written under the lock; no fault or
        // torn-state crash implies serialization held. Sanity-check one
        // bucket's metadata is a plausible r9 value (< ops_per_worker+1).
        let cfg = MemcachedConfig {
            workers: 4,
            ops_per_worker: 50,
            buckets: 16,
            stripes: 1,
            set_per_1024: 1024, // all SETs
            ..small_cfg()
        };
        let run = run(&cfg, &NullReader::new(), 4, &[], KernelConfig::default()).unwrap();
        let mut wrote_any = false;
        for b in 0..cfg.buckets {
            let meta = run
                .session
                .read_u64(run.image.table_base + b * 64 + 16)
                .unwrap();
            assert!(meta <= cfg.ops_per_worker, "meta {meta}");
            wrote_any |= meta != 0;
        }
        assert!(wrote_any);
    }
}
