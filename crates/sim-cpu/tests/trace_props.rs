//! Property tests for the execution-trace ring (`sim_cpu::Trace`, built on
//! `flight::Ring`): lifetime accounting is exact and eviction keeps exactly
//! the last N entries in order, checked against a `VecDeque` reference
//! model driven by the same randomized push sequence.

use proptest::prelude::*;
use sim_cpu::{Instr, Trace, TraceEntry};
use std::collections::VecDeque;

fn entry(seq: u64) -> TraceEntry {
    TraceEntry {
        clock: seq,
        pc: (seq % 97) as u32,
        tid: None,
        instr: Instr::Nop,
    }
}

proptest! {
    /// `total_recorded` counts every push (monotone, eviction-blind) while
    /// the retained tail matches a `VecDeque` capped to the same capacity.
    #[test]
    fn ring_matches_vecdeque_reference(
        capacity in 1usize..64,
        pushes in proptest::collection::vec(1u64..200, 0..8),
    ) {
        let mut trace = Trace::new(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut seq = 0u64;
        let mut last_total = 0u64;
        for burst in pushes {
            for _ in 0..burst {
                trace.record(entry(seq));
                model.push_back(seq);
                if model.len() > capacity {
                    model.pop_front();
                }
                seq += 1;
            }
            // Lifetime count is exact and never decreases.
            prop_assert_eq!(trace.total_recorded(), seq);
            prop_assert!(trace.total_recorded() >= last_total);
            last_total = trace.total_recorded();
            // Retained tail is exactly the model: same length, same order,
            // oldest-to-newest, holding the *last* min(seq, capacity) pushes.
            prop_assert_eq!(trace.len(), model.len());
            let got: Vec<u64> = trace.iter().map(|e| e.clock).collect();
            let want: Vec<u64> = model.iter().copied().collect();
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(trace.last().map(|e| e.clock), model.back().copied());
            prop_assert_eq!(trace.is_empty(), model.is_empty());
        }
    }
}
