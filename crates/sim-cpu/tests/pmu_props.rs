//! Property-fuzzed PMU edge cases (the trust matrix's hardware arm).
//!
//! The invariant under test: delivering a burst of `n` events in one
//! [`Pmu::count`] call leaves the PMU in the same state as delivering the
//! same `n` events one at a time — same raw counter values, same lifetime
//! overflow count, same per-slot PMI and spill totals. Side-effect *order*
//! within one delivery is the pinned coalescing semantics instead: a
//! multi-event, multi-wrap delivery emits each slot's side effects grouped
//! together, slots in ascending index order (one-at-a-time interleaves by
//! event offset — both orders carry the same per-slot streams, and the
//! grouped order is what the kernel's PMI handler observes for real
//! multi-event instructions). The fuzz ranges deliberately sit on the
//! edges the trust matrix worries about: counter widths at both boundaries
//! (6..=63), counters armed within a few events of `2^width`, reloads near
//! the wrap point, several slots wrapping simultaneously, and back-to-back
//! overflows coalesced into one delivery.

use proptest::prelude::*;
use sim_cpu::pmu::CounterCfg;
use sim_cpu::{EventKind, Mode, Pmu, PmuConfig};

#[derive(Debug, Clone)]
struct SlotPlan {
    /// Events until the slot would wrap from its initial value.
    headroom: u64,
    /// Reload distance below the modulus (`None` → reload to zero).
    reload_back: Option<u64>,
    pmi: bool,
}

fn slot_plan() -> impl Strategy<Value = SlotPlan> {
    (1u64..600, any::<bool>(), 1u64..600, any::<bool>()).prop_map(
        |(headroom, has_reload, back, pmi)| SlotPlan {
            headroom,
            reload_back: has_reload.then_some(back),
            pmi,
        },
    )
}

/// Builds one PMU from the plan; all slots subscribe to the same event so
/// a single delivery exercises simultaneous multi-slot overflow.
fn build(width: u32, plans: &[SlotPlan]) -> Pmu {
    let mut p = Pmu::new(PmuConfig {
        counter_bits: width,
        ..Default::default()
    })
    .unwrap();
    let modulus = p.modulus();
    for (i, plan) in plans.iter().enumerate() {
        let mut cfg = CounterCfg::user(EventKind::Instructions);
        if plan.pmi {
            cfg = cfg.with_pmi();
        }
        if let Some(back) = plan.reload_back {
            // Reload within `back` events of the wrap point — the
            // sampling-style arm the width validation (S1) guards.
            cfg = cfg.with_reload(modulus - back.min(modulus));
        }
        p.configure(i as u8, cfg).unwrap();
        p.write(i as u8, modulus - plan.headroom.min(modulus))
            .unwrap();
    }
    p
}

fn drain_pmis(p: &mut Pmu) -> Vec<u8> {
    let mut v = Vec::new();
    while let Some(idx) = p.take_pmi() {
        v.push(idx);
    }
    v
}

/// Per-slot histogram of a PMI drain sequence.
fn pmi_counts(seq: &[u8]) -> [u64; 16] {
    let mut c = [0u64; 16];
    for &idx in seq {
        c[idx as usize] += 1;
    }
    c
}

proptest! {
    /// Batched delivery leaves identical counter state to one-at-a-time
    /// delivery at any width — including widths 6 and 63 and counters
    /// armed within a few events of `2^width` — and its PMI stream is the
    /// same per-slot multiset, emitted grouped in ascending slot order.
    #[test]
    fn burst_delivery_matches_one_at_a_time(
        width in prop_oneof![Just(6u32), Just(7), Just(32), Just(48), Just(62), Just(63)],
        plans in prop::collection::vec(slot_plan(), 1..4),
        bursts in prop::collection::vec(1u64..700, 1..6),
    ) {
        let mut batched = build(width, &plans);
        let mut single = batched.clone();
        for &n in &bursts {
            batched.count(EventKind::Instructions, n, Mode::User, 0);
            for _ in 0..n {
                single.count(EventKind::Instructions, 1, Mode::User, 0);
            }
            // Per-delivery PMI stream: same per-slot counts as the
            // interleaved one-at-a-time order, grouped slot-ascending.
            let b = drain_pmis(&mut batched);
            let s = drain_pmis(&mut single);
            prop_assert_eq!(pmi_counts(&b), pmi_counts(&s));
            prop_assert!(
                b.windows(2).all(|w| w[0] <= w[1]),
                "coalesced delivery must group PMIs in slot order: {:?}",
                b
            );
        }
        for i in 0..plans.len() as u8 {
            prop_assert_eq!(batched.read(i).unwrap(), single.read(i).unwrap());
        }
        prop_assert_eq!(batched.overflows(), single.overflows());
    }

    /// Same invariant for the self-virtualizing (spill) path: per-address
    /// spill totals and the kernel-visible journal match one-at-a-time
    /// delivery even when multiple slots spill in one call, and the
    /// coalesced stream is grouped in ascending slot (address) order.
    #[test]
    fn burst_spills_match_one_at_a_time(
        width in prop_oneof![Just(6u32), Just(8), Just(48), Just(63)],
        headrooms in prop::collection::vec(1u64..60, 1..4),
        bursts in prop::collection::vec(1u64..70, 1..5),
    ) {
        let mut p = Pmu::new(PmuConfig {
            counter_bits: width,
            ext_self_virtualizing: true,
            ..Default::default()
        })
        .unwrap();
        let modulus = p.modulus();
        for (i, &h) in headrooms.iter().enumerate() {
            let cfg = CounterCfg::user(EventKind::Instructions)
                .with_spill(0x1000 + 8 * i as u64);
            p.configure(i as u8, cfg).unwrap();
            p.write(i as u8, modulus - h).unwrap();
        }
        let mut single = p.clone();
        for &n in &bursts {
            p.count(EventKind::Instructions, n, Mode::User, 0);
            for _ in 0..n {
                single.count(EventKind::Instructions, 1, Mode::User, 0);
            }
            let b = p.take_spills();
            let s = single.take_spills();
            let total = |v: &[sim_cpu::pmu::Spill], addr: u64| -> u64 {
                v.iter().filter(|sp| sp.addr == addr).map(|sp| sp.amount).sum()
            };
            for i in 0..headrooms.len() {
                let addr = 0x1000 + 8 * i as u64;
                prop_assert_eq!(total(&b, addr), total(&s, addr));
            }
            prop_assert!(
                b.windows(2).all(|w| w[0].addr <= w[1].addr),
                "coalesced spills must group by slot: {:?}",
                b
            );
        }
        prop_assert_eq!(p.spill_journal(), single.spill_journal());
        for i in 0..headrooms.len() as u8 {
            prop_assert_eq!(p.read(i).unwrap(), single.read(i).unwrap());
        }
    }

    /// Every in-range width accepts reloads up to `2^width - 1` and
    /// rejects `2^width` and beyond with a config error (S1 sweep).
    #[test]
    fn reload_validation_tracks_width(width in 6u32..=63, over in 0u64..1000) {
        let mut p = Pmu::new(PmuConfig {
            counter_bits: width,
            ..Default::default()
        })
        .unwrap();
        let modulus = p.modulus();
        let ok = CounterCfg::user(EventKind::Cycles).with_reload(modulus - 1);
        prop_assert!(p.configure(0, ok).is_ok());
        let bad = CounterCfg::user(EventKind::Cycles)
            .with_reload(modulus.saturating_add(over));
        let err = p.configure(0, bad).unwrap_err();
        prop_assert_eq!(err.category(), "config");
    }
}
