//! Property tests pinning the PMU's indexed event dispatch to the original
//! full-scan semantics.
//!
//! `Pmu::count` dispatches through a per-event subscriber index maintained
//! at configure/disable time. These tests drive a real [`Pmu`] and a
//! reference model (`ScanPmu`, a verbatim copy of the seed's linear-scan
//! algorithm) through identical random operation sequences — configure,
//! disable, count (user/kernel, tagged, overflowing), write, read-and-clear,
//! PMI drain, spill drain — and require every observable to stay identical:
//! raw counter values, PMI delivery order, spill records, and the lifetime
//! overflow count. Reload and spill paths are exercised by narrow counters
//! (frequent wraps) and enabled hardware extensions.

use proptest::prelude::*;
use sim_cpu::pmu::{CounterCfg, Pmu, PmuConfig, Spill};
use sim_cpu::{EventKind, Mode};

/// Reference model: the seed implementation's full-scan delivery, kept
/// deliberately naive. Any divergence from `Pmu` is a dispatch bug.
struct ScanPmu {
    config: PmuConfig,
    slots: Vec<(Option<CounterCfg>, u64)>,
    pending_pmi: Vec<u8>,
    pending_spills: Vec<Spill>,
    overflows: u64,
}

impl ScanPmu {
    fn new(config: PmuConfig) -> Self {
        ScanPmu {
            slots: vec![(None, 0); config.programmable],
            config,
            pending_pmi: Vec::new(),
            pending_spills: Vec::new(),
            overflows: 0,
        }
    }

    fn modulus(&self) -> u64 {
        1u64 << self.config.counter_bits
    }

    fn configure(&mut self, idx: u8, cfg: CounterCfg) -> bool {
        if cfg.spill_addr.is_some() && !self.config.ext_self_virtualizing {
            return false;
        }
        if cfg.tag.is_some() && !self.config.ext_tag_filter {
            return false;
        }
        if cfg.reload.is_some_and(|r| r >= self.modulus()) {
            return false;
        }
        let Some(slot) = self.slots.get_mut(idx as usize) else {
            return false;
        };
        *slot = (Some(cfg), 0);
        true
    }

    fn disable(&mut self, idx: u8) -> bool {
        match self.slots.get_mut(idx as usize) {
            Some(slot) => {
                *slot = (None, 0);
                true
            }
            None => false,
        }
    }

    fn write(&mut self, idx: u8, value: u64) -> bool {
        let modulus = self.modulus();
        match self.slots.get_mut(idx as usize) {
            Some(slot) => {
                slot.1 = value & (modulus - 1);
                true
            }
            None => false,
        }
    }

    fn read_clear(&mut self, idx: u8) -> Option<u64> {
        self.slots
            .get_mut(idx as usize)
            .map(|s| std::mem::take(&mut s.1))
    }

    fn count(&mut self, event: EventKind, n: u64, mode: Mode, core_tag: u64) {
        if n == 0 {
            return;
        }
        let modulus = self.modulus();
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            let Some(cfg) = slot.0 else { continue };
            if cfg.event != event {
                continue;
            }
            let mode_ok = match mode {
                Mode::User => cfg.count_user,
                Mode::Kernel => cfg.count_kernel,
            };
            if !mode_ok {
                continue;
            }
            if self.config.ext_tag_filter {
                if let Some(t) = cfg.tag {
                    if t != core_tag {
                        continue;
                    }
                }
            }
            let mut remaining = n;
            loop {
                let room = modulus - slot.1;
                if remaining < room {
                    slot.1 += remaining;
                    break;
                }
                remaining -= room;
                slot.1 = cfg.reload.unwrap_or(0) & (modulus - 1);
                self.overflows += 1;
                if let Some(addr) = cfg.spill_addr.filter(|_| self.config.ext_self_virtualizing) {
                    self.pending_spills.push(Spill {
                        addr,
                        amount: modulus,
                    });
                } else if cfg.pmi_on_overflow {
                    self.pending_pmi.push(idx as u8);
                }
            }
        }
    }

    fn take_pmi(&mut self) -> Option<u8> {
        if self.pending_pmi.is_empty() {
            None
        } else {
            Some(self.pending_pmi.remove(0))
        }
    }
}

/// Decodes one raw op tuple into an action applied to both PMUs, then
/// checks the cheap invariants (expensive full-state checks run at the end).
fn apply_op(
    pmu: &mut Pmu,
    scan: &mut ScanPmu,
    op: u64,
    a: u64,
    b: u64,
    c: u64,
) -> Result<(), String> {
    let n_slots = scan.slots.len() as u64;
    let idx = (a % n_slots) as u8;
    match op {
        // configure: decode a CounterCfg from the raw operands.
        0 | 1 => {
            let event = EventKind::ALL[(b % EventKind::ALL.len() as u64) as usize];
            let mut cfg = CounterCfg {
                event,
                count_user: c & 1 != 0,
                count_kernel: c & 2 != 0,
                pmi_on_overflow: c & 4 != 0,
                tag: if c & 8 != 0 { Some(c >> 4 & 3) } else { None },
                spill_addr: if c & 16 != 0 {
                    Some(0x1000 + (c >> 6 & 7) * 8)
                } else {
                    None
                },
                reload: if c & 32 != 0 {
                    Some(b >> 8 & 0xFF)
                } else {
                    None
                },
            };
            // Keep at least one counting mode on most of the time so the
            // sequences actually count.
            if c & 3 == 0 {
                cfg.count_user = true;
            }
            let got = pmu.configure(idx, cfg).is_ok();
            let want = scan.configure(idx, cfg);
            if got != want {
                return Err(format!("configure({idx}) accept mismatch: {got} vs {want}"));
            }
        }
        2 => {
            let got = pmu.disable(idx).is_ok();
            let want = scan.disable(idx);
            if got != want {
                return Err(format!("disable({idx}) mismatch"));
            }
        }
        3 => {
            let got = pmu.write(idx, b).is_ok();
            let want = scan.write(idx, b);
            if got != want {
                return Err(format!("write({idx}) mismatch"));
            }
        }
        4 => {
            let got = pmu.read_clear(idx).ok();
            let want = scan.read_clear(idx);
            if got != want {
                return Err(format!("read_clear({idx}): {got:?} vs {want:?}"));
            }
        }
        5 => {
            let got = pmu.take_pmi();
            let want = scan.take_pmi();
            if got != want {
                return Err(format!("take_pmi: {got:?} vs {want:?}"));
            }
        }
        6 => {
            let got = pmu.take_spills();
            let want = std::mem::take(&mut scan.pending_spills);
            if got != want {
                return Err(format!("take_spills: {got:?} vs {want:?}"));
            }
        }
        // count: the hot path under test. Large `n` relative to narrow
        // counters forces multi-wrap reload/spill/PMI behaviour.
        _ => {
            let event = EventKind::ALL[(a % EventKind::ALL.len() as u64) as usize];
            let mode = if b & 1 != 0 { Mode::User } else { Mode::Kernel };
            let core_tag = b >> 1 & 3;
            let n = c % 2_000;
            pmu.count(event, n, mode, core_tag);
            scan.count(event, n, mode, core_tag);
        }
    }
    Ok(())
}

fn check_full_state(pmu: &Pmu, scan: &ScanPmu) -> Result<(), String> {
    for idx in 0..scan.slots.len() as u8 {
        let got = pmu.read(idx).map_err(|e| e.to_string())?;
        let want = scan.slots[idx as usize].1;
        if got != want {
            return Err(format!("slot {idx} raw: {got} vs {want}"));
        }
        if pmu.counter_cfg(idx) != scan.slots[idx as usize].0 {
            return Err(format!("slot {idx} cfg diverged"));
        }
    }
    if pmu.overflows() != scan.overflows {
        return Err(format!(
            "overflows: {} vs {}",
            pmu.overflows(),
            scan.overflows
        ));
    }
    if pmu.pmi_pending() == scan.pending_pmi.is_empty() {
        return Err("pmi_pending diverged".to_string());
    }
    Ok(())
}

fn run_sequence(
    exts: (bool, bool),
    programmable: usize,
    counter_bits: u32,
    ops: &[(u64, u64, u64, u64)],
) -> Result<(), String> {
    let config = PmuConfig {
        programmable,
        counter_bits,
        ext_destructive_read: false,
        ext_self_virtualizing: exts.0,
        ext_tag_filter: exts.1,
    };
    let mut pmu = Pmu::new(config).map_err(|e| e.to_string())?;
    let mut scan = ScanPmu::new(config);
    for &(op, a, b, c) in ops {
        apply_op(&mut pmu, &mut scan, op % 10, a, b, c)?;
        check_full_state(&pmu, &scan)?;
    }
    // Drain both queues to compare delivery order end-to-end.
    loop {
        let (got, want) = (pmu.take_pmi(), scan.take_pmi());
        if got != want {
            return Err(format!("final PMI drain: {got:?} vs {want:?}"));
        }
        if got.is_none() {
            break;
        }
    }
    if pmu.take_spills() != std::mem::take(&mut scan.pending_spills) {
        return Err("final spill drain diverged".to_string());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// With both hardware extensions on (tag filter + self-virtualizing
    /// spills) and narrow counters, indexed dispatch is observably identical
    /// to the seed's full scan.
    #[test]
    fn indexed_dispatch_matches_full_scan_with_extensions(
        programmable in 1usize..=8,
        counter_bits in 6u32..=10,
        ops in prop::collection::vec((any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 1..60),
    ) {
        if let Err(e) = run_sequence((true, true), programmable, counter_bits, &ops) {
            panic!("divergence: {e}");
        }
    }

    /// Same equivalence with the extensions off (spill/tag configures are
    /// rejected identically, PMIs flow instead of spills).
    #[test]
    fn indexed_dispatch_matches_full_scan_base_hardware(
        programmable in 1usize..=8,
        counter_bits in 6u32..=10,
        ops in prop::collection::vec((any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 1..60),
    ) {
        if let Err(e) = run_sequence((false, false), programmable, counter_bits, &ops) {
            panic!("divergence: {e}");
        }
    }

    /// Wide counters (the production default) never wrap in these runs;
    /// pure counting must still match exactly.
    #[test]
    fn indexed_dispatch_matches_full_scan_wide_counters(
        programmable in 1usize..=8,
        ops in prop::collection::vec((any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 1..60),
    ) {
        if let Err(e) = run_sequence((true, true), programmable, 48, &ops) {
            panic!("divergence: {e}");
        }
    }
}
