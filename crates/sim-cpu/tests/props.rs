//! Property-based tests for the guest ISA and execution engine.

use proptest::prelude::*;
use sim_core::{CoreId, ThreadId};
use sim_cpu::pmu::CounterCfg;
use sim_cpu::regs::Context;
use sim_cpu::{
    AluOp, Asm, Cond, EventKind, Instr, Machine, MachineConfig, Mode, Pmu, PmuConfig, Reg, Trap,
};
use sim_mem::HierarchyConfig;

fn alu_ops() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
    ]
}

/// Host-side mirror of the ALU semantics.
fn host_apply(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl((b & 63) as u32),
        AluOp::Shr => a.wrapping_shr((b & 63) as u32),
    }
}

fn run_program(prog: sim_cpu::Program) -> Machine {
    let cfg = MachineConfig::new(1).with_hierarchy(HierarchyConfig::tiny());
    let mut m = Machine::new(cfg, prog).unwrap();
    m.cores[0].ctx = Context::at(0);
    m.cores[0].running = Some(ThreadId::new(1));
    m.cores[0].mode = Mode::User;
    for _ in 0..200_000 {
        let step = m.step(CoreId::new(0)).unwrap();
        match step.trap {
            Some(Trap::Halt) => return m,
            Some(Trap::Fault(msg)) => panic!("fault: {msg}"),
            Some(Trap::Syscall(_)) => panic!("no syscalls in these programs"),
            None => {}
        }
    }
    panic!("program did not halt");
}

proptest! {
    /// Executing an ALU chain in the guest matches host arithmetic.
    #[test]
    fn alu_chain_matches_host(
        init in any::<u64>(),
        ops in prop::collection::vec((alu_ops(), any::<u64>()), 1..40),
    ) {
        let mut asm = Asm::new();
        asm.imm(Reg::R1, init);
        for &(op, v) in &ops {
            asm.alui(op, Reg::R1, v);
        }
        asm.halt();
        let m = run_program(asm.assemble().unwrap());
        let expected = ops.iter().fold(init, |acc, &(op, v)| host_apply(op, acc, v));
        prop_assert_eq!(m.cores[0].ctx.get(Reg::R1), expected);
    }

    /// A guest loop iterates exactly its programmed trip count for any
    /// count, and the instruction counter agrees with arithmetic.
    #[test]
    fn loop_trip_counts_are_exact(iters in 1u64..2_000, body in 1u32..30) {
        let mut asm = Asm::new();
        asm.imm(Reg::R1, iters);
        asm.imm(Reg::R2, 0);
        asm.imm(Reg::R3, 0);
        let top = asm.new_label();
        asm.bind(top);
        asm.burst(body);
        asm.alui_add(Reg::R3, 1);
        asm.alui_sub(Reg::R1, 1);
        asm.br(Cond::Ne, Reg::R1, Reg::R2, top);
        asm.halt();
        let prog = asm.assemble().unwrap();
        let cfg = MachineConfig::new(1).with_hierarchy(HierarchyConfig::tiny());
        let mut m = Machine::new(cfg, prog).unwrap();
        m.cores[0]
            .pmu
            .configure(0, CounterCfg::user(EventKind::Instructions))
            .unwrap();
        m.cores[0].ctx = Context::at(0);
        m.cores[0].running = Some(ThreadId::new(1));
        m.cores[0].mode = Mode::User;
        loop {
            let step = m.step(CoreId::new(0)).unwrap();
            if matches!(step.trap, Some(Trap::Halt)) {
                break;
            }
            prop_assert!(step.trap.is_none());
        }
        prop_assert_eq!(m.cores[0].ctx.get(Reg::R3), iters);
        // 3 setup + per-iter (body + 3) + halt
        let expected = 3 + iters * (body as u64 + 3) + 1;
        prop_assert_eq!(m.cores[0].pmu.read(0).unwrap(), expected);
    }

    /// Guest memory: a random sequence of stores then loads returns the
    /// last-written value per address.
    #[test]
    fn memory_is_last_writer_wins(
        writes in prop::collection::vec((0u64..64, any::<u64>()), 1..60),
    ) {
        let mut asm = Asm::new();
        asm.imm(Reg::R10, 0x10000);
        for &(slot, v) in &writes {
            asm.imm(Reg::R11, v);
            asm.store(Reg::R11, Reg::R10, (slot * 8) as i32);
        }
        asm.halt();
        let m = run_program(asm.assemble().unwrap());
        let mut expected: std::collections::HashMap<u64, u64> = Default::default();
        for &(slot, v) in &writes {
            expected.insert(slot, v);
        }
        for (&slot, &v) in &expected {
            prop_assert_eq!(m.mem.read_u64(0x10000 + slot * 8).unwrap(), v);
        }
    }

    /// PMU counting is exact under arbitrary interleavings of events,
    /// modes, and widths: total counted = total matching events (mod 2^w
    /// accounted by overflows).
    #[test]
    fn pmu_conservation_of_events(
        bits in 6u32..20,
        batches in prop::collection::vec((0u64..5_000, any::<bool>()), 1..60),
    ) {
        let mut pmu = Pmu::new(PmuConfig {
            counter_bits: bits,
            ..Default::default()
        })
        .unwrap();
        pmu.configure(0, CounterCfg::user(EventKind::Instructions).with_pmi())
            .unwrap();
        let mut user_total = 0u64;
        for &(n, kernel) in &batches {
            let mode = if kernel { Mode::Kernel } else { Mode::User };
            if !kernel {
                user_total += n;
            }
            pmu.count(EventKind::Instructions, n, mode, 0);
        }
        let mut overflows = 0u64;
        while pmu.take_pmi().is_some() {
            overflows += 1;
        }
        let raw = pmu.read(0).unwrap();
        prop_assert_eq!(raw + overflows * (1u64 << bits), user_total);
    }

    /// Assembled programs resolve every emitted branch to a valid PC.
    #[test]
    fn assembler_targets_are_in_bounds(n_blocks in 1usize..30) {
        let mut asm = Asm::new();
        let labels: Vec<_> = (0..n_blocks).map(|_| asm.new_label()).collect();
        for (i, &l) in labels.iter().enumerate() {
            asm.bind(l);
            asm.nop();
            // Jump to some other block (forward or backward).
            let target = labels[(i * 7 + 3) % n_blocks];
            asm.br(Cond::Eq, Reg::R0, Reg::R1, target);
        }
        asm.halt();
        let prog = asm.assemble().unwrap();
        for pc in 0..prog.len() as u32 {
            if let Some(Instr::Br(_, _, _, t) | Instr::Jmp(t) | Instr::Call(t)) = prog.fetch(pc) {
                prop_assert!((*t as usize) < prog.len(), "target {} out of bounds", t);
            }
        }
    }
}
