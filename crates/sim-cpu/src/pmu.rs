//! The per-core performance-monitoring unit.
//!
//! Modeled after the IA32 architectural PMU the paper targets:
//!
//! * a small bank of programmable counters (default 4) with per-counter
//!   event selectors,
//! * user/kernel mode filter bits,
//! * configurable counter width (default 48 bits — narrow widths are used
//!   by tests and experiment E3 to force frequent overflows),
//! * an overflow-interrupt (PMI) enable per counter,
//! * a privilege gate on userspace reads (`rdpmc` faults unless the kernel
//!   set the core's "user rdpmc" flag — the flag LiMiT's kernel extension
//!   turns on and the stock-kernel baseline leaves off).
//!
//! The paper's three proposed **hardware enhancements** are implemented
//! behind [`PmuConfig`] switches, all off by default:
//!
//! 1. **Destructive read** (`ext_destructive_read`): a read-and-clear
//!    instruction removes the read-subtract-read dance from delta
//!    measurement.
//! 2. **Self-virtualizing counters** (`ext_self_virtualizing`): on
//!    overflow, hardware spills `2^width` into a 64-bit guest-memory
//!    accumulator instead of raising a PMI, eliminating overflow interrupts
//!    entirely.
//! 3. **Tag-filtered counting** (`ext_tag_filter`): a counter only counts
//!    while the core's software-set tag matches the counter's tag, letting
//!    instrumentation code exclude itself from its own measurements.

use crate::core::Mode;
use crate::events::EventKind;
use serde::{Deserialize, Serialize};
use sim_core::{SimError, SimResult};
use std::collections::VecDeque;

/// PMU-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmuConfig {
    /// Number of programmable counter slots.
    pub programmable: usize,
    /// Counter width in bits (raw values wrap at `2^counter_bits`).
    pub counter_bits: u32,
    /// Hardware enhancement 1: destructive (read-and-clear) reads.
    pub ext_destructive_read: bool,
    /// Hardware enhancement 2: spill-to-memory on overflow, no PMI.
    pub ext_self_virtualizing: bool,
    /// Hardware enhancement 3: tag-filtered counting.
    pub ext_tag_filter: bool,
}

impl Default for PmuConfig {
    fn default() -> Self {
        PmuConfig {
            programmable: 4,
            counter_bits: 48,
            ext_destructive_read: false,
            ext_self_virtualizing: false,
            ext_tag_filter: false,
        }
    }
}

impl PmuConfig {
    /// Validates counter count and width.
    pub fn validate(&self) -> SimResult<()> {
        if self.programmable == 0 || self.programmable > 16 {
            return Err(SimError::Config(format!(
                "PMU supports 1..=16 programmable counters, got {}",
                self.programmable
            )));
        }
        if !(6..=63).contains(&self.counter_bits) {
            return Err(SimError::Config(format!(
                "counter width must be 6..=63 bits, got {}",
                self.counter_bits
            )));
        }
        Ok(())
    }
}

/// Configuration of one counter slot (the event-select register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterCfg {
    /// The event to count.
    pub event: EventKind,
    /// Count events occurring in user mode.
    pub count_user: bool,
    /// Count events occurring in kernel mode.
    pub count_kernel: bool,
    /// Raise a PMI when the counter wraps.
    pub pmi_on_overflow: bool,
    /// Enhancement 3: when `Some(t)` (and the extension is enabled), count
    /// only while the core's tag equals `t`.
    pub tag: Option<u64>,
    /// Enhancement 2: when `Some(addr)` (and the extension is enabled), on
    /// overflow the hardware adds `2^width` to the 64-bit guest word at
    /// `addr` instead of raising a PMI.
    pub spill_addr: Option<u64>,
    /// Value the counter reloads to on overflow (sampling re-arm). `None`
    /// reloads to zero. Hardware auto-reload keeps the sampling phase even
    /// when a multi-event instruction wraps the counter more than once.
    pub reload: Option<u64>,
}

impl CounterCfg {
    /// A user-mode-only counter for `event` with no overflow interrupt.
    pub fn user(event: EventKind) -> Self {
        CounterCfg {
            event,
            count_user: true,
            count_kernel: false,
            pmi_on_overflow: false,
            tag: None,
            spill_addr: None,
            reload: None,
        }
    }

    /// A counter for `event` counting in both modes.
    pub fn all_modes(event: EventKind) -> Self {
        CounterCfg {
            count_kernel: true,
            ..CounterCfg::user(event)
        }
    }

    /// Enables the overflow PMI.
    pub fn with_pmi(mut self) -> Self {
        self.pmi_on_overflow = true;
        self
    }

    /// Sets the tag filter (enhancement 3).
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = Some(tag);
        self
    }

    /// Sets the spill address (enhancement 2).
    pub fn with_spill(mut self, addr: u64) -> Self {
        self.spill_addr = Some(addr);
        self
    }

    /// Sets the overflow reload value (sampling re-arm).
    pub fn with_reload(mut self, reload: u64) -> Self {
        self.reload = Some(reload);
        self
    }
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Slot {
    cfg: Option<CounterCfg>,
    raw: u64,
}

/// A pending hardware spill (enhancement 2): add `amount` to the guest
/// word at `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Spill {
    /// Guest address of the 64-bit accumulator.
    pub addr: u64,
    /// Amount to add (`2^width` per overflow).
    pub amount: u64,
}

/// One core's PMU.
///
/// Event delivery is the hottest operation in the whole simulator (every
/// retired instruction calls [`Pmu::count`] at least twice), so the PMU
/// keeps a per-[`EventKind`] **subscriber index**: for each event kind, the
/// slot numbers currently programmed to count it, maintained at
/// [`Pmu::configure`] / [`Pmu::disable`] time. `count` then touches only
/// subscribed slots — O(subscribers) instead of O(all slots) per delivery.
#[derive(Debug, Clone)]
pub struct Pmu {
    config: PmuConfig,
    slots: Vec<Slot>,
    user_rdpmc: bool,
    pending_pmi: VecDeque<u8>,
    pending_spills: Vec<Spill>,
    overflows: u64,
    /// Kernel-visible spill journal (the paper's enhancement 2 done
    /// right): number of self-virtualizing spills performed since the
    /// kernel last consulted the journal. A non-zero journal tells the
    /// kernel a spill may have landed mid-read-sequence, so the restart
    /// fix-up must run — closing the race where spills were invisible to
    /// the kernel entirely.
    spill_journal: u64,
    /// `subscribers[EventKind::index()]` = slot numbers (ascending) whose
    /// configuration counts that event. Rebuilt on configure/disable.
    subscribers: [Vec<u8>; EventKind::COUNT],
}

impl Pmu {
    /// Builds a PMU from a validated config.
    pub fn new(config: PmuConfig) -> SimResult<Self> {
        config.validate()?;
        Ok(Pmu {
            slots: vec![Slot::default(); config.programmable],
            config,
            user_rdpmc: false,
            pending_pmi: VecDeque::new(),
            pending_spills: Vec::new(),
            overflows: 0,
            spill_journal: 0,
            subscribers: Default::default(),
        })
    }

    /// Rebuilds the per-event subscriber index from slot configurations.
    /// O(slots) — called only on the cold configure/disable path.
    fn rebuild_subscribers(&mut self) {
        for list in &mut self.subscribers {
            list.clear();
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(cfg) = slot.cfg {
                self.subscribers[cfg.event.index()].push(i as u8);
            }
        }
    }

    /// The PMU-wide configuration.
    pub fn config(&self) -> PmuConfig {
        self.config
    }

    /// Maximum raw value plus one (the wrap modulus).
    pub fn modulus(&self) -> u64 {
        1u64 << self.config.counter_bits
    }

    fn check_idx(&self, idx: u8) -> SimResult<usize> {
        let i = idx as usize;
        if i >= self.slots.len() {
            return Err(SimError::Resource(format!(
                "counter index {idx} out of range (PMU has {})",
                self.slots.len()
            )));
        }
        Ok(i)
    }

    /// Programs counter `idx` (kernel-privileged operation).
    pub fn configure(&mut self, idx: u8, cfg: CounterCfg) -> SimResult<()> {
        if cfg.spill_addr.is_some() && !self.config.ext_self_virtualizing {
            return Err(SimError::Config(
                "spill_addr requires the self-virtualizing extension".into(),
            ));
        }
        if cfg.tag.is_some() && !self.config.ext_tag_filter {
            return Err(SimError::Config(
                "tag filter requires the tag-filter extension".into(),
            ));
        }
        if let Some(reload) = cfg.reload {
            // A reload at or past the wrap point can never be reached by a
            // real counter: reject it here rather than silently masking it
            // to a different sampling phase at overflow time.
            if reload >= self.modulus() {
                return Err(SimError::Config(format!(
                    "reload value {reload} does not fit a {}-bit counter \
                     (must be < {})",
                    self.config.counter_bits,
                    self.modulus()
                )));
            }
        }
        let i = self.check_idx(idx)?;
        self.slots[i] = Slot {
            cfg: Some(cfg),
            raw: 0,
        };
        self.rebuild_subscribers();
        Ok(())
    }

    /// Disables counter `idx`, clearing its value.
    pub fn disable(&mut self, idx: u8) -> SimResult<()> {
        let i = self.check_idx(idx)?;
        self.slots[i] = Slot::default();
        self.rebuild_subscribers();
        Ok(())
    }

    /// Returns the configuration of counter `idx`, if programmed.
    pub fn counter_cfg(&self, idx: u8) -> Option<CounterCfg> {
        self.slots.get(idx as usize).and_then(|s| s.cfg)
    }

    /// Reads the raw value of counter `idx` (no privilege check — the core
    /// engine enforces the user-rdpmc gate before calling this).
    pub fn read(&self, idx: u8) -> SimResult<u64> {
        let i = self.check_idx(idx)?;
        Ok(self.slots[i].raw)
    }

    /// Reads and clears counter `idx` (enhancement 1's semantics; also used
    /// by the kernel, which may always read-and-clear).
    pub fn read_clear(&mut self, idx: u8) -> SimResult<u64> {
        let i = self.check_idx(idx)?;
        Ok(std::mem::take(&mut self.slots[i].raw))
    }

    /// Writes the raw value of counter `idx` (kernel-privileged; used to
    /// restore virtualized state and to arm sampling periods).
    pub fn write(&mut self, idx: u8, value: u64) -> SimResult<()> {
        let i = self.check_idx(idx)?;
        self.slots[i].raw = value & (self.modulus() - 1);
        Ok(())
    }

    /// Whether userspace `rdpmc` is permitted on this core.
    pub fn user_rdpmc(&self) -> bool {
        self.user_rdpmc
    }

    /// Sets the userspace-`rdpmc` gate (kernel-privileged; the analogue of
    /// CR4.PCE).
    pub fn set_user_rdpmc(&mut self, allowed: bool) {
        self.user_rdpmc = allowed;
    }

    /// Records `n` occurrences of `event` in `mode` with the core tag
    /// `core_tag`. Overflows set PMIs or spills per counter configuration.
    ///
    /// Dispatch is indexed: only slots subscribed to `event` are visited
    /// (in ascending slot order, matching the historical full-scan order).
    pub fn count(&mut self, event: EventKind, n: u64, mode: Mode, core_tag: u64) {
        if n == 0 {
            return;
        }
        let modulus = self.modulus();
        // Disjoint field borrows: the subscriber list is read-only here
        // while slots and the pending queues are mutated.
        let Pmu {
            config,
            slots,
            pending_pmi,
            pending_spills,
            overflows,
            spill_journal,
            subscribers,
            ..
        } = self;
        for &idx in &subscribers[event.index()] {
            let slot = &mut slots[idx as usize];
            let cfg = slot.cfg.expect("indexed slot is configured");
            debug_assert_eq!(cfg.event, event, "subscriber index out of sync");
            let mode_ok = match mode {
                Mode::User => cfg.count_user,
                Mode::Kernel => cfg.count_kernel,
            };
            if !mode_ok {
                continue;
            }
            if config.ext_tag_filter {
                if let Some(t) = cfg.tag {
                    if t != core_tag {
                        continue;
                    }
                }
            }
            // Apply events one overflow at a time so the reload value (the
            // sampling re-arm point) is honoured even when one instruction
            // retires more events than the remaining counter headroom.
            let mut remaining = n;
            loop {
                let room = modulus - slot.raw;
                if remaining < room {
                    slot.raw += remaining;
                    break;
                }
                remaining -= room;
                // Reload fits the width: `configure` rejects anything else.
                slot.raw = cfg.reload.unwrap_or(0);
                *overflows += 1;
                if let Some(addr) = cfg.spill_addr.filter(|_| config.ext_self_virtualizing) {
                    pending_spills.push(Spill {
                        addr,
                        amount: modulus,
                    });
                    *spill_journal += 1;
                } else if cfg.pmi_on_overflow {
                    pending_pmi.push_back(idx);
                }
            }
        }
    }

    /// Takes the next pending overflow interrupt, if any (FIFO, O(1)).
    pub fn take_pmi(&mut self) -> Option<u8> {
        self.pending_pmi.pop_front()
    }

    /// Whether an overflow interrupt is pending.
    pub fn pmi_pending(&self) -> bool {
        !self.pending_pmi.is_empty()
    }

    /// Drains pending hardware spills (enhancement 2); the machine applies
    /// them to guest memory.
    pub fn take_spills(&mut self) -> Vec<Spill> {
        std::mem::take(&mut self.pending_spills)
    }

    /// Number of self-virtualizing spills since the journal was last
    /// consulted (the kernel-visible spill journal).
    pub fn spill_journal(&self) -> u64 {
        self.spill_journal
    }

    /// Consults and clears the spill journal (kernel-privileged): the
    /// kernel reads this at instruction boundaries and runs the restart
    /// fix-up when it is non-zero.
    pub fn take_spill_journal(&mut self) -> u64 {
        std::mem::take(&mut self.spill_journal)
    }

    /// Records `n` spills performed outside [`Pmu::count`] in the journal.
    /// Used by the kernel's forced-spill injection, which models the same
    /// hardware event and must be equally journal-visible.
    pub fn journal_spills(&mut self, n: u64) {
        self.spill_journal += n;
    }

    /// The smallest remaining headroom (events until overflow) across
    /// slots whose overflow has a side effect — a PMI or a memory spill.
    /// `u64::MAX` when no such slot is armed. The block-stepped executor
    /// uses this to bound how many events it may accrue in batch before a
    /// flush could fire an interrupt at the wrong instruction.
    pub fn armed_headroom(&self) -> u64 {
        let modulus = self.modulus();
        let mut headroom = u64::MAX;
        for slot in &self.slots {
            let Some(cfg) = slot.cfg else { continue };
            let spills = cfg
                .spill_addr
                .filter(|_| self.config.ext_self_virtualizing)
                .is_some();
            if spills || cfg.pmi_on_overflow {
                headroom = headroom.min(modulus - slot.raw);
            }
        }
        headroom
    }

    /// Lifetime overflow count (for experiment E3's PMI-rate ablation).
    pub fn overflows(&self) -> u64 {
        self.overflows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pmu() -> Pmu {
        Pmu::new(PmuConfig::default()).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(PmuConfig::default().validate().is_ok());
        assert!(PmuConfig {
            programmable: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(PmuConfig {
            counter_bits: 64,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(PmuConfig {
            counter_bits: 5,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn counting_respects_event_kind() {
        let mut p = pmu();
        p.configure(0, CounterCfg::user(EventKind::Instructions))
            .unwrap();
        p.count(EventKind::Instructions, 5, Mode::User, 0);
        p.count(EventKind::Cycles, 100, Mode::User, 0);
        assert_eq!(p.read(0).unwrap(), 5);
    }

    #[test]
    fn counting_respects_mode_filter() {
        let mut p = pmu();
        p.configure(0, CounterCfg::user(EventKind::Cycles)).unwrap();
        p.configure(1, CounterCfg::all_modes(EventKind::Cycles))
            .unwrap();
        p.count(EventKind::Cycles, 10, Mode::User, 0);
        p.count(EventKind::Cycles, 7, Mode::Kernel, 0);
        assert_eq!(p.read(0).unwrap(), 10, "user-only counter skips kernel");
        assert_eq!(p.read(1).unwrap(), 17);
    }

    #[test]
    fn overflow_wraps_and_raises_pmi() {
        let mut p = Pmu::new(PmuConfig {
            counter_bits: 8, // wrap at 256
            ..Default::default()
        })
        .unwrap();
        p.configure(0, CounterCfg::user(EventKind::Instructions).with_pmi())
            .unwrap();
        p.count(EventKind::Instructions, 300, Mode::User, 0);
        assert_eq!(p.read(0).unwrap(), 300 - 256);
        assert!(p.pmi_pending());
        assert_eq!(p.take_pmi(), Some(0));
        assert!(!p.pmi_pending());
        assert_eq!(p.overflows(), 1);
    }

    #[test]
    fn multiple_wraps_raise_multiple_pmis() {
        let mut p = Pmu::new(PmuConfig {
            counter_bits: 8,
            ..Default::default()
        })
        .unwrap();
        p.configure(0, CounterCfg::user(EventKind::Cycles).with_pmi())
            .unwrap();
        p.count(EventKind::Cycles, 256 * 3 + 5, Mode::User, 0);
        assert_eq!(p.read(0).unwrap(), 5);
        assert_eq!(p.take_pmi(), Some(0));
        assert_eq!(p.take_pmi(), Some(0));
        assert_eq!(p.take_pmi(), Some(0));
        assert_eq!(p.take_pmi(), None);
    }

    #[test]
    fn overflow_without_pmi_enable_is_silent() {
        let mut p = Pmu::new(PmuConfig {
            counter_bits: 8,
            ..Default::default()
        })
        .unwrap();
        p.configure(0, CounterCfg::user(EventKind::Cycles)).unwrap();
        p.count(EventKind::Cycles, 300, Mode::User, 0);
        assert!(!p.pmi_pending());
    }

    #[test]
    fn write_masks_to_width() {
        let mut p = Pmu::new(PmuConfig {
            counter_bits: 8,
            ..Default::default()
        })
        .unwrap();
        p.configure(0, CounterCfg::user(EventKind::Cycles)).unwrap();
        p.write(0, 0x1FF).unwrap();
        assert_eq!(p.read(0).unwrap(), 0xFF);
    }

    #[test]
    fn read_clear_takes_value() {
        let mut p = pmu();
        p.configure(0, CounterCfg::user(EventKind::Cycles)).unwrap();
        p.count(EventKind::Cycles, 42, Mode::User, 0);
        assert_eq!(p.read_clear(0).unwrap(), 42);
        assert_eq!(p.read(0).unwrap(), 0);
    }

    #[test]
    fn out_of_range_counter_is_resource_error() {
        let mut p = pmu();
        assert_eq!(p.read(9).unwrap_err().category(), "resource");
        assert!(p.configure(9, CounterCfg::user(EventKind::Cycles)).is_err());
    }

    #[test]
    fn spill_requires_extension() {
        let mut p = pmu();
        let cfg = CounterCfg::user(EventKind::Cycles).with_spill(0x1000);
        assert!(p.configure(0, cfg).is_err());
    }

    #[test]
    fn tag_requires_extension() {
        let mut p = pmu();
        let cfg = CounterCfg::user(EventKind::Cycles).with_tag(3);
        assert!(p.configure(0, cfg).is_err());
    }

    #[test]
    fn self_virtualizing_spills_instead_of_pmi() {
        let mut p = Pmu::new(PmuConfig {
            counter_bits: 8,
            ext_self_virtualizing: true,
            ..Default::default()
        })
        .unwrap();
        p.configure(
            0,
            CounterCfg::user(EventKind::Cycles)
                .with_pmi()
                .with_spill(0x4000),
        )
        .unwrap();
        p.count(EventKind::Cycles, 600, Mode::User, 0);
        assert!(!p.pmi_pending(), "spill replaces PMI");
        let spills = p.take_spills();
        let total: u64 = spills.iter().map(|s| s.amount).sum();
        assert!(spills.iter().all(|s| s.addr == 0x4000));
        assert_eq!(total, 512);
        assert_eq!(p.read(0).unwrap(), 600 - 512);
    }

    #[test]
    fn reload_preserves_sampling_phase_across_bursts() {
        // 8-bit counter armed at 256-100 (period 100). A single batch of
        // 1000 events must fire floor((1000 - 100)/100) + 1 = 10 PMIs and
        // leave the counter mid-period, exactly as one-at-a-time delivery
        // would.
        let mut p = Pmu::new(PmuConfig {
            counter_bits: 8,
            ..Default::default()
        })
        .unwrap();
        p.configure(
            0,
            CounterCfg::user(EventKind::Instructions)
                .with_pmi()
                .with_reload(256 - 100),
        )
        .unwrap();
        p.write(0, 256 - 100).unwrap();
        p.count(EventKind::Instructions, 1_000, Mode::User, 0);
        let mut pmis = 0;
        while p.take_pmi().is_some() {
            pmis += 1;
        }
        assert_eq!(pmis, 10);
        let expected_residue = 256 - 100; // reload point; 1000 % 100 == 0 extra
        assert_eq!(p.read(0).unwrap(), expected_residue);
    }

    #[test]
    fn reload_must_fit_counter_width() {
        // Width 6: the counter wraps at 64, so 64 is the first invalid
        // reload. Before validation this silently masked to 0 — a period
        // change, not the configured phase.
        let mut p = Pmu::new(PmuConfig {
            counter_bits: 6,
            ..Default::default()
        })
        .unwrap();
        let ok = CounterCfg::user(EventKind::Cycles)
            .with_pmi()
            .with_reload(63);
        assert!(p.configure(0, ok).is_ok());
        let bad = CounterCfg::user(EventKind::Cycles)
            .with_pmi()
            .with_reload(64);
        let err = p.configure(0, bad).unwrap_err();
        assert_eq!(err.category(), "config");
        // The rejected configure must not have clobbered the slot.
        assert_eq!(p.counter_cfg(0), Some(ok));

        // Width 63: the widest supported counter; 2^63 must be rejected,
        // 2^63 - 1 accepted.
        let mut p = Pmu::new(PmuConfig {
            counter_bits: 63,
            ..Default::default()
        })
        .unwrap();
        let ok = CounterCfg::user(EventKind::Cycles)
            .with_pmi()
            .with_reload((1u64 << 63) - 1);
        assert!(p.configure(0, ok).is_ok());
        let bad = CounterCfg::user(EventKind::Cycles)
            .with_pmi()
            .with_reload(1u64 << 63);
        assert_eq!(p.configure(0, bad).unwrap_err().category(), "config");
    }

    #[test]
    fn simultaneous_multi_slot_overflow_orders_pmis_by_slot_index() {
        // Two slots counting the same event, both one delivery away from
        // wrapping. A single `count` call must enqueue both PMIs in slot
        // order (0 then 1) — the deterministic FIFO order the kernel's
        // PMI handler and the trust matrix rely on.
        let mut p = Pmu::new(PmuConfig {
            counter_bits: 8,
            ..Default::default()
        })
        .unwrap();
        // Configure in *reverse* slot order to pin that delivery order
        // follows slot index, not configuration order.
        p.configure(1, CounterCfg::user(EventKind::Cycles).with_pmi())
            .unwrap();
        p.configure(0, CounterCfg::user(EventKind::Cycles).with_pmi())
            .unwrap();
        p.write(0, 255).unwrap();
        p.write(1, 255).unwrap();
        p.count(EventKind::Cycles, 1, Mode::User, 0);
        assert_eq!(p.take_pmi(), Some(0), "slot 0 delivers first");
        assert_eq!(p.take_pmi(), Some(1));
        assert_eq!(p.take_pmi(), None);
        assert_eq!(p.overflows(), 2);
    }

    #[test]
    fn coalesced_back_to_back_overflows_stay_fifo_across_slots() {
        // Slot 0 wraps twice and slot 1 wraps once in one delivery. All of
        // slot 0's PMIs drain before slot 1's (per-slot work completes
        // before the next subscriber is visited), and the total matches
        // one-at-a-time delivery.
        let mut p = Pmu::new(PmuConfig {
            counter_bits: 8,
            ..Default::default()
        })
        .unwrap();
        p.configure(0, CounterCfg::user(EventKind::Cycles).with_pmi())
            .unwrap();
        p.configure(1, CounterCfg::user(EventKind::Cycles).with_pmi())
            .unwrap();
        p.write(0, 200).unwrap();
        p.write(1, 10).unwrap();
        p.count(EventKind::Cycles, 312, Mode::User, 0);
        assert_eq!(p.take_pmi(), Some(0));
        assert_eq!(p.take_pmi(), Some(0));
        assert_eq!(p.take_pmi(), Some(1));
        assert_eq!(p.take_pmi(), None);
        assert_eq!(p.read(0).unwrap(), (200 + 312) % 256);
        assert_eq!(p.read(1).unwrap(), (10 + 312) % 256);
    }

    #[test]
    fn tag_filter_gates_counting() {
        let mut p = Pmu::new(PmuConfig {
            ext_tag_filter: true,
            ..Default::default()
        })
        .unwrap();
        p.configure(0, CounterCfg::user(EventKind::Instructions).with_tag(7))
            .unwrap();
        p.count(EventKind::Instructions, 5, Mode::User, 7);
        p.count(EventKind::Instructions, 5, Mode::User, 3);
        assert_eq!(p.read(0).unwrap(), 5);
    }

    #[test]
    fn untagged_counter_counts_regardless_of_core_tag() {
        let mut p = Pmu::new(PmuConfig {
            ext_tag_filter: true,
            ..Default::default()
        })
        .unwrap();
        p.configure(0, CounterCfg::user(EventKind::Instructions))
            .unwrap();
        p.count(EventKind::Instructions, 5, Mode::User, 99);
        assert_eq!(p.read(0).unwrap(), 5);
    }

    #[test]
    fn spills_are_journaled_for_the_kernel() {
        let mut p = Pmu::new(PmuConfig {
            counter_bits: 8,
            ext_self_virtualizing: true,
            ..Default::default()
        })
        .unwrap();
        p.configure(0, CounterCfg::user(EventKind::Cycles).with_spill(0x4000))
            .unwrap();
        assert_eq!(p.spill_journal(), 0);
        p.count(EventKind::Cycles, 600, Mode::User, 0);
        assert_eq!(p.spill_journal(), 2, "two wraps, two journal entries");
        assert_eq!(p.take_spill_journal(), 2);
        assert_eq!(p.spill_journal(), 0, "consulting clears the journal");
        p.journal_spills(3);
        assert_eq!(p.spill_journal(), 3, "forced spills are journal-visible");
    }

    #[test]
    fn armed_headroom_tracks_the_nearest_side_effect() {
        let mut p = Pmu::new(PmuConfig {
            counter_bits: 8,
            ext_self_virtualizing: true,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(p.armed_headroom(), u64::MAX, "nothing armed");
        p.configure(0, CounterCfg::user(EventKind::Cycles)).unwrap();
        p.count(EventKind::Cycles, 250, Mode::User, 0);
        assert_eq!(p.armed_headroom(), u64::MAX, "silent wrap is not armed");
        p.configure(1, CounterCfg::user(EventKind::Instructions).with_pmi())
            .unwrap();
        p.count(EventKind::Instructions, 200, Mode::User, 0);
        assert_eq!(p.armed_headroom(), 56);
        p.configure(2, CounterCfg::user(EventKind::Loads).with_spill(0x4000))
            .unwrap();
        p.count(EventKind::Loads, 230, Mode::User, 0);
        assert_eq!(p.armed_headroom(), 26, "spill slot is closer");
    }

    #[test]
    fn disable_clears_slot() {
        let mut p = pmu();
        p.configure(0, CounterCfg::user(EventKind::Cycles)).unwrap();
        p.count(EventKind::Cycles, 5, Mode::User, 0);
        p.disable(0).unwrap();
        assert_eq!(p.read(0).unwrap(), 0);
        p.count(EventKind::Cycles, 5, Mode::User, 0);
        assert_eq!(p.read(0).unwrap(), 0, "disabled slot does not count");
    }
}
