//! Basic-block predecoder for the block-stepped executor.
//!
//! [`BlockMap::build`] statically partitions a program into basic blocks:
//! maximal straight-line runs that can only be entered at their first
//! instruction. A new block starts at the program entry, at every control
//! flow target (branch, jump, call), after every control-transfer or
//! serializing instruction (branches, jumps, call/ret, syscall, halt,
//! counter reads, tag writes), and at every pc covered by a registered
//! LiMiT restart range — a mid-sequence pc must be re-enterable because the
//! kernel's restart fix-up can rewind execution onto it.
//!
//! The executor ([`crate::machine::Machine::run_until`]) consumes the
//! per-pc `in_limit` table (in-range pcs run with direct per-instruction
//! PMU accrual); the block partition itself is the specification the
//! boundary proptests and the differential harness check against.

use crate::isa::Instr;
use crate::prog::Program;

/// One predecoded basic block: the half-open pc range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// First instruction of the block (always a boundary pc).
    pub start: u32,
    /// One past the last instruction of the block.
    pub end: u32,
}

impl Block {
    /// Number of instructions in the block.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the block is empty (never true for built maps).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Predecoded block structure of one program, plus the per-pc tables the
/// executor consumes.
#[derive(Debug, Clone)]
pub struct BlockMap {
    /// `boundary[pc]`: pc starts a basic block.
    boundary: Vec<bool>,
    /// `in_limit[pc]`: pc lies inside a registered LiMiT restart range.
    in_limit: Vec<bool>,
    /// The block partition, sorted by `start`, covering `[0, prog.len())`.
    blocks: Vec<Block>,
}

impl BlockMap {
    /// Predecodes `prog` against the registered LiMiT `ranges`
    /// (half-open `[start, end)` pc intervals).
    pub fn build(prog: &Program, ranges: &[(u32, u32)]) -> Self {
        let n = prog.len();
        let mut boundary = vec![false; n];
        let mut in_limit = vec![false; n];
        if n > 0 {
            boundary[0] = true;
        }
        for &(s, e) in ranges {
            // Every in-range pc is a block of its own: the restart fix-up
            // can rewind execution onto any of them.
            for pc in s..e.min(n as u32) {
                boundary[pc as usize] = true;
                in_limit[pc as usize] = true;
            }
            if (e as usize) < n {
                boundary[e as usize] = true;
            }
        }
        for pc in 0..n as u32 {
            let Some(&instr) = prog.fetch(pc) else {
                continue;
            };
            let ends = match instr {
                Instr::Br(_, _, _, target) | Instr::Jmp(target) | Instr::Call(target) => {
                    if (target as usize) < n {
                        boundary[target as usize] = true;
                    }
                    true
                }
                Instr::Ret | Instr::Syscall(_) | Instr::Halt => true,
                // Serializing instructions: counter reads and tag writes
                // are flush points, so they terminate a block.
                Instr::Rdpmc(..) | Instr::RdpmcClear(..) | Instr::SetTag(..) => true,
                _ => false,
            };
            if ends && (pc as usize) + 1 < n {
                boundary[pc as usize + 1] = true;
            }
        }
        let mut blocks = Vec::new();
        let mut start = 0u32;
        for pc in 1..n as u32 {
            if boundary[pc as usize] {
                blocks.push(Block { start, end: pc });
                start = pc;
            }
        }
        if n > 0 {
            blocks.push(Block {
                start,
                end: n as u32,
            });
        }
        BlockMap {
            boundary,
            in_limit,
            blocks,
        }
    }

    /// Whether `pc` starts a basic block.
    pub fn is_boundary(&self, pc: u32) -> bool {
        self.boundary.get(pc as usize).copied().unwrap_or(false)
    }

    /// Whether `pc` lies inside a registered LiMiT restart range.
    pub fn in_limit_range(&self, pc: u32) -> bool {
        self.in_limit.get(pc as usize).copied().unwrap_or(false)
    }

    /// The per-pc LiMiT-range table (what [`crate::machine::RunLimits`]
    /// borrows).
    pub fn in_limit(&self) -> &[bool] {
        &self.in_limit
    }

    /// The block partition, sorted by start pc.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::isa::Cond;
    use crate::prog::Label;
    use crate::regs::Reg;
    use proptest::prelude::*;

    /// Assembles one instruction per `(opcode, target)` descriptor plus a
    /// trailing halt; targets index into the descriptor list.
    fn program_from(ops: &[(u8, u8)]) -> Program {
        let mut a = Asm::new();
        let labels: Vec<Label> = (0..ops.len()).map(|_| a.new_label()).collect();
        for (i, &(op, t)) in ops.iter().enumerate() {
            a.bind(labels[i]);
            let target = labels[t as usize % ops.len()];
            match op % 8 {
                0 => a.nop(),
                1 => a.alui_add(Reg::R1, 1),
                2 => a.load(Reg::R2, Reg::R1, 0),
                3 => a.br(Cond::Ne, Reg::R1, Reg::R2, target),
                4 => a.jmp(target),
                5 => a.call(target),
                6 => a.syscall(0),
                _ => a.ret(),
            };
        }
        a.halt();
        a.assemble().unwrap()
    }

    fn is_control_flow(instr: Instr) -> bool {
        matches!(
            instr,
            Instr::Br(..)
                | Instr::Jmp(_)
                | Instr::Call(_)
                | Instr::Ret
                | Instr::Syscall(_)
                | Instr::Halt
                | Instr::Rdpmc(..)
                | Instr::RdpmcClear(..)
                | Instr::SetTag(..)
        )
    }

    #[test]
    fn straight_line_program_is_one_block() {
        let mut a = Asm::new();
        a.nop();
        a.nop();
        a.nop();
        a.halt();
        let prog = a.assemble().unwrap();
        let map = BlockMap::build(&prog, &[]);
        assert_eq!(map.blocks(), &[Block { start: 0, end: 4 }]);
    }

    #[test]
    fn branch_splits_blocks_at_source_and_target() {
        let mut a = Asm::new();
        a.imm(Reg::R1, 3); // 0
        let top = a.new_label();
        a.bind(top); // 1
        a.alui_sub(Reg::R1, 1); // 1
        a.nop(); // 2
        a.br(Cond::Ne, Reg::R1, Reg::R2, top); // 3
        a.halt(); // 4
        let prog = a.assemble().unwrap();
        let map = BlockMap::build(&prog, &[]);
        assert!(map.is_boundary(0));
        assert!(map.is_boundary(1), "branch target");
        assert!(map.is_boundary(4), "after the branch");
        assert!(!map.is_boundary(2) && !map.is_boundary(3));
        assert_eq!(
            map.blocks(),
            &[
                Block { start: 0, end: 1 },
                Block { start: 1, end: 4 },
                Block { start: 4, end: 5 },
            ]
        );
    }

    #[test]
    fn limit_range_pcs_are_singleton_boundaries() {
        let mut a = Asm::new();
        a.nop(); // 0
        a.nop(); // 1  range
        a.nop(); // 2  range
        a.nop(); // 3  range
        a.halt(); // 4
        let prog = a.assemble().unwrap();
        let map = BlockMap::build(&prog, &[(1, 4)]);
        for pc in 1..4 {
            assert!(map.is_boundary(pc));
            assert!(map.in_limit_range(pc));
        }
        assert!(!map.in_limit_range(0) && !map.in_limit_range(4));
        assert!(map.is_boundary(4), "first pc past the range");
    }

    proptest! {
        #[test]
        fn boundary_invariants_hold(
            ops in proptest::collection::vec((0u8..=255, 0u8..=255), 1..60),
            range in (0u32..40, 1u32..8),
        ) {
            let prog = program_from(&ops);
            let n = prog.len() as u32;
            let (s, len) = range;
            let s = s.min(n - 1);
            let e = (s + len).min(n);
            let map = BlockMap::build(&prog, &[(s, e)]);

            // The entry is a boundary.
            prop_assert!(map.is_boundary(0));

            for pc in 0..n {
                let instr = *prog.fetch(pc).unwrap();
                // Every control-flow target is a boundary.
                if let Instr::Br(_, _, _, t) | Instr::Jmp(t) | Instr::Call(t) = instr {
                    if t < n {
                        prop_assert!(map.is_boundary(t), "target {t} of pc {pc}");
                    }
                }
                // Every pc after a control-transfer or serializing
                // instruction is a boundary (syscalls always end blocks).
                if is_control_flow(instr) && pc + 1 < n {
                    prop_assert!(map.is_boundary(pc + 1), "pc after {pc}");
                }
            }
            // Every in-range pc is a boundary.
            for pc in s..e {
                prop_assert!(map.is_boundary(pc) && map.in_limit_range(pc));
            }

            // Blocks partition [0, n) with boundaries only at starts.
            let blocks = map.blocks();
            prop_assert_eq!(blocks[0].start, 0);
            prop_assert_eq!(blocks[blocks.len() - 1].end, n);
            for w in blocks.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
            for b in blocks {
                prop_assert!(!b.is_empty());
                prop_assert!(map.is_boundary(b.start));
                for pc in b.start + 1..b.end {
                    prop_assert!(!map.is_boundary(pc));
                    // Control flow only at the last instruction of a block.
                    prop_assert!(
                        !is_control_flow(*prog.fetch(pc - 1).unwrap()),
                        "control flow mid-block at {}", pc - 1
                    );
                }
            }
        }
    }
}
