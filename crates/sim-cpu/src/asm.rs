//! The guest assembler: an emit-style program builder with labels.
//!
//! Workloads and the LiMiT library build guest code through [`Asm`]. Labels
//! support forward references; [`Asm::assemble`] patches them and fails
//! loudly on any label that was created but never bound.
//!
//! # Example
//!
//! ```
//! use sim_cpu::{Asm, Reg, Cond};
//!
//! let mut a = Asm::new();
//! a.export("main");
//! a.imm(Reg::R1, 10);          // counter
//! a.imm(Reg::R2, 0);           // zero
//! let top = a.new_label();
//! a.bind(top);
//! a.alui_sub(Reg::R1, 1);
//! a.br(Cond::Ne, Reg::R1, Reg::R2, top);
//! a.halt();
//! let prog = a.assemble().unwrap();
//! assert_eq!(prog.entry("main").unwrap(), 0);
//! ```

use crate::isa::{AluOp, Cond, Instr};
use crate::prog::{Label, Program};
use crate::regs::Reg;
use sim_core::{SimError, SimResult};
use std::collections::HashMap;

const UNRESOLVED: u32 = u32::MAX;

/// A guest program under construction.
#[derive(Debug, Default)]
pub struct Asm {
    instrs: Vec<Instr>,
    labels: Vec<Option<u32>>,
    fixups: Vec<(usize, Label)>,
    entries: HashMap<String, u32>,
    open_ranges: HashMap<String, u32>,
    ranges: HashMap<String, (u32, u32)>,
}

impl Asm {
    /// An empty program.
    pub fn new() -> Self {
        Asm::default()
    }

    /// The PC the next emitted instruction will occupy.
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current PC.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (always a generator bug).
    pub fn bind(&mut self, label: Label) {
        let here = self.here();
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(here);
    }

    /// Names the current PC as an entry point.
    pub fn export(&mut self, name: &str) {
        self.entries.insert(name.to_string(), self.here());
    }

    /// Opens a named PC range at the current PC.
    pub fn begin_range(&mut self, name: &str) {
        self.open_ranges.insert(name.to_string(), self.here());
    }

    /// Closes a named PC range at the current PC (exclusive end).
    ///
    /// # Panics
    ///
    /// Panics if the range was never opened.
    pub fn end_range(&mut self, name: &str) {
        let start = self
            .open_ranges
            .remove(name)
            .unwrap_or_else(|| panic!("range {name:?} was never opened"));
        self.ranges.insert(name.to_string(), (start, self.here()));
    }

    fn emit(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    fn emit_jump(&mut self, make: impl FnOnce(u32) -> Instr, target: Label) -> &mut Self {
        self.fixups.push((self.instrs.len(), target));
        self.instrs.push(make(UNRESOLVED));
        self
    }

    /// `rd = imm`
    pub fn imm(&mut self, rd: Reg, v: u64) -> &mut Self {
        self.emit(Instr::Imm(rd, v))
    }

    /// `rd = rs`
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::Mov(rd, rs))
    }

    /// `rd = rd op rs`
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::Alu(op, rd, rs))
    }

    /// `rd = rd + rs`
    pub fn add(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, rs)
    }

    /// `rd = rd - rs`
    pub fn sub(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.alu(AluOp::Sub, rd, rs)
    }

    /// `rd = rd op imm`
    pub fn alui(&mut self, op: AluOp, rd: Reg, v: u64) -> &mut Self {
        self.emit(Instr::AluImm(op, rd, v))
    }

    /// `rd = rd + imm`
    pub fn alui_add(&mut self, rd: Reg, v: u64) -> &mut Self {
        self.alui(AluOp::Add, rd, v)
    }

    /// `rd = rd - imm`
    pub fn alui_sub(&mut self, rd: Reg, v: u64) -> &mut Self {
        self.alui(AluOp::Sub, rd, v)
    }

    /// Straight-line compute burst of `n` instructions.
    pub fn burst(&mut self, n: u32) -> &mut Self {
        self.emit(Instr::Burst(n))
    }

    /// `rd = mem64[ra + off]`
    pub fn load(&mut self, rd: Reg, ra: Reg, off: i32) -> &mut Self {
        self.emit(Instr::Load(rd, ra, off))
    }

    /// `mem64[ra + off] = rs`
    pub fn store(&mut self, rs: Reg, ra: Reg, off: i32) -> &mut Self {
        self.emit(Instr::Store(rs, ra, off))
    }

    /// Atomic exchange of `rd` with `mem64[ra + off]`.
    pub fn xchg(&mut self, rd: Reg, ra: Reg, off: i32) -> &mut Self {
        self.emit(Instr::Xchg(rd, ra, off))
    }

    /// Atomic fetch-add of `rd` into `mem64[ra + off]`; old value in `rd`.
    pub fn fetch_add(&mut self, rd: Reg, ra: Reg, off: i32) -> &mut Self {
        self.emit(Instr::FetchAdd(rd, ra, off))
    }

    /// Conditional branch to `target`.
    pub fn br(&mut self, cond: Cond, a: Reg, b: Reg, target: Label) -> &mut Self {
        self.emit_jump(|t| Instr::Br(cond, a, b, t), target)
    }

    /// Unconditional jump to `target`.
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        self.emit_jump(Instr::Jmp, target)
    }

    /// Calls the routine at `target`.
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.emit_jump(Instr::Call, target)
    }

    /// Calls a routine at an already-known absolute PC (cross-fragment).
    pub fn call_abs(&mut self, pc: u32) -> &mut Self {
        self.emit(Instr::Call(pc))
    }

    /// Returns from the current routine.
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Instr::Ret)
    }

    /// Reads performance counter `idx` into `rd`.
    pub fn rdpmc(&mut self, rd: Reg, idx: u8) -> &mut Self {
        self.emit(Instr::Rdpmc(rd, idx))
    }

    /// Destructive counter read (hardware extension 1).
    pub fn rdpmc_clear(&mut self, rd: Reg, idx: u8) -> &mut Self {
        self.emit(Instr::RdpmcClear(rd, idx))
    }

    /// Reads the cycle timestamp into `rd`.
    pub fn rdtsc(&mut self, rd: Reg) -> &mut Self {
        self.emit(Instr::Rdtsc(rd))
    }

    /// Sets the core counting tag from `rs` (hardware extension 3).
    pub fn set_tag(&mut self, rs: Reg) -> &mut Self {
        self.emit(Instr::SetTag(rs))
    }

    /// Traps into the kernel.
    pub fn syscall(&mut self, nr: u64) -> &mut Self {
        self.emit(Instr::Syscall(nr))
    }

    /// One-cycle no-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::Nop)
    }

    /// Terminates the executing thread.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr::Halt)
    }

    /// Resolves all labels and produces the immutable [`Program`].
    pub fn assemble(mut self) -> SimResult<Program> {
        if let Some(name) = self.open_ranges.keys().next() {
            return Err(SimError::Program(format!(
                "range {name:?} opened but never closed"
            )));
        }
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let pc = self.labels[label.0].ok_or_else(|| {
                SimError::Program(format!("label #{} used but never bound", label.0))
            })?;
            match &mut self.instrs[idx] {
                Instr::Br(_, _, _, t) | Instr::Jmp(t) | Instr::Call(t) => *t = pc,
                other => {
                    return Err(SimError::Program(format!(
                        "fixup targets non-jump instruction {other}"
                    )))
                }
            }
        }
        Ok(Program {
            instrs: self.instrs,
            entries: self.entries,
            ranges: self.ranges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        let fwd = a.new_label();
        a.jmp(fwd); // pc 0 -> forward
        a.nop(); // pc 1 (skipped)
        a.bind(fwd);
        let back = a.new_label();
        a.bind(back);
        a.br(Cond::Eq, Reg::R0, Reg::R0, back); // pc 2 -> 2
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.fetch(0), Some(&Instr::Jmp(2)));
        assert_eq!(p.fetch(2), Some(&Instr::Br(Cond::Eq, Reg::R0, Reg::R0, 2)));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.jmp(l);
        let err = a.assemble().unwrap_err();
        assert_eq!(err.category(), "program");
    }

    #[test]
    fn unclosed_range_is_an_error() {
        let mut a = Asm::new();
        a.begin_range("seq");
        a.nop();
        assert!(a.assemble().is_err());
    }

    #[test]
    fn ranges_and_entries_are_recorded() {
        let mut a = Asm::new();
        a.export("main");
        a.nop();
        a.begin_range("read");
        a.rdpmc(Reg::R1, 0);
        a.rdpmc(Reg::R2, 1);
        a.end_range("read");
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.entry("main").unwrap(), 0);
        assert_eq!(p.range("read").unwrap(), (1, 3));
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn builder_chaining_works() {
        let mut a = Asm::new();
        a.imm(Reg::R1, 5).alui_add(Reg::R1, 3).halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.len(), 3);
    }
}
