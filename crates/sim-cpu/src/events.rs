//! Architectural events the PMU can count.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The taxonomy of countable architectural events.
///
/// The set mirrors the events the paper's case studies use on real Intel
/// PMUs: cycle and instruction counts, branch behaviour, and the cache-miss
/// ladder, plus coherence traffic (which the MySQL lock study reads as
/// "lock-line bouncing").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EventKind {
    /// Core clock cycles (unhalted).
    Cycles,
    /// Retired instructions.
    Instructions,
    /// Retired branch instructions.
    Branches,
    /// Mispredicted branches.
    BranchMisses,
    /// Retired load instructions.
    Loads,
    /// Retired store instructions.
    Stores,
    /// L1 data-cache misses.
    L1dMisses,
    /// L2 cache misses.
    L2Misses,
    /// Last-level-cache misses.
    LlcMisses,
    /// Remote private copies invalidated by coherent writes.
    CoherenceInvalidations,
    /// Accesses serviced by a cache-to-cache forward from another core.
    RemoteHits,
    /// Cycles stalled waiting for the memory system.
    MemStallCycles,
    /// Data-TLB misses (page walks).
    TlbMisses,
}

impl EventKind {
    /// All event kinds, in a stable order (used for iteration in tests and
    /// report rendering).
    pub const ALL: [EventKind; 13] = [
        EventKind::Cycles,
        EventKind::Instructions,
        EventKind::Branches,
        EventKind::BranchMisses,
        EventKind::Loads,
        EventKind::Stores,
        EventKind::L1dMisses,
        EventKind::L2Misses,
        EventKind::LlcMisses,
        EventKind::CoherenceInvalidations,
        EventKind::RemoteHits,
        EventKind::MemStallCycles,
        EventKind::TlbMisses,
    ];

    /// Number of event kinds (the size of per-event dispatch tables).
    pub const COUNT: usize = EventKind::ALL.len();

    /// Dense index of this event, matching its position in
    /// [`EventKind::ALL`]. Used by the PMU's per-event subscriber index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The short mnemonic used in reports (styled after `perf list` names).
    pub fn mnemonic(self) -> &'static str {
        match self {
            EventKind::Cycles => "cycles",
            EventKind::Instructions => "instructions",
            EventKind::Branches => "branches",
            EventKind::BranchMisses => "branch-misses",
            EventKind::Loads => "loads",
            EventKind::Stores => "stores",
            EventKind::L1dMisses => "l1d-misses",
            EventKind::L2Misses => "l2-misses",
            EventKind::LlcMisses => "llc-misses",
            EventKind::CoherenceInvalidations => "coherence-invalidations",
            EventKind::RemoteHits => "remote-hits",
            EventKind::MemStallCycles => "mem-stall-cycles",
            EventKind::TlbMisses => "dtlb-misses",
        }
    }
}

impl fmt::Debug for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mnemonics_are_unique() {
        let set: HashSet<_> = EventKind::ALL.iter().map(|e| e.mnemonic()).collect();
        assert_eq!(set.len(), EventKind::ALL.len());
    }

    #[test]
    fn display_matches_mnemonic() {
        assert_eq!(EventKind::LlcMisses.to_string(), "llc-misses");
        assert_eq!(format!("{:?}", EventKind::Cycles), "cycles");
    }

    #[test]
    fn index_is_dense_and_matches_all_order() {
        for (i, e) in EventKind::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
            assert!(e.index() < EventKind::COUNT);
        }
    }
}
