//! The multicore machine: cores + guest memory + memory hierarchy + program.
//!
//! [`Machine::step`] executes exactly one guest instruction on one core,
//! charging cycles (including memory stalls and mispredict penalties) and
//! feeding architectural events to that core's PMU. The OS layer above picks
//! which core steps next, handles the returned traps, and delivers
//! interrupts between steps — giving interrupt semantics at instruction
//! granularity, which is what the LiMiT read-race reproduction requires.

use crate::core::{Core, Mode, Step, Trap};
use crate::cost::CostModel;
use crate::events::EventKind;
use crate::gmem::GuestMem;
use crate::isa::Instr;
use crate::oracle::Oracle;
use crate::pmu::PmuConfig;
use crate::prog::Program;
use flight::{EventData, FlightConfig, FlightRecorder, RegionMark};
use serde::{Deserialize, Serialize};
use sim_core::{CoreId, Freq, SimError, SimResult};
use sim_mem::{HierarchyConfig, MemAccess, MemorySystem};

/// Maximum shadow-call-stack depth before a fault is raised.
const MAX_CALL_DEPTH: usize = 1024;

/// Hardware configuration for the whole machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of cores.
    pub cores: usize,
    /// Per-core PMU configuration.
    pub pmu: PmuConfig,
    /// Memory-hierarchy configuration.
    pub hierarchy: HierarchyConfig,
    /// Per-instruction cycle costs; defaults reproduce the `cost::*`
    /// constants bit-for-bit.
    pub cost: CostModel,
    /// Core clock frequency (for reporting only; timing is in cycles).
    pub freq: Freq,
}

impl MachineConfig {
    /// A machine with `cores` cores and default everything else.
    pub fn new(cores: usize) -> Self {
        MachineConfig {
            cores,
            pmu: PmuConfig::default(),
            hierarchy: HierarchyConfig::default(),
            cost: CostModel::default(),
            freq: Freq::DEFAULT,
        }
    }

    /// Replaces the PMU configuration.
    pub fn with_pmu(mut self, pmu: PmuConfig) -> Self {
        self.pmu = pmu;
        self
    }

    /// Replaces the hierarchy configuration.
    pub fn with_hierarchy(mut self, hierarchy: HierarchyConfig) -> Self {
        self.hierarchy = hierarchy;
        self
    }

    /// Replaces the cycle-cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }
}

/// Per-run bounds and boundary tables the kernel hands to
/// [`Machine::run_until`] — the kernel telling the machine how far it may
/// run before the next kernel-visible poll point.
#[derive(Debug, Clone, Copy)]
pub struct RunLimits<'a> {
    /// Per-core clock thresholds (indexed by core number): the earliest of
    /// the core's slice expiry, the next periodic-hook fire time, and the
    /// machine-wide cycle budget. A core hands control back *before*
    /// executing an instruction at or past its threshold.
    pub stop_at: &'a [u64],
    /// Earliest wake-up time of any sleeping thread: the run stops once the
    /// running core's clock reaches it, so the kernel can wake the sleeper.
    pub wake_at: u64,
    /// Per-pc injection-arming table when an injector is attached: an armed
    /// pc is an execution boundary the kernel single-steps across.
    pub armed_pcs: Option<&'a [bool]>,
    /// Per-pc registered-LiMiT-range table (from
    /// [`crate::block::BlockMap`]): in-range pcs execute with direct
    /// per-instruction accrual.
    pub in_limit: &'a [bool],
}

/// Why [`Machine::run_until`] handed control back to the kernel. Apart from
/// [`RunExit::Trap`], the variants are advisory — the kernel re-runs its
/// full poll sequence either way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunExit {
    /// A core reached its `stop_at` threshold (slice expiry, periodic hook,
    /// or cycle budget — the kernel re-derives which).
    StopClock(CoreId),
    /// A sleeping thread's wake-up time was reached.
    Wake(CoreId),
    /// A PMI is pending on the core.
    Pmi(CoreId),
    /// The next instruction's pc is an armed injection point.
    Boundary(CoreId),
    /// A self-virtualizing spill was journaled; the kernel must consult the
    /// journal before the next instruction runs.
    SpillJournal(CoreId),
    /// The instruction trapped (syscall, halt, or fault).
    Trap(CoreId, Step),
    /// No core has a thread installed.
    Idle,
}

/// The machine.
#[derive(Debug)]
pub struct Machine {
    /// All cores.
    pub cores: Vec<Core>,
    /// Guest memory (values).
    pub mem: GuestMem,
    /// Memory hierarchy (timing + events).
    pub memsys: MemorySystem,
    /// The single program image all threads execute from.
    pub prog: Program,
    /// Runtime cycle-cost model every charge site reads.
    cost: CostModel,
    freq: Freq,
    /// Differential oracle for the torture harness; off unless enabled via
    /// [`Machine::enable_oracle`].
    oracle: Option<Oracle>,
    /// Machine-wide flight recorder; off unless enabled via
    /// [`Machine::enable_flight`]. Boxed so the disabled case costs one
    /// cold null check per emission site.
    flight: Option<Box<FlightRecorder>>,
}

impl Machine {
    /// Builds a machine running `prog`.
    pub fn new(config: MachineConfig, prog: Program) -> SimResult<Self> {
        if config.cores == 0 {
            return Err(SimError::Config("machine needs at least one core".into()));
        }
        let cores = (0..config.cores)
            .map(|i| Core::new(CoreId::new(i as u32), config.pmu))
            .collect::<SimResult<Vec<_>>>()?;
        Ok(Machine {
            cores,
            mem: GuestMem::new(),
            memsys: MemorySystem::new(config.cores, config.hierarchy)?,
            prog,
            cost: config.cost,
            freq: config.freq,
            oracle: None,
            flight: None,
        })
    }

    /// Enables the differential oracle, checking virtualized reads inside
    /// the given restart ranges. Every core gains a per-step event scratch;
    /// the overhead is zero when the oracle is off.
    pub fn enable_oracle(&mut self, ranges: &[(u32, u32)]) {
        self.oracle = Some(Oracle::new(ranges));
        for core in &mut self.cores {
            core.oracle_scratch = Some(Box::new([0; EventKind::COUNT]));
        }
    }

    /// The oracle, if enabled.
    pub fn oracle(&self) -> Option<&Oracle> {
        self.oracle.as_ref()
    }

    /// Mutable oracle access (the kernel reports counter attach/detach).
    pub fn oracle_mut(&mut self) -> Option<&mut Oracle> {
        self.oracle.as_mut()
    }

    /// Enables the flight recorder: one bounded event ring per core plus a
    /// host ring. Every emission site in the machine and the layers above
    /// guards on the option, so the cost is zero when off.
    pub fn enable_flight(&mut self, cfg: FlightConfig) {
        self.flight = Some(Box::new(FlightRecorder::new(self.cores.len(), cfg)));
    }

    /// The flight recorder, if enabled.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_deref()
    }

    /// Mutable flight-recorder access (the kernel and harness emit into
    /// it and install marks/ranges).
    pub fn flight_mut(&mut self) -> Option<&mut FlightRecorder> {
        self.flight.as_deref_mut()
    }

    /// The core clock frequency.
    pub fn freq(&self) -> Freq {
        self.freq
    }

    /// The runtime cycle-cost model (the kernel charges syscall entry/exit
    /// and spill costs through it).
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    fn count(core: &mut Core, event: EventKind, n: u64) {
        // Block-stepped fast path: defer delivery into the per-core batch.
        // [`Machine::run_until`] flushes at counter reads, tag changes, and
        // before any armed counter could wrap, so the PMU observes the same
        // totals at every architecturally visible point.
        if core.batch.active {
            core.batch.counts[event.index()] += n;
            core.batch.total += n;
            return;
        }
        let tag = core.ctx.tag;
        core.pmu.count(event, n, core.mode, tag);
        // Shadow-ledger tap: user-mode events also land in the oracle
        // scratch, outside the PMU (no width limit, no fold, no spill).
        if core.mode == Mode::User {
            if let Some(scratch) = &mut core.oracle_scratch {
                scratch[event.index()] += n;
            }
        }
    }

    fn mem_access_events(core: &mut Core, acc: &MemAccess) {
        if acc.events.l1_miss {
            Self::count(core, EventKind::L1dMisses, 1);
        }
        if acc.events.l2_miss {
            Self::count(core, EventKind::L2Misses, 1);
        }
        if acc.events.llc_miss {
            Self::count(core, EventKind::LlcMisses, 1);
        }
        if acc.events.invalidations > 0 {
            Self::count(
                core,
                EventKind::CoherenceInvalidations,
                acc.events.invalidations as u64,
            );
        }
        if acc.events.remote_hit {
            Self::count(core, EventKind::RemoteHits, 1);
        }
        if acc.events.tlb_miss {
            Self::count(core, EventKind::TlbMisses, 1);
        }
        let stall = acc.latency.saturating_sub(1);
        if stall > 0 {
            Self::count(core, EventKind::MemStallCycles, stall);
        }
    }

    /// Charges `cycles`/`instrs` to a core without executing guest code —
    /// the kernel uses this to account for syscall entry/exit, interrupt
    /// handlers, and context-switch work. Events are counted in the core's
    /// *current* mode (the kernel sets `Mode::Kernel` first).
    pub fn charge(&mut self, core: CoreId, cycles: u64, instrs: u64) {
        let c = &mut self.cores[core.index()];
        c.clock += cycles;
        Self::count(c, EventKind::Cycles, cycles);
        Self::count(c, EventKind::Instructions, instrs);
    }

    /// Executes one instruction of the thread installed on `core`.
    ///
    /// Returns the step outcome; the caller (the kernel) is responsible for
    /// handling traps and checking for pending PMIs afterwards.
    pub fn step(&mut self, core_id: CoreId) -> SimResult<Step> {
        // Split borrows: core is taken by index, memory systems separately.
        let core_idx = core_id.index();
        if core_idx >= self.cores.len() {
            return Err(SimError::Program(format!("no such core {core_id}")));
        }
        if self.cores[core_idx].running.is_none() {
            return Err(SimError::Program(format!("{core_id} is idle")));
        }
        self.step_impl::<false>(core_id)
    }

    /// [`Machine::step`]'s body, monomorphized over the block-stepped fast
    /// path. With `FAST`, the per-instruction observer taps (trace ring,
    /// differential oracle, flight recorder) compile out entirely — the
    /// caller ([`Machine::run_until`]) has verified all three are disabled —
    /// and the caller guarantees the core exists and has a thread installed.
    fn step_impl<const FAST: bool>(&mut self, core_id: CoreId) -> SimResult<Step> {
        let fault = |msg: String| Step {
            cycles: 1,
            instrs: 0,
            trap: Some(Trap::Fault(msg)),
        };
        let core_idx = core_id.index();
        let cost = self.cost;

        let pc = self.cores[core_idx].ctx.pc;
        let Some(&instr) = self.prog.fetch(pc) else {
            // A faulting fetch never issues an instruction: no cycle charge,
            // no PMU events — there is nothing architectural to count.
            return Ok(Step {
                cycles: 0,
                instrs: 0,
                trap: Some(Trap::Fault(format!("pc {pc} out of program bounds"))),
            });
        };

        let cycles: u64;
        let mut instrs: u64 = 1;
        let mut trap: Option<Trap> = None;
        let mut next_pc = pc + 1;

        if !FAST {
            let core = &mut self.cores[core_idx];
            let (clock, tid) = (core.clock, core.running);
            if let Some(trace) = &mut core.trace {
                trace.record(crate::trace::TraceEntry {
                    clock,
                    pc,
                    tid,
                    instr,
                });
            }
        }

        match instr {
            Instr::Imm(rd, v) => {
                cycles = cost.alu;
                self.cores[core_idx].ctx.set(rd, v);
            }
            Instr::Mov(rd, rs) => {
                cycles = cost.alu;
                let v = self.cores[core_idx].ctx.get(rs);
                self.cores[core_idx].ctx.set(rd, v);
            }
            Instr::Alu(op, rd, rs) => {
                cycles = cost.alu;
                let ctx = &mut self.cores[core_idx].ctx;
                let v = op.apply(ctx.get(rd), ctx.get(rs));
                ctx.set(rd, v);
            }
            Instr::AluImm(op, rd, v) => {
                cycles = cost.alu;
                let ctx = &mut self.cores[core_idx].ctx;
                let nv = op.apply(ctx.get(rd), v);
                ctx.set(rd, nv);
            }
            Instr::Burst(n) => {
                let n = n.max(1) as u64;
                cycles = n;
                instrs = n;
            }
            Instr::Load(rd, ra, off) => {
                let addr = self.cores[core_idx]
                    .ctx
                    .get(ra)
                    .wrapping_add(off as i64 as u64);
                match self.mem.read_u64(addr) {
                    Ok(v) => {
                        let now = self.cores[core_idx].clock;
                        let acc = self.memsys.access(core_id, addr, false, now);
                        let core = &mut self.cores[core_idx];
                        core.ctx.set(rd, v);
                        Self::count(core, EventKind::Loads, 1);
                        Self::mem_access_events(core, &acc);
                        cycles = cost.mem_issue + acc.latency;
                    }
                    Err(e) => {
                        let step = fault(e.message().to_string());
                        self.finish_step::<FAST>(core_idx, &step);
                        return Ok(step);
                    }
                }
            }
            Instr::Store(rs, ra, off) => {
                let ctx = &self.cores[core_idx].ctx;
                let addr = ctx.get(ra).wrapping_add(off as i64 as u64);
                let v = ctx.get(rs);
                match self.mem.write_u64(addr, v) {
                    Ok(()) => {
                        let now = self.cores[core_idx].clock;
                        let acc = self.memsys.access(core_id, addr, true, now);
                        let core = &mut self.cores[core_idx];
                        Self::count(core, EventKind::Stores, 1);
                        Self::mem_access_events(core, &acc);
                        cycles = cost.mem_issue + acc.latency;
                    }
                    Err(e) => {
                        let step = fault(e.message().to_string());
                        self.finish_step::<FAST>(core_idx, &step);
                        return Ok(step);
                    }
                }
            }
            Instr::Xchg(rd, ra, off) | Instr::FetchAdd(rd, ra, off) => {
                let ctx = &self.cores[core_idx].ctx;
                let addr = ctx.get(ra).wrapping_add(off as i64 as u64);
                let operand = ctx.get(rd);
                let old = match self.mem.read_u64(addr) {
                    Ok(v) => v,
                    Err(e) => {
                        let step = fault(e.message().to_string());
                        self.finish_step::<FAST>(core_idx, &step);
                        return Ok(step);
                    }
                };
                let new = match instr {
                    Instr::Xchg(..) => operand,
                    _ => old.wrapping_add(operand),
                };
                self.mem
                    .write_u64(addr, new)
                    .expect("write cannot fail after aligned read");
                let now = self.cores[core_idx].clock;
                let acc = self.memsys.access(core_id, addr, true, now);
                let core = &mut self.cores[core_idx];
                core.ctx.set(rd, old);
                Self::count(core, EventKind::Loads, 1);
                Self::count(core, EventKind::Stores, 1);
                Self::mem_access_events(core, &acc);
                cycles = cost.mem_issue + acc.latency + cost.atomic_penalty;
            }
            Instr::Br(cond, a, b, target) => {
                let core = &mut self.cores[core_idx];
                let taken = cond.eval(core.ctx.get(a), core.ctx.get(b));
                let missed = core.predictor.observe(pc, taken);
                if taken {
                    next_pc = target;
                }
                cycles = cost.branch + if missed { cost.branch_miss_penalty } else { 0 };
                Self::count(core, EventKind::Branches, 1);
                if missed {
                    Self::count(core, EventKind::BranchMisses, 1);
                }
            }
            Instr::Jmp(target) => {
                cycles = cost.branch;
                next_pc = target;
                let core = &mut self.cores[core_idx];
                Self::count(core, EventKind::Branches, 1);
            }
            Instr::Call(target) => {
                cycles = cost.call;
                let core = &mut self.cores[core_idx];
                if core.ctx.call_stack.len() >= MAX_CALL_DEPTH {
                    let step = fault("call stack overflow".into());
                    self.finish_step::<FAST>(core_idx, &step);
                    return Ok(step);
                }
                core.ctx.call_stack.push(next_pc);
                next_pc = target;
            }
            Instr::Ret => {
                cycles = cost.call;
                match self.cores[core_idx].ctx.call_stack.pop() {
                    Some(ra) => next_pc = ra,
                    None => {
                        let step = fault("ret with empty call stack".into());
                        self.finish_step::<FAST>(core_idx, &step);
                        return Ok(step);
                    }
                }
            }
            Instr::Rdpmc(rd, idx) | Instr::RdpmcClear(rd, idx) => {
                let destructive = matches!(instr, Instr::RdpmcClear(..));
                let core = &mut self.cores[core_idx];
                if core.mode == Mode::User && !core.pmu.user_rdpmc() {
                    let step = fault("rdpmc: userspace counter access disabled".into());
                    self.finish_step::<FAST>(core_idx, &step);
                    return Ok(step);
                }
                if destructive && !core.pmu.config().ext_destructive_read {
                    let step = fault("rdpmc.clr: destructive-read extension disabled".into());
                    self.finish_step::<FAST>(core_idx, &step);
                    return Ok(step);
                }
                // Deferred counts must be delivered before the counter is
                // read; the read itself still precedes this instruction's
                // own cycle/instruction accrual, as in per-instruction mode.
                if core.batch.active {
                    core.flush_batch();
                }
                let value = if destructive {
                    core.pmu.read_clear(idx)
                } else {
                    core.pmu.read(idx)
                };
                match value {
                    Ok(v) => {
                        core.ctx.set(rd, v);
                        cycles = cost.rdpmc;
                    }
                    Err(e) => {
                        let step = fault(e.message().to_string());
                        self.finish_step::<FAST>(core_idx, &step);
                        return Ok(step);
                    }
                }
            }
            Instr::Rdtsc(rd) => {
                cycles = cost.rdtsc;
                let clock = self.cores[core_idx].clock;
                self.cores[core_idx].ctx.set(rd, clock);
            }
            Instr::SetTag(rs) => {
                cycles = cost.settag;
                let core = &mut self.cores[core_idx];
                if core.pmu.config().ext_tag_filter {
                    // Counts accrued under the old tag must be delivered
                    // before the tag changes.
                    if core.batch.active {
                        core.flush_batch();
                    }
                    core.ctx.tag = core.ctx.get(rs);
                }
            }
            Instr::Syscall(nr) => {
                cycles = cost.alu;
                trap = Some(Trap::Syscall(nr));
            }
            Instr::Nop => {
                cycles = cost.alu;
            }
            Instr::Halt => {
                cycles = cost.alu;
                trap = Some(Trap::Halt);
            }
        }

        // Oracle taps (no-ops unless enabled): an in-range `rdpmc` arms an
        // expected value from the shadow ledger; the range's final
        // instruction resolves the check against the architected result.
        if !FAST
            && self.oracle.is_some()
            && trap.is_none()
            && self.cores[core_idx].mode == Mode::User
        {
            self.oracle_observe(core_idx, pc, instr);
        }

        // Flight-recorder taps (no-ops unless enabled): region markers at
        // the fetched pc and user-mode counter reads.
        if !FAST
            && self.flight.is_some()
            && trap.is_none()
            && self.cores[core_idx].mode == Mode::User
        {
            self.flight_observe(core_idx, pc, instr);
        }

        self.cores[core_idx].ctx.pc = next_pc;
        let step = Step {
            cycles,
            instrs,
            trap,
        };
        self.finish_step::<FAST>(core_idx, &step);
        Ok(step)
    }

    /// Feeds one retired user-mode instruction to the oracle (see
    /// [`crate::oracle`]). Called with the pre-advance `pc`. Oracle arms
    /// and resolutions are mirrored into the flight recorder when both are
    /// enabled.
    fn oracle_observe(&mut self, core_idx: usize, pc: u32, instr: Instr) {
        let Some(tid) = self.cores[core_idx].running else {
            return;
        };
        match instr {
            Instr::Rdpmc(_, idx) | Instr::RdpmcClear(_, idx) => {
                let armed = match self.oracle.as_mut() {
                    Some(o) => o.observe_read(tid, idx, pc),
                    None => false,
                };
                if armed {
                    let clock = self.cores[core_idx].clock;
                    if let Some(fl) = self.flight.as_deref_mut() {
                        fl.record(core_idx, clock, Some(tid.0), EventData::OracleArm { pc });
                    }
                }
            }
            // The read sequence ends in `add dst, scratch`; any other ALU
            // op at a range end would simply never resolve a pending check.
            Instr::Alu(_, rd, _) => {
                let actual = self.cores[core_idx].ctx.get(rd);
                let clock = self.cores[core_idx].clock;
                let resolved = match self.oracle.as_mut() {
                    Some(o) => o.complete(tid, pc, actual, clock),
                    None => None,
                };
                if let Some(ok) = resolved {
                    if let Some(fl) = self.flight.as_deref_mut() {
                        fl.record(
                            core_idx,
                            clock,
                            Some(tid.0),
                            EventData::OracleCheck { pc, ok },
                        );
                    }
                }
            }
            _ => {}
        }
    }

    /// Feeds one retired user-mode instruction to the flight recorder:
    /// region enter/exit markers installed by the harness, and `rdpmc`
    /// reads classified against the registered restart ranges. Called with
    /// the pre-advance `pc`, after the instruction's effects applied.
    fn flight_observe(&mut self, core_idx: usize, pc: u32, instr: Instr) {
        let core = &self.cores[core_idx];
        let clock = core.clock;
        let tid = core.running.map(|t| t.0);
        let read_value = match instr {
            Instr::Rdpmc(rd, _) | Instr::RdpmcClear(rd, _) => Some(core.ctx.get(rd)),
            _ => None,
        };
        let Some(fl) = self.flight.as_deref_mut() else {
            return;
        };
        if let Some(mark) = fl.mark_at(pc) {
            let data = match mark {
                RegionMark::Enter => EventData::RegionEnter { pc },
                RegionMark::Exit(region) => EventData::RegionExit { region, pc },
            };
            fl.record(core_idx, clock, tid, data);
        }
        if let (Instr::Rdpmc(_, idx) | Instr::RdpmcClear(_, idx), Some(value)) = (instr, read_value)
        {
            let in_range = fl.in_limit_range(pc);
            fl.record(
                core_idx,
                clock,
                tid,
                EventData::Rdpmc {
                    slot: idx,
                    pc,
                    value,
                    in_range,
                },
            );
        }
    }

    /// Applies clock advance, cycle/instruction counting, and pending
    /// hardware spills for a completed step.
    fn finish_step<const FAST: bool>(&mut self, core_idx: usize, step: &Step) {
        {
            let core = &mut self.cores[core_idx];
            core.clock += step.cycles;
            core.retired += step.instrs;
            Self::count(core, EventKind::Cycles, step.cycles);
            Self::count(core, EventKind::Instructions, step.instrs);
        }
        // Flush this step's oracle scratch into the installed thread's
        // shadow ledger (compiled out on the fast path: the oracle is off).
        if FAST {
            self.apply_spills(core_idx);
            return;
        }
        if let Some(oracle) = &mut self.oracle {
            let core = &mut self.cores[core_idx];
            if let Some(scratch) = &mut core.oracle_scratch {
                if let Some(tid) = core.running {
                    for (i, v) in scratch.iter_mut().enumerate() {
                        if *v > 0 {
                            oracle.record(tid, EventKind::ALL[i], *v);
                        }
                        *v = 0;
                    }
                } else {
                    scratch.fill(0);
                }
            }
        }
        // Hardware enhancement 2: self-virtualizing counters spill to guest
        // memory without kernel involvement.
        self.apply_spills(core_idx);
    }

    /// Applies any pending self-virtualizing spills on `core_idx`: each
    /// spilled modulus lands in its guest-memory accumulator and the spill
    /// microcode cost lands on the clock.
    fn apply_spills(&mut self, core_idx: usize) {
        let spills = self.cores[core_idx].pmu.take_spills();
        for spill in spills {
            // Spill addresses are validated (aligned) at configuration time
            // by the kernel; a failure here is a substrate bug.
            self.mem
                .fetch_add_u64(spill.addr, spill.amount)
                .expect("spill address must be aligned");
            self.cores[core_idx].clock += self.cost.spill;
            let clock = self.cores[core_idx].clock;
            let tid = self.cores[core_idx].running.map(|t| t.0);
            if let Some(fl) = self.flight.as_deref_mut() {
                fl.record(
                    core_idx,
                    clock,
                    tid,
                    EventData::Spill {
                        addr: spill.addr,
                        amount: spill.amount,
                    },
                );
            }
        }
    }

    /// Lifetime guest instructions retired across all cores (the numerator
    /// of the interpreter-throughput benchmark).
    pub fn total_retired(&self) -> u64 {
        self.cores.iter().map(|c| c.retired).sum()
    }

    /// Block-stepped execution: runs guest instructions — preserving the
    /// exact per-instruction (clock, core-id) arbitration order of the
    /// single-step loop — until a kernel-visible event occurs, batching PMU
    /// accrual in between. The kernel supplies the poll-point thresholds in
    /// `limits`; any exit returns control so the kernel can re-run its full
    /// legacy decision sequence.
    ///
    /// Exactness argument: within `run_until` the kernel never touches core
    /// or PMU state, so deferring event delivery is observable only at
    /// (a) counter reads (`rdpmc` flushes in-arm), (b) tag changes (`settag`
    /// flushes in-arm), (c) armed-counter overflow side effects (PMI, spill).
    /// For (c): after every instruction, if the batch total has reached the
    /// cached armed headroom, the batch is flushed immediately — and since
    /// every armed slot's accrued share is bounded by the batch total, no
    /// slot can have wrapped *before* the instruction at which the flush
    /// happens. The overflow is therefore delivered at the same instruction
    /// boundary per-instruction accrual would deliver it.
    pub fn run_until(&mut self, limits: &RunLimits) -> SimResult<RunExit> {
        // One gate check per run (not per instruction): with every
        // per-instruction observer off, steps dispatch to the monomorphized
        // fast body whose trace/oracle/flight taps compile out.
        let fast = self.oracle.is_none()
            && self.flight.is_none()
            && self.cores.iter().all(|c| c.trace.is_none());
        // Busy-key snapshot: within a run, only the picked core's clock
        // moves (the busy set and every other clock change only through
        // kernel actions, which happen outside `run_until`), so the
        // rotation scan can run over this compact array instead of
        // touching every `Core` each time. A 64-entry stack buffer covers
        // every realistic topology; wider machines spill to a heap buffer
        // (one allocation per run, not per instruction) so every core
        // stays schedulable.
        const INLINE_CORES: usize = 64;
        let n = self.cores.len();
        let mut inline = [(u64::MAX, u32::MAX); INLINE_CORES];
        let mut heap = Vec::new();
        let keys: &mut [(u64, u32)] = if n <= INLINE_CORES {
            &mut inline[..n]
        } else {
            heap.resize(n, (u64::MAX, u32::MAX));
            &mut heap
        };
        for (key, c) in keys.iter_mut().zip(&self.cores) {
            if c.is_busy() {
                *key = (c.clock, c.id.0);
            }
        }
        let exit = loop {
            // Two-minimum scan, lexicographic on (clock, core id) — the
            // same first-minimum the single-step loop's `next_busy_core`
            // picks each instruction. Idle cores sit at the MAX sentinel
            // and can never win (a real clock never reaches u64::MAX).
            let mut first = usize::MAX;
            let mut first_key = (u64::MAX, u32::MAX);
            let mut others_min = (u64::MAX, u32::MAX);
            for (i, &key) in keys.iter().enumerate() {
                if key < first_key {
                    others_min = first_key;
                    first_key = key;
                    first = i;
                } else if key < others_min {
                    others_min = key;
                }
            }
            if first == usize::MAX {
                break RunExit::Idle;
            }
            let r = if fast {
                self.run_core::<true>(first, others_min, limits)?
            } else {
                self.run_core::<false>(first, others_min, limits)?
            };
            match r {
                Some(exit) => break exit,
                // Budget rotation: another core became the arbitration
                // minimum; update the mover's key and continue there.
                None => {
                    let c = &self.cores[first];
                    keys[first] = (c.clock, c.id.0);
                }
            }
        };
        self.settle_batches();
        Ok(exit)
    }

    /// Runs the thread on core `idx` until a kernel-visible event (`Some`)
    /// or until another core becomes the arbitration minimum (`None`).
    fn run_core<const FAST: bool>(
        &mut self,
        idx: usize,
        others_min: (u64, u32),
        limits: &RunLimits,
    ) -> SimResult<Option<RunExit>> {
        let id = self.cores[idx].id;
        let stop = limits.stop_at.get(idx).copied().unwrap_or(u64::MAX);
        // An unconsumed spill journal must reach the kernel before this
        // core executes anything further: the kernel consults the journal
        // only for the arbitration-minimum core, so a journaled core that
        // stepped here could execute an instruction the restart fix-up is
        // about to rewind over — running it twice and diverging from
        // single-step. Checked once at entry, not per instruction: the
        // post-step check below returns the moment a step journals a
        // spill, so the journal is provably zero at every later iteration.
        {
            let core = &self.cores[idx];
            if core.pmu.spill_journal() > 0 {
                let ahead = (core.clock, id.0) >= others_min;
                return Ok((!ahead).then_some(RunExit::SpillJournal(id)));
            }
        }
        loop {
            // Pre-instruction poll points: the checks the single-step
            // kernel loop runs between steps. A kernel-visible exit may
            // only fire while this core is the arbitration minimum — the
            // position the single-step loop would consult it from. When
            // the core has run ahead (see below), a would-be exit instead
            // rotates (`None`): the exit fires once the core is picked as
            // the minimum again, in exact legacy order.
            let core = &self.cores[idx];
            let ahead = (core.clock, id.0) >= others_min;
            if core.clock >= stop {
                return Ok((!ahead).then_some(RunExit::StopClock(id)));
            }
            if core.clock >= limits.wake_at {
                return Ok((!ahead).then_some(RunExit::Wake(id)));
            }
            if core.pmu.pmi_pending() {
                return Ok((!ahead).then_some(RunExit::Pmi(id)));
            }
            let pc = core.ctx.pc;
            if let Some(armed) = limits.armed_pcs {
                if armed.get(pc as usize).copied().unwrap_or(false) {
                    return Ok((!ahead).then_some(RunExit::Boundary(id)));
                }
            }
            // Registered LiMiT read sequences keep direct per-instruction
            // accrual: per-pc precision is what the restart fix-up relies
            // on. The batch stays settled across a whole in-range sequence
            // and reactivates at the first out-of-range pc.
            let in_range = limits.in_limit.get(pc as usize).copied().unwrap_or(false);
            if ahead {
                // Run-ahead: a core past the arbitration minimum may keep
                // executing *core-local* instructions — they commute with
                // every other core's execution, so the memory-system event
                // stream and the order of kernel-visible events are
                // unchanged (instructions that touch shared state rotate
                // and wait their turn). The cost bound keeps the step from
                // crossing a sleeper wake-up, whose boundary is defined by
                // the first post-step clock to reach it on *any* core.
                if in_range {
                    return Ok(None);
                }
                match self
                    .prog
                    .fetch(pc)
                    .and_then(|i| i.run_ahead_bound(&self.cost))
                {
                    Some(bound) if self.cores[idx].clock.saturating_add(bound) < limits.wake_at => {
                    }
                    _ => return Ok(None),
                }
            }
            {
                let core = &mut self.cores[idx];
                if in_range {
                    if core.batch.active {
                        core.settle_batch();
                    }
                } else if !core.batch.active {
                    core.batch.active = true;
                    core.batch.headroom = core.pmu.armed_headroom();
                }
            }
            let step = self.step_impl::<FAST>(id)?;
            let core = &mut self.cores[idx];
            if core.batch.active && core.batch.total >= core.batch.headroom {
                // An armed counter may have wrapped during this
                // instruction: deliver now, so the PMI or spill lands at
                // the same boundary per-instruction accrual gives it.
                core.flush_batch();
                self.apply_spills(idx);
            }
            // Post-step exits fire regardless of run-ahead: a trap here can
            // only be a fault (syscalls/halts never run ahead), which
            // aborts the whole run; a spill-journal consult and the wake
            // boundary are keyed to *this* step having happened, and the
            // journal consult is core-local. The wake-up check mirrors the
            // single-step loop, where the sleeper wakes at the first
            // instruction boundary after any core's clock crosses the
            // deadline — the run-ahead cost bound above guarantees an
            // ahead core cannot be the one that crosses it.
            if step.trap.is_some() {
                return Ok(Some(RunExit::Trap(id, step)));
            }
            let core = &self.cores[idx];
            if core.pmu.spill_journal() > 0 {
                return Ok(Some(RunExit::SpillJournal(id)));
            }
            if core.clock >= limits.wake_at {
                return Ok(Some(RunExit::Wake(id)));
            }
        }
    }

    /// Delivers every core's outstanding batched counts and deactivates
    /// batching; called at every `run_until` exit so kernel-side reads see
    /// exact PMU state. Final flushes cannot wrap an armed counter (the
    /// in-run guard flushed any batch that got within reach), so no PMI or
    /// spill can appear here.
    fn settle_batches(&mut self) {
        for core in &mut self.cores {
            if core.batch.active {
                core.settle_batch();
            }
        }
    }

    /// Returns the busy core with the smallest local clock, if any — the
    /// next core the OS loop should advance.
    pub fn next_busy_core(&self) -> Option<CoreId> {
        self.cores
            .iter()
            .filter(|c| c.is_busy())
            .min_by_key(|c| c.clock)
            .map(|c| c.id)
    }

    /// The maximum clock across all cores (the machine-wide "time now").
    pub fn global_clock(&self) -> u64 {
        self.cores.iter().map(|c| c.clock).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::isa::Cond;
    use crate::pmu::CounterCfg;
    use crate::regs::{Context, Reg};
    use sim_core::ThreadId;
    use sim_mem::HierarchyConfig;

    fn floor_prog() -> Program {
        let mut a = Asm::new();
        let top = a.new_label();
        a.bind(top);
        for _ in 0..6 {
            a.alui_add(Reg::R1, 1);
        }
        a.alui_add(Reg::R2, 1);
        a.br(Cond::Ne, Reg::R2, Reg::R0, top);
        a.assemble().unwrap()
    }

    /// Interpreter-floor microbenchmarks (`--ignored`): lower bounds on
    /// per-step cost with no kernel, trivial state, and (for the mem
    /// variant) pure L1 hits. `docs/BENCH.md` records how to run them and
    /// how the floor bounds the achievable block-stepped speedup.
    #[test]
    #[ignore = "host-timing microbenchmark; run with --ignored --nocapture"]
    fn bench_floor() {
        use std::time::Instant;
        let mut m = machine_with(floor_prog());
        install(&mut m, 0);
        let n = 20_000_000u64;
        let t = Instant::now();
        let mut i = 0u64;
        while i < n {
            let s = m.step(CoreId::new(0)).unwrap();
            i += s.instrs;
        }
        let el = t.elapsed().as_secs_f64();
        eprintln!("floor: {:.1} ns/step", el / n as f64 * 1e9);
    }

    #[test]
    #[ignore = "host-timing microbenchmark; run with --ignored --nocapture"]
    fn bench_floor_mem() {
        use std::time::Instant;
        let mut a = Asm::new();
        let top = a.new_label();
        a.bind(top);
        a.imm(Reg::R3, 4096);
        a.load(Reg::R1, Reg::R3, 0);
        a.load(Reg::R1, Reg::R3, 64);
        a.load(Reg::R1, Reg::R3, 128);
        a.store(Reg::R1, Reg::R3, 192);
        a.alui_add(Reg::R2, 1);
        a.br(Cond::Ne, Reg::R2, Reg::R0, top);
        let prog = a.assemble().unwrap();
        let mut m = machine_with(prog);
        install(&mut m, 0);
        let in_limit = vec![false; 16];
        let stop2 = [40_000_000u64, u64::MAX];
        let limits2 = RunLimits {
            stop_at: &stop2,
            wake_at: u64::MAX,
            armed_pcs: None,
            in_limit: &in_limit,
        };
        let t = Instant::now();
        let _ = m.run_until(&limits2).unwrap();
        let el = t.elapsed().as_secs_f64();
        let steps = m.cores[0].retired;
        eprintln!(
            "run_until mem floor: {:.1} ns/step ({} steps, {} mem accesses)",
            el / steps as f64 * 1e9,
            steps,
            m.memsys.accesses()
        );
    }

    #[test]
    #[ignore = "host-timing microbenchmark; run with --ignored --nocapture"]
    fn bench_floor_rununtil() {
        use std::time::Instant;
        let mut m = machine_with(floor_prog());
        install(&mut m, 0);
        let in_limit = vec![false; 16];
        let stop2 = [40_000_000u64, u64::MAX];
        let limits2 = RunLimits {
            stop_at: &stop2,
            wake_at: u64::MAX,
            armed_pcs: None,
            in_limit: &in_limit,
        };
        let t = Instant::now();
        let _ = m.run_until(&limits2).unwrap();
        let el = t.elapsed().as_secs_f64();
        let steps = m.cores[0].retired;
        eprintln!(
            "run_until floor: {:.1} ns/step ({} steps)",
            el / steps as f64 * 1e9,
            steps
        );
    }

    fn machine_with(prog: Program) -> Machine {
        let cfg = MachineConfig::new(2).with_hierarchy(HierarchyConfig::tiny());
        Machine::new(cfg, prog).unwrap()
    }

    /// Installs a pseudo-thread at `entry` on core 0 in user mode.
    fn install(m: &mut Machine, entry: u32) {
        let core = &mut m.cores[0];
        core.ctx = Context::at(entry);
        core.running = Some(ThreadId::new(1));
        core.mode = Mode::User;
    }

    /// Steps core 0 until `Halt` or `max` instructions; returns step count.
    fn run_to_halt(m: &mut Machine, max: usize) -> usize {
        for i in 0..max {
            let step = m.step(CoreId::new(0)).unwrap();
            match step.trap {
                Some(Trap::Halt) => return i + 1,
                Some(Trap::Fault(msg)) => panic!("unexpected fault: {msg}"),
                _ => {}
            }
        }
        panic!("did not halt within {max} steps");
    }

    #[test]
    fn run_until_exits_on_a_journaled_core_before_it_steps_again() {
        let mut m = machine_with(floor_prog());
        install(&mut m, 0);
        // A journal entry left from an earlier run (e.g. the kernel
        // consulted a different core at its loop top): the machine must
        // hand control back before this core executes anything, or the
        // restart fix-up would rewind over an already-executed
        // instruction and run it twice.
        m.cores[0].pmu.journal_spills(1);
        let in_limit = vec![false; 16];
        let stop = [u64::MAX, u64::MAX];
        let limits = RunLimits {
            stop_at: &stop,
            wake_at: u64::MAX,
            armed_pcs: None,
            in_limit: &in_limit,
        };
        let exit = m.run_until(&limits).unwrap();
        assert_eq!(exit, RunExit::SpillJournal(CoreId::new(0)));
        assert_eq!(
            m.cores[0].retired, 0,
            "journaled core stepped before the kernel could consult the journal"
        );
    }

    #[test]
    fn simultaneous_overflow_on_two_slots_is_identical_across_exec_paths() {
        // Two armed slots counting the same event, both 10 events from the
        // wrap point: they overflow at the same instruction. The block
        // executor's armed-headroom guard must deliver both PMIs at that
        // exact instruction boundary (not one flush late), matching
        // single-step, and in slot order.
        let run = |block: bool| {
            let cfg = MachineConfig::new(2)
                .with_hierarchy(HierarchyConfig::tiny())
                .with_pmu(PmuConfig {
                    counter_bits: 8,
                    ..Default::default()
                });
            let mut m = Machine::new(cfg, floor_prog()).unwrap();
            install(&mut m, 0);
            let pmu = &mut m.cores[0].pmu;
            pmu.configure(0, CounterCfg::user(EventKind::Instructions).with_pmi())
                .unwrap();
            pmu.configure(1, CounterCfg::user(EventKind::Instructions).with_pmi())
                .unwrap();
            pmu.write(0, 256 - 10).unwrap();
            pmu.write(1, 256 - 10).unwrap();
            if block {
                let in_limit = vec![false; 16];
                let stop = [u64::MAX, u64::MAX];
                let limits = RunLimits {
                    stop_at: &stop,
                    wake_at: u64::MAX,
                    armed_pcs: None,
                    in_limit: &in_limit,
                };
                let exit = m.run_until(&limits).unwrap();
                assert_eq!(exit, RunExit::Pmi(CoreId::new(0)));
            } else {
                while !m.cores[0].pmu.pmi_pending() {
                    m.step(CoreId::new(0)).unwrap();
                }
            }
            let core = &mut m.cores[0];
            let mut pmis = Vec::new();
            while let Some(i) = core.pmu.take_pmi() {
                pmis.push(i);
            }
            (
                core.retired,
                pmis,
                core.pmu.read(0).unwrap(),
                core.pmu.read(1).unwrap(),
            )
        };
        let single = run(false);
        let block = run(true);
        assert_eq!(
            single, block,
            "block-mode simultaneous overflow diverged from single-step"
        );
        assert_eq!(single.1, vec![0, 1], "both PMIs, slot order");
    }

    #[test]
    fn machines_wider_than_64_cores_are_rejected_at_construction() {
        // The coherence sharer set is a u64 bitmask, so MemorySystem (and
        // therefore Machine::new) caps machines at 64 cores. run_until's
        // key buffer no longer depends on that cap (it spills to the heap
        // past 64 entries), but the cap itself must hold: a wider machine
        // that slipped through would once have hit a truncated scheduler
        // scan that left high cores busy-but-unscheduled forever.
        let cfg = MachineConfig::new(66).with_hierarchy(HierarchyConfig::tiny());
        assert!(matches!(
            Machine::new(cfg, floor_prog()),
            Err(SimError::Config(_))
        ));
    }

    #[test]
    fn run_until_schedules_the_highest_supported_core() {
        let cfg = MachineConfig::new(64).with_hierarchy(HierarchyConfig::tiny());
        let mut m = Machine::new(cfg, floor_prog()).unwrap();
        // Only the last core is busy; it must still be picked and run to
        // its stop threshold rather than reported Idle.
        let hi = 63;
        m.cores[hi].ctx = Context::at(0);
        m.cores[hi].running = Some(ThreadId::new(1));
        m.cores[hi].mode = Mode::User;
        let in_limit = vec![false; 16];
        let stop = vec![1_000u64; 64];
        let limits = RunLimits {
            stop_at: &stop,
            wake_at: u64::MAX,
            armed_pcs: None,
            in_limit: &in_limit,
        };
        let exit = m.run_until(&limits).unwrap();
        assert_eq!(exit, RunExit::StopClock(CoreId::new(hi as u32)));
        assert!(m.cores[hi].retired > 0, "high core was never scheduled");
    }

    #[test]
    fn arithmetic_program_computes() {
        let mut a = Asm::new();
        a.imm(Reg::R1, 6);
        a.imm(Reg::R2, 7);
        a.alu(crate::isa::AluOp::Mul, Reg::R1, Reg::R2);
        a.halt();
        let mut m = machine_with(a.assemble().unwrap());
        install(&mut m, 0);
        run_to_halt(&mut m, 10);
        assert_eq!(m.cores[0].ctx.get(Reg::R1), 42);
    }

    #[test]
    fn loop_with_branch_iterates_correct_count() {
        let mut a = Asm::new();
        a.imm(Reg::R1, 10);
        a.imm(Reg::R2, 0);
        a.imm(Reg::R3, 0); // iteration counter
        let top = a.new_label();
        a.bind(top);
        a.alui_add(Reg::R3, 1);
        a.alui_sub(Reg::R1, 1);
        a.br(Cond::Ne, Reg::R1, Reg::R2, top);
        a.halt();
        let mut m = machine_with(a.assemble().unwrap());
        install(&mut m, 0);
        run_to_halt(&mut m, 100);
        assert_eq!(m.cores[0].ctx.get(Reg::R3), 10);
    }

    #[test]
    fn load_store_round_trip_through_guest_memory() {
        let mut a = Asm::new();
        a.imm(Reg::R1, 0x2000); // address
        a.imm(Reg::R2, 0xABCD);
        a.store(Reg::R2, Reg::R1, 0);
        a.load(Reg::R3, Reg::R1, 0);
        a.halt();
        let mut m = machine_with(a.assemble().unwrap());
        install(&mut m, 0);
        run_to_halt(&mut m, 10);
        assert_eq!(m.cores[0].ctx.get(Reg::R3), 0xABCD);
        assert_eq!(m.mem.read_u64(0x2000).unwrap(), 0xABCD);
    }

    #[test]
    fn xchg_swaps_and_fetch_add_accumulates() {
        let mut a = Asm::new();
        a.imm(Reg::R1, 0x3000);
        a.imm(Reg::R2, 5);
        a.xchg(Reg::R2, Reg::R1, 0); // mem=5, r2=old(0)
        a.imm(Reg::R3, 10);
        a.fetch_add(Reg::R3, Reg::R1, 0); // mem=15, r3=5
        a.halt();
        let mut m = machine_with(a.assemble().unwrap());
        install(&mut m, 0);
        run_to_halt(&mut m, 10);
        assert_eq!(m.cores[0].ctx.get(Reg::R2), 0);
        assert_eq!(m.cores[0].ctx.get(Reg::R3), 5);
        assert_eq!(m.mem.read_u64(0x3000).unwrap(), 15);
    }

    #[test]
    fn call_ret_uses_shadow_stack() {
        let mut a = Asm::new();
        let func = a.new_label();
        a.call(func); // pc 0
        a.halt(); // pc 1
        a.bind(func);
        a.imm(Reg::R5, 77); // pc 2
        a.ret(); // pc 3
        let mut m = machine_with(a.assemble().unwrap());
        install(&mut m, 0);
        run_to_halt(&mut m, 10);
        assert_eq!(m.cores[0].ctx.get(Reg::R5), 77);
    }

    #[test]
    fn ret_on_empty_stack_faults() {
        let mut a = Asm::new();
        a.ret();
        let mut m = machine_with(a.assemble().unwrap());
        install(&mut m, 0);
        let step = m.step(CoreId::new(0)).unwrap();
        assert!(matches!(step.trap, Some(Trap::Fault(_))));
    }

    #[test]
    fn rdpmc_faults_in_user_mode_when_disabled() {
        let mut a = Asm::new();
        a.rdpmc(Reg::R1, 0);
        a.halt();
        let mut m = machine_with(a.assemble().unwrap());
        install(&mut m, 0);
        let step = m.step(CoreId::new(0)).unwrap();
        match step.trap {
            Some(Trap::Fault(msg)) => assert!(msg.contains("rdpmc")),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn rdpmc_reads_counter_when_enabled() {
        let mut a = Asm::new();
        a.burst(50);
        a.rdpmc(Reg::R1, 0);
        a.halt();
        let mut m = machine_with(a.assemble().unwrap());
        m.cores[0]
            .pmu
            .configure(0, CounterCfg::user(EventKind::Instructions))
            .unwrap();
        m.cores[0].pmu.set_user_rdpmc(true);
        install(&mut m, 0);
        run_to_halt(&mut m, 10);
        // Burst retired 50 instructions before the read.
        assert_eq!(m.cores[0].ctx.get(Reg::R1), 50);
    }

    #[test]
    fn instruction_and_cycle_counting_is_exact_for_alu_code() {
        let mut a = Asm::new();
        for _ in 0..10 {
            a.nop();
        }
        a.halt();
        let mut m = machine_with(a.assemble().unwrap());
        m.cores[0]
            .pmu
            .configure(0, CounterCfg::user(EventKind::Instructions))
            .unwrap();
        m.cores[0]
            .pmu
            .configure(1, CounterCfg::user(EventKind::Cycles))
            .unwrap();
        install(&mut m, 0);
        run_to_halt(&mut m, 20);
        // 10 nops + halt = 11 instructions, 11 cycles (all single-cycle).
        assert_eq!(m.cores[0].pmu.read(0).unwrap(), 11);
        assert_eq!(m.cores[0].pmu.read(1).unwrap(), 11);
    }

    #[test]
    fn kernel_mode_events_excluded_from_user_counters() {
        let mut a = Asm::new();
        a.nop();
        a.halt();
        let mut m = machine_with(a.assemble().unwrap());
        m.cores[0]
            .pmu
            .configure(0, CounterCfg::user(EventKind::Cycles))
            .unwrap();
        install(&mut m, 0);
        // Kernel work before the thread runs.
        m.cores[0].mode = Mode::Kernel;
        m.charge(CoreId::new(0), 1000, 300);
        assert_eq!(m.cores[0].pmu.read(0).unwrap(), 0);
        m.cores[0].mode = Mode::User;
        run_to_halt(&mut m, 5);
        assert_eq!(m.cores[0].pmu.read(0).unwrap(), 2);
    }

    #[test]
    fn branch_events_and_mispredicts_are_counted() {
        let mut a = Asm::new();
        a.imm(Reg::R1, 100);
        a.imm(Reg::R2, 0);
        let top = a.new_label();
        a.bind(top);
        a.alui_sub(Reg::R1, 1);
        a.br(Cond::Ne, Reg::R1, Reg::R2, top);
        a.halt();
        let mut m = machine_with(a.assemble().unwrap());
        m.cores[0]
            .pmu
            .configure(0, CounterCfg::user(EventKind::Branches))
            .unwrap();
        m.cores[0]
            .pmu
            .configure(1, CounterCfg::user(EventKind::BranchMisses))
            .unwrap();
        install(&mut m, 0);
        run_to_halt(&mut m, 500);
        assert_eq!(m.cores[0].pmu.read(0).unwrap(), 100);
        let misses = m.cores[0].pmu.read(1).unwrap();
        assert!(
            misses <= 5,
            "loop branch predicts well, got {misses} misses"
        );
    }

    #[test]
    fn cache_miss_events_flow_to_pmu() {
        let mut a = Asm::new();
        a.imm(Reg::R1, 0x10000);
        // Two loads to the same line: first misses everywhere, second hits L1.
        a.load(Reg::R2, Reg::R1, 0);
        a.load(Reg::R3, Reg::R1, 0);
        a.halt();
        let mut m = machine_with(a.assemble().unwrap());
        m.cores[0]
            .pmu
            .configure(0, CounterCfg::user(EventKind::L1dMisses))
            .unwrap();
        m.cores[0]
            .pmu
            .configure(1, CounterCfg::user(EventKind::LlcMisses))
            .unwrap();
        m.cores[0]
            .pmu
            .configure(2, CounterCfg::user(EventKind::Loads))
            .unwrap();
        install(&mut m, 0);
        run_to_halt(&mut m, 10);
        assert_eq!(m.cores[0].pmu.read(0).unwrap(), 1);
        assert_eq!(m.cores[0].pmu.read(1).unwrap(), 1);
        assert_eq!(m.cores[0].pmu.read(2).unwrap(), 2);
    }

    #[test]
    fn memory_latency_is_charged_to_the_clock() {
        let mut a = Asm::new();
        a.imm(Reg::R1, 0x10000);
        a.load(Reg::R2, Reg::R1, 0);
        a.halt();
        let mut m = machine_with(a.assemble().unwrap());
        install(&mut m, 0);
        let before = m.cores[0].clock;
        m.step(CoreId::new(0)).unwrap(); // imm
        let after_imm = m.cores[0].clock;
        m.step(CoreId::new(0)).unwrap(); // cold load
        let after_load = m.cores[0].clock;
        assert_eq!(after_imm - before, 1);
        // Tiny hierarchy: dram 50 + llc 10 + issue 1 = 61.
        assert_eq!(after_load - after_imm, 61);
    }

    #[test]
    fn rdtsc_returns_clock() {
        let mut a = Asm::new();
        a.burst(99);
        a.rdtsc(Reg::R1);
        a.halt();
        let mut m = machine_with(a.assemble().unwrap());
        install(&mut m, 0);
        run_to_halt(&mut m, 10);
        assert_eq!(m.cores[0].ctx.get(Reg::R1), 99);
    }

    #[test]
    fn pc_out_of_bounds_faults() {
        let mut a = Asm::new();
        a.nop(); // falls off the end
        let mut m = machine_with(a.assemble().unwrap());
        install(&mut m, 0);
        m.step(CoreId::new(0)).unwrap();
        let step = m.step(CoreId::new(0)).unwrap();
        assert!(matches!(step.trap, Some(Trap::Fault(_))));
    }

    #[test]
    fn faulting_fetch_accrues_no_cycles_or_events() {
        let mut a = Asm::new();
        a.nop(); // falls off the end
        let mut m = machine_with(a.assemble().unwrap());
        m.cores[0]
            .pmu
            .configure(0, CounterCfg::user(EventKind::Cycles))
            .unwrap();
        m.cores[0]
            .pmu
            .configure(1, CounterCfg::user(EventKind::Instructions))
            .unwrap();
        install(&mut m, 0);
        m.step(CoreId::new(0)).unwrap(); // nop
        let clock = m.cores[0].clock;
        let cycles = m.cores[0].pmu.read(0).unwrap();
        let instrs = m.cores[0].pmu.read(1).unwrap();
        let step = m.step(CoreId::new(0)).unwrap(); // out-of-bounds fetch
        assert!(matches!(step.trap, Some(Trap::Fault(_))));
        assert_eq!(step.cycles, 0);
        assert_eq!(step.instrs, 0);
        assert_eq!(
            m.cores[0].clock, clock,
            "faulting fetch must not advance the clock"
        );
        assert_eq!(m.cores[0].pmu.read(0).unwrap(), cycles);
        assert_eq!(m.cores[0].pmu.read(1).unwrap(), instrs);
    }

    #[test]
    fn stepping_idle_core_is_an_error() {
        let mut a = Asm::new();
        a.halt();
        let mut m = machine_with(a.assemble().unwrap());
        assert!(m.step(CoreId::new(0)).is_err());
    }

    #[test]
    fn next_busy_core_picks_min_clock() {
        let mut a = Asm::new();
        a.halt();
        let mut m = machine_with(a.assemble().unwrap());
        assert_eq!(m.next_busy_core(), None);
        m.cores[0].running = Some(ThreadId::new(1));
        m.cores[0].clock = 100;
        m.cores[1].running = Some(ThreadId::new(2));
        m.cores[1].clock = 50;
        assert_eq!(m.next_busy_core(), Some(CoreId::new(1)));
    }

    #[test]
    fn tracer_records_execution_order() {
        let mut a = Asm::new();
        a.imm(Reg::R1, 1);
        a.nop();
        a.halt();
        let mut m = machine_with(a.assemble().unwrap());
        m.cores[0].enable_trace(16);
        install(&mut m, 0);
        run_to_halt(&mut m, 10);
        let trace = m.cores[0].trace.as_ref().unwrap();
        let pcs: Vec<u32> = trace.iter().map(|e| e.pc).collect();
        assert_eq!(pcs, vec![0, 1, 2]);
        assert_eq!(trace.total_recorded(), 3);
        assert!(trace.render().contains("halt"));
    }

    #[test]
    fn destructive_read_requires_extension() {
        let mut a = Asm::new();
        a.rdpmc_clear(Reg::R1, 0);
        a.halt();
        let mut m = machine_with(a.assemble().unwrap());
        m.cores[0].pmu.set_user_rdpmc(true);
        install(&mut m, 0);
        let step = m.step(CoreId::new(0)).unwrap();
        assert!(matches!(step.trap, Some(Trap::Fault(_))));
    }

    #[test]
    fn destructive_read_reads_and_clears_when_enabled() {
        let mut a = Asm::new();
        a.burst(10);
        a.rdpmc_clear(Reg::R1, 0);
        a.rdpmc(Reg::R2, 0);
        a.halt();
        let cfg = MachineConfig::new(1)
            .with_hierarchy(HierarchyConfig::tiny())
            .with_pmu(PmuConfig {
                ext_destructive_read: true,
                ..Default::default()
            });
        let mut m = Machine::new(cfg, a.assemble().unwrap()).unwrap();
        m.cores[0]
            .pmu
            .configure(0, CounterCfg::user(EventKind::Instructions))
            .unwrap();
        m.cores[0].pmu.set_user_rdpmc(true);
        install(&mut m, 0);
        run_to_halt(&mut m, 10);
        assert_eq!(m.cores[0].ctx.get(Reg::R1), 10);
        // Second read sees only the destructive read itself.
        assert_eq!(m.cores[0].ctx.get(Reg::R2), 1);
    }

    #[test]
    fn self_virtualizing_spill_lands_in_guest_memory() {
        let mut a = Asm::new();
        a.burst(100); // overflows an 8-bit counter even within one burst? no: burst counts as 100 instrs
        a.burst(100);
        a.burst(100);
        a.halt();
        let cfg = MachineConfig::new(1)
            .with_hierarchy(HierarchyConfig::tiny())
            .with_pmu(PmuConfig {
                counter_bits: 8,
                ext_self_virtualizing: true,
                ..Default::default()
            });
        let mut m = Machine::new(cfg, a.assemble().unwrap()).unwrap();
        let spill_addr = 0x8000;
        m.cores[0]
            .pmu
            .configure(
                0,
                CounterCfg::user(EventKind::Instructions).with_spill(spill_addr),
            )
            .unwrap();
        install(&mut m, 0);
        run_to_halt(&mut m, 10);
        let spilled = m.mem.read_u64(spill_addr).unwrap();
        let residue = m.cores[0].pmu.read(0).unwrap();
        // 301 instructions total (3 bursts + halt): spill + residue = 301.
        assert_eq!(spilled + residue, 301);
        assert!(spilled >= 256);
        assert!(!m.cores[0].pmu.pmi_pending());
    }

    #[test]
    fn tag_filter_excludes_differently_tagged_code() {
        let mut a = Asm::new();
        a.imm(Reg::R1, 1);
        a.set_tag(Reg::R1); // tag=1
        a.burst(10); // counted
        a.imm(Reg::R1, 2);
        a.set_tag(Reg::R1); // tag=2
        a.burst(20); // not counted
        a.halt();
        let cfg = MachineConfig::new(1)
            .with_hierarchy(HierarchyConfig::tiny())
            .with_pmu(PmuConfig {
                ext_tag_filter: true,
                ..Default::default()
            });
        let mut m = Machine::new(cfg, a.assemble().unwrap()).unwrap();
        m.cores[0]
            .pmu
            .configure(0, CounterCfg::user(EventKind::Instructions).with_tag(1))
            .unwrap();
        install(&mut m, 0);
        run_to_halt(&mut m, 20);
        // Counts: imm(r1,2) + settag + burst(10) while tag==1 => 12.
        assert_eq!(m.cores[0].pmu.read(0).unwrap(), 12);
    }
}
