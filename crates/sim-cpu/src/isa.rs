//! The guest instruction set.
//!
//! A small RISC-like ISA, rich enough to express the workloads and — the
//! point of the exercise — the LiMiT counter-read sequence as *multiple
//! discrete instructions* a preemption can land between. PCs are instruction
//! indices, not byte addresses; instruction fetch is not modeled (documented
//! substitution: the paper's claims do not depend on I-cache behaviour).

use crate::regs::Reg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (modulo 64).
    Shl,
    /// Logical shift right (modulo 64).
    Shr,
}

impl AluOp {
    /// Applies the operation.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
        }
    }
}

/// Branch conditions over two registers (unsigned comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b` (unsigned)
    Lt,
    /// `a >= b` (unsigned)
    Ge,
}

impl Cond {
    /// Evaluates the condition.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
        }
    }
}

/// One guest instruction.
///
/// Branch/jump/call targets are absolute instruction indices; the assembler
/// resolves labels to these at `assemble()` time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Instr {
    /// `rd = imm`
    Imm(Reg, u64),
    /// `rd = rs`
    Mov(Reg, Reg),
    /// `rd = rd op rs`
    Alu(AluOp, Reg, Reg),
    /// `rd = rd op imm`
    AluImm(AluOp, Reg, u64),
    /// `n` instructions of straight-line compute, charged as `n` retired
    /// instructions and `n` cycles. Interruptible only at the boundary, so
    /// workload generators keep bursts short (≤ ~100) where preemption
    /// precision matters.
    Burst(u32),
    /// `rd = mem64[rs + off]` (8-byte aligned)
    Load(Reg, Reg, i32),
    /// `mem64[ra + off] = rs` (8-byte aligned)
    Store(Reg, Reg, i32),
    /// Atomic exchange: `tmp = mem64[ra+off]; mem64[ra+off] = rd; rd = tmp`.
    Xchg(Reg, Reg, i32),
    /// Atomic fetch-add: `tmp = mem64[ra+off]; mem64[ra+off] = tmp + rd;
    /// rd = tmp`.
    FetchAdd(Reg, Reg, i32),
    /// Conditional branch: `if cond(ra, rb) pc = target`.
    Br(Cond, Reg, Reg, u32),
    /// Unconditional jump.
    Jmp(u32),
    /// Calls a routine (pushes return PC on the shadow stack).
    Call(u32),
    /// Returns to the PC on top of the shadow stack.
    Ret,
    /// Reads hardware performance counter `idx` into `rd`. Faults unless
    /// the kernel has enabled userspace counter reads on this core.
    Rdpmc(Reg, u8),
    /// Destructive counter read (hardware extension 1): reads counter `idx`
    /// into `rd` and atomically clears it. Faults if the extension is
    /// disabled.
    RdpmcClear(Reg, u8),
    /// Reads the core's cycle timestamp into `rd`.
    Rdtsc(Reg),
    /// Sets the core's counting tag from `rs` (hardware extension 3).
    /// Executes as a no-op when the extension is disabled.
    SetTag(Reg),
    /// Traps into the kernel with the given syscall number. Arguments in
    /// `r0..r5`, result in `r0`.
    Syscall(u64),
    /// No operation (one cycle).
    Nop,
    /// Terminates the executing thread.
    Halt,
}

impl Instr {
    /// Whether this instruction is *core-local*: it touches only the
    /// executing core's registers, predictor, shadow stack, clock, and
    /// batched PMU accrual — never guest memory, the cache hierarchy, the
    /// PMU's architected counters, or the kernel. Core-local instructions
    /// commute with every other core's execution, so the block-stepped
    /// executor may run them *ahead* of the cross-core arbitration minimum
    /// without perturbing the memory-system event stream or the order of
    /// kernel-visible events (see `Machine::run_until`). Returns an upper
    /// bound on the instruction's cycle cost (needed to guarantee the step
    /// cannot cross a sleeper wake-up boundary), or `None` for
    /// order-sensitive instructions. Bounds are computed against the
    /// machine's runtime [`crate::cost::CostModel`] so what-if arms with
    /// scaled costs stay correct.
    pub fn run_ahead_bound(&self, cost: &crate::cost::CostModel) -> Option<u64> {
        match *self {
            Instr::Imm(..) | Instr::Mov(..) | Instr::Alu(..) | Instr::AluImm(..) | Instr::Nop => {
                Some(cost.alu)
            }
            Instr::Burst(n) => Some(n.max(1) as u64),
            Instr::Br(..) => Some(cost.branch + cost.branch_miss_penalty),
            Instr::Jmp(..) => Some(cost.branch),
            Instr::Call(..) | Instr::Ret => Some(cost.call),
            Instr::Rdtsc(..) => Some(cost.rdtsc),
            // Memory operations drive the shared cache/coherence model;
            // syscalls and halts enter the kernel; counter reads and tag
            // changes observe/flush architected PMU state. All must execute
            // in exact (clock, core-id) arbitration order.
            Instr::Load(..)
            | Instr::Store(..)
            | Instr::Xchg(..)
            | Instr::FetchAdd(..)
            | Instr::Rdpmc(..)
            | Instr::RdpmcClear(..)
            | Instr::SetTag(..)
            | Instr::Syscall(..)
            | Instr::Halt => None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Imm(rd, v) => write!(f, "imm   {rd}, {v}"),
            Instr::Mov(rd, rs) => write!(f, "mov   {rd}, {rs}"),
            Instr::Alu(op, rd, rs) => write!(f, "{op:?}   {rd}, {rs}"),
            Instr::AluImm(op, rd, v) => write!(f, "{op:?}i  {rd}, {v}"),
            Instr::Burst(n) => write!(f, "burst {n}"),
            Instr::Load(rd, ra, off) => write!(f, "ld    {rd}, [{ra}{off:+}]"),
            Instr::Store(rs, ra, off) => write!(f, "st    [{ra}{off:+}], {rs}"),
            Instr::Xchg(rd, ra, off) => write!(f, "xchg  {rd}, [{ra}{off:+}]"),
            Instr::FetchAdd(rd, ra, off) => write!(f, "xadd  {rd}, [{ra}{off:+}]"),
            Instr::Br(c, a, b, t) => write!(f, "b{c:?}   {a}, {b} -> {t}"),
            Instr::Jmp(t) => write!(f, "jmp   {t}"),
            Instr::Call(t) => write!(f, "call  {t}"),
            Instr::Ret => write!(f, "ret"),
            Instr::Rdpmc(rd, i) => write!(f, "rdpmc {rd}, pmc{i}"),
            Instr::RdpmcClear(rd, i) => write!(f, "rdpmc.clr {rd}, pmc{i}"),
            Instr::Rdtsc(rd) => write!(f, "rdtsc {rd}"),
            Instr::SetTag(rs) => write!(f, "settag {rs}"),
            Instr::Syscall(nr) => write!(f, "sys   {nr}"),
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(AluOp::Mul.apply(3, 5), 15);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.apply(1, 4), 16);
        assert_eq!(AluOp::Shr.apply(16, 4), 1);
        assert_eq!(AluOp::Shl.apply(1, 64), 1, "shift amount is mod 64");
    }

    #[test]
    fn cond_semantics() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(!Cond::Eq.eval(3, 4));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(3, 4));
        assert!(!Cond::Lt.eval(4, 3));
        assert!(Cond::Ge.eval(4, 4));
        // Unsigned: MAX is the largest value, not -1.
        assert!(Cond::Ge.eval(u64::MAX, 0));
    }

    #[test]
    fn display_is_readable() {
        let i = Instr::Load(Reg::R1, Reg::R2, -8);
        assert_eq!(i.to_string(), "ld    r1, [r2-8]");
        assert_eq!(Instr::Syscall(3).to_string(), "sys   3");
    }
}
