//! Per-core execution tracing: a bounded ring of recently executed
//! instructions.
//!
//! Off by default (no per-step cost beyond a branch); enabled per core by
//! the host for debugging guest programs and for tests that assert
//! execution order. The ring holds the *last N* instructions, so a fault
//! can always be explained from the tail of the trace. Storage is the
//! flight recorder's generic [`flight::Ring`], of which this module was
//! the original special case.

use crate::isa::Instr;
use flight::Ring;
use sim_core::ThreadId;
use std::fmt;

/// One traced instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Core clock at execution start.
    pub clock: u64,
    /// PC of the instruction.
    pub pc: u32,
    /// Thread installed on the core.
    pub tid: Option<ThreadId>,
    /// The instruction.
    pub instr: Instr,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.tid {
            Some(t) => write!(
                f,
                "[{:>10}] {} pc={:<5} {}",
                self.clock, t, self.pc, self.instr
            ),
            None => write!(
                f,
                "[{:>10}] ????  pc={:<5} {}",
                self.clock, self.pc, self.instr
            ),
        }
    }
}

/// A bounded execution-trace ring.
#[derive(Debug, Clone)]
pub struct Trace {
    ring: Ring<TraceEntry>,
}

impl Trace {
    /// A ring holding the last `capacity` instructions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            ring: Ring::new(capacity),
        }
    }

    /// Records one executed instruction.
    pub fn record(&mut self, entry: TraceEntry) {
        self.ring.push(entry);
    }

    /// Instructions currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Lifetime instructions recorded (including those evicted).
    pub fn total_recorded(&self) -> u64 {
        self.ring.total_recorded()
    }

    /// Iterates oldest-to-newest over the retained tail.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.ring.iter()
    }

    /// The most recent entry.
    pub fn last(&self) -> Option<&TraceEntry> {
        self.ring.last()
    }

    /// Renders the retained tail, one line per instruction.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.ring.iter() {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pc: u32) -> TraceEntry {
        TraceEntry {
            clock: pc as u64 * 10,
            pc,
            tid: Some(ThreadId::new(1)),
            instr: Instr::Nop,
        }
    }

    #[test]
    fn ring_keeps_last_n() {
        let mut t = Trace::new(3);
        for pc in 0..5 {
            t.record(entry(pc));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_recorded(), 5);
        let pcs: Vec<u32> = t.iter().map(|e| e.pc).collect();
        assert_eq!(pcs, vec![2, 3, 4]);
        assert_eq!(t.last().unwrap().pc, 4);
    }

    #[test]
    fn render_one_line_per_entry() {
        let mut t = Trace::new(8);
        t.record(entry(7));
        t.record(entry(8));
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("nop"));
        assert!(s.contains("tid1"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Trace::new(0);
    }
}
