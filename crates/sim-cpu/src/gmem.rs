//! Guest physical memory: a sparse, byte-addressable 64-bit space.
//!
//! This is a *value* store; cache/DRAM *timing* lives in `sim-mem`. The two
//! are consulted together by the core engine: timing from the hierarchy,
//! data from here.
//!
//! All 64-bit accesses must be 8-byte aligned — guest code in this
//! workspace is generated, and the allocator hands out aligned addresses, so
//! misalignment is always a bug and is reported as a fault.

use sim_core::{FxHashMap, SimError, SimResult};

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Page numbers below this are held in a direct-indexed table (covers the
/// first 256 MiB of guest address space, where the bump allocator places
/// everything); stray far addresses fall back to a hash map so the full
/// 64-bit space stays addressable.
const DIRECT_PAGES: u64 = 1 << 16;

/// Sparse guest memory.
///
/// The value store sits on the interpreter's hottest path (every guest
/// load and store), so lookup is a direct array index for the low address
/// range rather than a hash: `pages[page]` is `None` until first written.
#[derive(Debug, Default)]
pub struct GuestMem {
    /// Direct-indexed table for pages below [`DIRECT_PAGES`].
    pages: Vec<Option<Box<[u8; PAGE_SIZE]>>>,
    /// Overflow for far pages (rare: wild pointers, stress tests).
    far: FxHashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl GuestMem {
    /// An empty address space.
    pub fn new() -> Self {
        GuestMem::default()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        let page = addr >> PAGE_BITS;
        if page < DIRECT_PAGES {
            let idx = page as usize;
            if idx >= self.pages.len() {
                self.pages.resize_with(idx + 1, || None);
            }
            return self.pages[idx].get_or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        }
        self.far
            .entry(page)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    #[inline]
    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        let page = addr >> PAGE_BITS;
        if page < DIRECT_PAGES {
            self.pages.get(page as usize)?.as_deref()
        } else {
            self.far.get(&page).map(|p| &**p)
        }
    }

    /// Reads an aligned 64-bit word. Unmapped memory reads as zero.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> SimResult<u64> {
        check_aligned(addr)?;
        let off = (addr as usize) & (PAGE_SIZE - 1);
        Ok(match self.page(addr) {
            Some(p) => u64::from_le_bytes(p[off..off + 8].try_into().expect("8-byte slice")),
            None => 0,
        })
    }

    /// Writes an aligned 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, value: u64) -> SimResult<()> {
        check_aligned(addr)?;
        let off = (addr as usize) & (PAGE_SIZE - 1);
        self.page_mut(addr)[off..off + 8].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Adds `delta` to the word at `addr`, returning the previous value.
    pub fn fetch_add_u64(&mut self, addr: u64, delta: u64) -> SimResult<u64> {
        let old = self.read_u64(addr)?;
        self.write_u64(addr, old.wrapping_add(delta))?;
        Ok(old)
    }

    /// Copies a byte slice into guest memory (host-side initialization).
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            let a = addr + i as u64;
            let off = (a as usize) & (PAGE_SIZE - 1);
            self.page_mut(a)[off] = b;
        }
    }

    /// Reads a byte slice out of guest memory (host-side extraction).
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| {
                let a = addr + i as u64;
                let off = (a as usize) & (PAGE_SIZE - 1);
                self.page(a).map_or(0, |p| p[off])
            })
            .collect()
    }

    /// Number of materialized pages (for memory-footprint assertions).
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count() + self.far.len()
    }
}

fn check_aligned(addr: u64) -> SimResult<()> {
    if !addr.is_multiple_of(8) {
        return Err(SimError::Fault(format!(
            "unaligned 64-bit access at {addr:#x}"
        )));
    }
    Ok(())
}

/// A bump allocator for laying out guest data regions.
///
/// Host-side experiment code uses this to place lock words, counter
/// accumulators, log buffers, and workload data without overlap. Allocations
/// are 64-byte aligned by default so distinct objects never share a cache
/// line unless explicitly requested (false sharing is opt-in, not an
/// accident).
#[derive(Debug, Clone)]
pub struct MemLayout {
    cursor: u64,
}

impl MemLayout {
    /// Starts allocating at the given base address.
    pub fn new(base: u64) -> Self {
        MemLayout {
            cursor: align_up(base, 64),
        }
    }

    /// Allocates `bytes` bytes aligned to `align` (power of two).
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        debug_assert!(align.is_power_of_two());
        let addr = align_up(self.cursor, align);
        self.cursor = addr + bytes;
        addr
    }

    /// Allocates one cache-line-aligned 64-bit word.
    pub fn alloc_word(&mut self) -> u64 {
        self.alloc(8, 64)
    }

    /// Allocates an array of `n` 64-bit words, cache-line aligned.
    pub fn alloc_words(&mut self, n: u64) -> u64 {
        self.alloc(n * 8, 64)
    }

    /// The next free address.
    pub fn watermark(&self) -> u64 {
        self.cursor
    }
}

impl Default for MemLayout {
    fn default() -> Self {
        // Leave page zero unused so "address 0" bugs surface as zero reads
        // of untouched memory rather than silently aliasing real data.
        MemLayout::new(0x1_0000)
    }
}

fn align_up(v: u64, align: u64) -> u64 {
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero() {
        let m = GuestMem::new();
        assert_eq!(m.read_u64(0x5000).unwrap(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = GuestMem::new();
        m.write_u64(0x1000, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        assert_eq!(m.read_u64(0x1000).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn unaligned_access_faults() {
        let mut m = GuestMem::new();
        assert!(m.read_u64(0x1001).is_err());
        assert!(m.write_u64(0x1004, 1).is_err());
    }

    #[test]
    fn fetch_add_returns_old_value() {
        let mut m = GuestMem::new();
        m.write_u64(0x2000, 10).unwrap();
        assert_eq!(m.fetch_add_u64(0x2000, 5).unwrap(), 10);
        assert_eq!(m.read_u64(0x2000).unwrap(), 15);
    }

    #[test]
    fn bytes_cross_page_boundaries() {
        let mut m = GuestMem::new();
        let addr = 0x1FFE; // straddles the 0x1000/0x2000 page line
        m.write_bytes(addr, &[1, 2, 3, 4]);
        assert_eq!(m.read_bytes(addr, 4), vec![1, 2, 3, 4]);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn word_write_within_page_works_at_page_end() {
        let mut m = GuestMem::new();
        // Last aligned word of a page.
        m.write_u64(0x1FF8, 42).unwrap();
        assert_eq!(m.read_u64(0x1FF8).unwrap(), 42);
    }

    #[test]
    fn layout_respects_alignment_and_no_overlap() {
        let mut l = MemLayout::new(0x100);
        let a = l.alloc(8, 64);
        let b = l.alloc(8, 64);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 8);
        assert_ne!(a / 64, b / 64, "separate cache lines");
    }

    #[test]
    fn layout_word_array() {
        let mut l = MemLayout::default();
        let arr = l.alloc_words(10);
        assert_eq!(arr % 64, 0);
        assert!(l.watermark() >= arr + 80);
    }
}
