//! Assembled guest programs.
//!
//! A [`Program`] is an immutable instruction image plus a symbol table. Two
//! kinds of symbols exist:
//!
//! * **entries** — named PCs used as thread entry points and call targets
//!   shared between separately-built fragments, and
//! * **ranges** — named `[start, end)` PC intervals. The LiMiT kernel
//!   extension uses a range to recognize "this thread was interrupted
//!   inside the counter-read sequence" (the restartable-sequence fix-up).

use crate::isa::Instr;
use serde::{Deserialize, Serialize};
use sim_core::{SimError, SimResult};
use std::collections::HashMap;

/// A forward-referencable position in a program being assembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) usize);

/// An immutable, fully-resolved guest program.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Program {
    pub(crate) instrs: Vec<Instr>,
    pub(crate) entries: HashMap<String, u32>,
    pub(crate) ranges: HashMap<String, (u32, u32)>,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Fetches the instruction at `pc`, if in range.
    pub fn fetch(&self, pc: u32) -> Option<&Instr> {
        self.instrs.get(pc as usize)
    }

    /// Resolves a named entry point.
    pub fn entry(&self, name: &str) -> SimResult<u32> {
        self.entries
            .get(name)
            .copied()
            .ok_or_else(|| SimError::Program(format!("no entry named {name:?}")))
    }

    /// Resolves a named PC range.
    pub fn range(&self, name: &str) -> SimResult<(u32, u32)> {
        self.ranges
            .get(name)
            .copied()
            .ok_or_else(|| SimError::Program(format!("no range named {name:?}")))
    }

    /// Iterates over all named entries.
    pub fn iter_entries(&self) -> impl Iterator<Item = (&str, u32)> {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates over all named PC ranges.
    pub fn iter_ranges(&self) -> impl Iterator<Item = (&str, (u32, u32))> {
        self.ranges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Renders a disassembly listing (entries annotated).
    pub fn disassemble(&self) -> String {
        let mut by_pc: HashMap<u32, Vec<&str>> = HashMap::new();
        for (name, &pc) in &self.entries {
            by_pc.entry(pc).or_default().push(name);
        }
        let mut out = String::new();
        for (pc, instr) in self.instrs.iter().enumerate() {
            if let Some(names) = by_pc.get(&(pc as u32)) {
                for n in names {
                    out.push_str(&format!("{n}:\n"));
                }
            }
            out.push_str(&format!("  {pc:>6}  {instr}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instr;

    fn sample() -> Program {
        Program {
            instrs: vec![Instr::Nop, Instr::Halt],
            entries: [("main".to_string(), 0u32)].into_iter().collect(),
            ranges: [("seq".to_string(), (0u32, 1u32))].into_iter().collect(),
        }
    }

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = sample();
        assert_eq!(p.fetch(0), Some(&Instr::Nop));
        assert_eq!(p.fetch(2), None);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn entry_resolution() {
        let p = sample();
        assert_eq!(p.entry("main").unwrap(), 0);
        assert!(p.entry("missing").is_err());
        assert_eq!(p.range("seq").unwrap(), (0, 1));
        assert!(p.range("missing").is_err());
    }

    #[test]
    fn disassembly_mentions_entry() {
        let d = sample().disassemble();
        assert!(d.contains("main:"));
        assert!(d.contains("nop"));
    }
}
