//! The cycle-cost model.
//!
//! Every constant here is a *documented substitution* for a measured
//! micro-cost on the paper's hardware (Nehalem-class Intel cores). The
//! reproduction's claims are about shapes and ratios, which these constants
//! preserve; see DESIGN.md §2.
//!
//! The constants are the *defaults* of a runtime [`CostModel`]: the what-if
//! engine (`crates/whatif`) re-runs workloads with individual costs scaled
//! to measure per-region sensitivity, so every charge site in the
//! interpreter reads the machine's `CostModel` rather than the consts
//! directly. `CostModel::default()` reproduces the constants bit-for-bit.

use serde::{Deserialize, Serialize};

/// Cycles for a simple ALU / move / immediate instruction.
pub const ALU: u64 = 1;

/// Cycles for a taken-or-not branch when correctly predicted.
pub const BRANCH: u64 = 1;

/// Extra cycles charged on a branch mispredict (pipeline refill).
pub const BRANCH_MISS_PENALTY: u64 = 15;

/// Cycles for `Call` / `Ret` (shadow-stack push/pop).
pub const CALL: u64 = 2;

/// Base cycles for a load/store before memory-system latency is added.
pub const MEM_ISSUE: u64 = 1;

/// Extra cycles for an atomic read-modify-write (`Xchg`, `FetchAdd`) beyond
/// a normal store: bus-lock / cache-lock overhead.
pub const ATOMIC_PENALTY: u64 = 10;

/// Cycles to execute `rdpmc`. Real Nehalem `rdpmc` costs in the 20-40 cycle
/// range; the paper's "low tens of nanoseconds" full read sequence is this
/// plus the surrounding loads/adds.
pub const RDPMC: u64 = 30;

/// Cycles to execute `rdtsc`.
pub const RDTSC: u64 = 25;

/// Cycles to execute `settag` (hardware extension 3).
pub const SETTAG: u64 = 1;

/// Cycles charged by hardware to spill a self-virtualizing counter to
/// memory on overflow (hardware extension 2).
pub const SPILL: u64 = 10;

/// Cycles for the trap into the kernel on `syscall` (mode switch, register
/// save). The matching return cost is [`SYSCALL_EXIT`]. Entry + exit ≈ 400
/// cycles ≈ 160 ns at 2.5 GHz, matching a measured Linux syscall round-trip
/// of the paper's era.
pub const SYSCALL_ENTRY: u64 = 200;

/// Cycles for the return from kernel to user mode.
pub const SYSCALL_EXIT: u64 = 200;

/// The per-instruction cycle costs as a runtime value.
///
/// `Default` reproduces the module constants exactly, so a machine built
/// without an explicit model behaves bit-for-bit like the pre-refactor
/// hard-coded interpreter (asserted by `tests/params_default.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Simple ALU / move / immediate instruction.
    pub alu: u64,
    /// Correctly predicted branch.
    pub branch: u64,
    /// Extra cycles on a branch mispredict.
    pub branch_miss_penalty: u64,
    /// `Call` / `Ret`.
    pub call: u64,
    /// Load/store issue before memory-system latency.
    pub mem_issue: u64,
    /// Extra cycles for an atomic read-modify-write.
    pub atomic_penalty: u64,
    /// `rdpmc`.
    pub rdpmc: u64,
    /// `rdtsc`.
    pub rdtsc: u64,
    /// `settag` (hardware extension 3).
    pub settag: u64,
    /// Hardware counter spill on overflow (hardware extension 2).
    pub spill: u64,
    /// Trap into the kernel on `syscall`.
    pub syscall_entry: u64,
    /// Return from kernel to user mode.
    pub syscall_exit: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: ALU,
            branch: BRANCH,
            branch_miss_penalty: BRANCH_MISS_PENALTY,
            call: CALL,
            mem_issue: MEM_ISSUE,
            atomic_penalty: ATOMIC_PENALTY,
            rdpmc: RDPMC,
            rdtsc: RDTSC,
            settag: SETTAG,
            spill: SPILL,
            syscall_entry: SYSCALL_ENTRY,
            syscall_exit: SYSCALL_EXIT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_reproduces_the_constants() {
        let m = CostModel::default();
        assert_eq!(
            (m.alu, m.branch, m.branch_miss_penalty, m.call, m.mem_issue),
            (ALU, BRANCH, BRANCH_MISS_PENALTY, CALL, MEM_ISSUE)
        );
        assert_eq!(
            (m.atomic_penalty, m.rdpmc, m.rdtsc, m.settag, m.spill),
            (ATOMIC_PENALTY, RDPMC, RDTSC, SETTAG, SPILL)
        );
        assert_eq!(
            (m.syscall_entry, m.syscall_exit),
            (SYSCALL_ENTRY, SYSCALL_EXIT)
        );
    }

    #[test]
    fn atomic_costs_more_than_plain_access() {
        // The ordering the lock studies depend on. Non-default models are
        // checked at runtime by `limit::params::MachineParams::validate`.
        const { assert!(ATOMIC_PENALTY > MEM_ISSUE) }
    }
}
