//! The cycle-cost model.
//!
//! Every constant here is a *documented substitution* for a measured
//! micro-cost on the paper's hardware (Nehalem-class Intel cores). The
//! reproduction's claims are about shapes and ratios, which these constants
//! preserve; see DESIGN.md §2.

/// Cycles for a simple ALU / move / immediate instruction.
pub const ALU: u64 = 1;

/// Cycles for a taken-or-not branch when correctly predicted.
pub const BRANCH: u64 = 1;

/// Extra cycles charged on a branch mispredict (pipeline refill).
pub const BRANCH_MISS_PENALTY: u64 = 15;

/// Cycles for `Call` / `Ret` (shadow-stack push/pop).
pub const CALL: u64 = 2;

/// Base cycles for a load/store before memory-system latency is added.
pub const MEM_ISSUE: u64 = 1;

/// Extra cycles for an atomic read-modify-write (`Xchg`, `FetchAdd`) beyond
/// a normal store: bus-lock / cache-lock overhead.
pub const ATOMIC_PENALTY: u64 = 10;

/// Cycles to execute `rdpmc`. Real Nehalem `rdpmc` costs in the 20-40 cycle
/// range; the paper's "low tens of nanoseconds" full read sequence is this
/// plus the surrounding loads/adds.
pub const RDPMC: u64 = 30;

/// Cycles to execute `rdtsc`.
pub const RDTSC: u64 = 25;

/// Cycles to execute `settag` (hardware extension 3).
pub const SETTAG: u64 = 1;

/// Cycles charged by hardware to spill a self-virtualizing counter to
/// memory on overflow (hardware extension 2).
pub const SPILL: u64 = 10;

/// Cycles for the trap into the kernel on `syscall` (mode switch, register
/// save). The matching return cost is [`SYSCALL_EXIT`]. Entry + exit ≈ 400
/// cycles ≈ 160 ns at 2.5 GHz, matching a measured Linux syscall round-trip
/// of the paper's era.
pub const SYSCALL_ENTRY: u64 = 200;

/// Cycles for the return from kernel to user mode.
pub const SYSCALL_EXIT: u64 = 200;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syscall_round_trip_dwarfs_rdpmc() {
        // The paper's headline ratio depends on this ordering: a kernel
        // round-trip must cost an order of magnitude more than rdpmc.
        const { assert!(SYSCALL_ENTRY + SYSCALL_EXIT >= 10 * RDPMC) }
    }

    #[test]
    fn atomic_costs_more_than_plain_access() {
        const { assert!(ATOMIC_PENALTY > MEM_ISSUE) }
    }
}
