//! Guest general-purpose registers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of general-purpose registers in the guest ISA.
pub const NUM_REGS: usize = 16;

/// A guest general-purpose register, `r0`..`r15`.
///
/// Calling convention used by the assembler helpers and the kernel ABI:
/// syscall number is encoded in the instruction, syscall arguments travel in
/// `r0`..`r5`, and the return value comes back in `r0`. Everything else is
/// caller-managed — guest programs in this workspace are generated, not
/// hand-written, so no callee-save convention is needed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// Syscall argument / return-value register.
    pub const R0: Reg = Reg(0);
    /// Second syscall argument.
    pub const R1: Reg = Reg(1);
    /// Third syscall argument.
    pub const R2: Reg = Reg(2);
    /// Fourth syscall argument.
    pub const R3: Reg = Reg(3);
    /// Fifth syscall argument.
    pub const R4: Reg = Reg(4);
    /// Sixth syscall argument.
    pub const R5: Reg = Reg(5);
    /// General scratch.
    pub const R6: Reg = Reg(6);
    /// General scratch.
    pub const R7: Reg = Reg(7);
    /// General scratch.
    pub const R8: Reg = Reg(8);
    /// General scratch.
    pub const R9: Reg = Reg(9);
    /// General scratch.
    pub const R10: Reg = Reg(10);
    /// General scratch.
    pub const R11: Reg = Reg(11);
    /// General scratch.
    pub const R12: Reg = Reg(12);
    /// General scratch.
    pub const R13: Reg = Reg(13);
    /// General scratch.
    pub const R14: Reg = Reg(14);
    /// General scratch.
    pub const R15: Reg = Reg(15);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 16`.
    pub const fn new(idx: u8) -> Reg {
        assert!(idx < NUM_REGS as u8, "register index out of range");
        Reg(idx)
    }

    /// The register's index into a register file.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A thread's architectural register state plus program counter.
///
/// The shadow call stack backs the `Call`/`Ret` instructions: guest code in
/// this workspace never takes return addresses, so a hardware-side stack is
/// simpler and faster than memory-resident frames.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Context {
    /// General-purpose register values.
    pub regs: [u64; NUM_REGS],
    /// Program counter (instruction index into the program image).
    pub pc: u32,
    /// Shadow call stack of return PCs.
    pub call_stack: Vec<u32>,
    /// The core's counting tag (hardware-extension 3); saved with the
    /// context so tags virtualize across context switches.
    pub tag: u64,
}

impl Context {
    /// A fresh context starting at `entry` with all registers zero.
    pub fn at(entry: u32) -> Context {
        Context {
            pc: entry,
            ..Context::default()
        }
    }

    /// Reads a register.
    pub fn get(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register.
    pub fn set(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_constants_have_expected_indices() {
        assert_eq!(Reg::R0.index(), 0);
        assert_eq!(Reg::R15.index(), 15);
        assert_eq!(Reg::new(7), Reg::R7);
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn out_of_range_register_panics() {
        let _ = Reg::new(16);
    }

    #[test]
    fn context_get_set_round_trip() {
        let mut c = Context::at(5);
        assert_eq!(c.pc, 5);
        c.set(Reg::R3, 99);
        assert_eq!(c.get(Reg::R3), 99);
        assert_eq!(c.get(Reg::R4), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(Reg::R11.to_string(), "r11");
    }
}
