//! Differential oracle for counter virtualization (the torture harness).
//!
//! The oracle maintains a **shadow per-thread event ledger** entirely
//! outside the PMU path: every user-mode event a core delivers is also
//! added to a plain 64-bit tally keyed by the thread installed on the core.
//! Nothing in the ledger is folded, rewound, spilled, or width-limited, so
//! it is immune by construction to every virtualization mechanism under
//! test.
//!
//! Checking works at the two ends of the LiMiT read sequence
//! (`load accum; rdpmc; add`):
//!
//! 1. When a thread executes `rdpmc` *inside a registered restart range*,
//!    the oracle arms a pending check with the **expected** virtualized
//!    value: `ledger[thread][event] - baseline`, where `baseline` was
//!    snapshotted when the counter was attached (`LIMIT_OPEN`).
//! 2. When the final instruction of that range (the `add`) retires, the
//!    architected result — accumulator + live counter as the guest computed
//!    it — is compared against the expectation. A mismatch is a
//!    [`Divergence`]: the virtualization layer produced a wrong read.
//!
//! An undisturbed sequence matches exactly: at the `rdpmc`, the user-memory
//! accumulator holds all folded history and the live counter holds the
//! remainder, both counted since `LIMIT_OPEN` — precisely the ledger delta.
//! A disturbance landing between the `load` and the `add` changes the
//! architected sum unless the kernel's restart fix-up rewinds the sequence,
//! which is exactly the invariant the torture harness exists to test.

use crate::events::EventKind;
use sim_core::ThreadId;
use std::collections::HashMap;

/// One wrong virtualized read caught by the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// The thread that performed the read.
    pub tid: ThreadId,
    /// The restart range `[start, end)` containing the read sequence.
    pub range: (u32, u32),
    /// The event being read.
    pub event: EventKind,
    /// What the read should have returned (shadow-ledger delta).
    pub expected: u64,
    /// What the guest actually computed.
    pub actual: u64,
    /// Core-local clock when the sequence's final instruction retired.
    pub clock: u64,
}

/// A check armed by an in-range `rdpmc`, resolved by the range's last
/// instruction.
#[derive(Debug, Clone, Copy)]
struct Pending {
    range: (u32, u32),
    event: EventKind,
    expected: u64,
}

/// The shadow ledger plus check state. Owned by [`crate::Machine`] when
/// enabled; the kernel reports counter attach/detach via
/// [`Oracle::note_open`] / [`Oracle::note_close`].
#[derive(Debug, Default)]
pub struct Oracle {
    /// Registered restart ranges, sorted by start, non-overlapping.
    ranges: Vec<(u32, u32)>,
    /// Per-thread event tallies (user-mode only, never folded or wrapped).
    ledger: HashMap<ThreadId, [u64; EventKind::COUNT]>,
    /// Open LiMiT slots: (thread, slot) → (event, ledger baseline at open).
    opens: HashMap<(ThreadId, u8), (EventKind, u64)>,
    /// Open perf fds: (thread, fd) → (event, ledger baseline at open).
    /// Entries are *never* removed — fds are allocated monotonically and
    /// land in the kernel's closed-fd graveyard, so post-run host checks
    /// (the sampling arm) can still resolve baselines after thread exit.
    perf_opens: HashMap<(ThreadId, u32), (EventKind, u64)>,
    /// At most one in-flight read sequence per thread.
    pending: HashMap<ThreadId, Pending>,
    /// Reads checked (armed *and* resolved).
    pub checks: u64,
    divergences: Vec<Divergence>,
    /// Bounded-error checks performed (syscall/sampling access methods,
    /// where scheduling slack makes exactness the wrong contract).
    bounded_checks: u64,
    /// Largest absolute error any bounded check has measured.
    max_abs_error: u64,
}

impl Oracle {
    /// An oracle checking reads inside the given restart ranges.
    pub fn new(ranges: &[(u32, u32)]) -> Self {
        let mut ranges = ranges.to_vec();
        ranges.sort_unstable();
        Oracle {
            ranges,
            ..Oracle::default()
        }
    }

    /// Adds `n` occurrences of `event` to `tid`'s ledger.
    pub fn record(&mut self, tid: ThreadId, event: EventKind, n: u64) {
        self.ledger.entry(tid).or_insert([0; EventKind::COUNT])[event.index()] += n;
    }

    /// The ledger value for `(tid, event)`.
    pub fn ledger(&self, tid: ThreadId, event: EventKind) -> u64 {
        self.ledger.get(&tid).map_or(0, |l| l[event.index()])
    }

    /// The kernel attached `event` to `(tid, slot)`: snapshot the baseline.
    /// Reads report events since the attach, so the expectation must too.
    pub fn note_open(&mut self, tid: ThreadId, slot: u8, event: EventKind) {
        let baseline = self.ledger(tid, event);
        self.opens.insert((tid, slot), (event, baseline));
    }

    /// The kernel detached `(tid, slot)`.
    pub fn note_close(&mut self, tid: ThreadId, slot: u8) {
        self.opens.remove(&(tid, slot));
    }

    /// The kernel opened perf fd `fd` counting `event` for `tid`: snapshot
    /// the ledger baseline, as [`Oracle::note_open`] does for LiMiT slots.
    pub fn note_perf_open(&mut self, tid: ThreadId, fd: u32, event: EventKind) {
        let baseline = self.ledger(tid, event);
        self.perf_opens.insert((tid, fd), (event, baseline));
    }

    /// The event and ledger baseline recorded at `perf_open` for
    /// `(tid, fd)`, if that fd was opened under the oracle. Host-side
    /// checks (the sampling arm) use this to form expectations after the
    /// run, when only the fd graveyard remains.
    pub fn perf_open_info(&self, tid: ThreadId, fd: u32) -> Option<(EventKind, u64)> {
        self.perf_opens.get(&(tid, fd)).copied()
    }

    /// `tid` read perf fd `fd` via the syscall path and got `actual`.
    /// Records a bounded-error check against the ledger delta since open
    /// and returns the absolute error, or `None` if the fd is unknown.
    /// Unlike the rdpmc path this is *not* a pass/fail: the syscall read
    /// has no restart range, so instructions retired between the ledger
    /// snapshot and the kernel's counter fold are honest skew, and the
    /// caller judges the measured error against its documented bound.
    pub fn check_perf_read(&mut self, tid: ThreadId, fd: u32, actual: u64) -> Option<u64> {
        let &(event, baseline) = self.perf_opens.get(&(tid, fd))?;
        let expected = self.ledger(tid, event) - baseline;
        let err = expected.abs_diff(actual);
        self.record_bounded_error(err);
        Some(err)
    }

    /// Folds one externally measured bounded-error sample (e.g. the
    /// host-side sampling check) into the running maximum.
    pub fn record_bounded_error(&mut self, err: u64) {
        self.bounded_checks += 1;
        self.max_abs_error = self.max_abs_error.max(err);
    }

    /// Number of bounded-error checks performed.
    pub fn bounded_checks(&self) -> u64 {
        self.bounded_checks
    }

    /// Largest absolute error measured across all bounded checks.
    pub fn max_abs_error(&self) -> u64 {
        self.max_abs_error
    }

    /// The range containing `pc`, if any (ranges are sorted and disjoint).
    fn containing_range(&self, pc: u32) -> Option<(u32, u32)> {
        let pos = self.ranges.partition_point(|&(s, _)| s <= pc);
        match pos.checked_sub(1).map(|i| self.ranges[i]) {
            Some((s, e)) if pc < e => Some((s, e)),
            _ => None,
        }
    }

    /// `tid` executed `rdpmc slot` at `pc`. If the read sits inside a
    /// registered range and the slot is an open LiMiT counter, arm the
    /// check. A re-execution (restart fix-up rewound the sequence)
    /// overwrites the previous arm — only the sequence that *completes*
    /// produces the architected value. Returns whether a check was armed
    /// (the flight recorder mirrors arms as events).
    pub fn observe_read(&mut self, tid: ThreadId, slot: u8, pc: u32) -> bool {
        let Some(range) = self.containing_range(pc) else {
            return false;
        };
        let Some(&(event, baseline)) = self.opens.get(&(tid, slot)) else {
            return false;
        };
        let expected = self.ledger(tid, event) - baseline;
        self.pending.insert(
            tid,
            Pending {
                range,
                event,
                expected,
            },
        );
        true
    }

    /// `tid` retired the instruction at `pc` leaving `actual` in the
    /// sequence's destination register. Resolves the pending check if `pc`
    /// is the final instruction of the armed range; returns `Some(ok)`
    /// when a check resolved (`false` means a divergence was recorded).
    pub fn complete(&mut self, tid: ThreadId, pc: u32, actual: u64, clock: u64) -> Option<bool> {
        let p = self.pending.get(&tid)?;
        if pc + 1 != p.range.1 {
            return None;
        }
        let p = *p;
        self.pending.remove(&tid);
        self.checks += 1;
        let ok = actual == p.expected;
        if !ok {
            self.divergences.push(Divergence {
                tid,
                range: p.range,
                event: p.event,
                expected: p.expected,
                actual,
                clock,
            });
        }
        Some(ok)
    }

    /// All divergences caught so far, in detection order.
    pub fn divergences(&self) -> &[Divergence] {
        &self.divergences
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: ThreadId = ThreadId(7);

    #[test]
    fn undisturbed_read_matches() {
        let mut o = Oracle::new(&[(10, 13)]);
        o.record(T, EventKind::Instructions, 5);
        o.note_open(T, 0, EventKind::Instructions);
        o.record(T, EventKind::Instructions, 42);
        o.observe_read(T, 0, 11);
        // The rdpmc's own retirement lands after the read, so it is in the
        // ledger but not in the architected value; the arm-time snapshot
        // already excluded it.
        o.record(T, EventKind::Instructions, 1);
        o.complete(T, 12, 42, 1_000);
        assert_eq!(o.checks, 1);
        assert!(o.divergences().is_empty());
    }

    #[test]
    fn wrong_value_is_a_divergence() {
        let mut o = Oracle::new(&[(10, 13)]);
        o.note_open(T, 0, EventKind::Instructions);
        o.record(T, EventKind::Instructions, 100);
        o.observe_read(T, 0, 11);
        o.complete(T, 12, 60, 500);
        assert_eq!(o.checks, 1);
        let d = o.divergences()[0];
        assert_eq!((d.expected, d.actual), (100, 60));
        assert_eq!(d.range, (10, 13));
    }

    #[test]
    fn baseline_excludes_pre_open_events() {
        let mut o = Oracle::new(&[(10, 13)]);
        o.record(T, EventKind::Instructions, 1_000);
        o.note_open(T, 0, EventKind::Instructions);
        o.record(T, EventKind::Instructions, 3);
        o.observe_read(T, 0, 11);
        o.complete(T, 12, 3, 0);
        assert!(o.divergences().is_empty());
    }

    #[test]
    fn rewound_sequence_overwrites_the_arm() {
        let mut o = Oracle::new(&[(10, 13)]);
        o.note_open(T, 0, EventKind::Instructions);
        o.record(T, EventKind::Instructions, 10);
        o.observe_read(T, 0, 11); // first attempt, expected 10
        o.record(T, EventKind::Instructions, 7); // disturbance + re-run
        o.observe_read(T, 0, 11); // re-armed, expected 17
        o.complete(T, 12, 17, 0);
        assert_eq!(o.checks, 1);
        assert!(o.divergences().is_empty());
    }

    #[test]
    fn reads_outside_ranges_or_unopened_slots_are_ignored() {
        let mut o = Oracle::new(&[(10, 13)]);
        o.note_open(T, 0, EventKind::Instructions);
        o.observe_read(T, 0, 50); // outside any range
        o.complete(T, 12, 999, 0);
        o.observe_read(T, 3, 11); // slot never opened
        o.complete(T, 12, 999, 0);
        assert_eq!(o.checks, 0);
        assert!(o.divergences().is_empty());
    }

    #[test]
    fn close_forgets_the_slot() {
        let mut o = Oracle::new(&[(10, 13)]);
        o.note_open(T, 0, EventKind::Cycles);
        o.note_close(T, 0);
        o.observe_read(T, 0, 11);
        o.complete(T, 12, 0, 0);
        assert_eq!(o.checks, 0);
    }

    #[test]
    fn perf_reads_record_bounded_error_not_divergence() {
        let mut o = Oracle::new(&[]);
        o.record(T, EventKind::Instructions, 50);
        o.note_perf_open(T, 3, EventKind::Instructions);
        o.record(T, EventKind::Instructions, 100);
        assert_eq!(o.check_perf_read(T, 3, 100), Some(0));
        assert_eq!(o.check_perf_read(T, 3, 95), Some(5));
        assert_eq!(o.check_perf_read(T, 9, 0), None, "unknown fd");
        assert_eq!(o.bounded_checks(), 2);
        assert_eq!(o.max_abs_error(), 5);
        assert!(o.divergences().is_empty(), "bounded checks never diverge");
        assert_eq!(o.perf_open_info(T, 3), Some((EventKind::Instructions, 50)));
    }

    #[test]
    fn host_side_bounded_samples_share_the_running_max() {
        let mut o = Oracle::new(&[]);
        o.record_bounded_error(7);
        o.record_bounded_error(2);
        assert_eq!(o.bounded_checks(), 2);
        assert_eq!(o.max_abs_error(), 7);
    }

    #[test]
    fn containing_range_boundaries() {
        let o = Oracle::new(&[(10, 13), (20, 23)]);
        assert_eq!(o.containing_range(9), None);
        assert_eq!(o.containing_range(10), Some((10, 13)));
        assert_eq!(o.containing_range(12), Some((10, 13)));
        assert_eq!(o.containing_range(13), None);
        assert_eq!(o.containing_range(22), Some((20, 23)));
    }
}
