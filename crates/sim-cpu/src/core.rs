//! Per-core execution state: registers, clock, PMU, branch predictor.
//!
//! The instruction-execution logic itself lives in [`crate::machine`],
//! because one step touches the core, shared guest memory, and the shared
//! memory hierarchy at once.

use crate::events::EventKind;
use crate::pmu::{Pmu, PmuConfig};
use crate::regs::Context;
use serde::{Deserialize, Serialize};
use sim_core::{CoreId, SimResult, ThreadId};

/// Privilege mode the core is executing in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Unprivileged guest code.
    User,
    /// Kernel code (simulated as host logic that charges guest cycles).
    Kernel,
}

/// A trap raised by instruction execution, handed to the kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// The thread executed `Syscall(nr)`.
    Syscall(u64),
    /// The thread executed `Halt`.
    Halt,
    /// An illegal operation: the message describes it.
    Fault(String),
}

/// The outcome of executing one instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Cycles consumed (including memory stalls and mispredict penalties).
    pub cycles: u64,
    /// Instructions retired (bursts retire several at once).
    pub instrs: u64,
    /// Trap raised, if any. The PC has already advanced past the trapping
    /// instruction for `Syscall`/`Halt`; for `Fault` it points at the
    /// faulting instruction.
    pub trap: Option<Trap>,
}

/// A 2-bit-counter branch predictor (one table per core).
///
/// Loop branches saturate quickly to strongly-taken, giving the high
/// prediction rates real workloads see; data-dependent branches in the
/// synthetic workloads miss at realistic rates.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    table: Vec<u8>,
}

impl BranchPredictor {
    const SIZE: usize = 4096;

    /// A predictor initialized to weakly-not-taken.
    pub fn new() -> Self {
        BranchPredictor {
            table: vec![1; Self::SIZE],
        }
    }

    fn slot(&mut self, pc: u32) -> &mut u8 {
        &mut self.table[pc as usize % Self::SIZE]
    }

    /// Predicts, updates, and reports whether the prediction was wrong.
    pub fn observe(&mut self, pc: u32, taken: bool) -> bool {
        let s = self.slot(pc);
        let predicted_taken = *s >= 2;
        if taken {
            *s = (*s + 1).min(3);
        } else {
            *s = s.saturating_sub(1);
        }
        predicted_taken != taken
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::new()
    }
}

/// Batched PMU accrual for the block-stepped fast path (see
/// [`crate::machine::Machine::run_until`]).
///
/// While `active`, [`crate::machine::Machine`] diverts event deliveries
/// into `counts` instead of the PMU and flushes them in batch — at counter
/// reads, tag changes, and every fast-path exit — so the PMU observes the
/// same totals as per-instruction delivery. The executor's headroom guard
/// guarantees no *armed* counter (PMI or spill on overflow) can wrap while
/// counts sit in the batch, which is what makes deferred delivery exact.
#[derive(Debug, Clone)]
pub struct BatchAccrual {
    /// Whether event deliveries are currently diverted into the batch.
    pub active: bool,
    /// Pending per-event counts awaiting delivery to the PMU.
    pub counts: [u64; EventKind::COUNT],
    /// Sum of all pending counts (cheap guard arithmetic).
    pub total: u64,
    /// Cached [`crate::pmu::Pmu::armed_headroom`] as of the last flush.
    pub headroom: u64,
}

impl Default for BatchAccrual {
    fn default() -> Self {
        BatchAccrual {
            active: false,
            counts: [0; EventKind::COUNT],
            total: 0,
            headroom: u64::MAX,
        }
    }
}

/// One simulated core.
#[derive(Debug, Clone)]
pub struct Core {
    /// This core's id.
    pub id: CoreId,
    /// Local cycle clock (also the `rdtsc` value).
    pub clock: u64,
    /// The performance-monitoring unit.
    pub pmu: Pmu,
    /// Current privilege mode.
    pub mode: Mode,
    /// Register state of the thread currently installed on the core.
    pub ctx: Context,
    /// The installed thread, or `None` when idle.
    pub running: Option<ThreadId>,
    /// Branch predictor state (not virtualized across threads — matching
    /// real hardware, where predictor state leaks across context switches).
    pub predictor: BranchPredictor,
    /// Optional execution trace ring (host debugging; off by default).
    pub trace: Option<crate::trace::Trace>,
    /// Per-step user-mode event scratch for the differential oracle
    /// ([`crate::oracle`]); `None` unless the machine's oracle is enabled.
    /// Flushed into the per-thread ledger after every step.
    pub oracle_scratch: Option<Box<[u64; EventKind::COUNT]>>,
    /// Batched PMU accrual state for the block-stepped fast path. Inactive
    /// (and empty) whenever control is outside `Machine::run_until`.
    pub batch: BatchAccrual,
    /// Lifetime guest instructions retired by this core (the numerator of
    /// the interpreter-throughput benchmark; kernel `charge` bookkeeping
    /// is excluded — only decoded-and-executed instructions count).
    pub retired: u64,
}

impl Core {
    /// Builds an idle core.
    pub fn new(id: CoreId, pmu_config: PmuConfig) -> SimResult<Self> {
        Ok(Core {
            id,
            clock: 0,
            pmu: Pmu::new(pmu_config)?,
            mode: Mode::Kernel,
            ctx: Context::default(),
            running: None,
            predictor: BranchPredictor::new(),
            trace: None,
            oracle_scratch: None,
            batch: BatchAccrual::default(),
            retired: 0,
        })
    }

    /// Delivers all batched event counts to the PMU at the core's current
    /// mode and tag. Contents move; `active` and `headroom` are untouched.
    fn deliver_batch(&mut self) {
        if self.batch.total > 0 {
            let tag = self.ctx.tag;
            for (i, v) in self.batch.counts.iter_mut().enumerate() {
                if *v > 0 {
                    self.pmu.count(EventKind::ALL[i], *v, self.mode, tag);
                    *v = 0;
                }
            }
            self.batch.total = 0;
        }
    }

    /// Delivers all batched event counts and refreshes the cached armed
    /// headroom (for flushes after which batching continues). The batch
    /// stays in whatever `active` state it was in; only its contents move.
    pub fn flush_batch(&mut self) {
        self.deliver_batch();
        self.batch.headroom = self.pmu.armed_headroom();
    }

    /// Delivers all batched event counts and deactivates batching, without
    /// the headroom recompute (no batching follows until reactivation,
    /// which refreshes it).
    pub fn settle_batch(&mut self) {
        self.deliver_batch();
        self.batch.active = false;
    }

    /// Whether the core has a thread installed.
    pub fn is_busy(&self) -> bool {
        self.running.is_some()
    }

    /// Enables execution tracing with the given ring capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(crate::trace::Trace::new(capacity));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_learns_a_loop() {
        let mut p = BranchPredictor::new();
        let mut misses = 0;
        for _ in 0..100 {
            if p.observe(10, true) {
                misses += 1;
            }
        }
        // Warms up within a couple of iterations, then predicts perfectly.
        assert!(misses <= 2, "misses = {misses}");
    }

    #[test]
    fn predictor_misses_on_alternating_pattern() {
        let mut p = BranchPredictor::new();
        let mut misses = 0;
        for i in 0..100 {
            if p.observe(20, i % 2 == 0) {
                misses += 1;
            }
        }
        assert!(misses >= 40, "alternating defeats a 2-bit counter");
    }

    #[test]
    fn fresh_core_is_idle_in_kernel_mode() {
        let c = Core::new(CoreId::new(0), PmuConfig::default()).unwrap();
        assert!(!c.is_busy());
        assert_eq!(c.mode, Mode::Kernel);
        assert_eq!(c.clock, 0);
    }
}
