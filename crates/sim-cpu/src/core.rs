//! Per-core execution state: registers, clock, PMU, branch predictor.
//!
//! The instruction-execution logic itself lives in [`crate::machine`],
//! because one step touches the core, shared guest memory, and the shared
//! memory hierarchy at once.

use crate::events::EventKind;
use crate::pmu::{Pmu, PmuConfig};
use crate::regs::Context;
use serde::{Deserialize, Serialize};
use sim_core::{CoreId, SimResult, ThreadId};

/// Privilege mode the core is executing in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Unprivileged guest code.
    User,
    /// Kernel code (simulated as host logic that charges guest cycles).
    Kernel,
}

/// A trap raised by instruction execution, handed to the kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// The thread executed `Syscall(nr)`.
    Syscall(u64),
    /// The thread executed `Halt`.
    Halt,
    /// An illegal operation: the message describes it.
    Fault(String),
}

/// The outcome of executing one instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Cycles consumed (including memory stalls and mispredict penalties).
    pub cycles: u64,
    /// Instructions retired (bursts retire several at once).
    pub instrs: u64,
    /// Trap raised, if any. The PC has already advanced past the trapping
    /// instruction for `Syscall`/`Halt`; for `Fault` it points at the
    /// faulting instruction.
    pub trap: Option<Trap>,
}

/// A 2-bit-counter branch predictor (one table per core).
///
/// Loop branches saturate quickly to strongly-taken, giving the high
/// prediction rates real workloads see; data-dependent branches in the
/// synthetic workloads miss at realistic rates.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    table: Vec<u8>,
}

impl BranchPredictor {
    const SIZE: usize = 4096;

    /// A predictor initialized to weakly-not-taken.
    pub fn new() -> Self {
        BranchPredictor {
            table: vec![1; Self::SIZE],
        }
    }

    fn slot(&mut self, pc: u32) -> &mut u8 {
        &mut self.table[pc as usize % Self::SIZE]
    }

    /// Predicts, updates, and reports whether the prediction was wrong.
    pub fn observe(&mut self, pc: u32, taken: bool) -> bool {
        let s = self.slot(pc);
        let predicted_taken = *s >= 2;
        if taken {
            *s = (*s + 1).min(3);
        } else {
            *s = s.saturating_sub(1);
        }
        predicted_taken != taken
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::new()
    }
}

/// One simulated core.
#[derive(Debug, Clone)]
pub struct Core {
    /// This core's id.
    pub id: CoreId,
    /// Local cycle clock (also the `rdtsc` value).
    pub clock: u64,
    /// The performance-monitoring unit.
    pub pmu: Pmu,
    /// Current privilege mode.
    pub mode: Mode,
    /// Register state of the thread currently installed on the core.
    pub ctx: Context,
    /// The installed thread, or `None` when idle.
    pub running: Option<ThreadId>,
    /// Branch predictor state (not virtualized across threads — matching
    /// real hardware, where predictor state leaks across context switches).
    pub predictor: BranchPredictor,
    /// Optional execution trace ring (host debugging; off by default).
    pub trace: Option<crate::trace::Trace>,
    /// Per-step user-mode event scratch for the differential oracle
    /// ([`crate::oracle`]); `None` unless the machine's oracle is enabled.
    /// Flushed into the per-thread ledger after every step.
    pub oracle_scratch: Option<Box<[u64; EventKind::COUNT]>>,
}

impl Core {
    /// Builds an idle core.
    pub fn new(id: CoreId, pmu_config: PmuConfig) -> SimResult<Self> {
        Ok(Core {
            id,
            clock: 0,
            pmu: Pmu::new(pmu_config)?,
            mode: Mode::Kernel,
            ctx: Context::default(),
            running: None,
            predictor: BranchPredictor::new(),
            trace: None,
            oracle_scratch: None,
        })
    }

    /// Whether the core has a thread installed.
    pub fn is_busy(&self) -> bool {
        self.running.is_some()
    }

    /// Enables execution tracing with the given ring capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(crate::trace::Trace::new(capacity));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_learns_a_loop() {
        let mut p = BranchPredictor::new();
        let mut misses = 0;
        for _ in 0..100 {
            if p.observe(10, true) {
                misses += 1;
            }
        }
        // Warms up within a couple of iterations, then predicts perfectly.
        assert!(misses <= 2, "misses = {misses}");
    }

    #[test]
    fn predictor_misses_on_alternating_pattern() {
        let mut p = BranchPredictor::new();
        let mut misses = 0;
        for i in 0..100 {
            if p.observe(20, i % 2 == 0) {
                misses += 1;
            }
        }
        assert!(misses >= 40, "alternating defeats a 2-bit counter");
    }

    #[test]
    fn fresh_core_is_idle_in_kernel_mode() {
        let c = Core::new(CoreId::new(0), PmuConfig::default()).unwrap();
        assert!(!c.is_busy());
        assert_eq!(c.mode, Mode::Kernel);
        assert_eq!(c.clock, 0);
    }
}
