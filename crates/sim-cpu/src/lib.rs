//! Guest ISA and multicore CPU model with a faithful performance-monitoring
//! unit (PMU).
//!
//! This crate is the hardware half of the reproduction substrate. Guest
//! workloads are small programs in a custom RISC-like instruction set
//! ([`isa`]), built with the assembler ([`asm`]), and executed one
//! instruction at a time by per-core engines ([`core`]). Executing at
//! instruction granularity is what makes the reproduction honest: the OS
//! layer (crate `sim-os`) can preempt a thread or deliver a counter-overflow
//! interrupt *between any two guest instructions*, so the multi-instruction
//! LiMiT counter-read sequence is genuinely racy, exactly as on real
//! hardware.
//!
//! The PMU ([`pmu`]) models an IA32-style unit: a handful of programmable
//! counters with event selectors, user/kernel mode filtering, configurable
//! counter width (default 48 bits), overflow interrupts, and an `rdpmc`
//! instruction that faults unless userspace access has been enabled. It also
//! implements the paper's three proposed hardware enhancements (destructive
//! reads, self-virtualizing 64-bit counters with memory spill, and
//! tag-filtered counting), all off by default.

pub mod asm;
pub mod block;
pub mod core;
pub mod cost;
pub mod events;
pub mod gmem;
pub mod isa;
pub mod machine;
pub mod oracle;
pub mod pmu;
pub mod prog;
pub mod regs;
pub mod trace;
pub mod verify;

pub use crate::core::{Core, Mode, Step, Trap};
pub use asm::Asm;
pub use block::{Block, BlockMap};
pub use cost::CostModel;
pub use events::EventKind;
pub use gmem::{GuestMem, MemLayout};
pub use isa::{AluOp, Cond, Instr};
pub use machine::{Machine, MachineConfig, RunExit, RunLimits};
pub use oracle::{Divergence, Oracle};
pub use pmu::{CounterCfg, Pmu, PmuConfig};
pub use prog::{Label, Program};
pub use regs::Reg;
pub use trace::{Trace, TraceEntry};
pub use verify::{verify, Issue};
