//! Static verification of assembled guest programs.
//!
//! The assembler guarantees label resolution; this pass checks the
//! properties that only hold (or fail) across whole programs: control
//! transfers stay in bounds, named entries and ranges are valid, no
//! straight-line path falls off the end of the image, and restart ranges
//! contain no control flow (a rewind into a range with a branch could
//! otherwise re-execute a different path). The harness runs it at build
//! time so emission bugs fault at assembly, not mid-experiment.

use crate::isa::Instr;
use crate::prog::Program;
use std::fmt;

/// One verification finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Issue {
    /// PC the issue is anchored to (or the program length for end-of-image
    /// issues).
    pub pc: u32,
    /// What is wrong.
    pub what: String,
}

impl fmt::Display for Issue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc {}: {}", self.pc, self.what)
    }
}

/// Verifies a program, returning every issue found (empty = clean).
pub fn verify(prog: &Program) -> Vec<Issue> {
    let len = prog.len() as u32;
    let mut issues = Vec::new();

    for pc in 0..len {
        let instr = prog.fetch(pc).expect("pc < len");
        if let Instr::Br(_, _, _, t) | Instr::Jmp(t) | Instr::Call(t) = instr {
            if *t >= len {
                issues.push(Issue {
                    pc,
                    what: format!("control transfer to out-of-bounds target {t}"),
                });
            }
        }
    }

    for (name, entry) in prog.iter_entries() {
        if entry > len {
            issues.push(Issue {
                pc: entry,
                what: format!("entry {name:?} beyond program end"),
            });
        }
    }

    for (name, (start, end)) in prog.iter_ranges() {
        if start >= end || end > len {
            issues.push(Issue {
                pc: start,
                what: format!("range {name:?} is empty or out of bounds ({start}..{end})"),
            });
        }
        // Restart ranges must be straight-line: a rewind re-executes from
        // the start, which is only equivalent if no branch can have
        // diverted within the range.
        if name.starts_with("limit_read") {
            for pc in start..end.min(len) {
                if matches!(
                    prog.fetch(pc),
                    Some(Instr::Br(..) | Instr::Jmp(_) | Instr::Call(_) | Instr::Ret)
                ) {
                    issues.push(Issue {
                        pc,
                        what: format!("restart range {name:?} contains control flow"),
                    });
                }
            }
        }
    }

    // The last instruction must not fall through the end of the image.
    if len > 0 {
        let last = prog.fetch(len - 1).expect("non-empty");
        let terminal = matches!(last, Instr::Halt | Instr::Jmp(_) | Instr::Ret)
            || matches!(last, Instr::Br(..));
        if !terminal {
            issues.push(Issue {
                pc: len - 1,
                what: "program can fall through past its last instruction".into(),
            });
        }
    }

    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::regs::Reg;
    use crate::Cond;

    #[test]
    fn clean_program_has_no_issues() {
        let mut a = Asm::new();
        a.export("main");
        a.begin_range("limit_read.0");
        a.load(Reg::R4, Reg::R15, 0);
        a.rdpmc(Reg::R5, 0);
        a.add(Reg::R4, Reg::R5);
        a.end_range("limit_read.0");
        a.halt();
        assert!(verify(&a.assemble().unwrap()).is_empty());
    }

    #[test]
    fn fallthrough_is_flagged() {
        let mut a = Asm::new();
        a.nop();
        let issues = verify(&a.assemble().unwrap());
        assert_eq!(issues.len(), 1);
        assert!(issues[0].what.contains("fall through"));
    }

    #[test]
    fn branch_terminated_programs_are_accepted() {
        let mut a = Asm::new();
        let top = a.new_label();
        a.bind(top);
        a.br(Cond::Eq, Reg::R0, Reg::R0, top);
        assert!(verify(&a.assemble().unwrap()).is_empty());
    }

    #[test]
    fn control_flow_inside_a_restart_range_is_flagged() {
        let mut a = Asm::new();
        a.begin_range("limit_read.bad");
        let l = a.new_label();
        a.bind(l);
        a.br(Cond::Eq, Reg::R0, Reg::R1, l);
        a.end_range("limit_read.bad");
        a.halt();
        let issues = verify(&a.assemble().unwrap());
        assert!(issues.iter().any(|i| i.what.contains("control flow")));
    }

    #[test]
    fn non_limit_ranges_may_contain_control_flow() {
        let mut a = Asm::new();
        a.begin_range("fx.task.x");
        let l = a.new_label();
        a.bind(l);
        a.br(Cond::Eq, Reg::R0, Reg::R1, l);
        a.end_range("fx.task.x");
        a.halt();
        assert!(verify(&a.assemble().unwrap()).is_empty());
    }

    #[test]
    fn empty_range_is_flagged() {
        let mut a = Asm::new();
        a.begin_range("r");
        a.end_range("r");
        a.halt();
        let issues = verify(&a.assemble().unwrap());
        assert!(issues.iter().any(|i| i.what.contains("empty")));
    }
}
