//! The differential re-simulation engine.
//!
//! One baseline run plus one arm per knob, every arm on the same workload
//! image, the same seed, and the same deterministic scheduler — the only
//! difference between arms is the single scaled cost, so the per-region
//! cycle delta is attributable to that cost. Arms fan out across the
//! bounded host worker pool ([`sim_core::parallel::parmap_with`]) and the
//! diff/ranking phase runs after all arms complete, so results are
//! byte-identical regardless of `--jobs` (pinned by
//! `tests/whatif_determinism.rs`).

use crate::knob::Knob;
use analysis::causal::{attribute, KnobSensitivity};
use analysis::online::Finding;
use analysis::table::{fmt_count, Table};
use limit::harness::WarnSink;
use limit::{LimitReader, LogMode, MachineParams, StreamConfig};
use sim_core::parallel::parmap_with;
use sim_cpu::EventKind;
use std::sync::{Arc, Mutex};
use telemetry::{run_streaming, Collector, Snapshot};
use workloads::{logstore, memcached, mysqld, proxy};

/// Counters every arm attaches: cycles feed the sensitivity math,
/// instructions + LLC misses provide context in the report.
pub const EVENTS: [EventKind; 3] = [
    EventKind::Cycles,
    EventKind::Instructions,
    EventKind::LlcMisses,
];

/// Event column names matching [`EVENTS`].
pub const EVENT_NAMES: [&str; 3] = ["cycles", "instrs", "llc"];

/// Minimum top-vs-runner-up sensitivity ratio for a causal finding.
const FINDING_DOMINANCE: f64 = 1.5;

/// Which workload the engine perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// The MySQL study: table/bufpool/log lock hierarchy.
    Mysqld,
    /// The memcached study: striped bucket locks.
    Memcached,
    /// The log-structured store: fsync-bound commits (E18).
    Logstore,
    /// The fan-out proxy: blocking network round-trips (E18).
    Proxy,
}

impl Workload {
    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Mysqld => "mysqld",
            Workload::Memcached => "memcached",
            Workload::Logstore => "logstore",
            Workload::Proxy => "proxy",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Workload> {
        match s {
            "mysqld" => Some(Workload::Mysqld),
            "memcached" => Some(Workload::Memcached),
            "logstore" => Some(Workload::Logstore),
            "proxy" => Some(Workload::Proxy),
            _ => None,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct WhatifConfig {
    /// Workload to perturb.
    pub workload: Workload,
    /// Guest worker threads.
    pub threads: usize,
    /// Queries (mysqld) / operations (memcached) per worker.
    pub queries: u64,
    /// Knobs to perturb, one arm each.
    pub knobs: Vec<Knob>,
    /// Factor each arm's knob is scaled by.
    pub scale: f64,
    /// Host worker threads for the arm fan-out.
    pub jobs: usize,
    /// Per-thread telemetry ring capacity (power of two).
    pub capacity: u64,
    /// Drain cadence in guest cycles.
    pub interval: u64,
    /// Baseline machine parameters (arms perturb copies of these).
    pub params: MachineParams,
    /// Memcached lock stripes override (1 = one global lock; the
    /// lock-heavy shape E16 uses).
    pub stripes: Option<u64>,
    /// Memcached hash-table bucket override (few buckets keep probes
    /// cache-resident for the lock-bound shape; many force cold DRAM
    /// misses for the memory-bound shape).
    pub buckets: Option<u64>,
    /// Memcached in-section atomic RMW count (refcount/stats updates;
    /// the lock-bound shape raises it so held time is atomic-dominated).
    pub hold_rmws: Option<u64>,
    /// Mysqld buffer-pool size override in bytes (sized past the LLC for
    /// the memory-bound shape E16 uses).
    pub bufpool_bytes: Option<u64>,
}

impl WhatifConfig {
    /// Defaults for `workload`: 4 threads on 4 cores, all knobs, scale 4.
    pub fn new(workload: Workload) -> Self {
        WhatifConfig {
            workload,
            threads: 4,
            queries: 80,
            knobs: Knob::ALL.to_vec(),
            scale: 4.0,
            jobs: sim_core::parallel::default_jobs(),
            capacity: 256,
            interval: 50_000,
            params: MachineParams::new(4),
            stripes: None,
            buckets: None,
            hold_rmws: None,
            bufpool_bytes: None,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 {
            return Err("--threads must be non-zero".into());
        }
        if self.queries == 0 {
            return Err("--queries must be non-zero".into());
        }
        if self.knobs.is_empty() {
            return Err("at least one knob is required".into());
        }
        if !(self.scale.is_finite()) || self.scale <= 0.0 {
            return Err(format!("--scale must be positive, got {}", self.scale));
        }
        if (self.scale - 1.0).abs() < 1e-9 {
            return Err("--scale 1 perturbs nothing; every sensitivity would be 0/0".into());
        }
        if !self.capacity.is_power_of_two() {
            return Err(format!(
                "--capacity must be a power of two, got {}",
                self.capacity
            ));
        }
        if self.interval == 0 {
            return Err("--interval must be non-zero".into());
        }
        let mut seen = std::collections::HashSet::new();
        for k in &self.knobs {
            if !seen.insert(*k) {
                return Err(format!("duplicate knob {k}"));
            }
        }
        self.params.validate().map_err(|e| e.to_string())?;
        Ok(())
    }
}

/// One completed run (the baseline or one arm).
#[derive(Debug, Clone)]
struct ArmRun {
    snapshot: Snapshot,
    total_cycles: u64,
    warnings: Vec<String>,
    wall_ms: f64,
}

/// One perturbation arm's result.
#[derive(Debug, Clone)]
pub struct ArmResult {
    /// The perturbed knob.
    pub knob: Knob,
    /// Knob value in the baseline.
    pub base: u64,
    /// Knob value in this arm.
    pub scaled: u64,
    /// The arm's final telemetry snapshot.
    pub snapshot: Snapshot,
    /// The arm's total run cycles.
    pub total_cycles: u64,
    /// Teardown warning lines (printed by the CLI in arm order).
    pub warnings: Vec<String>,
    /// Host wall-clock time of this arm's run in milliseconds. Host-side
    /// only — never printed on stdout or in NDJSON (it would break the
    /// byte-identical-across-`--jobs` guarantee); E16 folds it into
    /// `bench::spans`.
    pub wall_ms: f64,
}

/// One region's sensitivity vector across all arms.
///
/// Two views of the same diff: `sens` is the per-cycle ratio (Δ region
/// cycles / Δ knob cost — "how many times does this region pay the
/// knob?"), `impact` weights that ratio by the knob's baseline cost
/// (Δ region cycles per +100% knob). Every arm scales its knob by the
/// same relative factor, so `impact` is directly comparable across
/// knobs — it is the cycles-attributed measure the causal ranking uses,
/// exactly the equal-relative-perturbation comparison of the
/// sensitivity-analysis literature. A 1-cycle knob paid often and a
/// 200-cycle knob paid rarely can tie on `sens`; `impact` says which
/// one the region's time actually comes from.
#[derive(Debug, Clone)]
pub struct RegionSensitivity {
    /// Region name.
    pub region: String,
    /// Baseline exit count.
    pub base_count: u64,
    /// Baseline cycle sum.
    pub base_cycles: u64,
    /// Per-knob sensitivity ratio (Δ region cycles / Δ knob cost), in
    /// arm order.
    pub sens: Vec<(Knob, f64)>,
    /// Per-knob impact (Δ region cycles per +100% knob cost =
    /// `sens * knob base cost`), in arm order.
    pub impact: Vec<(Knob, f64)>,
}

impl RegionSensitivity {
    /// Knobs ranked by descending impact (ties broken by name so the
    /// ranking is total).
    pub fn ranked(&self) -> Vec<(Knob, f64)> {
        let mut v = self.impact.clone();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.name().cmp(b.0.name()))
        });
        v
    }
}

/// The full causal report.
#[derive(Debug, Clone)]
pub struct WhatifReport {
    /// Workload name.
    pub workload: &'static str,
    /// The scale factor every arm used.
    pub scale: f64,
    /// Baseline final snapshot.
    pub baseline: Snapshot,
    /// Baseline total run cycles.
    pub baseline_cycles: u64,
    /// Baseline teardown warnings.
    pub baseline_warnings: Vec<String>,
    /// Baseline host wall-clock time in milliseconds (host-side only).
    pub baseline_wall_ms: f64,
    /// One result per knob, in configured knob order.
    pub arms: Vec<ArmResult>,
    /// Per-region sensitivities, descending by baseline cycles.
    pub regions: Vec<RegionSensitivity>,
    /// Causal findings (regions with a dominant knob).
    pub findings: Vec<Finding>,
}

impl WhatifReport {
    /// Renders the ranked causal table plus per-region verdict lines —
    /// deterministic, result-bearing stdout.
    pub fn render(&self) -> String {
        let mut headers: Vec<&str> = vec!["region", "count", "base cycles"];
        let knob_names: Vec<&str> = self.arms.iter().map(|a| a.knob.name()).collect();
        headers.extend(&knob_names);
        let mut t = Table::new(
            &format!(
                "causal impact: {} at scale {:.1} (Δ region cycles per +100% knob cost)",
                self.workload, self.scale
            ),
            &headers,
        );
        for r in &self.regions {
            let mut cells = vec![
                r.region.clone(),
                fmt_count(r.base_count),
                fmt_count(r.base_cycles),
            ];
            cells.extend(r.impact.iter().map(|(_, s)| format!("{s:.0}")));
            t.row(&cells);
        }
        let mut out = t.to_string();
        for f in &self.findings {
            out.push_str(&format!(
                "  >> {}: {} — {} ({:.0}% of positive impact)\n",
                f.region,
                f.kind,
                f.detail,
                f.share * 100.0
            ));
        }
        out
    }
}

/// Builds and runs one arm (or the baseline) under `params`.
fn run_arm(cfg: &WhatifConfig, params: &MachineParams, label: &str) -> Result<ArmRun, String> {
    let t0 = std::time::Instant::now();
    let fail = |e: sim_core::SimError| format!("{label}: {e}");
    let mode = LogMode::Stream(StreamConfig::dropping(cfg.capacity));
    let reader = LimitReader::with_events(EVENTS.to_vec());
    let mut session = match cfg.workload {
        Workload::Mysqld => {
            // Small guest-memory footprint, as in the fleet driver: the
            // lock topology and memory behaviour under study are
            // unchanged, but 9 arms of allocation zeroing would dominate
            // wall time.
            let wcfg = mysqld::MysqlConfig {
                threads: cfg.threads,
                queries_per_thread: cfg.queries,
                tables: 4,
                table_bytes: 16 * 1024,
                bufpool_bytes: cfg.bufpool_bytes.unwrap_or(256 * 1024),
                mode,
                ..Default::default()
            };
            mysqld::build_with_params(&wcfg, &reader, params, &EVENTS)
                .map_err(fail)?
                .0
        }
        Workload::Memcached => {
            let mut wcfg = memcached::MemcachedConfig {
                workers: cfg.threads,
                ops_per_worker: cfg.queries,
                mode,
                ..Default::default()
            };
            if let Some(stripes) = cfg.stripes {
                wcfg.stripes = stripes;
            }
            if let Some(buckets) = cfg.buckets {
                wcfg.buckets = buckets;
            }
            if let Some(rmws) = cfg.hold_rmws {
                wcfg.hold_rmws = rmws;
            }
            memcached::build_with_params(&wcfg, &reader, params, &EVENTS)
                .map_err(fail)?
                .0
        }
        Workload::Logstore => {
            let wcfg = logstore::LogstoreConfig {
                threads: cfg.threads,
                commits_per_thread: cfg.queries,
                mode,
                ..Default::default()
            };
            logstore::build_with_params(&wcfg, &reader, params, &EVENTS)
                .map_err(fail)?
                .0
        }
        Workload::Proxy => {
            let wcfg = proxy::ProxyConfig {
                threads: cfg.threads,
                requests_per_thread: cfg.queries,
                mode,
                ..Default::default()
            };
            proxy::build_with_params(&wcfg, &reader, params, &EVENTS)
                .map_err(fail)?
                .0
        }
    };

    // Serialize teardown warnings per arm (N arms sharing stderr would
    // interleave; the CLI prints these in arm order afterwards).
    let warnings = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&warnings);
    session.set_warn_sink(WarnSink::new(move |line: &str| {
        sink.lock().unwrap().push(line.to_string());
    }));

    let mut collector = Collector::new(cfg.threads.max(1), EVENTS.len());
    collector.attach(&session);
    let mut last: Option<Snapshot> = None;
    let report = run_streaming(&mut session, &mut collector, cfg.interval, |snap| {
        last = Some(snap.clone());
    })
    .map_err(|e| format!("{label}: {e}"))?;

    let snapshot = last.expect("run_streaming always publishes a final snapshot");
    let warnings = std::mem::take(&mut *warnings.lock().unwrap());
    Ok(ArmRun {
        snapshot,
        total_cycles: report.total_cycles,
        warnings,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    })
}

/// Runs the baseline plus one arm per knob and diffs the results.
/// `progress(done, total)` fires from worker threads in completion order —
/// monotone counters only, never result data.
pub fn run_whatif<P>(cfg: &WhatifConfig, progress: P) -> Result<WhatifReport, String>
where
    P: Fn(usize, usize) + Sync,
{
    cfg.validate()?;

    // Arm 0 is the baseline; arm i+1 perturbs knob i. Each arm's params
    // are derived up front so the fan-out is a pure map.
    let mut arm_params: Vec<(String, MachineParams, u64, u64)> = Vec::new();
    arm_params.push(("baseline".to_string(), cfg.params.clone(), 0, 0));
    for knob in &cfg.knobs {
        let mut p = cfg.params.clone();
        let base = knob.base(&cfg.params);
        let scaled = knob.apply(&mut p, cfg.scale);
        if scaled == base {
            return Err(format!(
                "knob {knob} does not move at scale {} (base {base}); \
                 pick a larger scale",
                cfg.scale
            ));
        }
        arm_params.push((knob.name().to_string(), p, base, scaled));
    }

    let total = arm_params.len();
    let done = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<Result<ArmRun, String>> = parmap_with(cfg.jobs, (0..total).collect(), |i| {
        let (label, params, _, _) = &arm_params[i];
        let r = run_arm(cfg, params, label);
        progress(
            done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1,
            total,
        );
        r
    });
    let mut runs = Vec::with_capacity(total);
    for r in results {
        runs.push(r?);
    }

    let baseline_run = runs.remove(0);
    let arms: Vec<ArmResult> = cfg
        .knobs
        .iter()
        .zip(runs)
        .zip(arm_params.iter().skip(1))
        .map(|((knob, run), (_, _, base, scaled))| ArmResult {
            knob: *knob,
            base: *base,
            scaled: *scaled,
            snapshot: run.snapshot,
            total_cycles: run.total_cycles,
            warnings: run.warnings,
            wall_ms: run.wall_ms,
        })
        .collect();

    // Diff phase: per-region, per-arm cycle deltas normalized by the
    // knob's cost delta. Regions come out in baseline snapshot order
    // (descending by cycles), which is deterministic.
    let cyc = 0; // EVENTS[0] is Cycles
    let mut regions = Vec::new();
    for base_region in &baseline_run.snapshot.regions {
        let base_cycles = base_region.event_sum(cyc);
        let mut sens = Vec::with_capacity(arms.len());
        let mut impact = Vec::with_capacity(arms.len());
        for arm in &arms {
            let arm_cycles = arm
                .snapshot
                .regions
                .iter()
                .find(|r| r.id == base_region.id)
                .map_or(0, |r| r.event_sum(cyc));
            let dk = arm.scaled as f64 - arm.base as f64;
            let mut dc = arm_cycles as f64 - base_cycles as f64;
            // Probe-cost compensation, as in the paper's overhead
            // subtraction: each region entry/exit pair executes exactly
            // EVENTS.len() rdpmc reads *inside* the measured window, so
            // the rdpmc arm inflates every region by count * reads * dk
            // regardless of what the region itself does. Subtract that
            // known direct term; what remains is the knob's effect on
            // the workload.
            if arm.knob == Knob::RdpmcCost {
                dc -= base_region.count as f64 * EVENTS.len() as f64 * dk;
            }
            let ratio = dc / dk;
            sens.push((arm.knob, ratio));
            impact.push((arm.knob, ratio * arm.base as f64));
        }
        regions.push(RegionSensitivity {
            region: base_region.name.clone(),
            base_count: base_region.count,
            base_cycles,
            sens,
            impact,
        });
    }

    let findings = regions
        .iter()
        .filter(|r| r.base_cycles > 0)
        .filter_map(|r| {
            let impact: Vec<KnobSensitivity> = r
                .impact
                .iter()
                .map(|(k, s)| KnobSensitivity {
                    knob: k.name().to_string(),
                    class: k.class(),
                    sensitivity: *s,
                })
                .collect();
            attribute(&r.region, &impact, FINDING_DOMINANCE)
        })
        .collect();

    Ok(WhatifReport {
        workload: cfg.workload.name(),
        scale: cfg.scale,
        baseline: baseline_run.snapshot,
        baseline_cycles: baseline_run.total_cycles,
        baseline_warnings: baseline_run.warnings,
        baseline_wall_ms: baseline_run.wall_ms,
        arms,
        regions,
        findings,
    })
}
