//! Causal what-if engine: bottleneck attribution via differential
//! re-simulation with perturbed machine parameters.
//!
//! Telemetry says *where* cycles go; this crate says *why*. Given a
//! workload, the engine runs a baseline plus one arm per machine [`Knob`]
//! (atomic penalty, LLC/DRAM latency, syscall cost, …), each arm scaling
//! exactly one cost by a configurable factor while keeping the same seed
//! and the same deterministic scheduler. Diffing each arm's per-region
//! telemetry [`Snapshot`](telemetry::Snapshot) against the baseline yields
//! a per-region *sensitivity* — extra region cycles per extra cycle of
//! knob cost — and the knob a region is most sensitive to names the
//! resource it is actually bound on ("`mysql.bufpool.acq`: 8.2 to
//! atomic-penalty, 1.1 to llc-latency → lock-bound, not memory-bound").
//!
//! The fan-out uses the bounded host pool and the diff phase runs after
//! all arms complete, so reports are byte-identical across `--jobs`
//! (INTERNALS.md §13 has the full determinism contract and the
//! sensitivity math).

pub mod engine;
pub mod knob;

pub use engine::{
    run_whatif, ArmResult, RegionSensitivity, WhatifConfig, WhatifReport, Workload, EVENTS,
    EVENT_NAMES,
};
pub use knob::Knob;
pub use limit::MachineParams;
