//! The perturbable machine knobs.
//!
//! Each [`Knob`] names one cost in a [`MachineParams`] the what-if engine
//! can scale: one arm per knob, one knob per arm, so the measured cycle
//! delta is attributable to that cost alone.

use analysis::causal::KnobClass;
use limit::MachineParams;

/// One perturbable machine parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Knob {
    /// Extra cycles of an atomic read-modify-write (`cost.atomic_penalty`).
    AtomicPenalty,
    /// Branch-mispredict refill cycles (`cost.branch_miss_penalty`).
    BranchMissPenalty,
    /// Kernel round trip: syscall entry + exit cost, scaled together.
    SyscallCost,
    /// `rdpmc` read cost (`cost.rdpmc`).
    RdpmcCost,
    /// LLC hit latency (`hierarchy.llc_latency`).
    LlcLatency,
    /// DRAM access latency (`hierarchy.dram.latency`).
    DramLatency,
    /// Per-sharer coherence-invalidation penalty
    /// (`hierarchy.invalidate_penalty`).
    InvalidatePenalty,
    /// Direct context-switch cost (`ctx_switch_cost`).
    CtxSwitchCost,
    /// Disk service-latency distribution (`io.disk`, whole distribution
    /// scaled; `base` reports the mean).
    DiskLatency,
    /// Network round-trip latency distribution (`io.net`).
    NetLatency,
    /// Fsync barrier latency distribution (`io.fsync`).
    FsyncLatency,
}

impl Knob {
    /// Every knob, in canonical (reporting) order.
    pub const ALL: [Knob; 11] = [
        Knob::AtomicPenalty,
        Knob::BranchMissPenalty,
        Knob::SyscallCost,
        Knob::RdpmcCost,
        Knob::LlcLatency,
        Knob::DramLatency,
        Knob::InvalidatePenalty,
        Knob::CtxSwitchCost,
        Knob::DiskLatency,
        Knob::NetLatency,
        Knob::FsyncLatency,
    ];

    /// CLI / NDJSON name.
    pub fn name(self) -> &'static str {
        match self {
            Knob::AtomicPenalty => "atomic-penalty",
            Knob::BranchMissPenalty => "branch-miss-penalty",
            Knob::SyscallCost => "syscall-cost",
            Knob::RdpmcCost => "rdpmc-cost",
            Knob::LlcLatency => "llc-latency",
            Knob::DramLatency => "dram-latency",
            Knob::InvalidatePenalty => "invalidate-penalty",
            Knob::CtxSwitchCost => "ctx-switch-cost",
            Knob::DiskLatency => "disk-latency",
            Knob::NetLatency => "net-latency",
            Knob::FsyncLatency => "fsync-latency",
        }
    }

    /// Parses a CLI / NDJSON name.
    pub fn parse(s: &str) -> Option<Knob> {
        Knob::ALL.into_iter().find(|k| k.name() == s)
    }

    /// The resource class the knob belongs to (decides the finding kind
    /// when this knob tops a region's sensitivity ranking).
    pub fn class(self) -> KnobClass {
        match self {
            Knob::AtomicPenalty => KnobClass::Lock,
            Knob::LlcLatency | Knob::DramLatency | Knob::InvalidatePenalty => KnobClass::Memory,
            Knob::BranchMissPenalty | Knob::RdpmcCost => KnobClass::Cpu,
            Knob::SyscallCost | Knob::CtxSwitchCost => KnobClass::Kernel,
            Knob::DiskLatency | Knob::NetLatency | Knob::FsyncLatency => KnobClass::Io,
        }
    }

    /// The knob's current value in `params` (for [`Knob::SyscallCost`], the
    /// entry + exit sum — the round trip is what is perturbed).
    pub fn base(self, p: &MachineParams) -> u64 {
        match self {
            Knob::AtomicPenalty => p.cost.atomic_penalty,
            Knob::BranchMissPenalty => p.cost.branch_miss_penalty,
            Knob::SyscallCost => p.cost.syscall_entry + p.cost.syscall_exit,
            Knob::RdpmcCost => p.cost.rdpmc,
            Knob::LlcLatency => p.hierarchy.llc_latency,
            Knob::DramLatency => p.hierarchy.dram.latency,
            Knob::InvalidatePenalty => p.hierarchy.invalidate_penalty,
            Knob::CtxSwitchCost => p.ctx_switch_cost,
            Knob::DiskLatency => p.io.disk.mean,
            Knob::NetLatency => p.io.net.mean,
            Knob::FsyncLatency => p.io.fsync.mean,
        }
    }

    /// Scales the knob in place and returns its new value (summed for
    /// [`Knob::SyscallCost`]). Values floor at 1 cycle so a down-scale can
    /// never zero a cost entirely.
    pub fn apply(self, p: &mut MachineParams, scale: f64) -> u64 {
        let scaled = |v: u64| ((v as f64 * scale).round() as u64).max(1);
        match self {
            Knob::AtomicPenalty => {
                p.cost.atomic_penalty = scaled(p.cost.atomic_penalty);
                p.cost.atomic_penalty
            }
            Knob::BranchMissPenalty => {
                p.cost.branch_miss_penalty = scaled(p.cost.branch_miss_penalty);
                p.cost.branch_miss_penalty
            }
            Knob::SyscallCost => {
                p.cost.syscall_entry = scaled(p.cost.syscall_entry);
                p.cost.syscall_exit = scaled(p.cost.syscall_exit);
                p.cost.syscall_entry + p.cost.syscall_exit
            }
            Knob::RdpmcCost => {
                p.cost.rdpmc = scaled(p.cost.rdpmc);
                p.cost.rdpmc
            }
            Knob::LlcLatency => {
                p.hierarchy.llc_latency = scaled(p.hierarchy.llc_latency);
                p.hierarchy.llc_latency
            }
            Knob::DramLatency => {
                p.hierarchy.dram.latency = scaled(p.hierarchy.dram.latency);
                p.hierarchy.dram.latency
            }
            Knob::InvalidatePenalty => {
                p.hierarchy.invalidate_penalty = scaled(p.hierarchy.invalidate_penalty);
                p.hierarchy.invalidate_penalty
            }
            Knob::CtxSwitchCost => {
                p.ctx_switch_cost = scaled(p.ctx_switch_cost);
                p.ctx_switch_cost
            }
            Knob::DiskLatency => {
                scale_dist(&mut p.io.disk, scale);
                p.io.disk.mean
            }
            Knob::NetLatency => {
                scale_dist(&mut p.io.net, scale);
                p.io.net.mean
            }
            Knob::FsyncLatency => {
                scale_dist(&mut p.io.fsync, scale);
                p.io.fsync.mean
            }
        }
    }
}

/// Scales a whole latency distribution uniformly (min, mean, and max
/// together), preserving its shape and the min ≤ mean ≤ max ordering.
fn scale_dist(d: &mut sim_os::LatencyDist, scale: f64) {
    let scaled = |v: u64| ((v as f64 * scale).round() as u64).max(1);
    d.min = scaled(d.min);
    d.mean = scaled(d.mean).max(d.min);
    d.max = scaled(d.max).max(d.mean);
}

impl std::fmt::Display for Knob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in Knob::ALL {
            assert_eq!(Knob::parse(k.name()), Some(k));
        }
        assert_eq!(Knob::parse("bogus"), None);
    }

    #[test]
    fn apply_scales_exactly_one_cost() {
        let base = MachineParams::new(2);
        for k in Knob::ALL {
            let mut p = base.clone();
            let new = k.apply(&mut p, 4.0);
            assert_eq!(new, 4 * k.base(&base), "{k}");
            // Every *other* knob is untouched.
            for other in Knob::ALL {
                if other != k {
                    assert_eq!(other.base(&p), other.base(&base), "{k} leaked into {other}");
                }
            }
        }
    }

    #[test]
    fn downscale_floors_at_one_cycle() {
        let mut p = MachineParams::new(1);
        p.cost.atomic_penalty = 1;
        assert_eq!(Knob::AtomicPenalty.apply(&mut p, 0.1), 1);
    }
}
