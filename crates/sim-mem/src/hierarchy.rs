//! The full memory system: per-core L1/L2, shared LLC, directory coherence.
//!
//! Inclusion is enforced between L1 and L2 (an L2 eviction invalidates the
//! corresponding L1 line) so the directory can track "line present in core
//! X's private hierarchy" with a single sharer bit per core.
//!
//! Coherence is a simplified invalidate protocol: a write to a line cached
//! by other cores invalidates their private copies and pays a per-sharer
//! latency penalty. That is the behaviour lock-handoff microbenchmarks and
//! the MySQL study depend on: contended lock words bounce between cores and
//! show up as coherence misses.

use crate::cache::{Cache, CacheConfig};
use crate::dram::{Dram, DramConfig};
use crate::tlb::{Tlb, TlbConfig};
use crate::{line_of, LINE_BYTES};
use serde::{Deserialize, Serialize};
use sim_core::{CoreId, FxHashMap, SimError, SimResult};

/// Latencies and geometry for the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Per-core L1 data cache.
    pub l1: CacheConfig,
    /// Per-core unified L2.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// LLC hit latency in cycles.
    pub llc_latency: u64,
    /// Extra cycles per remote sharer invalidated on a coherent write.
    pub invalidate_penalty: u64,
    /// Latency of a cache-to-cache transfer when another core holds the
    /// line but the LLC does not (clean-forward).
    pub forward_latency: u64,
    /// Next-line prefetch depth on an L2 demand miss: 0 disables the
    /// prefetcher; `d` fetches the next `d` sequential lines into the
    /// missing core's L2 in the background (no latency charged to the
    /// demand access).
    pub l2_prefetch_depth: u32,
    /// Optional per-core data TLB; `None` disables translation modeling.
    pub tlb: Option<TlbConfig>,
    /// DRAM timing.
    pub dram: DramConfig,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1: CacheConfig::kib(32, 8),
            l2: CacheConfig::kib(256, 8),
            llc: CacheConfig::kib(8 * 1024, 16),
            l1_latency: 4,
            l2_latency: 12,
            llc_latency: 38,
            invalidate_penalty: 30,
            forward_latency: 60,
            l2_prefetch_depth: 0,
            tlb: None,
            dram: DramConfig::default(),
        }
    }
}

impl HierarchyConfig {
    /// A tiny hierarchy for unit tests: small caches, short latencies.
    pub fn tiny() -> Self {
        HierarchyConfig {
            l1: CacheConfig::kib(1, 2),
            l2: CacheConfig::kib(4, 4),
            llc: CacheConfig::kib(16, 4),
            l1_latency: 1,
            l2_latency: 4,
            llc_latency: 10,
            invalidate_penalty: 5,
            forward_latency: 15,
            l2_prefetch_depth: 0,
            tlb: None,
            dram: DramConfig {
                latency: 50,
                banks: 4,
                bank_busy: 10,
            },
        }
    }

    /// Validates every cache geometry.
    pub fn validate(&self) -> SimResult<()> {
        self.l1.validate()?;
        self.l2.validate()?;
        self.llc.validate()?;
        if let Some(tlb) = &self.tlb {
            tlb.validate()?;
        }
        if self.l1.size_bytes > self.l2.size_bytes {
            return Err(SimError::Config(
                "L1 must not be larger than L2 (inclusion)".into(),
            ));
        }
        Ok(())
    }
}

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HitLevel {
    /// Serviced by the core's own L1.
    L1,
    /// Serviced by the core's own L2.
    L2,
    /// Serviced by the shared LLC.
    Llc,
    /// Forwarded from another core's private cache.
    Remote,
    /// Serviced by DRAM.
    Dram,
}

/// Event counts produced by one access; the CPU feeds these to the PMU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemEvents {
    /// L1 data-cache miss.
    pub l1_miss: bool,
    /// L2 miss.
    pub l2_miss: bool,
    /// LLC miss (DRAM or remote-forward access).
    pub llc_miss: bool,
    /// Number of remote private copies invalidated by this (write) access.
    pub invalidations: u32,
    /// The access hit a line that was dirty/present in another core
    /// (coherence transfer).
    pub remote_hit: bool,
    /// The access missed the data TLB (page walk charged).
    pub tlb_miss: bool,
}

/// Result of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Total latency charged to the requesting core, in cycles.
    pub latency: u64,
    /// The level that ultimately serviced the request.
    pub level: HitLevel,
    /// Countable events.
    pub events: MemEvents,
}

/// The shared memory system for all cores.
#[derive(Debug)]
pub struct MemorySystem {
    config: HierarchyConfig,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    llc: Cache,
    dram: Dram,
    /// Directory: line -> bitmask of cores whose private hierarchy holds it.
    sharers: FxHashMap<u64, u64>,
    accesses: u64,
    tlbs: Vec<Tlb>,
    /// Prefetched lines not yet demanded, per the useful-prefetch metric.
    prefetched: FxHashMap<u64, ()>,
    prefetches_issued: u64,
    prefetches_useful: u64,
}

impl MemorySystem {
    /// Builds the hierarchy for `cores` cores.
    pub fn new(cores: usize, config: HierarchyConfig) -> SimResult<Self> {
        config.validate()?;
        if cores == 0 || cores > 64 {
            return Err(SimError::Config(format!(
                "memory system supports 1..=64 cores, got {cores}"
            )));
        }
        let l1 = (0..cores)
            .map(|_| Cache::new(config.l1))
            .collect::<SimResult<Vec<_>>>()?;
        let l2 = (0..cores)
            .map(|_| Cache::new(config.l2))
            .collect::<SimResult<Vec<_>>>()?;
        let tlbs = match config.tlb {
            Some(t) => (0..cores)
                .map(|_| Tlb::new(t))
                .collect::<SimResult<Vec<_>>>()?,
            None => Vec::new(),
        };
        Ok(MemorySystem {
            llc: Cache::new(config.llc)?,
            dram: Dram::new(config.dram),
            l1,
            l2,
            tlbs,
            sharers: FxHashMap::default(),
            accesses: 0,
            prefetched: FxHashMap::default(),
            prefetches_issued: 0,
            prefetches_useful: 0,
            config,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Number of cores the system was built for.
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    fn mark_sharer(&mut self, line: u64, core: CoreId) {
        *self.sharers.entry(line).or_insert(0) |= 1u64 << core.index();
    }

    fn clear_sharer(&mut self, line: u64, core: CoreId) {
        if let Some(mask) = self.sharers.get_mut(&line) {
            *mask &= !(1u64 << core.index());
            if *mask == 0 {
                self.sharers.remove(&line);
            }
        }
    }

    fn other_sharers(&self, line: u64, core: CoreId) -> u64 {
        self.sharers.get(&line).copied().unwrap_or(0) & !(1u64 << core.index())
    }

    /// Evicts `line` from a core's private caches, maintaining inclusion and
    /// the directory.
    fn evict_private(&mut self, core: CoreId, line: u64) {
        self.l1[core.index()].invalidate(line);
        self.l2[core.index()].invalidate(line);
        self.clear_sharer(line, core);
    }

    /// Performs a data access by `core` to byte address `addr` at cycle
    /// `now`. Returns latency, servicing level, and countable events.
    pub fn access(&mut self, core: CoreId, addr: u64, write: bool, now: u64) -> MemAccess {
        self.accesses += 1;
        let line = line_of(addr);
        let c = core.index();
        let cfg = self.config;
        let mut events = MemEvents::default();

        // Address translation first: a DTLB miss stalls for the page walk
        // before the cache lookup proceeds.
        let mut tlb_latency = 0u64;
        if !self.tlbs.is_empty() && !self.tlbs[c].access(addr) {
            events.tlb_miss = true;
            tlb_latency = self
                .config
                .tlb
                .expect("tlbs built from config")
                .miss_penalty;
        }

        // Coherent write: invalidate remote private copies first.
        let mut coherence_latency = 0u64;
        if write {
            let others = self.other_sharers(line, core);
            if others != 0 {
                let mut n = 0u32;
                for i in 0..self.l1.len() {
                    if others & (1u64 << i) != 0 {
                        // A remote dirty copy must reach the LLC before we
                        // can own the line; model it as present-after.
                        self.l1[i].invalidate(line);
                        self.l2[i].invalidate(line);
                        self.clear_sharer(line, CoreId::new(i as u32));
                        n += 1;
                    }
                }
                events.invalidations = n;
                coherence_latency = cfg.invalidate_penalty * n as u64;
                // The invalidated data is now (logically) in the LLC.
                self.llc.access(line, true);
            }
        }

        // L1 lookup.
        let l1r = self.l1[c].access(line, write);
        if l1r.hit {
            return MemAccess {
                latency: cfg.l1_latency + coherence_latency + tlb_latency,
                level: HitLevel::L1,
                events,
            };
        }
        events.l1_miss = true;
        // L1 fill may have evicted a line; inclusion is maintained lazily —
        // the L2 still holds it, so the directory bit stays set.

        // L2 lookup.
        let l2r = self.l2[c].access(line, write);
        if let Some(evicted) = l2r.evicted {
            // Inclusion: an L2 eviction removes the line from L1 and the
            // directory for this core.
            self.l1[c].invalidate(evicted);
            self.clear_sharer(evicted, core);
            self.prefetched.remove(&evicted);
            if l2r.writeback.is_some() {
                self.llc.access(evicted, true);
            }
        }
        if l2r.hit {
            if self.prefetched.remove(&line).is_some() {
                self.prefetches_useful += 1;
            }
            self.mark_sharer(line, core);
            return MemAccess {
                latency: cfg.l2_latency + coherence_latency + tlb_latency,
                level: HitLevel::L2,
                events,
            };
        }
        events.l2_miss = true;
        self.prefetched.remove(&line);
        self.mark_sharer(line, core);
        if cfg.l2_prefetch_depth > 0 {
            self.issue_prefetches(core, line);
        }

        // LLC lookup.
        let llcr = self.llc.access(line, write);
        if llcr.hit {
            return MemAccess {
                latency: cfg.llc_latency + coherence_latency + tlb_latency,
                level: HitLevel::Llc,
                events,
            };
        }
        events.llc_miss = true;

        // LLC miss: if another core privately holds the line, forward it
        // cache-to-cache; otherwise go to DRAM.
        let others = self.other_sharers(line, core);
        let (latency, level) = if others != 0 {
            events.remote_hit = true;
            (cfg.forward_latency, HitLevel::Remote)
        } else {
            (self.dram.access(line, now), HitLevel::Dram)
        };

        MemAccess {
            latency: latency + cfg.llc_latency + coherence_latency + tlb_latency,
            level,
            events,
        }
    }

    /// Issues background next-line prefetches into `core`'s L2 after a
    /// demand miss on `line`.
    fn issue_prefetches(&mut self, core: CoreId, line: u64) {
        let c = core.index();
        for d in 1..=self.config.l2_prefetch_depth as u64 {
            let pl = line + d * LINE_BYTES;
            if self.l2[c].contains(pl) {
                continue;
            }
            self.prefetches_issued += 1;
            let r = self.l2[c].access(pl, false);
            if let Some(evicted) = r.evicted {
                self.l1[c].invalidate(evicted);
                self.clear_sharer(evicted, core);
                self.prefetched.remove(&evicted);
                if r.writeback.is_some() {
                    self.llc.access(evicted, true);
                }
            }
            self.mark_sharer(pl, core);
            self.llc.access(pl, false);
            self.prefetched.insert(pl, ());
        }
    }

    /// Lifetime `(issued, useful)` prefetch counts — useful means the line
    /// was still resident when first demanded.
    pub fn prefetch_stats(&self) -> (u64, u64) {
        (self.prefetches_issued, self.prefetches_useful)
    }

    /// Total accesses serviced.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Flushes every cache level and the directory (between repetitions).
    pub fn flush(&mut self) {
        for c in &mut self.l1 {
            c.flush();
        }
        for c in &mut self.l2 {
            c.flush();
        }
        self.llc.flush();
        self.sharers.clear();
        self.prefetched.clear();
        for t in &mut self.tlbs {
            t.flush();
        }
    }

    /// Removes a specific core's private copy of the line holding `addr`
    /// (used by tests and by migration modeling).
    pub fn purge_private(&mut self, core: CoreId, addr: u64) {
        self.evict_private(core, line_of(addr));
    }

    /// DRAM statistics.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: usize) -> MemorySystem {
        MemorySystem::new(cores, HierarchyConfig::tiny()).unwrap()
    }

    #[test]
    fn cold_access_goes_to_dram() {
        let mut m = sys(2);
        let a = m.access(CoreId::new(0), 0x1000, false, 0);
        assert_eq!(a.level, HitLevel::Dram);
        assert!(a.events.l1_miss && a.events.l2_miss && a.events.llc_miss);
        assert_eq!(a.latency, 50 + 10); // dram + llc lookup
    }

    #[test]
    fn warm_access_hits_l1() {
        let mut m = sys(2);
        m.access(CoreId::new(0), 0x1000, false, 0);
        let a = m.access(CoreId::new(0), 0x1000, false, 10);
        assert_eq!(a.level, HitLevel::L1);
        assert_eq!(a.latency, 1);
        assert_eq!(a.events, MemEvents::default());
    }

    #[test]
    fn second_core_hits_llc_after_first_core_fill() {
        let mut m = sys(2);
        m.access(CoreId::new(0), 0x1000, false, 0);
        let a = m.access(CoreId::new(1), 0x1000, false, 100);
        assert_eq!(a.level, HitLevel::Llc);
        assert!(a.events.l1_miss && a.events.l2_miss && !a.events.llc_miss);
    }

    #[test]
    fn write_invalidates_remote_sharers() {
        let mut m = sys(4);
        for core in 0..3u32 {
            m.access(CoreId::new(core), 0x2000, false, 0);
        }
        let a = m.access(CoreId::new(3), 0x2000, true, 200);
        assert_eq!(a.events.invalidations, 3);
        // Former sharers now miss privately.
        let b = m.access(CoreId::new(0), 0x2000, false, 300);
        assert!(b.events.l1_miss && b.events.l2_miss);
    }

    #[test]
    fn lock_bounce_pattern_generates_invalidations() {
        // Two cores alternately writing one line: every write after the
        // first invalidates the other's copy.
        let mut m = sys(2);
        let mut invals = 0;
        for i in 0..10 {
            let core = CoreId::new(i % 2);
            invals += m
                .access(core, 0x3000, true, i as u64 * 100)
                .events
                .invalidations;
        }
        assert_eq!(invals, 9);
    }

    #[test]
    fn own_write_then_read_does_not_invalidate_self() {
        let mut m = sys(2);
        m.access(CoreId::new(0), 0x4000, true, 0);
        let a = m.access(CoreId::new(0), 0x4000, true, 10);
        assert_eq!(a.events.invalidations, 0);
        assert_eq!(a.level, HitLevel::L1);
    }

    #[test]
    fn inclusion_l2_eviction_purges_l1_and_directory() {
        let mut m = sys(1);
        let core = CoreId::new(0);
        // Tiny L2: 4KiB, 4-way, 64B lines => 16 sets; lines that alias in L2
        // are 16*64 = 1024 bytes apart. Fill one L2 set past capacity.
        let base = 0x10000u64;
        for i in 0..5u64 {
            m.access(core, base + i * 1024, false, i * 10);
        }
        // The first line must have been evicted from L2 and, by inclusion,
        // from L1: accessing it again misses privately.
        let a = m.access(core, base, false, 1000);
        assert!(a.events.l1_miss && a.events.l2_miss);
    }

    #[test]
    fn llc_miss_with_remote_owner_forwards() {
        // Core 0 holds the line privately; evict it from the LLC by filling
        // the LLC set, then core 1's access should forward from core 0.
        let mut m = sys(2);
        let c0 = CoreId::new(0);
        let c1 = CoreId::new(1);
        let target = 0x8000u64;
        m.access(c0, target, false, 0);
        // LLC tiny: 16KiB 4-way => 64 sets; aliasing stride 64*64 = 4096.
        for i in 1..=4u64 {
            // Fill from core 1 so core 0's private copy stays.
            m.access(c1, target + i * 4096, false, i * 10);
        }
        assert!(!m.llc.contains(target), "target must be evicted from LLC");
        let a = m.access(c1, target, false, 1000);
        assert_eq!(a.level, HitLevel::Remote);
        assert!(a.events.remote_hit);
    }

    #[test]
    fn flush_resets_to_cold() {
        let mut m = sys(2);
        m.access(CoreId::new(0), 0x100, false, 0);
        m.flush();
        let a = m.access(CoreId::new(0), 0x100, false, 10);
        assert_eq!(a.level, HitLevel::Dram);
    }

    fn sys_prefetch(depth: u32) -> MemorySystem {
        let cfg = HierarchyConfig {
            l2_prefetch_depth: depth,
            ..HierarchyConfig::tiny()
        };
        MemorySystem::new(1, cfg).unwrap()
    }

    /// Counts L2 misses over a sequential line walk.
    fn stream_l2_misses(m: &mut MemorySystem, lines: u64) -> u64 {
        let core = CoreId::new(0);
        let mut misses = 0;
        for i in 0..lines {
            let a = m.access(core, 0x100000 + i * 64, false, i * 100);
            if a.events.l2_miss {
                misses += 1;
            }
        }
        misses
    }

    #[test]
    fn prefetcher_cuts_sequential_stream_misses() {
        let mut off = sys_prefetch(0);
        let mut on = sys_prefetch(4);
        let misses_off = stream_l2_misses(&mut off, 40);
        let misses_on = stream_l2_misses(&mut on, 40);
        assert_eq!(misses_off, 40, "no prefetch: every new line misses");
        assert!(
            misses_on <= misses_off / 3,
            "prefetch should cut most stream misses: {misses_on}"
        );
        let (issued, useful) = on.prefetch_stats();
        assert!(issued > 0);
        assert!(useful as f64 / issued as f64 > 0.7, "{useful}/{issued}");
    }

    #[test]
    fn prefetcher_is_useless_on_scattered_accesses() {
        let mut m = sys_prefetch(2);
        let core = CoreId::new(0);
        // Far-apart lines: the next-line guesses never get demanded.
        for i in 0..30u64 {
            m.access(core, 0x100000 + i * 64 * 97, false, i * 100);
        }
        let (issued, useful) = m.prefetch_stats();
        assert!(issued > 0);
        assert_eq!(useful, 0);
    }

    #[test]
    fn prefetch_preserves_demand_correctness() {
        // A prefetched line that is later written still invalidates
        // correctly under coherence.
        let cfg = HierarchyConfig {
            l2_prefetch_depth: 1,
            ..HierarchyConfig::tiny()
        };
        let mut m = MemorySystem::new(2, cfg).unwrap();
        // Core 0 misses line A; line A+64 is prefetched into core 0's L2.
        m.access(CoreId::new(0), 0x1000, false, 0);
        // Core 1 writes A+64: must invalidate core 0's prefetched copy.
        let a = m.access(CoreId::new(1), 0x1040, true, 100);
        assert_eq!(a.events.invalidations, 1);
        // Core 0's subsequent read misses privately.
        let b = m.access(CoreId::new(0), 0x1040, false, 200);
        assert!(b.events.l2_miss);
    }

    #[test]
    fn tlb_miss_charges_page_walk_and_flags_event() {
        let cfg = HierarchyConfig {
            tlb: Some(TlbConfig {
                entries: 2,
                page_bits: 12,
                miss_penalty: 25,
            }),
            ..HierarchyConfig::tiny()
        };
        let mut m = MemorySystem::new(1, cfg).unwrap();
        let core = CoreId::new(0);
        // Cold: TLB miss + full cache miss.
        let a = m.access(core, 0x1000, false, 0);
        assert!(a.events.tlb_miss);
        assert_eq!(a.latency, 50 + 10 + 25, "dram + llc + page walk");
        // Same page, same line: TLB hit, L1 hit.
        let b = m.access(core, 0x1000, false, 100);
        assert!(!b.events.tlb_miss);
        assert_eq!(b.latency, 1);
        // Touch two more pages to evict the first translation (2 entries);
        // offsets chosen to land in different L1 sets so the *line* at
        // 0x1000 stays cached.
        m.access(core, 0x2040, false, 200);
        m.access(core, 0x3080, false, 300);
        let c = m.access(core, 0x1000, false, 400);
        assert!(c.events.tlb_miss, "translation evicted by LRU");
        // But the line itself still hits L1: only the walk is charged.
        assert_eq!(c.latency, 1 + 25);
    }

    #[test]
    fn tlb_disabled_by_default() {
        let mut m = sys(1);
        let a = m.access(CoreId::new(0), 0x1000, false, 0);
        assert!(!a.events.tlb_miss);
    }

    #[test]
    fn core_count_bounds() {
        assert!(MemorySystem::new(0, HierarchyConfig::tiny()).is_err());
        assert!(MemorySystem::new(65, HierarchyConfig::tiny()).is_err());
        assert!(MemorySystem::new(64, HierarchyConfig::tiny()).is_ok());
    }

    #[test]
    fn default_config_validates() {
        assert!(HierarchyConfig::default().validate().is_ok());
        let bad = HierarchyConfig {
            l1: CacheConfig::kib(512, 8),
            ..HierarchyConfig::default()
        };
        assert!(bad.validate().is_err(), "L1 larger than L2 rejected");
    }
}
