//! Main-memory timing model: fixed access latency plus bank conflicts.
//!
//! The model is deliberately simple — LLC misses pay a base latency, and
//! near-simultaneous accesses to the same bank queue behind each other. This
//! is enough to make memory-bound phases visibly slower and to create the
//! tail effects the Apache case study (E9) relies on, without simulating
//! DRAM command scheduling.

use serde::{Deserialize, Serialize};

/// DRAM timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Base access latency in cycles (row hit assumed).
    pub latency: u64,
    /// Number of independent banks.
    pub banks: usize,
    /// Cycles a bank stays busy after starting an access.
    pub bank_busy: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            latency: 200,
            banks: 16,
            bank_busy: 40,
        }
    }
}

/// The main-memory model.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    /// Cycle at which each bank becomes free.
    bank_free: Vec<u64>,
    accesses: u64,
    conflict_cycles: u64,
}

impl Dram {
    /// Builds a DRAM model.
    pub fn new(config: DramConfig) -> Self {
        Dram {
            bank_free: vec![0; config.banks.max(1)],
            config,
            accesses: 0,
            conflict_cycles: 0,
        }
    }

    fn bank_of(&self, line: u64) -> usize {
        ((line / crate::LINE_BYTES) as usize) % self.bank_free.len()
    }

    /// Performs an access to `line` starting at cycle `now`; returns the
    /// total latency including any queuing behind a busy bank.
    pub fn access(&mut self, line: u64, now: u64) -> u64 {
        self.accesses += 1;
        let bank = self.bank_of(line);
        let free_at = self.bank_free[bank];
        let wait = free_at.saturating_sub(now);
        self.conflict_cycles += wait;
        let start = now + wait;
        self.bank_free[bank] = start + self.config.bank_busy;
        wait + self.config.latency
    }

    /// Lifetime access count.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total cycles spent waiting on busy banks.
    pub fn conflict_cycles(&self) -> u64 {
        self.conflict_cycles
    }

    /// The configured timing.
    pub fn config(&self) -> DramConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_access_pays_base_latency() {
        let mut d = Dram::new(DramConfig::default());
        assert_eq!(d.access(0, 1000), 200);
        assert_eq!(d.accesses(), 1);
        assert_eq!(d.conflict_cycles(), 0);
    }

    #[test]
    fn back_to_back_same_bank_queues() {
        let mut d = Dram::new(DramConfig {
            latency: 100,
            banks: 4,
            bank_busy: 50,
        });
        assert_eq!(d.access(0, 0), 100);
        // Same bank (same line), immediately after: waits 50.
        assert_eq!(d.access(0, 0), 150);
        assert_eq!(d.conflict_cycles(), 50);
    }

    #[test]
    fn different_banks_do_not_conflict() {
        let mut d = Dram::new(DramConfig {
            latency: 100,
            banks: 4,
            bank_busy: 50,
        });
        d.access(0, 0);
        // Next line lands in the next bank.
        assert_eq!(d.access(64, 0), 100);
        assert_eq!(d.conflict_cycles(), 0);
    }

    #[test]
    fn bank_frees_over_time() {
        let mut d = Dram::new(DramConfig {
            latency: 100,
            banks: 1,
            bank_busy: 50,
        });
        d.access(0, 0);
        assert_eq!(d.access(0, 60), 100, "bank free again by cycle 60");
    }

    #[test]
    fn zero_banks_clamped_to_one() {
        let mut d = Dram::new(DramConfig {
            latency: 10,
            banks: 0,
            bank_busy: 5,
        });
        assert_eq!(d.access(0, 0), 10);
    }
}
