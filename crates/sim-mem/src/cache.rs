//! A single set-associative cache array with true-LRU replacement.

use crate::{line_of, LINE_BYTES};
use serde::{Deserialize, Serialize};
use sim_core::{SimError, SimResult};

/// Geometry of one cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a multiple of `ways * 64`.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// Creates a config with the given capacity in kibibytes.
    pub const fn kib(kib: u64, ways: usize) -> Self {
        CacheConfig {
            size_bytes: kib * 1024,
            ways,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (LINE_BYTES * self.ways as u64)
    }

    /// Validates that the geometry is realizable.
    pub fn validate(&self) -> SimResult<()> {
        if self.ways == 0 {
            return Err(SimError::Config("cache must have at least 1 way".into()));
        }
        if self.size_bytes == 0
            || !self
                .size_bytes
                .is_multiple_of(LINE_BYTES * self.ways as u64)
        {
            return Err(SimError::Config(format!(
                "cache size {} is not a multiple of ways({}) * line({})",
                self.size_bytes, self.ways, LINE_BYTES
            )));
        }
        if !self.sets().is_power_of_two() {
            return Err(SimError::Config(format!(
                "cache set count {} must be a power of two",
                self.sets()
            )));
        }
        Ok(())
    }
}

/// One cache way within a set.
#[derive(Debug, Clone, Copy, Default)]
struct Way {
    /// Line-aligned address; `None` when invalid.
    line: Option<u64>,
    /// LRU stamp: larger = more recently used.
    lru: u64,
    dirty: bool,
}

/// Outcome of a cache lookup-and-fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// Whether the line was present before the access.
    pub hit: bool,
    /// Line-aligned address of a dirty line evicted to make room, if any.
    pub writeback: Option<u64>,
    /// Line-aligned address of any line (clean or dirty) evicted.
    pub evicted: Option<u64>,
}

/// A set-associative cache with LRU replacement.
///
/// The cache stores only line presence and dirtiness — data contents live in
/// guest memory; this is a timing/event model, not a value model.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache from a validated config.
    pub fn new(config: CacheConfig) -> SimResult<Self> {
        config.validate()?;
        let sets = (0..config.sets())
            .map(|_| vec![Way::default(); config.ways])
            .collect();
        Ok(Cache {
            config,
            sets,
            stamp: 0,
            hits: 0,
            misses: 0,
        })
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    fn set_index(&self, line: u64) -> usize {
        ((line / LINE_BYTES) & (self.config.sets() - 1)) as usize
    }

    /// Looks up `addr`, filling the line on miss. Returns hit/miss and any
    /// eviction. `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> Lookup {
        let line = line_of(addr);
        let set_idx = self.set_index(line);
        self.stamp += 1;
        let stamp = self.stamp;
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.iter_mut().find(|w| w.line == Some(line)) {
            way.lru = stamp;
            way.dirty |= write;
            self.hits += 1;
            return Lookup {
                hit: true,
                writeback: None,
                evicted: None,
            };
        }

        self.misses += 1;
        // Prefer an invalid way; otherwise evict the LRU way.
        let victim = match set.iter_mut().find(|w| w.line.is_none()) {
            Some(w) => w,
            None => set
                .iter_mut()
                .min_by_key(|w| w.lru)
                .expect("sets always have at least one way"),
        };
        let evicted = victim.line;
        let writeback = if victim.dirty { victim.line } else { None };
        victim.line = Some(line);
        victim.lru = stamp;
        victim.dirty = write;
        Lookup {
            hit: false,
            writeback,
            evicted,
        }
    }

    /// Whether the line containing `addr` is present.
    pub fn contains(&self, addr: u64) -> bool {
        let line = line_of(addr);
        self.sets[self.set_index(line)]
            .iter()
            .any(|w| w.line == Some(line))
    }

    /// Removes the line containing `addr`, returning whether it was present
    /// and dirty (i.e. whether an invalidation writeback is required).
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let line = line_of(addr);
        let set_idx = self.set_index(line);
        for way in &mut self.sets[set_idx] {
            if way.line == Some(line) {
                let dirty = way.dirty;
                *way = Way::default();
                return Some(dirty);
            }
        }
        None
    }

    /// Drops every line (e.g. between experiment repetitions).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for way in set.iter_mut() {
                *way = Way::default();
            }
        }
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of currently-valid lines.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|w| w.line.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
        })
        .unwrap()
    }

    #[test]
    fn geometry_validation() {
        assert!(CacheConfig::kib(32, 8).validate().is_ok());
        assert!(CacheConfig {
            size_bytes: 0,
            ways: 8
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 512,
            ways: 0
        }
        .validate()
        .is_err());
        // 3 sets: not a power of two.
        assert!(CacheConfig {
            size_bytes: 3 * 2 * 64,
            ways: 2
        }
        .validate()
        .is_err());
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small();
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x1038, false).hit, "same 64B line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Three lines mapping to the same set (4 sets => stride 4*64=256).
        let (a, b, d) = (0x0, 0x100, 0x200);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a most recent
        let r = c.access(d, false); // must evict b
        assert_eq!(r.evicted, Some(b));
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0x0, true);
        c.access(0x100, false);
        let r = c.access(0x200, false); // evicts dirty 0x0
        assert_eq!(r.writeback, Some(0x0));
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        c.access(0x0, false);
        c.access(0x100, false);
        let r = c.access(0x200, false);
        assert_eq!(r.evicted, Some(0x0));
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = small();
        c.access(0x40, true);
        assert_eq!(c.invalidate(0x40), Some(true));
        assert_eq!(c.invalidate(0x40), None);
        c.access(0x80, false);
        assert_eq!(c.invalidate(0x80), Some(false));
    }

    #[test]
    fn write_on_hit_marks_dirty() {
        let mut c = small();
        c.access(0x40, false);
        c.access(0x40, true);
        assert_eq!(c.invalidate(0x40), Some(true));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = small();
        c.access(0x0, true);
        c.access(0x40, false);
        assert_eq!(c.occupancy(), 2);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains(0x0));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = small(); // 8 lines total
        let lines: Vec<u64> = (0..16u64).map(|i| i * 64).collect();
        for _ in 0..4 {
            for &l in &lines {
                c.access(l, false);
            }
        }
        // A 16-line cyclic sweep over an 8-line LRU cache misses every time.
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 64);
    }

    #[test]
    fn working_set_that_fits_stops_missing() {
        let mut c = small();
        let lines: Vec<u64> = (0..8u64).map(|i| i * 64).collect();
        for _ in 0..4 {
            for &l in &lines {
                c.access(l, false);
            }
        }
        assert_eq!(c.misses(), 8, "only compulsory misses");
        assert_eq!(c.hits(), 24);
    }
}
