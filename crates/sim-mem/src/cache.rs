//! A single set-associative cache array with true-LRU replacement.

use crate::{line_of, LINE_BYTES};
use serde::{Deserialize, Serialize};
use sim_core::{SimError, SimResult};

/// Geometry of one cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a multiple of `ways * 64`.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// Creates a config with the given capacity in kibibytes.
    pub const fn kib(kib: u64, ways: usize) -> Self {
        CacheConfig {
            size_bytes: kib * 1024,
            ways,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (LINE_BYTES * self.ways as u64)
    }

    /// Validates that the geometry is realizable.
    pub fn validate(&self) -> SimResult<()> {
        if self.ways == 0 {
            return Err(SimError::Config("cache must have at least 1 way".into()));
        }
        if self.size_bytes == 0
            || !self
                .size_bytes
                .is_multiple_of(LINE_BYTES * self.ways as u64)
        {
            return Err(SimError::Config(format!(
                "cache size {} is not a multiple of ways({}) * line({})",
                self.size_bytes, self.ways, LINE_BYTES
            )));
        }
        if !self.sets().is_power_of_two() {
            return Err(SimError::Config(format!(
                "cache set count {} must be a power of two",
                self.sets()
            )));
        }
        Ok(())
    }
}

/// One cache way within a set.
#[derive(Debug, Clone, Copy)]
struct Way {
    /// Line-aligned address; [`Way::INVALID`] when empty. Real lines are
    /// always multiples of the 64-byte line size, so a non-multiple is a
    /// safe sentinel and the hit scan stays a plain integer compare.
    line: u64,
    /// LRU stamp: larger = more recently used.
    lru: u64,
    dirty: bool,
}

impl Way {
    const INVALID: u64 = u64::MAX;
}

impl Default for Way {
    fn default() -> Self {
        Way {
            line: Way::INVALID,
            lru: 0,
            dirty: false,
        }
    }
}

/// Outcome of a cache lookup-and-fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// Whether the line was present before the access.
    pub hit: bool,
    /// Line-aligned address of a dirty line evicted to make room, if any.
    pub writeback: Option<u64>,
    /// Line-aligned address of any line (clean or dirty) evicted.
    pub evicted: Option<u64>,
}

/// A set-associative cache with LRU replacement.
///
/// The cache stores only line presence and dirtiness — data contents live in
/// guest memory; this is a timing/event model, not a value model.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// All ways, flattened: set `s` occupies `ways[s*w .. (s+1)*w]`.
    ways: Vec<Way>,
    /// `sets() - 1`, precomputed — set selection is a shift-and-mask, not
    /// a division, on the per-access path.
    set_mask: u64,
    /// Per-set way index of the most recent hit or fill. A repeat access to
    /// that way short-circuits the scan and skips the LRU stamp write: the
    /// way is already the set's most-recent, so re-stamping cannot change
    /// the replacement order.
    mru: Vec<u8>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache from a validated config.
    pub fn new(config: CacheConfig) -> SimResult<Self> {
        config.validate()?;
        let ways = vec![Way::default(); (config.sets() as usize) * config.ways];
        Ok(Cache {
            set_mask: config.sets() - 1,
            mru: vec![0; config.sets() as usize],
            config,
            ways,
            stamp: 0,
            hits: 0,
            misses: 0,
        })
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    #[inline]
    fn set_of(&mut self, line: u64) -> &mut [Way] {
        let set_idx = ((line / LINE_BYTES) & self.set_mask) as usize;
        let w = self.config.ways;
        &mut self.ways[set_idx * w..(set_idx + 1) * w]
    }

    /// Looks up `addr`, filling the line on miss. Returns hit/miss and any
    /// eviction. `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> Lookup {
        let line = line_of(addr);
        let set_idx = ((line / LINE_BYTES) & self.set_mask) as usize;
        let w = self.config.ways;
        let base = set_idx * w;

        // Most-recently-used fast path: a repeat access to the set's MRU
        // way needs no scan and no LRU stamp (it is already most-recent;
        // re-stamping cannot reorder replacement).
        let mru = self.mru[set_idx] as usize;
        if mru < w && self.ways[base + mru].line == line {
            self.ways[base + mru].dirty |= write;
            self.hits += 1;
            return Lookup {
                hit: true,
                writeback: None,
                evicted: None,
            };
        }

        self.stamp += 1;
        let stamp = self.stamp;
        let set = &mut self.ways[base..base + w];

        if let Some((i, way)) = set.iter_mut().enumerate().find(|(_, w)| w.line == line) {
            way.lru = stamp;
            way.dirty |= write;
            self.mru[set_idx] = i as u8;
            self.hits += 1;
            return Lookup {
                hit: true,
                writeback: None,
                evicted: None,
            };
        }

        self.misses += 1;
        // Prefer an invalid way; otherwise evict the LRU way.
        let vi = match set.iter().position(|w| w.line == Way::INVALID) {
            Some(i) => i,
            None => set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .expect("sets always have at least one way"),
        };
        let victim = &mut set[vi];
        let evicted = (victim.line != Way::INVALID).then_some(victim.line);
        let writeback = if victim.dirty { evicted } else { None };
        victim.line = line;
        victim.lru = stamp;
        victim.dirty = write;
        self.mru[set_idx] = vi as u8;
        Lookup {
            hit: false,
            writeback,
            evicted,
        }
    }

    /// Whether the line containing `addr` is present.
    pub fn contains(&self, addr: u64) -> bool {
        let line = line_of(addr);
        let set_idx = ((line / LINE_BYTES) & self.set_mask) as usize;
        let w = self.config.ways;
        self.ways[set_idx * w..(set_idx + 1) * w]
            .iter()
            .any(|way| way.line == line)
    }

    /// Removes the line containing `addr`, returning whether it was present
    /// and dirty (i.e. whether an invalidation writeback is required).
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let line = line_of(addr);
        for way in self.set_of(line) {
            if way.line == line {
                let dirty = way.dirty;
                *way = Way::default();
                return Some(dirty);
            }
        }
        None
    }

    /// Drops every line (e.g. between experiment repetitions).
    pub fn flush(&mut self) {
        for way in &mut self.ways {
            *way = Way::default();
        }
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of currently-valid lines.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.line != Way::INVALID).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
        })
        .unwrap()
    }

    #[test]
    fn geometry_validation() {
        assert!(CacheConfig::kib(32, 8).validate().is_ok());
        assert!(CacheConfig {
            size_bytes: 0,
            ways: 8
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 512,
            ways: 0
        }
        .validate()
        .is_err());
        // 3 sets: not a power of two.
        assert!(CacheConfig {
            size_bytes: 3 * 2 * 64,
            ways: 2
        }
        .validate()
        .is_err());
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small();
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x1038, false).hit, "same 64B line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Three lines mapping to the same set (4 sets => stride 4*64=256).
        let (a, b, d) = (0x0, 0x100, 0x200);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a most recent
        let r = c.access(d, false); // must evict b
        assert_eq!(r.evicted, Some(b));
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0x0, true);
        c.access(0x100, false);
        let r = c.access(0x200, false); // evicts dirty 0x0
        assert_eq!(r.writeback, Some(0x0));
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        c.access(0x0, false);
        c.access(0x100, false);
        let r = c.access(0x200, false);
        assert_eq!(r.evicted, Some(0x0));
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = small();
        c.access(0x40, true);
        assert_eq!(c.invalidate(0x40), Some(true));
        assert_eq!(c.invalidate(0x40), None);
        c.access(0x80, false);
        assert_eq!(c.invalidate(0x80), Some(false));
    }

    #[test]
    fn write_on_hit_marks_dirty() {
        let mut c = small();
        c.access(0x40, false);
        c.access(0x40, true);
        assert_eq!(c.invalidate(0x40), Some(true));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = small();
        c.access(0x0, true);
        c.access(0x40, false);
        assert_eq!(c.occupancy(), 2);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains(0x0));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = small(); // 8 lines total
        let lines: Vec<u64> = (0..16u64).map(|i| i * 64).collect();
        for _ in 0..4 {
            for &l in &lines {
                c.access(l, false);
            }
        }
        // A 16-line cyclic sweep over an 8-line LRU cache misses every time.
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 64);
    }

    #[test]
    fn working_set_that_fits_stops_missing() {
        let mut c = small();
        let lines: Vec<u64> = (0..8u64).map(|i| i * 64).collect();
        for _ in 0..4 {
            for &l in &lines {
                c.access(l, false);
            }
        }
        assert_eq!(c.misses(), 8, "only compulsory misses");
        assert_eq!(c.hits(), 24);
    }
}
