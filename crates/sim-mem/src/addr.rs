//! Deterministic address-stream generators for synthetic workloads.
//!
//! Workload code in the guest ISA issues loads/stores whose addresses come
//! from these generators (pre-materialized into guest arrays or sampled on
//! the host while emitting guest code). The generators cover the patterns
//! the case studies need: streaming scans, strided walks, uniform random
//! working sets, and Zipf-skewed accesses (database buffer pools).

use sim_core::DetRng;

/// A deterministic stream of byte addresses within a region.
#[derive(Debug, Clone)]
pub enum AddrStream {
    /// Sequential walk: `base, base+stride, ...`, wrapping at `len` bytes.
    Sequential {
        /// Region start.
        base: u64,
        /// Step in bytes.
        stride: u64,
        /// Region length in bytes.
        len: u64,
        /// Current offset.
        cursor: u64,
    },
    /// Uniform random addresses in `[base, base+len)`, aligned to `align`.
    Uniform {
        /// Region start.
        base: u64,
        /// Region length in bytes.
        len: u64,
        /// Alignment of produced addresses.
        align: u64,
        /// RNG.
        rng: DetRng,
    },
    /// Zipf-distributed block indices over `blocks` blocks of `block_bytes`
    /// starting at `base` — hot blocks get most accesses.
    Zipf {
        /// Region start.
        base: u64,
        /// Bytes per block.
        block_bytes: u64,
        /// Precomputed cumulative distribution over block indices.
        cdf: Vec<f64>,
        /// RNG.
        rng: DetRng,
    },
}

impl AddrStream {
    /// A sequential stream over `[base, base+len)` with the given stride.
    pub fn sequential(base: u64, len: u64, stride: u64) -> Self {
        assert!(stride > 0 && len > 0, "stride and len must be positive");
        AddrStream::Sequential {
            base,
            stride,
            len,
            cursor: 0,
        }
    }

    /// A uniform random stream over `[base, base+len)` aligned to `align`.
    pub fn uniform(base: u64, len: u64, align: u64, rng: DetRng) -> Self {
        assert!(align > 0 && len >= align, "align must divide into len");
        AddrStream::Uniform {
            base,
            len,
            align,
            rng,
        }
    }

    /// A Zipf(θ) stream over `blocks` blocks of `block_bytes` each.
    ///
    /// θ=0 is uniform; θ≈1 is the classic heavy skew used for database
    /// buffer-pool modeling.
    pub fn zipf(base: u64, blocks: usize, block_bytes: u64, theta: f64, rng: DetRng) -> Self {
        assert!(blocks > 0, "need at least one block");
        let mut weights: Vec<f64> = (1..=blocks).map(|i| 1.0 / (i as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        AddrStream::Zipf {
            base,
            block_bytes,
            cdf: weights,
            rng,
        }
    }

    /// Produces the next address in the stream.
    pub fn next_addr(&mut self) -> u64 {
        match self {
            AddrStream::Sequential {
                base,
                stride,
                len,
                cursor,
            } => {
                let addr = *base + *cursor;
                *cursor = (*cursor + *stride) % *len;
                addr
            }
            AddrStream::Uniform {
                base,
                len,
                align,
                rng,
            } => {
                let slots = *len / *align;
                *base + rng.below(slots) * *align
            }
            AddrStream::Zipf {
                base,
                block_bytes,
                cdf,
                rng,
            } => {
                let u = rng.unit_f64();
                let idx = cdf.partition_point(|&c| c < u).min(cdf.len() - 1);
                *base + idx as u64 * *block_bytes
            }
        }
    }

    /// Materializes the next `n` addresses into a vector.
    pub fn take_vec(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_addr()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_wraps() {
        let mut s = AddrStream::sequential(0x1000, 256, 64);
        let got = s.take_vec(6);
        assert_eq!(got, vec![0x1000, 0x1040, 0x1080, 0x10C0, 0x1000, 0x1040]);
    }

    #[test]
    fn uniform_stays_in_region_and_aligned() {
        let mut s = AddrStream::uniform(0x2000, 4096, 64, DetRng::new(1));
        for a in s.take_vec(500) {
            assert!((0x2000..0x2000 + 4096).contains(&a));
            assert_eq!(a % 64, 0);
        }
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let mut s = AddrStream::zipf(0, 10, 64, 0.0, DetRng::new(2));
        let mut counts = [0u32; 10];
        for a in s.take_vec(10_000) {
            counts[(a / 64) as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "uniform-ish: {counts:?}");
        }
    }

    #[test]
    fn zipf_skews_to_first_blocks() {
        let mut s = AddrStream::zipf(0, 100, 64, 1.0, DetRng::new(3));
        let mut first10 = 0u32;
        let n = 10_000;
        for a in s.take_vec(n) {
            if a / 64 < 10 {
                first10 += 1;
            }
        }
        // With θ=1 over 100 blocks, the top 10 blocks carry ~56% of mass.
        assert!(first10 as f64 / n as f64 > 0.45, "got {first10}");
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = AddrStream::uniform(0, 1 << 20, 8, DetRng::new(7));
        let mut b = AddrStream::uniform(0, 1 << 20, 8, DetRng::new(7));
        assert_eq!(a.take_vec(100), b.take_vec(100));
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zipf_requires_blocks() {
        let _ = AddrStream::zipf(0, 0, 64, 1.0, DetRng::new(1));
    }
}
