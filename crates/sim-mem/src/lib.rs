//! Memory-hierarchy model.
//!
//! The reproduction's case studies (MySQL, Firefox, Apache) need cache-miss
//! and coherence event streams that *respond to the workload* — working-set
//! size, sharing, and access pattern — the way real counters do. This crate
//! provides:
//!
//! * [`cache`]: a single set-associative, LRU cache array,
//! * [`hierarchy`]: per-core L1/L2 (inclusive) plus a shared LLC and a
//!   directory-style invalidation protocol, the unit the CPU model calls
//!   into on every guest load/store,
//! * [`dram`]: a fixed-latency + bank-conflict main-memory model,
//! * [`addr`]: deterministic address-stream generators (sequential, strided,
//!   uniform and Zipf working sets) used by the synthetic workloads.
//!
//! Latencies are returned in cycles and event counts in [`MemEvents`]; the
//! CPU model charges the latency to the executing core and feeds the events
//! to that core's PMU.

pub mod addr;
pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod tlb;

pub use addr::AddrStream;
pub use cache::{Cache, CacheConfig};
pub use dram::{Dram, DramConfig};
pub use hierarchy::{HierarchyConfig, HitLevel, MemAccess, MemEvents, MemorySystem};
pub use tlb::{Tlb, TlbConfig};

/// Cache-line size in bytes used throughout the model.
pub const LINE_BYTES: u64 = 64;

/// Returns the line-aligned address containing `addr`.
pub fn line_of(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}
