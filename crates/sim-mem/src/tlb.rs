//! A per-core data TLB model.
//!
//! Fully-associative, LRU, over fixed-size pages. Off by default
//! ([`crate::HierarchyConfig::tlb`] is `None`); when enabled, every data
//! access consults the core's TLB first and a miss charges a page-walk
//! penalty and raises a countable event — giving workloads with large
//! sparse working sets (the buffer pool, the GC heap) a second
//! reach-limited resource besides the caches.

use serde::{Deserialize, Serialize};
use sim_core::{SimError, SimResult};

/// TLB geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Page size as a power of two (bits); 12 = 4 KiB pages.
    pub page_bits: u32,
    /// Page-walk penalty in cycles on a miss.
    pub miss_penalty: u64,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            entries: 64,
            page_bits: 12,
            miss_penalty: 30,
        }
    }
}

impl TlbConfig {
    /// Validates geometry.
    pub fn validate(&self) -> SimResult<()> {
        if self.entries == 0 || self.entries > 4096 {
            return Err(SimError::Config(format!(
                "TLB entries must be 1..=4096, got {}",
                self.entries
            )));
        }
        if !(6..=30).contains(&self.page_bits) {
            return Err(SimError::Config(format!(
                "page_bits must be 6..=30, got {}",
                self.page_bits
            )));
        }
        Ok(())
    }

    /// Bytes of address space the TLB can map ("TLB reach").
    pub fn reach_bytes(&self) -> u64 {
        self.entries as u64 * (1u64 << self.page_bits)
    }
}

/// One core's TLB: fully-associative LRU over page numbers.
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    /// Page numbers ordered most-recent first.
    pages: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Builds a TLB from a validated config.
    pub fn new(config: TlbConfig) -> SimResult<Self> {
        config.validate()?;
        Ok(Tlb {
            pages: Vec::with_capacity(config.entries),
            config,
            hits: 0,
            misses: 0,
        })
    }

    /// The configured geometry.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Looks up the page containing `addr`, filling on miss. Returns
    /// whether the translation hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let page = addr >> self.config.page_bits;
        if let Some(pos) = self.pages.iter().position(|&p| p == page) {
            self.pages.remove(pos);
            self.pages.insert(0, page);
            self.hits += 1;
            true
        } else {
            self.pages.insert(0, page);
            self.pages.truncate(self.config.entries);
            self.misses += 1;
            false
        }
    }

    /// Drops every translation.
    pub fn flush(&mut self) {
        self.pages.clear();
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 4,
            page_bits: 12,
            miss_penalty: 30,
        })
        .unwrap()
    }

    #[test]
    fn validation_bounds() {
        assert!(TlbConfig::default().validate().is_ok());
        assert!(TlbConfig {
            entries: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TlbConfig {
            page_bits: 40,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn reach_is_entries_times_page() {
        assert_eq!(TlbConfig::default().reach_bytes(), 64 * 4096);
    }

    #[test]
    fn same_page_hits_after_fill() {
        let mut t = tiny();
        assert!(!t.access(0x1000));
        assert!(t.access(0x1FF8), "same 4K page");
        assert!(!t.access(0x2000), "next page misses");
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest_translation() {
        let mut t = tiny();
        for p in 0..4u64 {
            t.access(p << 12);
        }
        t.access(0); // page 0 most recent
        t.access(4 << 12); // evicts page 1
        assert!(t.access(0), "page 0 retained");
        assert!(!t.access(1 << 12), "page 1 evicted");
    }

    #[test]
    fn working_set_beyond_reach_thrashes() {
        let mut t = tiny(); // reach = 16 KiB
        for round in 0..3 {
            for p in 0..8u64 {
                let hit = t.access(p << 12);
                if round > 0 {
                    assert!(!hit, "cyclic sweep over 2x reach always misses");
                }
            }
        }
    }

    #[test]
    fn flush_forgets_translations() {
        let mut t = tiny();
        t.access(0x1000);
        t.flush();
        assert!(!t.access(0x1000));
    }
}
