//! Property-based tests for the cache model: the set-associative LRU array
//! must agree with a brute-force reference model on arbitrary access
//! traces, and hierarchy invariants must hold under random workloads.

use proptest::prelude::*;
use sim_core::{CoreId, DetRng};
use sim_mem::{Cache, CacheConfig, HierarchyConfig, MemorySystem};
use std::collections::HashMap;

/// A brute-force reference cache: per-set vectors ordered by recency.
struct RefCache {
    sets: Vec<Vec<u64>>, // most-recent first
    ways: usize,
}

impl RefCache {
    fn new(sets: usize, ways: usize) -> Self {
        RefCache {
            sets: vec![Vec::new(); sets],
            ways,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        ((line / 64) % self.sets.len() as u64) as usize
    }

    /// Returns whether the access hit.
    fn access(&mut self, addr: u64) -> bool {
        let line = addr & !63;
        let set = self.set_of(line);
        let v = &mut self.sets[set];
        if let Some(pos) = v.iter().position(|&l| l == line) {
            v.remove(pos);
            v.insert(0, line);
            true
        } else {
            v.insert(0, line);
            v.truncate(self.ways);
            false
        }
    }
}

proptest! {
    /// The production cache and the reference model agree on every
    /// hit/miss over arbitrary traces.
    #[test]
    fn cache_matches_reference_model(
        trace in prop::collection::vec(0u64..(1 << 14), 1..400),
        ways in 1usize..5,
        sets_log in 1u32..5,
    ) {
        let sets = 1usize << sets_log;
        let config = CacheConfig {
            size_bytes: (sets * ways * 64) as u64,
            ways,
        };
        let mut cache = Cache::new(config).unwrap();
        let mut reference = RefCache::new(sets, ways);
        for &a in &trace {
            let addr = a * 8; // 8-byte-aligned addresses
            let got = cache.access(addr, false).hit;
            let want = reference.access(addr);
            prop_assert_eq!(got, want, "divergence at addr {:#x}", addr);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), trace.len() as u64);
        prop_assert!(cache.occupancy() <= sets * ways);
    }

    /// Hierarchy sanity under random multicore traffic: event flags are
    /// consistent (an L2 miss implies an L1 miss; an LLC miss implies
    /// both) and latency is bounded below by the L1 latency.
    #[test]
    fn hierarchy_event_flags_are_consistent(
        seed in any::<u64>(),
        accesses in 50usize..400,
        cores in 1usize..4,
    ) {
        let cfg = HierarchyConfig::tiny();
        let mut m = MemorySystem::new(cores, cfg).unwrap();
        let mut rng = DetRng::new(seed);
        for i in 0..accesses {
            let core = CoreId::new(rng.below(cores as u64) as u32);
            let addr = rng.below(1 << 14) * 8;
            let write = rng.chance(0.3);
            let a = m.access(core, addr, write, i as u64 * 10);
            if a.events.l2_miss {
                prop_assert!(a.events.l1_miss, "L2 miss without L1 miss");
            }
            if a.events.llc_miss {
                prop_assert!(a.events.l1_miss && a.events.l2_miss);
            }
            prop_assert!(a.latency >= cfg.l1_latency);
            if !write {
                prop_assert_eq!(a.events.invalidations, 0, "reads never invalidate");
            }
        }
    }

    /// Coherence: after a write by one core, every other former sharer
    /// misses privately on its next access — no stale private hits.
    #[test]
    fn writes_invalidate_all_sharers(
        seed in any::<u64>(),
        rounds in 5usize..40,
    ) {
        let cores = 4;
        let mut m = MemorySystem::new(cores, HierarchyConfig::tiny()).unwrap();
        let mut rng = DetRng::new(seed);
        let line = 0x9000u64;
        let mut now = 0u64;
        // Track which cores hold the line privately (model).
        let mut holders: HashMap<usize, ()> = HashMap::new();
        for _ in 0..rounds {
            let c = rng.below(cores as u64) as usize;
            let write = rng.chance(0.5);
            now += 100;
            let a = m.access(CoreId::new(c as u32), line, write, now);
            if write {
                let expected_inv = holders.keys().filter(|&&h| h != c).count() as u32;
                prop_assert_eq!(a.events.invalidations, expected_inv);
                holders.clear();
            }
            holders.insert(c, ());
        }
    }
}
