//! The per-thread memory block ("TLS") used by instrumented guest code.
//!
//! Every instrumented thread receives the guest address of its TLS block as
//! its first spawn argument and keeps it in register `r15` for its whole
//! life. All per-thread instrumentation state is addressed at fixed offsets
//! from that base:
//!
//! | offset | contents |
//! |---|---|
//! | `0..32`   | LiMiT 64-bit accumulators, one per counter slot (≤ 4) |
//! | `32..64`  | perf fds, one per counter slot (syscall baselines) |
//! | `64`      | log cursor (guest address of the next free record) |
//! | `72`      | log end (guest address one past the buffer) |
//! | `80..112` | region-enter snapshots, one per counter slot |
//! | `112`     | dropped-record count (log or ring full) |
//! | `136..160` | telemetry ring: base address, head index, tail index |
//! | `192..`   | workload-defined area ([`USER_BASE`]) |
//!
//! The register conventions instrumented code relies on:
//!
//! * `r15` — TLS base; set once in the thread prologue, never clobbered.
//! * `r4..r7` — scratch owned by instrumentation emission; workload code
//!   must not keep live values there across an enter/exit/read emission.
//! * `r0..r3` — syscall arguments (clobbered by syscall-based readers).

use sim_cpu::Reg;

/// Maximum counter slots the TLS layout reserves space for.
pub const MAX_COUNTERS: usize = 4;

/// The register that holds the TLS base address.
pub const TLS_REG: Reg = Reg::R15;

/// Byte offset of the LiMiT accumulator for counter `i`.
pub const fn accum_off(i: usize) -> i32 {
    assert!(i < MAX_COUNTERS);
    (8 * i) as i32
}

/// Byte offset of the perf fd slot for counter `i`.
pub const fn fd_off(i: usize) -> i32 {
    assert!(i < MAX_COUNTERS);
    (32 + 8 * i) as i32
}

/// Byte offset of the log cursor word.
pub const LOG_CURSOR: i32 = 64;

/// Byte offset of the log end word.
pub const LOG_END: i32 = 72;

/// Byte offset of the region-enter snapshot for counter `i`.
pub const fn scratch_off(i: usize) -> i32 {
    assert!(i < MAX_COUNTERS);
    (80 + 8 * i) as i32
}

/// Byte offset of the dropped-record counter.
pub const DROPPED: i32 = 112;

/// Byte offset of the fold-sequence word (seqlock-style readers): the
/// kernel increments it on every virtualization fold affecting the thread.
pub const SEQ: i32 = 120;

/// Byte offset of the aggregate-table base-address word (aggregate-mode
/// instrumentation).
pub const AGG_BASE: i32 = 128;

/// Byte offset of the telemetry ring's base-address word (stream-mode
/// instrumentation; see `crate::instrument::Instrumenter::emit_exit_stream`).
pub const RING_BASE: i32 = 136;

/// Byte offset of the ring head: the producer's monotonically increasing
/// append index (slot = `head & (capacity - 1)`). Guest-written only.
pub const RING_HEAD: i32 = 144;

/// Byte offset of the ring tail: the consumer's monotonically increasing
/// drain index. Written host-side by the collector between guest
/// instructions (DMA-like), read by the producer's full check.
pub const RING_TAIL: i32 = 152;

/// First byte available to workload-defined per-thread state.
pub const USER_BASE: i32 = 192;

/// Total bytes of a TLS block, excluding the workload area.
pub const TLS_SIZE: u64 = 192;

/// Size in bytes of one log record with `counters` event deltas:
/// `region_id` + one delta per counter.
pub const fn record_size(counters: usize) -> u64 {
    8 * (1 + counters as u64)
}

/// Size in bytes of one telemetry **ring slot**: [`record_size`] rounded up
/// to the next power of two so the producer's slot-address computation is
/// mask-and-shift only (no multiply on the guest hot path). The padding is
/// dead space, never read.
pub const fn ring_slot_size(counters: usize) -> u64 {
    record_size(counters).next_power_of_two()
}

/// `log2(ring_slot_size(counters))` — the producer's slot shift.
pub const fn ring_slot_shift(counters: usize) -> u64 {
    ring_slot_size(counters).trailing_zeros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_do_not_overlap() {
        let mut spans: Vec<(i32, i32)> = Vec::new();
        for i in 0..MAX_COUNTERS {
            spans.push((accum_off(i), accum_off(i) + 8));
            spans.push((fd_off(i), fd_off(i) + 8));
            spans.push((scratch_off(i), scratch_off(i) + 8));
        }
        spans.push((LOG_CURSOR, LOG_CURSOR + 8));
        spans.push((LOG_END, LOG_END + 8));
        spans.push((DROPPED, DROPPED + 8));
        spans.push((SEQ, SEQ + 8));
        spans.push((AGG_BASE, AGG_BASE + 8));
        spans.push((RING_BASE, RING_BASE + 8));
        spans.push((RING_HEAD, RING_HEAD + 8));
        spans.push((RING_TAIL, RING_TAIL + 8));
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
        assert!(spans.last().unwrap().1 <= USER_BASE);
    }

    #[test]
    fn record_size_scales_with_counters() {
        assert_eq!(record_size(0), 8);
        assert_eq!(record_size(2), 24);
        assert_eq!(record_size(4), 40);
    }

    #[test]
    fn ring_slots_are_padded_to_powers_of_two() {
        assert_eq!(ring_slot_size(0), 8);
        assert_eq!(ring_slot_size(1), 16);
        assert_eq!(ring_slot_size(2), 32);
        assert_eq!(ring_slot_size(3), 32);
        assert_eq!(ring_slot_size(4), 64);
        for k in 0..=MAX_COUNTERS {
            assert!(ring_slot_size(k) >= record_size(k));
            assert_eq!(1u64 << ring_slot_shift(k), ring_slot_size(k));
        }
    }
}
