//! The counter-read abstraction and the LiMiT implementation.
//!
//! A [`CounterReader`] knows how to emit guest code that (a) attaches up to
//! [`crate::tls::MAX_COUNTERS`] counters to the calling thread and (b)
//! reads the 64-bit virtualized value of counter `i` into a register. The
//! three access methods the paper compares all implement this trait:
//!
//! * [`LimitReader`] (here) — the paper's contribution: a 3-instruction
//!   load/`rdpmc`/add sequence, each emission wrapped in a named restart
//!   range the kernel uses for the atomicity fix-up,
//! * `PerfReader` / `PapiReader` (crate `baselines`) — syscall round-trips,
//! * [`NullReader`] — reads nothing (the uninstrumented baseline).

use crate::tls::{self, TLS_REG};
use sim_cpu::{Asm, EventKind, Reg};
use sim_os::syscall::{encode_event, nr};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global source of `limit_read.N` range suffixes.
///
/// Per-reader counters (the seed design) alias: two readers emitting into
/// one program both start at `limit_read.0`, and `Asm` range names must be
/// unique within a program. A global counter makes every emission's name
/// unique no matter how many readers a session (or thread) creates. Range
/// names are only ever prefix-matched (`limit_read*`), never printed in
/// experiment output, so the process-wide ordering does not affect
/// deterministic tables.
static NEXT_RANGE: AtomicU64 = AtomicU64::new(0);

/// Prefix of every restart-range name a [`LimitReader`] emits. Harnesses
/// (and the torture driver) match assembled range names against this to
/// find the read sequences that need kernel registration.
pub const LIMIT_RANGE_PREFIX: &str = "limit_read";

/// Emits guest code for counter attachment and reads.
pub trait CounterReader {
    /// Number of counters this reader attaches.
    fn counters(&self) -> usize;

    /// Emits the per-thread prologue: binds `r15` to the TLS base passed in
    /// `r0` and attaches the configured counters. Must be the first thing a
    /// thread executes.
    fn emit_thread_setup(&self, asm: &mut Asm);

    /// Emits code reading the 64-bit virtualized value of counter `i` into
    /// `dst`, clobbering `scratch` (and, for syscall-based readers,
    /// `r0..r3`).
    fn emit_read(&self, asm: &mut Asm, i: usize, dst: Reg, scratch: Reg);

    /// A short name for reports ("limit", "perf", "papi", "none").
    fn name(&self) -> &'static str;
}

/// The LiMiT userspace reader.
///
/// `emit_read` produces exactly the sequence the paper's kernel extension
/// protects:
///
/// ```text
/// load  dst, [r15 + accum(i)]   ; 64-bit accumulator (kernel-maintained)
/// rdpmc scratch, i              ; live hardware counter
/// add   dst, scratch
/// ```
///
/// Each emission is wrapped in a uniquely-named `limit_read.N` range;
/// [`crate::harness::Session`] registers every such range with the kernel
/// so an interrupt landing mid-sequence rewinds to the load.
#[derive(Debug)]
pub struct LimitReader {
    events: Vec<EventKind>,
}

impl LimitReader {
    /// A reader attaching `n` counters with default events (instructions,
    /// cycles, LLC misses, branch misses — in that order).
    pub fn new(n: usize) -> Self {
        const DEFAULT: [EventKind; 4] = [
            EventKind::Instructions,
            EventKind::Cycles,
            EventKind::LlcMisses,
            EventKind::BranchMisses,
        ];
        LimitReader::with_events(DEFAULT[..n.min(4)].to_vec())
    }

    /// A reader attaching the given events to slots `0..events.len()`.
    pub fn with_events(events: Vec<EventKind>) -> Self {
        assert!(
            events.len() <= tls::MAX_COUNTERS,
            "at most {} counters",
            tls::MAX_COUNTERS
        );
        LimitReader { events }
    }

    /// The configured events.
    pub fn events(&self) -> &[EventKind] {
        &self.events
    }
}

impl CounterReader for LimitReader {
    fn counters(&self) -> usize {
        self.events.len()
    }

    fn emit_thread_setup(&self, asm: &mut Asm) {
        asm.mov(TLS_REG, Reg::R0);
        asm.imm(Reg::R3, 0); // no tag filter (spawn args may have left r3 set)
        for (i, &event) in self.events.iter().enumerate() {
            asm.imm(Reg::R0, i as u64);
            asm.imm(Reg::R1, encode_event(event));
            asm.mov(Reg::R2, TLS_REG);
            asm.alui_add(Reg::R2, tls::accum_off(i) as u64);
            asm.syscall(nr::LIMIT_OPEN);
        }
    }

    fn emit_read(&self, asm: &mut Asm, i: usize, dst: Reg, scratch: Reg) {
        assert!(i < self.events.len(), "counter {i} not attached");
        let range = format!(
            "{LIMIT_RANGE_PREFIX}.{}",
            NEXT_RANGE.fetch_add(1, Ordering::Relaxed)
        );
        asm.begin_range(&range);
        asm.load(dst, TLS_REG, tls::accum_off(i));
        asm.rdpmc(scratch, i as u8);
        asm.add(dst, scratch);
        asm.end_range(&range);
    }

    fn name(&self) -> &'static str {
        "limit"
    }
}

/// The uninstrumented baseline: attaches nothing, reads return zero.
///
/// `emit_read` emits a single `imm dst, 0` so downstream logging code can
/// be emitted unconditionally; overhead comparisons use the *no logging*
/// path by not calling the instrumenter at all.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullReader;

impl NullReader {
    /// The null reader.
    pub fn new() -> Self {
        NullReader
    }
}

impl CounterReader for NullReader {
    fn counters(&self) -> usize {
        0
    }

    fn emit_thread_setup(&self, asm: &mut Asm) {
        asm.mov(TLS_REG, Reg::R0);
    }

    fn emit_read(&self, asm: &mut Asm, _i: usize, dst: Reg, _scratch: Reg) {
        asm.imm(dst, 0);
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limit_reader_emits_unique_ranges() {
        let r = LimitReader::new(2);
        let mut asm = Asm::new();
        r.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
        r.emit_read(&mut asm, 1, Reg::R4, Reg::R5);
        let prog = asm.assemble().unwrap();
        let ranges: Vec<_> = prog.iter_ranges().collect();
        assert_eq!(ranges.len(), 2);
        for (name, (s, e)) in ranges {
            assert!(name.starts_with("limit_read."));
            assert_eq!(e - s, 3, "3-instruction sequence");
        }
    }

    #[test]
    fn two_readers_in_one_program_never_alias_ranges() {
        // Regression: per-reader counters both started at `limit_read.0`,
        // so two readers emitting into one program produced colliding range
        // names. The global counter makes all names unique.
        let a = LimitReader::new(2);
        let b = LimitReader::new(2);
        let mut asm = Asm::new();
        a.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
        b.emit_read(&mut asm, 0, Reg::R6, Reg::R7);
        a.emit_read(&mut asm, 1, Reg::R4, Reg::R5);
        b.emit_read(&mut asm, 1, Reg::R6, Reg::R7);
        let prog = asm.assemble().unwrap();
        let names: std::collections::HashSet<String> = prog
            .iter_ranges()
            .map(|(name, _)| name.to_string())
            .collect();
        assert_eq!(names.len(), 4, "all emitted range names must be distinct");
        assert!(names.iter().all(|n| n.starts_with("limit_read.")));
    }

    #[test]
    #[should_panic(expected = "not attached")]
    fn reading_unattached_counter_panics() {
        let r = LimitReader::new(1);
        let mut asm = Asm::new();
        r.emit_read(&mut asm, 3, Reg::R4, Reg::R5);
    }

    #[test]
    fn default_events_order() {
        let r = LimitReader::new(2);
        assert_eq!(r.events(), &[EventKind::Instructions, EventKind::Cycles]);
        assert_eq!(r.counters(), 2);
        assert_eq!(r.name(), "limit");
    }

    #[test]
    fn null_reader_is_empty() {
        let r = NullReader::new();
        assert_eq!(r.counters(), 0);
        let mut asm = Asm::new();
        r.emit_thread_setup(&mut asm);
        r.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
        let prog = asm.assemble().unwrap();
        assert_eq!(prog.len(), 2); // mov + imm
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_events_rejected() {
        let _ = LimitReader::with_events(vec![EventKind::Cycles; 5]);
    }
}
