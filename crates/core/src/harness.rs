//! The host-side experiment harness: build a machine, lay out per-thread
//! state, spawn instrumented threads, run, extract results.
//!
//! [`SessionBuilder`] fixes the hardware/kernel configuration and the
//! counter set; [`Session`] owns the booted kernel plus the memory layout
//! of every spawned thread's TLS block and log buffer.
//!
//! The counter set passed to [`SessionBuilder::events`] must match the
//! events the workload's [`crate::reader::CounterReader`] attaches — the
//! session uses its length to size and parse log records.

use crate::instrument::{StreamConfig, ENTER_MARK_PREFIX, EXIT_MARK_PREFIX};
use crate::report::{parse_log, RegionRecord, Regions};
use crate::tls;
use flight::{EventData, FlightConfig, RegionMark};
use sim_core::{CoreId, Freq, SimError, SimResult, ThreadId};
use sim_cpu::{Asm, EventKind, Machine, MachineConfig, MemLayout};
use sim_os::{IoRing, Kernel, KernelConfig, RunReport};
use std::collections::HashMap;

/// Configuration for a [`Session`].
#[derive(Debug)]
pub struct SessionBuilder {
    machine_cfg: MachineConfig,
    kernel_cfg: KernelConfig,
    events: Vec<EventKind>,
    log_capacity: usize,
    tls_user_bytes: u64,
    layout: Option<MemLayout>,
    aggregate_regions: usize,
    stream: Option<StreamConfig>,
    param_warnings: Vec<String>,
}

impl SessionBuilder {
    /// A session on `cores` cores with default hardware and kernel.
    pub fn new(cores: usize) -> Self {
        SessionBuilder {
            machine_cfg: MachineConfig::new(cores),
            kernel_cfg: KernelConfig::default(),
            events: Vec::new(),
            log_capacity: 65_536,
            tls_user_bytes: 256,
            layout: None,
            aggregate_regions: 0,
            stream: None,
            param_warnings: Vec::new(),
        }
    }

    /// A session built from a full runtime parameter set (the what-if
    /// engine's entry point). Hard-invalid parameter combinations are
    /// rejected here; degenerate-but-runnable combinations become warning
    /// lines the session routes through its [`WarnSink`] at teardown.
    /// Kernel fields the params do not cover keep the defaults — override
    /// afterwards via [`SessionBuilder::kernel_config`] if needed, but note
    /// that replaces the params-derived quantum/switch cost too.
    pub fn from_params(params: &crate::params::MachineParams) -> SimResult<Self> {
        let warnings = params.validate()?;
        let mut b = SessionBuilder::new(params.cores);
        b.machine_cfg = params.machine_config();
        b.kernel_cfg = params.kernel_config();
        b.param_warnings = warnings;
        Ok(b)
    }

    /// Enables stream-mode instrumentation: every spawned thread gets an
    /// SPSC telemetry ring of `cfg.capacity` slots (addressed via
    /// [`tls::RING_BASE`], filled by
    /// [`crate::Instrumenter::emit_exit_stream`]) *instead of* a post-run
    /// log buffer — stream-mode memory is bounded by the ring, not the
    /// event count.
    pub fn stream(mut self, cfg: StreamConfig) -> Self {
        assert!(
            cfg.capacity.is_power_of_two(),
            "ring capacity must be a power of two, got {}",
            cfg.capacity
        );
        self.stream = Some(cfg);
        self
    }

    /// Enables aggregate-mode instrumentation: every spawned thread gets a
    /// per-region table of `regions` entries, addressed via
    /// [`tls::AGG_BASE`] and filled by
    /// [`crate::Instrumenter::emit_exit_aggregate`].
    pub fn aggregate_regions(mut self, regions: usize) -> Self {
        self.aggregate_regions = regions;
        self
    }

    /// Continues allocating from a layout the workload already used during
    /// emission (so session allocations cannot overlap workload data).
    pub fn with_layout(mut self, layout: MemLayout) -> Self {
        self.layout = Some(layout);
        self
    }

    /// Sets the counter events (at most [`tls::MAX_COUNTERS`]).
    pub fn events(mut self, events: &[EventKind]) -> Self {
        self.events = events.to_vec();
        self
    }

    /// Replaces the machine configuration.
    pub fn machine_config(mut self, cfg: MachineConfig) -> Self {
        self.machine_cfg = cfg;
        self
    }

    /// Replaces the kernel configuration.
    pub fn kernel_config(mut self, cfg: KernelConfig) -> Self {
        self.kernel_cfg = cfg;
        self
    }

    /// Sets the per-thread log capacity in records.
    pub fn log_capacity(mut self, records: usize) -> Self {
        self.log_capacity = records;
        self
    }

    /// Sets the size of the workload-defined TLS area.
    pub fn tls_user_bytes(mut self, bytes: u64) -> Self {
        self.tls_user_bytes = bytes;
        self
    }

    /// A fresh assembler (convenience).
    pub fn asm(&mut self) -> Asm {
        Asm::new()
    }

    /// Assembles the program, boots the kernel, and registers every
    /// `limit_read.*` restart range with the LiMiT extension.
    pub fn build(self, asm: Asm) -> SimResult<Session> {
        if self.events.len() > tls::MAX_COUNTERS {
            return Err(SimError::Config(format!(
                "at most {} counter events",
                tls::MAX_COUNTERS
            )));
        }
        let prog = asm.assemble()?;
        let issues = sim_cpu::verify(&prog);
        if !issues.is_empty() {
            let listing: Vec<String> = issues.iter().map(|i| i.to_string()).collect();
            return Err(SimError::Program(format!(
                "program failed verification: {}",
                listing.join("; ")
            )));
        }
        let ranges: Vec<(u32, u32)> = prog
            .iter_ranges()
            .filter(|(name, _)| name.starts_with(crate::reader::LIMIT_RANGE_PREFIX))
            .map(|(_, r)| r)
            .collect();
        let machine = Machine::new(self.machine_cfg, prog)?;
        let mut kernel = Kernel::new(machine, self.kernel_cfg);
        for (s, e) in ranges {
            // Reader-emitted ranges are disjoint by construction; a rejected
            // registration is counted kernel-side and surfaced at teardown
            // (see `Session::warn_on_rejected_ranges`).
            let _ = kernel.register_restart_range(s, e);
        }
        Ok(Session {
            kernel,
            regions: Regions::new(),
            events: self.events,
            layout: self.layout.unwrap_or_default(),
            log_capacity: self.log_capacity,
            tls_user_bytes: self.tls_user_bytes,
            aggregate_regions: self.aggregate_regions,
            stream: self.stream,
            tls_of: HashMap::new(),
            report: None,
            warn_sink: None,
            param_warnings: self.param_warnings,
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct TlsInfo {
    base: u64,
    log_base: u64,
    agg_base: u64,
    ring_base: u64,
}

/// Everything a host-side collector needs to drain one thread's telemetry
/// ring (see `telemetry::Collector`).
#[derive(Debug, Clone, Copy)]
pub struct RingHandle {
    /// The producing thread.
    pub tid: ThreadId,
    /// Guest address of the thread's TLS block (head/tail indices live at
    /// [`tls::RING_HEAD`] / [`tls::RING_TAIL`] off this base).
    pub tls_base: u64,
    /// Guest address of slot 0.
    pub ring_base: u64,
    /// Ring capacity in slots (power of two).
    pub capacity: u64,
    /// Event deltas per record.
    pub counters: usize,
    /// Full-ring policy (see [`StreamConfig::overwrite`]).
    pub overwrite: bool,
}

/// Destination for a session's teardown warning lines.
///
/// By default warnings go straight to stderr — fine for one session, but N
/// concurrent fleet instances would interleave their lines arbitrarily. A
/// sink captures the formatted lines instead, so the host can serialize
/// them (the fleet driver buffers per instance and prints them in instance
/// order after the parallel phase). The structured counterparts stay on
/// [`RunReport::warnings`] either way.
pub struct WarnSink(Box<dyn FnMut(&str) + Send>);

impl WarnSink {
    /// Wraps a callback receiving each formatted warning line (no trailing
    /// newline).
    pub fn new(f: impl FnMut(&str) + Send + 'static) -> Self {
        WarnSink(Box::new(f))
    }
}

impl std::fmt::Debug for WarnSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WarnSink(..)")
    }
}

/// A booted, instrumented experiment run.
#[derive(Debug)]
pub struct Session {
    /// The kernel (and, through it, the machine).
    pub kernel: Kernel,
    /// Region-name registry shared with the workload generator.
    pub regions: Regions,
    events: Vec<EventKind>,
    layout: MemLayout,
    log_capacity: usize,
    tls_user_bytes: u64,
    aggregate_regions: usize,
    stream: Option<StreamConfig>,
    tls_of: HashMap<ThreadId, TlsInfo>,
    report: Option<RunReport>,
    warn_sink: Option<WarnSink>,
    /// Degenerate-params warnings from [`SessionBuilder::from_params`],
    /// surfaced at teardown through the warn sink.
    param_warnings: Vec<String>,
}

impl Session {
    /// The counter events in force.
    pub fn events(&self) -> &[EventKind] {
        &self.events
    }

    /// The guest core frequency (for converting cycles to time).
    pub fn freq(&self) -> Freq {
        self.kernel.machine.freq()
    }

    /// Allocates guest memory for workload data.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        self.layout.alloc(bytes, align)
    }

    /// Writes a 64-bit word into guest memory (host-side initialization).
    pub fn write_u64(&mut self, addr: u64, value: u64) -> SimResult<()> {
        self.kernel.machine.mem.write_u64(addr, value)
    }

    /// Reads a 64-bit word from guest memory.
    pub fn read_u64(&self, addr: u64) -> SimResult<u64> {
        self.kernel.machine.mem.read_u64(addr)
    }

    /// Spawns a thread at `entry` with a fresh TLS block and log buffer.
    /// The TLS base is passed in `r0`; `extra` arguments (at most 5) follow
    /// in `r1..`.
    pub fn spawn_instrumented(&mut self, entry: &str, extra: &[u64]) -> SimResult<ThreadId> {
        self.spawn_inner(entry, extra, None)
    }

    /// Like [`Session::spawn_instrumented`], pinned to `core`.
    pub fn spawn_instrumented_pinned(
        &mut self,
        entry: &str,
        extra: &[u64],
        core: CoreId,
    ) -> SimResult<ThreadId> {
        self.spawn_inner(entry, extra, Some(core))
    }

    fn spawn_inner(
        &mut self,
        entry: &str,
        extra: &[u64],
        core: Option<CoreId>,
    ) -> SimResult<ThreadId> {
        if extra.len() > 5 {
            return Err(SimError::Harness("at most 5 extra spawn args".into()));
        }
        let rec = tls::record_size(self.events.len().max(1));
        let tls_base = self.layout.alloc(tls::TLS_SIZE + self.tls_user_bytes, 64);
        // Stream mode replaces the post-run log with the telemetry ring:
        // memory is bounded by the ring capacity regardless of run length.
        let log_base = if self.stream.is_none() {
            self.layout.alloc(self.log_capacity as u64 * rec, 64)
        } else {
            0
        };
        let agg_base = if self.aggregate_regions > 0 {
            let entry = crate::instrument::aggregate_entry_size(self.events.len());
            self.layout.alloc(self.aggregate_regions as u64 * entry, 64)
        } else {
            0
        };
        let ring_base = if let Some(cfg) = self.stream {
            let slot = tls::ring_slot_size(self.events.len());
            self.layout.alloc(cfg.capacity * slot, 64)
        } else {
            0
        };
        let mem = &mut self.kernel.machine.mem;
        mem.write_u64(tls_base + tls::LOG_CURSOR as u64, log_base)?;
        let log_end = if log_base != 0 {
            log_base + self.log_capacity as u64 * rec
        } else {
            0
        };
        mem.write_u64(tls_base + tls::LOG_END as u64, log_end)?;
        if agg_base != 0 {
            mem.write_u64(tls_base + tls::AGG_BASE as u64, agg_base)?;
        }
        if ring_base != 0 {
            mem.write_u64(tls_base + tls::RING_BASE as u64, ring_base)?;
            mem.write_u64(tls_base + tls::RING_HEAD as u64, 0)?;
            mem.write_u64(tls_base + tls::RING_TAIL as u64, 0)?;
        }
        let mut args = vec![tls_base];
        args.extend_from_slice(extra);
        let pc = self.kernel.machine.prog.entry(entry)?;
        let tid = self.kernel.spawn_at(pc, &args, core);
        if let Some(cfg) = self.stream {
            // Let the kernel append blocking-I/O wait records to the same
            // telemetry ring the thread's instrumentation streams into.
            self.kernel.set_io_ring(
                tid,
                IoRing {
                    base: ring_base,
                    head_addr: tls_base + tls::RING_HEAD as u64,
                    tail_addr: tls_base + tls::RING_TAIL as u64,
                    dropped_addr: tls_base + tls::DROPPED as u64,
                    capacity: cfg.capacity,
                    counters: self.events.len(),
                    overwrite: cfg.overwrite,
                },
            );
        }
        self.tls_of.insert(
            tid,
            TlsInfo {
                base: tls_base,
                log_base,
                agg_base,
                ring_base,
            },
        );
        Ok(tid)
    }

    /// Turns on the machine-wide flight recorder: installs per-core event
    /// rings, scans the program for the instrumenter's region marks and the
    /// reader's `limit_read.*` restart ranges (so in-range `rdpmc` reads
    /// become counter samples), and leaves every kernel/CPU emission site
    /// live. Call before [`Session::run`]; costs nothing if never called.
    pub fn enable_flight(&mut self, cfg: FlightConfig) {
        let mut marks = HashMap::new();
        let mut limit_ranges = Vec::new();
        for (name, (start, end)) in self.kernel.machine.prog.iter_ranges() {
            if name.starts_with(ENTER_MARK_PREFIX) {
                marks.insert(start, RegionMark::Enter);
            } else if let Some(rest) = name.strip_prefix(EXIT_MARK_PREFIX) {
                let region = rest
                    .trim_start_matches('.')
                    .split('.')
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0);
                marks.insert(start, RegionMark::Exit(region));
            } else if name.starts_with(crate::reader::LIMIT_RANGE_PREFIX) {
                limit_ranges.push((start, end));
            }
        }
        self.kernel.machine.enable_flight(cfg);
        let fl = self.kernel.machine.flight_mut().expect("just enabled");
        fl.set_marks(marks);
        fl.set_limit_ranges(&limit_ranges);
    }

    /// Region id → name map, in the shape the flight-trace Chrome export
    /// wants ([`flight::chrome_trace`]).
    pub fn region_names(&self) -> HashMap<u64, String> {
        self.regions
            .iter()
            .map(|(id, name)| (id, name.to_string()))
            .collect()
    }

    /// Runs to completion, retaining the report.
    pub fn run(&mut self) -> SimResult<RunReport> {
        self.flight_session_open();
        let mut report = self.kernel.run()?;
        self.finish_run(&mut report);
        Ok(report)
    }

    /// Runs until the given thread exits (background threads may still be
    /// live), retaining the report.
    pub fn run_until_exit(&mut self, tid: ThreadId) -> SimResult<RunReport> {
        self.flight_session_open();
        let mut report = self.kernel.run_until_exit(tid)?;
        self.finish_run(&mut report);
        Ok(report)
    }

    fn flight_session_open(&mut self) {
        let threads = self.tls_of.len() as u32;
        let now = self.kernel.machine.global_clock();
        if let Some(fl) = self.kernel.machine.flight_mut() {
            fl.record_host(now, None, EventData::SessionOpen { threads });
        }
    }

    /// Teardown accounting for externally-driven runs: callers that drive
    /// `kernel.run_with_hook` themselves (the telemetry streaming path)
    /// never pass through [`Session::run`], so they invoke this to fill
    /// the report's warnings and route the warning lines through the
    /// installed [`WarnSink`].
    pub fn finalize_report(&mut self, report: &mut RunReport) {
        self.finish_run(report);
    }

    /// Teardown accounting: fills the report's structured warnings (the
    /// kernel already filled the fields it owns), mirrors them onto the
    /// flight recorder's host ring, and prints the legacy stderr lines.
    fn finish_run(&mut self, report: &mut RunReport) {
        let (dropped, worst) = self.drop_stats();
        report.warnings.dropped_records = dropped;
        report.warnings.worst_dropper = worst;
        report.warnings.busiest_region = worst.map(|(tid, _)| match self.busiest_region(tid) {
            Some(id) => {
                let name = self.regions.name(id);
                if name == "?" {
                    format!("region {id}")
                } else {
                    name.to_string()
                }
            }
            None => "unknown".to_string(),
        });
        let w = report.warnings.clone();

        let now = self.kernel.machine.global_clock();
        if let Some(fl) = self.kernel.machine.flight_mut() {
            fl.record_host(
                now,
                None,
                EventData::SessionClose {
                    dropped: w.dropped_records,
                    rejected: w.rejected_ranges,
                    unfixed: w.unfixed_races,
                },
            );
        }
        self.report = Some(report.clone());

        // Surface silent record loss: name the worst thread and its
        // most-affected region (the region appearing most often in the
        // records that *did* land — the best available proxy for what was
        // lost).
        if let Some((tid, d)) = w.worst_dropper {
            let region = w.busiest_region.as_deref().unwrap_or("unknown");
            self.warn(&format!(
                "warning: {} instrumentation record(s) dropped to full buffers \
                 (worst: {tid} with {d}; most-affected region: {region})",
                w.dropped_records
            ));
        }
        // Surface silently unprotected read sequences: a rejected
        // restart-range registration means interrupts landing in that
        // sequence could not be rewound, so its reads may be torn.
        if w.rejected_ranges > 0 {
            self.warn(&format!(
                "warning: {} restart-range registration(s) rejected for overlap; \
                 the affected read sequences ran without the atomicity fix-up",
                w.rejected_ranges
            ));
        }
        // Degenerate-params warnings (see `MachineParams::validate`): the
        // run completed, but under cost orderings the paper's claims do not
        // hold for.
        let param_warnings = std::mem::take(&mut self.param_warnings);
        for line in &param_warnings {
            self.warn(line);
        }
        self.param_warnings = param_warnings;
    }

    /// Routes teardown warning lines through the installed sink instead of
    /// stderr (see [`WarnSink`]). Install before running.
    pub fn set_warn_sink(&mut self, sink: WarnSink) {
        self.warn_sink = Some(sink);
    }

    fn warn(&mut self, line: &str) {
        match &mut self.warn_sink {
            Some(WarnSink(f)) => f(line),
            None => eprintln!("{line}"),
        }
    }

    /// Total dropped records across spawned threads, plus the worst
    /// offender.
    fn drop_stats(&self) -> (u64, Option<(ThreadId, u64)>) {
        let mut total = 0u64;
        let mut worst: Option<(ThreadId, u64)> = None;
        for tid in self.spawned_tids() {
            let d = self.dropped(tid).unwrap_or(0);
            total += d;
            if d > 0 && worst.is_none_or(|(_, w)| d > w) {
                worst = Some((tid, d));
            }
        }
        (total, worst)
    }

    /// The region id appearing most often in a thread's landed records
    /// (log records in log mode, resident ring slots in stream mode).
    fn busiest_region(&self, tid: ThreadId) -> Option<u64> {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        if let Some(cfg) = self.stream {
            let info = self.tls(tid);
            let head = self
                .read_u64(info.base + tls::RING_HEAD as u64)
                .unwrap_or(0);
            let slot = tls::ring_slot_size(self.events.len());
            for i in 0..head.min(cfg.capacity) {
                if let Ok(id) = self.read_u64(info.ring_base + i * slot) {
                    *counts.entry(id).or_insert(0) += 1;
                }
            }
        } else {
            for r in self.records(tid).ok()? {
                *counts.entry(r.region).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .max_by_key(|&(id, n)| (n, std::cmp::Reverse(id)))
            .map(|(id, _)| id)
    }

    /// Drain handles for every spawned thread's telemetry ring, in spawn
    /// order (stream-mode sessions only).
    pub fn ring_handles(&self) -> Vec<RingHandle> {
        let Some(cfg) = self.stream else {
            return Vec::new();
        };
        self.spawned_tids()
            .into_iter()
            .map(|tid| {
                let info = self.tls(tid);
                RingHandle {
                    tid,
                    tls_base: info.base,
                    ring_base: info.ring_base,
                    capacity: cfg.capacity,
                    counters: self.events.len(),
                    overwrite: cfg.overwrite,
                }
            })
            .collect()
    }

    /// The stream configuration, if this session was built with
    /// [`SessionBuilder::stream`].
    pub fn stream_config(&self) -> Option<StreamConfig> {
        self.stream
    }

    /// The retained run report.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Session::run`].
    pub fn report(&self) -> &RunReport {
        self.report.as_ref().expect("session has not run yet")
    }

    fn tls(&self, tid: ThreadId) -> TlsInfo {
        *self
            .tls_of
            .get(&tid)
            .expect("thread was not spawned through this session")
    }

    /// The TLS base address of a spawned thread.
    pub fn tls_base(&self, tid: ThreadId) -> u64 {
        self.tls(tid).base
    }

    /// All threads spawned through this session, in spawn order.
    pub fn spawned_tids(&self) -> Vec<ThreadId> {
        let mut v: Vec<_> = self.tls_of.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Sum of the final virtualized values of counter `i` across every
    /// spawned thread — e.g. total user cycles when counter `i` counts
    /// [`EventKind::Cycles`](sim_cpu::EventKind::Cycles).
    pub fn counter_grand_total(&self, i: usize) -> SimResult<u64> {
        self.spawned_tids()
            .into_iter()
            .map(|t| self.counter_total(t, i))
            .sum()
    }

    /// The final 64-bit virtualized value of LiMiT counter `i` for `tid`
    /// (valid after the thread exits: the kernel folds the live counter on
    /// the final switch-out).
    pub fn counter_total(&self, tid: ThreadId, i: usize) -> SimResult<u64> {
        if i >= self.events.len() {
            return Err(SimError::Harness(format!("no counter {i} configured")));
        }
        self.read_u64(self.tls(tid).base + tls::accum_off(i) as u64)
    }

    /// Extracts a thread's instrumentation records (deltas sized by the
    /// session's event count).
    pub fn records(&self, tid: ThreadId) -> SimResult<Vec<RegionRecord>> {
        self.records_with(tid, self.events.len())
    }

    /// Extracts records with an explicit per-record delta count (for runs
    /// whose reader attaches a different counter set than the session's).
    pub fn records_with(&self, tid: ThreadId, counters: usize) -> SimResult<Vec<RegionRecord>> {
        let info = self.tls(tid);
        let cursor = self.read_u64(info.base + tls::LOG_CURSOR as u64)?;
        Ok(parse_log(
            &self.kernel.machine.mem,
            info.log_base,
            cursor,
            counters,
        ))
    }

    /// Records from every spawned thread, tagged by thread.
    pub fn all_records(&self) -> SimResult<Vec<(ThreadId, RegionRecord)>> {
        let mut tids: Vec<_> = self.tls_of.keys().copied().collect();
        tids.sort_unstable();
        let mut out = Vec::new();
        for tid in tids {
            for r in self.records(tid)? {
                out.push((tid, r));
            }
        }
        Ok(out)
    }

    /// Number of records a thread dropped to a full log buffer.
    pub fn dropped(&self, tid: ThreadId) -> SimResult<u64> {
        self.read_u64(self.tls(tid).base + tls::DROPPED as u64)
    }

    /// Extracts a thread's aggregate table: one
    /// `(count, sums-per-counter)` row per region id `0..regions`
    /// configured at build time.
    pub fn aggregates(&self, tid: ThreadId) -> SimResult<Vec<RegionAggregate>> {
        let info = self.tls(tid);
        if info.agg_base == 0 {
            return Err(SimError::Harness(
                "session was built without aggregate_regions".into(),
            ));
        }
        let k = self.events.len();
        let entry = crate::instrument::aggregate_entry_size(k);
        (0..self.aggregate_regions as u64)
            .map(|r| {
                let base = info.agg_base + r * entry;
                Ok(RegionAggregate {
                    region: r,
                    count: self.read_u64(base)?,
                    sums: (0..k)
                        .map(|i| self.read_u64(base + 8 * (1 + i as u64)))
                        .collect::<SimResult<_>>()?,
                })
            })
            .collect()
    }

    /// Sums aggregate tables across every spawned thread.
    pub fn aggregates_total(&self) -> SimResult<Vec<RegionAggregate>> {
        let mut total: Vec<RegionAggregate> = (0..self.aggregate_regions as u64)
            .map(|r| RegionAggregate {
                region: r,
                count: 0,
                sums: vec![0; self.events.len()],
            })
            .collect();
        for tid in self.spawned_tids() {
            for (acc, row) in total.iter_mut().zip(self.aggregates(tid)?) {
                acc.count += row.count;
                for (a, s) in acc.sums.iter_mut().zip(&row.sums) {
                    *a += s;
                }
            }
        }
        Ok(total)
    }
}

/// One region's aggregate-mode totals for one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionAggregate {
    /// Region id (the table index).
    pub region: u64,
    /// Exits recorded.
    pub count: u64,
    /// Per-counter delta sums.
    pub sums: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::Instrumenter;
    use crate::reader::{CounterReader, LimitReader};
    use sim_cpu::Reg;
    use sim_os::syscall::nr;

    fn two_counter_builder(cores: usize) -> SessionBuilder {
        SessionBuilder::new(cores).events(&[EventKind::Instructions, EventKind::Cycles])
    }

    #[test]
    fn limit_read_sequence_counts_exactly() {
        let reader = LimitReader::new(1);
        let mut b = SessionBuilder::new(1).events(&[EventKind::Instructions]);
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        asm.burst(500);
        reader.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
        asm.mov(Reg::R0, Reg::R4);
        asm.syscall(nr::LOG_VALUE);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.spawn_instrumented("main", &[]).unwrap();
        s.run().unwrap();
        // Counted after LIMIT_OPEN returns: burst(500) + load = 501 before
        // the rdpmc reads.
        assert_eq!(s.kernel.log(), &[501]);
    }

    #[test]
    fn restart_ranges_are_registered_automatically() {
        let reader = LimitReader::new(1);
        let mut b = SessionBuilder::new(1).events(&[EventKind::Instructions]);
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        reader.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
        reader.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
        asm.halt();
        let s = b.build(asm).unwrap();
        assert_eq!(s.kernel.limit().ranges().len(), 2);
    }

    #[test]
    fn instrumented_region_produces_records() {
        let reader = LimitReader::new(2);
        let ins = Instrumenter::new(&reader);
        let mut b = two_counter_builder(1);
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        ins.emit_enter(&mut asm);
        asm.burst(200);
        ins.emit_exit(&mut asm, 42);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        let tid = s.spawn_instrumented("main", &[]).unwrap();
        s.run().unwrap();
        let recs = s.records(tid).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].region, 42);
        // Instruction delta = instructions retired between the enter rdpmc
        // read and the exit rdpmc read of counter 0: the enter rdpmc's own
        // retirement + add + store (3), counter 1's enter block (4), the
        // burst (200), the exit preamble (2 loads + br + imm + store = 5),
        // and the exit read's load (1) = 213.
        assert_eq!(recs[0].deltas[0], 213);
        // Cycle delta is at least the instruction delta.
        assert!(recs[0].deltas[1] >= recs[0].deltas[0]);
        assert_eq!(s.dropped(tid).unwrap(), 0);
    }

    #[test]
    fn counter_total_survives_thread_exit() {
        let reader = LimitReader::new(1);
        let mut b = SessionBuilder::new(1).events(&[EventKind::Instructions]);
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        asm.burst(1234);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        let tid = s.spawn_instrumented("main", &[]).unwrap();
        s.run().unwrap();
        // Final fold at exit: burst + halt = 1235 exactly.
        assert_eq!(s.counter_total(tid, 0).unwrap(), 1235);
        assert!(s.counter_total(tid, 5).is_err());
    }

    #[test]
    fn log_overflow_increments_dropped() {
        let reader = LimitReader::new(1);
        let ins = Instrumenter::new(&reader);
        let mut b = SessionBuilder::new(1)
            .events(&[EventKind::Instructions])
            .log_capacity(2);
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        for _ in 0..5 {
            ins.emit_enter(&mut asm);
            asm.burst(10);
            ins.emit_exit(&mut asm, 1);
        }
        asm.halt();
        let mut s = b.build(asm).unwrap();
        let tid = s.spawn_instrumented("main", &[]).unwrap();
        s.run().unwrap();
        assert_eq!(s.records(tid).unwrap().len(), 2);
        assert_eq!(s.dropped(tid).unwrap(), 3);
        // Satellite accounting: the same loss shows up as structured data
        // on the report, not only as a stderr line.
        let w = &s.report().warnings;
        assert_eq!(w.dropped_records, 3);
        assert_eq!(w.worst_dropper, Some((tid, 3)));
        assert_eq!(w.busiest_region.as_deref(), Some("region 1"));
        assert!(w.any());
    }

    #[test]
    fn warn_sink_captures_teardown_lines_instead_of_stderr() {
        use std::sync::{Arc, Mutex};

        let reader = LimitReader::new(1);
        let ins = Instrumenter::new(&reader);
        let mut b = SessionBuilder::new(1)
            .events(&[EventKind::Instructions])
            .log_capacity(1);
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        for _ in 0..3 {
            ins.emit_enter(&mut asm);
            asm.burst(10);
            ins.emit_exit(&mut asm, 1);
        }
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.spawn_instrumented("main", &[]).unwrap();
        let lines = Arc::new(Mutex::new(Vec::<String>::new()));
        let captured = Arc::clone(&lines);
        s.set_warn_sink(WarnSink::new(move |line| {
            captured.lock().unwrap().push(line.to_string());
        }));
        s.run().unwrap();
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 1, "expected exactly the drop warning");
        assert!(lines[0].contains("dropped to full buffers"), "{}", lines[0]);
        // The structured report still carries the same accounting.
        assert_eq!(s.report().warnings.dropped_records, 2);
    }

    #[test]
    fn flight_recorder_captures_session_timeline() {
        use flight::EventData;

        let reader = LimitReader::new(1);
        let ins = Instrumenter::new(&reader);
        let mut b = SessionBuilder::new(1).events(&[EventKind::Instructions]);
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        ins.emit_enter(&mut asm);
        asm.burst(50);
        ins.emit_exit(&mut asm, 7);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.enable_flight(FlightConfig::default());
        s.spawn_instrumented("main", &[]).unwrap();
        s.run().unwrap();

        let fl = s.kernel.machine.flight().expect("enabled");
        assert_eq!(fl.evicted(), 0);
        let events: Vec<_> = fl.rings()[0].iter().map(|e| &e.data).collect();
        let count = |pred: &dyn Fn(&EventData) -> bool| events.iter().filter(|e| pred(e)).count();
        // The enter sequence and the region-7 exit sequence both marked.
        assert_eq!(count(&|e| matches!(e, EventData::RegionEnter { .. })), 1);
        assert_eq!(
            count(&|e| matches!(e, EventData::RegionExit { region: 7, .. })),
            1
        );
        // limit_open attach, in-range rdpmc reads (one per enter/exit),
        // balanced switch and syscall events.
        assert_eq!(count(&|e| matches!(e, EventData::LimitOpen { .. })), 1);
        assert_eq!(
            count(&|e| matches!(e, EventData::Rdpmc { in_range: true, .. })),
            2
        );
        assert_eq!(
            count(&|e| matches!(e, EventData::SwitchIn)),
            count(&|e| matches!(e, EventData::SwitchOut { .. }))
        );
        assert_eq!(
            count(&|e| matches!(e, EventData::SyscallEnter { .. })),
            count(&|e| matches!(e, EventData::SyscallExit { .. }))
        );
        // Host ring has the open/close lifecycle pair.
        let host: Vec<_> = fl.host_ring().iter().map(|e| &e.data).collect();
        assert!(matches!(host[0], EventData::SessionOpen { threads: 1 }));
        assert!(matches!(host[1], EventData::SessionClose { .. }));
    }

    #[test]
    fn extra_args_flow_to_registers() {
        let mut b = SessionBuilder::new(1);
        let mut asm = b.asm();
        asm.export("main");
        // r1 (first extra) logged.
        asm.mov(Reg::R0, Reg::R1);
        asm.syscall(nr::LOG_VALUE);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.spawn_instrumented("main", &[777]).unwrap();
        s.run().unwrap();
        assert_eq!(s.kernel.log(), &[777]);
    }

    #[test]
    fn too_many_extra_args_rejected() {
        let mut b = SessionBuilder::new(1);
        let mut asm = b.asm();
        asm.export("main");
        asm.halt();
        let mut s = b.build(asm).unwrap();
        assert!(s.spawn_instrumented("main", &[1, 2, 3, 4, 5, 6]).is_err());
    }

    #[test]
    fn aggregate_mode_accumulates_counts_and_sums() {
        let reader = LimitReader::new(1);
        let ins = Instrumenter::new(&reader);
        let mut b = SessionBuilder::new(1)
            .events(&[EventKind::Instructions])
            .aggregate_regions(3);
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        for (region, work) in [(0u64, 50u32), (2, 80), (0, 50)] {
            ins.emit_enter(&mut asm);
            asm.burst(work);
            ins.emit_exit_aggregate(&mut asm, region);
        }
        asm.halt();
        let mut s = b.build(asm).unwrap();
        let tid = s.spawn_instrumented("main", &[]).unwrap();
        s.run().unwrap();
        let agg = s.aggregates(tid).unwrap();
        assert_eq!(agg.len(), 3);
        assert_eq!(agg[0].count, 2);
        assert_eq!(agg[1].count, 0);
        assert_eq!(agg[2].count, 1);
        // Each exit measures its burst plus a fixed instrumentation
        // preamble; region 0's sum covers two 50-instruction bursts.
        assert!(agg[0].sums[0] >= 100);
        assert!(agg[2].sums[0] >= 80);
        assert!(agg[0].sums[0] < 2 * agg[2].sums[0]);
        let total = s.aggregates_total().unwrap();
        assert_eq!(total[0], agg[0]);
    }

    #[test]
    fn stream_mode_appends_to_ring_and_drops_when_full() {
        let reader = LimitReader::new(1);
        let ins = Instrumenter::new(&reader);
        let cfg = StreamConfig::dropping(4);
        let mut b = SessionBuilder::new(1)
            .events(&[EventKind::Instructions])
            .stream(cfg);
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        for r in 0..6u64 {
            ins.emit_enter(&mut asm);
            asm.burst(10);
            ins.emit_exit_stream(&mut asm, r, cfg);
        }
        asm.halt();
        let mut s = b.build(asm).unwrap();
        let tid = s.spawn_instrumented("main", &[]).unwrap();
        s.run().unwrap();
        let h = s.ring_handles()[0];
        assert_eq!(h.tid, tid);
        assert_eq!(h.capacity, 4);
        // Records 0..4 land; 4 and 5 hit a full ring and are dropped.
        let head = s.read_u64(h.tls_base + tls::RING_HEAD as u64).unwrap();
        assert_eq!(head, 4);
        assert_eq!(s.dropped(tid).unwrap(), 2);
        let slot = tls::ring_slot_size(1);
        for i in 0..4u64 {
            assert_eq!(s.read_u64(h.ring_base + i * slot).unwrap(), i);
            // Delta covers at least the burst.
            assert!(s.read_u64(h.ring_base + i * slot + 8).unwrap() >= 10);
        }
    }

    #[test]
    fn stream_overwrite_mode_keeps_newest_records() {
        let reader = LimitReader::new(1);
        let ins = Instrumenter::new(&reader);
        let cfg = StreamConfig::overwriting(4);
        let mut b = SessionBuilder::new(1)
            .events(&[EventKind::Instructions])
            .stream(cfg);
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        for r in 0..6u64 {
            ins.emit_enter(&mut asm);
            asm.burst(10);
            ins.emit_exit_stream(&mut asm, r, cfg);
        }
        asm.halt();
        let mut s = b.build(asm).unwrap();
        let tid = s.spawn_instrumented("main", &[]).unwrap();
        s.run().unwrap();
        let h = s.ring_handles()[0];
        let head = s.read_u64(h.tls_base + tls::RING_HEAD as u64).unwrap();
        assert_eq!(head, 6);
        assert_eq!(s.dropped(tid).unwrap(), 0);
        // Slots 0,1 were overwritten by records 4,5; slots 2,3 still hold
        // records 2,3.
        let slot = tls::ring_slot_size(1);
        let ids: Vec<u64> = (0..4u64)
            .map(|i| s.read_u64(h.ring_base + i * slot).unwrap())
            .collect();
        assert_eq!(ids, vec![4, 5, 2, 3]);
    }

    #[test]
    fn non_stream_sessions_have_no_ring_handles() {
        let mut b = SessionBuilder::new(1);
        let mut asm = b.asm();
        asm.export("main");
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.spawn_instrumented("main", &[]).unwrap();
        s.run().unwrap();
        assert!(s.ring_handles().is_empty());
        assert!(s.stream_config().is_none());
    }

    #[test]
    fn aggregates_require_configuration() {
        let mut b = SessionBuilder::new(1);
        let mut asm = b.asm();
        asm.export("main");
        asm.halt();
        let mut s = b.build(asm).unwrap();
        let tid = s.spawn_instrumented("main", &[]).unwrap();
        s.run().unwrap();
        assert!(s.aggregates(tid).is_err());
    }

    #[test]
    fn too_many_events_rejected_at_build() {
        let b = SessionBuilder::new(1).events(&[EventKind::Cycles; 5]);
        assert!(b.build(Asm::new()).is_err());
    }
}
