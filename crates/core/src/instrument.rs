//! Region instrumentation: the code the paper wraps around every critical
//! section and task.
//!
//! [`Instrumenter::emit_enter`] snapshots every attached counter into the
//! thread's TLS scratch slots; [`Instrumenter::emit_exit`] re-reads them,
//! computes deltas, and appends a `(region_id, delta...)` record to the
//! thread's log buffer. The log append is plain guest code — its cost (and
//! cache perturbation) is *part of the measured overhead*, as it is in the
//! real tool.
//!
//! Register discipline: enter/exit clobber `r4..r7` (plus `r0..r3` under
//! syscall-based readers). `r15` is the TLS base.

use crate::reader::CounterReader;
use crate::tls;
use sim_cpu::{AluOp, Asm, Cond, Reg};
use std::sync::atomic::{AtomicU64, Ordering};

/// Named-range prefix marking a region-enter sequence. The flight
/// recorder installs an instant at the range's first instruction; the
/// range itself is pure metadata and costs nothing at execution time.
pub const ENTER_MARK_PREFIX: &str = "flight.enter";

/// Named-range prefix marking a region-exit sequence. The region id is
/// the third dot-separated segment (`flight.exit.<region>.<n>`).
pub const EXIT_MARK_PREFIX: &str = "flight.exit";

/// Range names must be unique program-wide; regions repeat (one enter per
/// call site), so a process-global counter disambiguates — same idiom as
/// the reader's `limit_read.<n>` restart ranges.
static NEXT_MARK: AtomicU64 = AtomicU64::new(0);

fn fresh_mark(prefix: &str) -> String {
    format!("{prefix}.{}", NEXT_MARK.fetch_add(1, Ordering::Relaxed))
}

/// How region-exit measurements leave an instrumented thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogMode {
    /// Append one `(region, deltas...)` record per exit to a fixed
    /// per-thread log, drained after the run (full per-event detail,
    /// unbounded only up to the log capacity).
    Log,
    /// Fold each exit into a bounded per-region count/sum table (always-on
    /// accounting; no per-event detail).
    Aggregate,
    /// Append records to a per-thread SPSC ring a host-side collector
    /// drains *while the run executes* — bounded memory with full
    /// per-event detail (the telemetry subsystem's transport).
    Stream(StreamConfig),
}

impl LogMode {
    /// The stream configuration, if this is [`LogMode::Stream`].
    pub fn stream(&self) -> Option<StreamConfig> {
        match self {
            LogMode::Stream(cfg) => Some(*cfg),
            _ => None,
        }
    }
}

/// Parameters of stream-mode (ring-buffer) instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Ring capacity in records; must be a power of two.
    pub capacity: u64,
    /// Full-ring policy: `false` drops the new record (bumping the
    /// [`tls::DROPPED`] count — the producer stays O(1) and never waits);
    /// `true` overwrites the oldest record (the producer skips the full
    /// check entirely; the collector accounts overwritten records on
    /// drain).
    pub overwrite: bool,
}

impl StreamConfig {
    /// A drop-policy ring of `capacity` records.
    pub fn dropping(capacity: u64) -> Self {
        StreamConfig {
            capacity,
            overwrite: false,
        }
    }

    /// An overwrite-policy ring of `capacity` records.
    pub fn overwriting(capacity: u64) -> Self {
        StreamConfig {
            capacity,
            overwrite: true,
        }
    }
}

/// Emits region enter/exit instrumentation for a given reader.
pub struct Instrumenter<'a> {
    reader: &'a dyn CounterReader,
}

impl<'a> Instrumenter<'a> {
    /// Wraps a reader.
    pub fn new(reader: &'a dyn CounterReader) -> Self {
        Instrumenter { reader }
    }

    /// The wrapped reader.
    pub fn reader(&self) -> &dyn CounterReader {
        self.reader
    }

    /// Emits a region entry: snapshot every counter into TLS scratch.
    pub fn emit_enter(&self, asm: &mut Asm) {
        if self.reader.counters() == 0 {
            // Nothing to emit (null reader) — and an empty named range
            // would fail program verification.
            return;
        }
        let mark = fresh_mark(ENTER_MARK_PREFIX);
        asm.begin_range(&mark);
        for i in 0..self.reader.counters() {
            self.reader.emit_read(asm, i, Reg::R4, Reg::R5);
            asm.store(Reg::R4, tls::TLS_REG, tls::scratch_off(i));
        }
        asm.end_range(&mark);
    }

    /// Emits a region exit for `region_id`: read counters, compute deltas
    /// against the entry snapshot, and append one record to the thread's
    /// log (or bump the dropped count if the buffer is full).
    pub fn emit_exit(&self, asm: &mut Asm, region_id: u64) {
        let k = self.reader.counters();
        let mark = fresh_mark(&format!("{EXIT_MARK_PREFIX}.{region_id}"));
        asm.begin_range(&mark);
        // r6 = cursor; r7 = end.
        asm.load(Reg::R6, tls::TLS_REG, tls::LOG_CURSOR);
        asm.load(Reg::R7, tls::TLS_REG, tls::LOG_END);
        let full = asm.new_label();
        let done = asm.new_label();
        asm.br(Cond::Ge, Reg::R6, Reg::R7, full);
        // Record header.
        asm.imm(Reg::R4, region_id);
        asm.store(Reg::R4, Reg::R6, 0);
        // Deltas.
        for i in 0..k {
            self.reader.emit_read(asm, i, Reg::R4, Reg::R5);
            asm.load(Reg::R5, tls::TLS_REG, tls::scratch_off(i));
            asm.sub(Reg::R4, Reg::R5);
            asm.store(Reg::R4, Reg::R6, (8 * (1 + i)) as i32);
        }
        // Advance the cursor.
        asm.alui_add(Reg::R6, tls::record_size(k));
        asm.store(Reg::R6, tls::TLS_REG, tls::LOG_CURSOR);
        asm.jmp(done);
        asm.bind(full);
        asm.load(Reg::R4, tls::TLS_REG, tls::DROPPED);
        asm.alui_add(Reg::R4, 1);
        asm.store(Reg::R4, tls::TLS_REG, tls::DROPPED);
        asm.bind(done);
        asm.end_range(&mark);
    }

    /// Emits a region exit for `region_id` in the configured `mode`
    /// (convenience dispatcher for workload emitters).
    pub fn emit_exit_mode(&self, asm: &mut Asm, region_id: u64, mode: LogMode) {
        match mode {
            LogMode::Log => self.emit_exit(asm, region_id),
            LogMode::Aggregate => self.emit_exit_aggregate(asm, region_id),
            LogMode::Stream(cfg) => self.emit_exit_stream(asm, region_id, cfg),
        }
    }

    /// Emits a region exit in **stream mode**: appends the record to the
    /// thread's SPSC telemetry ring instead of the post-run log.
    ///
    /// The ring lives in guest memory at the address stored in
    /// [`tls::RING_BASE`]; `head` ([`tls::RING_HEAD`]) and `tail`
    /// ([`tls::RING_TAIL`]) are free-running indices, so `head - tail` is
    /// the fill level and `head & (capacity - 1)` selects the slot. Slots
    /// are [`tls::ring_slot_size`] bytes (record size padded to a power of
    /// two), making the address computation mask + shift + add — no
    /// multiply and no allocation on the guest hot path.
    ///
    /// Publication discipline: the record body is stored *before* the head
    /// index advances, so a collector draining between guest instructions
    /// never observes a half-written record.
    pub fn emit_exit_stream(&self, asm: &mut Asm, region_id: u64, cfg: StreamConfig) {
        assert!(
            cfg.capacity.is_power_of_two(),
            "ring capacity must be a power of two, got {}",
            cfg.capacity
        );
        let k = self.reader.counters();
        let shift = tls::ring_slot_shift(k);
        let mark = fresh_mark(&format!("{EXIT_MARK_PREFIX}.{region_id}"));
        asm.begin_range(&mark);
        // r6 = head (kept across the record body to publish at the end).
        asm.load(Reg::R6, tls::TLS_REG, tls::RING_HEAD);
        let drop_path = (!cfg.overwrite).then(|| (asm.new_label(), asm.new_label()));
        if let Some((full, _)) = drop_path {
            // Drop policy: full when head - tail == capacity.
            asm.load(Reg::R7, tls::TLS_REG, tls::RING_TAIL);
            asm.mov(Reg::R4, Reg::R6);
            asm.sub(Reg::R4, Reg::R7);
            asm.imm(Reg::R5, cfg.capacity);
            asm.br(Cond::Ge, Reg::R4, Reg::R5, full);
        }
        // r7 = slot address = ring_base + ((head & mask) << shift).
        asm.mov(Reg::R7, Reg::R6);
        asm.alui(AluOp::And, Reg::R7, cfg.capacity - 1);
        asm.alui(AluOp::Shl, Reg::R7, shift);
        asm.load(Reg::R4, tls::TLS_REG, tls::RING_BASE);
        asm.add(Reg::R7, Reg::R4);
        // Record header + deltas.
        asm.imm(Reg::R4, region_id);
        asm.store(Reg::R4, Reg::R7, 0);
        for i in 0..k {
            self.reader.emit_read(asm, i, Reg::R4, Reg::R5);
            asm.load(Reg::R5, tls::TLS_REG, tls::scratch_off(i));
            asm.sub(Reg::R4, Reg::R5);
            asm.store(Reg::R4, Reg::R7, (8 * (1 + i)) as i32);
        }
        // Publish.
        asm.alui_add(Reg::R6, 1);
        asm.store(Reg::R6, tls::TLS_REG, tls::RING_HEAD);
        if let Some((full, done)) = drop_path {
            asm.jmp(done);
            asm.bind(full);
            asm.load(Reg::R4, tls::TLS_REG, tls::DROPPED);
            asm.alui_add(Reg::R4, 1);
            asm.store(Reg::R4, tls::TLS_REG, tls::DROPPED);
            asm.bind(done);
        }
        asm.end_range(&mark);
    }

    /// Emits a zero-counter "event mark": appends a record with no deltas
    /// (used to count occurrences without measuring them).
    pub fn emit_mark(&self, asm: &mut Asm, region_id: u64) {
        let null = crate::reader::NullReader::new();
        Instrumenter::new(&null).emit_exit(asm, region_id);
    }

    /// Emits a region exit in **aggregate mode**: instead of appending a
    /// record, increments the region's count and adds each delta into the
    /// region's running sums in the thread's aggregate table (see
    /// [`crate::harness::SessionBuilder::aggregate_regions`]).
    ///
    /// Aggregate mode trades per-event detail (no histograms) for bounded
    /// memory and a slightly shorter exit path — the right choice for
    /// always-on production accounting.
    pub fn emit_exit_aggregate(&self, asm: &mut Asm, region_id: u64) {
        let k = self.reader.counters();
        let entry = aggregate_entry_size(k);
        let mark = fresh_mark(&format!("{EXIT_MARK_PREFIX}.{region_id}"));
        asm.begin_range(&mark);
        // r6 = this region's table entry.
        asm.load(Reg::R6, tls::TLS_REG, tls::AGG_BASE);
        asm.alui_add(Reg::R6, region_id * entry);
        // count += 1
        asm.load(Reg::R4, Reg::R6, 0);
        asm.alui_add(Reg::R4, 1);
        asm.store(Reg::R4, Reg::R6, 0);
        // sums[i] += delta_i
        for i in 0..k {
            self.reader.emit_read(asm, i, Reg::R4, Reg::R5);
            asm.load(Reg::R5, tls::TLS_REG, tls::scratch_off(i));
            asm.sub(Reg::R4, Reg::R5);
            asm.load(Reg::R7, Reg::R6, (8 * (1 + i)) as i32);
            asm.add(Reg::R7, Reg::R4);
            asm.store(Reg::R7, Reg::R6, (8 * (1 + i)) as i32);
        }
        asm.end_range(&mark);
    }
}

/// Bytes per aggregate-table entry with `counters` event sums: a count
/// plus one sum per counter.
pub const fn aggregate_entry_size(counters: usize) -> u64 {
    8 * (1 + counters as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::{LimitReader, NullReader};

    #[test]
    fn enter_emits_one_snapshot_per_counter() {
        let r = LimitReader::new(2);
        let ins = Instrumenter::new(&r);
        let mut asm = Asm::new();
        ins.emit_enter(&mut asm);
        // Per counter: 3 (read) + 1 (store) = 4 instructions.
        assert_eq!(asm.assemble().unwrap().len(), 8);
    }

    #[test]
    fn exit_emits_record_append() {
        let r = LimitReader::new(1);
        let ins = Instrumenter::new(&r);
        let mut asm = Asm::new();
        ins.emit_exit(&mut asm, 7);
        let p = asm.assemble().unwrap();
        // Fixed parts: 2 loads + br + imm + store + advance(2) + jmp +
        // full-path(3) = 11, plus per-counter 3(read)+load+sub+store = 6.
        assert_eq!(p.len(), 17);
    }

    #[test]
    fn mark_uses_no_counters() {
        let r = NullReader::new();
        let ins = Instrumenter::new(&r);
        let mut asm = Asm::new();
        ins.emit_mark(&mut asm, 3);
        assert!(asm.assemble().unwrap().len() >= 8);
    }
}
