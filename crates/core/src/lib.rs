//! # LiMiT: precise, lightweight performance-counter access
//!
//! This crate is the reproduction's implementation of the paper's primary
//! contribution (Demme & Sethumadhavan, *Rapid identification of
//! architectural bottlenecks via precise event counting*, ISCA 2011): a
//! userspace library for reading **64-bit virtualized performance counters
//! in a handful of instructions** — no syscall on the read path — backed by
//! the kernel extension in `sim-os` (counter virtualization into
//! user-memory accumulators plus the restartable-sequence fix-up).
//!
//! The pieces:
//!
//! * [`tls`] — the per-thread memory block (accumulators, instrumentation
//!   scratch, event-log cursors) addressed off the `r15` convention
//!   register,
//! * [`reader`] — the [`reader::CounterReader`] abstraction over "emit
//!   guest code that reads counter *i*", with the LiMiT implementation
//!   ([`reader::LimitReader`], the 3-instruction load/rdpmc/add sequence
//!   wrapped in a restart range) and the no-op baseline
//!   ([`reader::NullReader`]). The syscall-based baselines live in the
//!   `baselines` crate behind the same trait,
//! * [`instrument`] — region instrumentation: enter/exit emission that
//!   snapshots counters and appends `(region, deltas...)` records to the
//!   thread's log,
//! * [`routine`] — callable (shared) read routines: one emitted sequence
//!   serving many call sites, trading 4 cycles per read for code space,
//! * [`harness`] — the host-side [`harness::Session`]: builds the machine
//!   and kernel, lays out TLS blocks and log buffers, spawns instrumented
//!   threads, runs, and extracts results,
//! * [`report`] — post-run extraction of counter values and region
//!   records.
//!
//! # Quickstart
//!
//! ```
//! use limit::harness::SessionBuilder;
//! use limit::reader::{CounterReader, LimitReader};
//! use sim_cpu::{EventKind, Reg};
//!
//! // Guest program: do some work, then read counter 0 into r4 and report.
//! let reader = LimitReader::new(2);
//! let mut builder = SessionBuilder::new(1)
//!     .events(&[EventKind::Instructions, EventKind::Cycles]);
//! let mut asm = builder.asm();
//! asm.export("main");
//! reader.emit_thread_setup(&mut asm);
//! asm.burst(1_000);
//! reader.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
//! asm.mov(Reg::R0, Reg::R4);
//! asm.syscall(sim_os::syscall::nr::LOG_VALUE);
//! asm.halt();
//!
//! let mut session = builder.build(asm).unwrap();
//! session.spawn_instrumented("main", &[]).unwrap();
//! session.run().unwrap();
//! let count = session.kernel.log()[0];
//! assert!(count >= 1_000);
//! ```

pub mod harness;
pub mod instrument;
pub mod params;
pub mod reader;
pub mod report;
pub mod routine;
pub mod tls;

pub use harness::{RingHandle, Session, SessionBuilder, WarnSink};
pub use instrument::{Instrumenter, LogMode, StreamConfig};
pub use params::MachineParams;
pub use reader::{CounterReader, LimitReader, NullReader};
pub use report::{RegionRecord, Regions};
pub use routine::ReadRoutines;
