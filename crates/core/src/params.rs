//! The full simulated-machine parameter set as one runtime value.
//!
//! [`MachineParams`] gathers every knob the what-if engine can perturb —
//! the per-instruction cycle costs ([`CostModel`]), the memory-hierarchy
//! latencies ([`HierarchyConfig`]), and the kernel scheduling costs
//! (timeslice quantum, context-switch cost) — plus the core count.
//! `MachineParams::default()` reproduces the seed configuration
//! bit-for-bit (asserted by `tests/params_default.rs`), so a run built
//! from default params is byte-identical to one built from
//! `MachineConfig::new(n)` + `KernelConfig::default()`.
//!
//! [`MachineParams::validate`] replaces the old compile-time
//! `syscall_round_trip_dwarfs_rdpmc` const assert: hard-invalid
//! combinations are rejected, and degenerate-but-runnable combinations
//! that invert the paper's cost orderings come back as warning lines the
//! harness routes through the session's
//! [`WarnSink`](crate::harness::WarnSink).

use serde::{Deserialize, Serialize};
use sim_core::{SimError, SimResult};
use sim_cpu::{CostModel, MachineConfig};
use sim_mem::HierarchyConfig;
use sim_os::{IoParams, KernelConfig};

/// Maximum cores the memory system supports (see `sim_mem::MemorySystem`).
pub const MAX_CORES: usize = 64;

/// Every runtime-perturbable machine parameter in one struct.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineParams {
    /// Number of cores.
    pub cores: usize,
    /// Per-instruction cycle costs.
    pub cost: CostModel,
    /// Memory-hierarchy latencies and geometry.
    pub hierarchy: HierarchyConfig,
    /// Scheduler timeslice in cycles.
    pub quantum: u64,
    /// Direct cost of a context switch.
    pub ctx_switch_cost: u64,
    /// Per-device blocking-I/O latency distributions.
    #[serde(default)]
    pub io: IoParams,
}

impl Default for MachineParams {
    fn default() -> Self {
        let k = KernelConfig::default();
        MachineParams {
            cores: 1,
            cost: CostModel::default(),
            hierarchy: HierarchyConfig::default(),
            quantum: k.quantum,
            ctx_switch_cost: k.ctx_switch_cost,
            io: k.io,
        }
    }
}

impl MachineParams {
    /// Default params on `cores` cores.
    pub fn new(cores: usize) -> Self {
        MachineParams {
            cores,
            ..MachineParams::default()
        }
    }

    /// The machine configuration these params describe.
    pub fn machine_config(&self) -> MachineConfig {
        MachineConfig::new(self.cores)
            .with_hierarchy(self.hierarchy)
            .with_cost(self.cost)
    }

    /// The kernel configuration these params describe (non-param fields
    /// keep their defaults).
    pub fn kernel_config(&self) -> KernelConfig {
        KernelConfig {
            quantum: self.quantum,
            ctx_switch_cost: self.ctx_switch_cost,
            io: self.io,
            ..KernelConfig::default()
        }
    }

    /// Validates the parameter set.
    ///
    /// Returns `Err` for hard-invalid combinations (the machine cannot be
    /// built or cannot make progress) and `Ok(warnings)` otherwise, where
    /// each warning names a degenerate-but-runnable combination that
    /// inverts a cost ordering the paper's claims rest on. Callers decide
    /// whether warnings are fatal; the harness routes them through the
    /// session's [`WarnSink`](crate::harness::WarnSink) at teardown.
    pub fn validate(&self) -> SimResult<Vec<String>> {
        if self.cores == 0 || self.cores > MAX_CORES {
            return Err(SimError::Config(format!(
                "cores must be in 1..={MAX_CORES}, got {}",
                self.cores
            )));
        }
        if self.quantum == 0 {
            return Err(SimError::Config(
                "quantum must be non-zero (a zero timeslice never runs a thread)".into(),
            ));
        }
        self.hierarchy.validate()?;
        self.io.validate()?;

        let mut warnings = Vec::new();
        let c = &self.cost;
        // The paper's headline ratio: a kernel round-trip must dwarf an
        // in-user rdpmc read, or "LiMiT is ~an order of magnitude cheaper
        // than perf_read" stops being reproducible.
        let round_trip = c.syscall_entry + c.syscall_exit;
        if round_trip < 10 * c.rdpmc {
            warnings.push(format!(
                "warning: degenerate params: syscall round-trip ({} cycles) is less than \
                 10x rdpmc ({} cycles); the paper's kernel-read vs user-read ratio inverts",
                round_trip, c.rdpmc
            ));
        }
        // Atomics must cost more than plain accesses or lock-contention
        // sensitivity collapses into plain memory sensitivity.
        if c.atomic_penalty <= c.mem_issue {
            warnings.push(format!(
                "warning: degenerate params: atomic penalty ({}) does not exceed plain \
                 access issue cost ({}); lock costs become indistinguishable from loads",
                c.atomic_penalty, c.mem_issue
            ));
        }
        // The hierarchy must get slower as it gets farther away.
        let h = &self.hierarchy;
        if h.dram.latency <= h.llc_latency {
            warnings.push(format!(
                "warning: degenerate params: DRAM latency ({}) does not exceed LLC hit \
                 latency ({}); the memory hierarchy ordering inverts",
                h.dram.latency, h.llc_latency
            ));
        }
        if h.llc_latency <= h.l1_latency {
            warnings.push(format!(
                "warning: degenerate params: LLC hit latency ({}) does not exceed L1 hit \
                 latency ({}); cache misses cost no more than hits",
                h.llc_latency, h.l1_latency
            ));
        }
        // A switch costing more than the slice means the machine spends the
        // majority of its time context-switching.
        if self.ctx_switch_cost >= self.quantum {
            warnings.push(format!(
                "warning: degenerate params: context-switch cost ({}) reaches the \
                 timeslice quantum ({}); scheduling overhead dominates all work",
                self.ctx_switch_cost, self.quantum
            ));
        }
        Ok(warnings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_reproduce_seed_configs() {
        let p = MachineParams::new(4);
        assert_eq!(p.machine_config(), MachineConfig::new(4));
        let k = p.kernel_config();
        let d = KernelConfig::default();
        assert_eq!(k.quantum, d.quantum);
        assert_eq!(k.ctx_switch_cost, d.ctx_switch_cost);
        assert!(p.validate().unwrap().is_empty());
    }

    #[test]
    fn zero_or_excess_cores_rejected() {
        assert!(MachineParams::new(0).validate().is_err());
        assert!(MachineParams::new(MAX_CORES).validate().is_ok());
        assert!(MachineParams::new(MAX_CORES + 1).validate().is_err());
    }

    #[test]
    fn zero_quantum_rejected() {
        let mut p = MachineParams::new(1);
        p.quantum = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn syscall_rdpmc_inversion_warns_at_the_boundary() {
        // Exactly 10x rdpmc: still fine (the const assert's boundary).
        let mut p = MachineParams::new(1);
        p.cost.rdpmc = 30;
        p.cost.syscall_entry = 150;
        p.cost.syscall_exit = 150;
        assert!(p.validate().unwrap().is_empty());
        // One cycle below the boundary: warns.
        p.cost.syscall_exit = 149;
        let w = p.validate().unwrap();
        assert_eq!(w.len(), 1, "{w:?}");
        assert!(w[0].contains("syscall round-trip"), "{}", w[0]);
    }

    #[test]
    fn atomic_penalty_boundary() {
        let mut p = MachineParams::new(1);
        p.cost.atomic_penalty = p.cost.mem_issue + 1;
        assert!(p.validate().unwrap().is_empty());
        p.cost.atomic_penalty = p.cost.mem_issue;
        let w = p.validate().unwrap();
        assert!(w.iter().any(|l| l.contains("atomic penalty")), "{w:?}");
    }

    #[test]
    fn inverted_hierarchy_warns() {
        let mut p = MachineParams::new(1);
        p.hierarchy.dram.latency = p.hierarchy.llc_latency;
        let w = p.validate().unwrap();
        assert!(w.iter().any(|l| l.contains("DRAM latency")), "{w:?}");
    }

    #[test]
    fn switch_dominating_quantum_warns() {
        let mut p = MachineParams::new(1);
        p.ctx_switch_cost = p.quantum;
        let w = p.validate().unwrap();
        assert!(w.iter().any(|l| l.contains("context-switch")), "{w:?}");
    }

    #[test]
    fn bad_cache_geometry_is_a_hard_error() {
        let mut p = MachineParams::new(1);
        p.hierarchy.l1 = p.hierarchy.l2;
        p.hierarchy.l2 = sim_mem::CacheConfig::kib(32, 8);
        assert!(p.validate().is_err(), "L1 larger than L2 must be rejected");
    }
}
