//! Callable read routines: the code-footprint variant of the LiMiT read.
//!
//! [`crate::reader::LimitReader::emit_read`] inlines the 3-instruction
//! sequence at every measurement site — fastest, but each site costs
//! program space and its own restart range. For programs with many
//! instrumentation sites, [`ReadRoutines`] emits the sequence **once per
//! counter** as a callable routine; sites then emit a single `call`.
//!
//! The restart fix-up composes naturally with calls: the registered range
//! covers only the load/`rdpmc`/add body, and rewinding the PC inside the
//! body re-executes from the body start with the return address still on
//! the shadow stack — the retry is invisible to the caller.
//!
//! Cost: `call` + `ret` add 4 cycles per read (≈ 36 → 40 cycles), the
//! price of sharing one sequence among all sites.

use crate::tls::{self, TLS_REG};
use sim_cpu::{Asm, Reg};

/// The register a routine read returns its value in.
pub const RESULT_REG: Reg = Reg::R4;

/// The scratch register a routine read clobbers.
pub const SCRATCH_REG: Reg = Reg::R5;

/// Emitted, callable read routines — one per counter slot.
#[derive(Debug, Clone)]
pub struct ReadRoutines {
    entries: Vec<u32>,
}

impl ReadRoutines {
    /// Emits one callable routine per counter `0..counters` at the current
    /// position. Must be emitted at a point control flow never falls into
    /// (e.g. before any entry point, or after a `halt`/`jmp`).
    ///
    /// Each routine: `load r4, [r15+accum(i)]; rdpmc r5, i; add r4, r5;
    /// ret`, with the body wrapped in an auto-registered `limit_read.*`
    /// restart range.
    pub fn emit(asm: &mut Asm, counters: usize) -> ReadRoutines {
        assert!(counters <= tls::MAX_COUNTERS);
        let entries = (0..counters)
            .map(|i| {
                let entry = asm.here();
                let range = format!("limit_read.routine{i}.{entry}");
                asm.begin_range(&range);
                asm.load(RESULT_REG, TLS_REG, tls::accum_off(i));
                asm.rdpmc(SCRATCH_REG, i as u8);
                asm.add(RESULT_REG, SCRATCH_REG);
                asm.end_range(&range);
                asm.ret();
                entry
            })
            .collect();
        ReadRoutines { entries }
    }

    /// Number of routines emitted.
    pub fn counters(&self) -> usize {
        self.entries.len()
    }

    /// Emits a call-site read of counter `i`; the 64-bit virtualized value
    /// lands in [`RESULT_REG`], clobbering [`SCRATCH_REG`].
    pub fn emit_call_read(&self, asm: &mut Asm, i: usize) {
        assert!(i < self.entries.len(), "routine {i} not emitted");
        asm.call_abs(self.entries[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SessionBuilder;
    use crate::reader::{CounterReader, LimitReader};
    use sim_cpu::{Cond, EventKind, MachineConfig, PmuConfig};
    use sim_os::syscall::nr;

    #[test]
    fn routine_read_matches_inline_read() {
        let reader = LimitReader::new(1);
        let mut b = SessionBuilder::new(1).events(&[EventKind::Instructions]);
        let mut asm = b.asm();
        // Routines first (control flow never falls in: `main` is the
        // spawn entry).
        let routines = ReadRoutines::emit(&mut asm, 1);
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        asm.burst(300);
        // Inline read into r6.
        reader.emit_read(&mut asm, 0, Reg::R6, Reg::R5);
        // Routine read into r4.
        routines.emit_call_read(&mut asm, 0);
        // Instructions retired between the two rdpmc reads: the inline
        // rdpmc's own retirement + its add + the call + the routine body's
        // load = 4.
        asm.sub(Reg::R4, Reg::R6);
        asm.mov(Reg::R0, Reg::R4);
        asm.syscall(nr::LOG_VALUE);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.spawn_instrumented("main", &[]).unwrap();
        s.run().unwrap();
        assert_eq!(s.kernel.log(), &[4]);
    }

    #[test]
    fn routine_ranges_are_auto_registered() {
        let mut b = SessionBuilder::new(1).events(&[EventKind::Instructions]);
        let mut asm = b.asm();
        let _routines = ReadRoutines::emit(&mut asm, 2);
        asm.export("main");
        asm.halt();
        let s = b.build(asm).unwrap();
        assert_eq!(s.kernel.limit().ranges().len(), 2);
    }

    #[test]
    fn routine_reads_stay_exact_under_preemption_storm() {
        let reader = LimitReader::new(1);
        let mut b = SessionBuilder::new(1)
            .events(&[EventKind::Instructions])
            .machine_config(MachineConfig::new(1).with_pmu(PmuConfig {
                counter_bits: 10,
                ..Default::default()
            }))
            .kernel_config(sim_os::KernelConfig {
                quantum: 700,
                ..Default::default()
            });
        let mut asm = b.asm();
        let routines = ReadRoutines::emit(&mut asm, 1);
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        asm.imm(Reg::R9, 500);
        asm.imm(Reg::R10, 0);
        asm.imm(Reg::R8, 0); // previous read
        let top = asm.new_label();
        asm.bind(top);
        routines.emit_call_read(&mut asm, 0);
        // Monotonicity check in guest: r4 >= r8 must always hold.
        let ok = asm.new_label();
        asm.br(Cond::Ge, Reg::R4, Reg::R8, ok);
        asm.imm(Reg::R0, 0xDEAD);
        asm.syscall(nr::LOG_VALUE); // flag a violation
        asm.bind(ok);
        asm.mov(Reg::R8, Reg::R4);
        asm.alui_sub(Reg::R9, 1);
        asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
        asm.halt();
        asm.export("noise");
        asm.burst(20_000);
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.spawn_instrumented("main", &[]).unwrap();
        s.spawn_instrumented("noise", &[]).unwrap();
        let report = s.run().unwrap();
        assert!(report.limit_folds > 0, "storm must fold");
        assert!(
            s.kernel.log().is_empty(),
            "no monotonicity violations through the callable routine"
        );
    }
}
