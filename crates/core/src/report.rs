//! Post-run extraction of instrumentation results from guest memory.

use serde::{Deserialize, Serialize};
use sim_cpu::GuestMem;
use std::collections::HashMap;

/// One extracted instrumentation record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionRecord {
    /// The region id written by `emit_exit`.
    pub region: u64,
    /// Counter deltas, one per attached counter.
    pub deltas: Vec<u64>,
}

/// A host-side registry mapping region ids to human-readable names.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Regions {
    names: HashMap<u64, String>,
    next: u64,
}

impl Regions {
    /// An empty registry.
    pub fn new() -> Self {
        Regions::default()
    }

    /// Registers a region name, returning its id.
    pub fn define(&mut self, name: &str) -> u64 {
        let id = self.next;
        self.next += 1;
        self.names.insert(id, name.to_string());
        id
    }

    /// Looks up a region name.
    pub fn name(&self, id: u64) -> &str {
        self.names.get(&id).map(String::as_str).unwrap_or("?")
    }

    /// Finds an id by name.
    pub fn id(&self, name: &str) -> Option<u64> {
        self.names
            .iter()
            .find(|(_, n)| n.as_str() == name)
            .map(|(&id, _)| id)
    }

    /// Number of defined regions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no regions are defined.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &str)> {
        let mut v: Vec<_> = self.names.iter().map(|(&i, n)| (i, n.as_str())).collect();
        v.sort_by_key(|&(i, _)| i);
        v.into_iter()
    }
}

/// Parses the records in a log buffer spanning `[base, cursor)` with
/// `counters` deltas per record.
pub fn parse_log(mem: &GuestMem, base: u64, cursor: u64, counters: usize) -> Vec<RegionRecord> {
    let rec = crate::tls::record_size(counters);
    let mut out = Vec::new();
    let mut at = base;
    while at + rec <= cursor {
        let region = mem.read_u64(at).expect("log buffer is aligned");
        let deltas = (0..counters)
            .map(|i| {
                mem.read_u64(at + 8 * (1 + i as u64))
                    .expect("log buffer is aligned")
            })
            .collect();
        out.push(RegionRecord { region, deltas });
        at += rec;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_define_and_lookup() {
        let mut r = Regions::new();
        let a = r.define("lock_a");
        let b = r.define("lock_b");
        assert_ne!(a, b);
        assert_eq!(r.name(a), "lock_a");
        assert_eq!(r.id("lock_b"), Some(b));
        assert_eq!(r.id("missing"), None);
        assert_eq!(r.name(999), "?");
        assert_eq!(r.len(), 2);
        let pairs: Vec<_> = r.iter().collect();
        assert_eq!(pairs, vec![(a, "lock_a"), (b, "lock_b")]);
    }

    #[test]
    fn parse_log_reads_records() {
        let mut mem = GuestMem::new();
        let base = 0x1000u64;
        // Two records of (region, d0, d1).
        for (i, vals) in [[7u64, 100, 200], [9, 5, 6]].iter().enumerate() {
            for (j, &v) in vals.iter().enumerate() {
                mem.write_u64(base + (i as u64 * 24) + (j as u64 * 8), v)
                    .unwrap();
            }
        }
        let recs = parse_log(&mem, base, base + 48, 2);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].region, 7);
        assert_eq!(recs[0].deltas, vec![100, 200]);
        assert_eq!(recs[1].region, 9);
    }

    #[test]
    fn parse_log_ignores_partial_tail() {
        let mem = GuestMem::new();
        // Cursor mid-record: nothing parsed.
        assert!(parse_log(&mem, 0x1000, 0x1000 + 10, 2).is_empty());
    }
}
