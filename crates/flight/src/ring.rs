//! A bounded last-N ring buffer with total/evicted accounting.
//!
//! The flight recorder's storage primitive, factored out of `sim-cpu`'s
//! instruction `Trace` (which is now a thin wrapper over `Ring`): a fixed
//! capacity, push-evicts-oldest, and a monotone `total_recorded` so
//! consumers can tell "ring is short because the run was short" apart from
//! "ring is short because it wrapped".

use std::collections::VecDeque;

/// A bounded ring keeping the last `capacity` items pushed.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: VecDeque<T>,
    capacity: usize,
    total: u64,
}

impl<T> Ring<T> {
    /// A ring holding at most `capacity` items.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Ring {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    /// Appends `item`, evicting the oldest retained item if full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(item);
        self.total += 1;
    }

    /// Items currently retained (`<= capacity`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items ever pushed, including evicted ones (monotone).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Items lost to eviction (`total_recorded - len`).
    pub fn evicted(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Retained items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// The most recently pushed item.
    pub fn last(&self) -> Option<&T> {
        self.buf.back()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_last_capacity_items() {
        let mut r = Ring::new(3);
        for i in 0..10u32 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_recorded(), 10);
        assert_eq!(r.evicted(), 7);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(r.last(), Some(&9));
    }

    #[test]
    fn short_runs_do_not_evict() {
        let mut r = Ring::new(8);
        r.push('a');
        r.push('b');
        assert_eq!(r.len(), 2);
        assert_eq!(r.evicted(), 0);
        assert!(!r.is_empty());
        assert_eq!(r.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Ring::<u8>::new(0);
    }
}
