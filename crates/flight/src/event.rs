//! The event taxonomy: what each layer reports, and the category bitmask
//! that filters emission at record time.
//!
//! Payloads are deliberately primitive-only (`u32`/`u64`/`bool`/`&'static
//! str`): recording must never allocate, and the exporters must not need
//! any type from the layers above `sim-core`.

use std::fmt;

/// One recorded event: the producing core's simulated clock, the thread
/// installed there (if any), and the typed payload. The producing core is
/// implied by which ring holds the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Core-local simulated clock (cycles) at emission.
    pub ts: u64,
    /// Thread installed on the producing core, if one was.
    pub tid: Option<u32>,
    /// The payload.
    pub data: EventData,
}

/// Typed event payloads, one variant per emission site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventData {
    /// Scheduler installed the event's `tid` on the core.
    SwitchIn,
    /// Kernel removed the thread; `state` is where it went
    /// (`ready`/`blocked`/`sleeping`/`exited`).
    SwitchOut {
        /// Next thread state.
        state: &'static str,
    },
    /// Scheduler picked a thread for an idle core.
    SchedPick,
    /// The thread moved cores (recorded on the target core).
    Migration {
        /// Core it last ran on.
        from: u32,
        /// Core it is being installed on.
        to: u32,
    },
    /// A performance-monitor interrupt was delivered and folded.
    Pmi {
        /// Overflowing counter slot.
        slot: u8,
    },
    /// A self-virtualizing hardware counter spill (enhancement 2).
    Spill {
        /// Guest accumulator address receiving the spill.
        addr: u64,
        /// Event count moved.
        amount: u64,
    },
    /// `LIMIT_OPEN` attached a virtualized counter.
    LimitOpen {
        /// Counter slot.
        slot: u8,
        /// Attached event kind.
        event: &'static str,
    },
    /// `LIMIT_CLOSE` detached a counter.
    LimitClose {
        /// Counter slot.
        slot: u8,
    },
    /// A user-mode `rdpmc` retired.
    Rdpmc {
        /// Counter slot read.
        slot: u8,
        /// Instruction address.
        pc: u32,
        /// Value the guest observed.
        value: u64,
        /// Whether the read sits inside a registered restart range.
        in_range: bool,
    },
    /// The differential oracle armed an expectation at an in-range read.
    OracleArm {
        /// The `rdpmc`'s address.
        pc: u32,
    },
    /// The oracle resolved a pending check.
    OracleCheck {
        /// Address of the sequence's final instruction.
        pc: u32,
        /// `false` is a divergence: the virtualized read was wrong.
        ok: bool,
    },
    /// Syscall entry (before dispatch).
    SyscallEnter {
        /// Decoded syscall name.
        name: &'static str,
    },
    /// Syscall completion (kernel-side; emitted even if the caller was
    /// switched out mid-syscall, so enter/exit balance per thread).
    SyscallExit {
        /// Decoded syscall name.
        name: &'static str,
    },
    /// A guest thread faulted; the run is about to abort. Recorded so the
    /// exported timeline shows where execution stopped.
    Fault {
        /// Faulting instruction address.
        pc: u32,
    },
    /// The torture injector forced a disturbance.
    Injection {
        /// Instruction boundary it landed on.
        pc: u32,
        /// Action name (`preempt`/`pmi`/`migrate`/`spill`).
        action: &'static str,
    },
    /// Harness session started running.
    SessionOpen {
        /// Threads spawned at open.
        threads: u32,
    },
    /// Harness teardown summary.
    SessionClose {
        /// Log records dropped to full buffers.
        dropped: u64,
        /// Restart-range registrations rejected.
        rejected: u64,
        /// Torn reads the fix-up could not repair.
        unfixed: u64,
    },
    /// A restart-range registration syscall resolved.
    RangeRegistered {
        /// Range start (inclusive).
        start: u32,
        /// Range end (exclusive).
        end: u32,
        /// Whether the kernel accepted it.
        ok: bool,
    },
    /// An instrumented region's enter sequence began.
    RegionEnter {
        /// First instruction of the enter sequence.
        pc: u32,
    },
    /// An instrumented region's exit sequence began.
    RegionExit {
        /// Region id the exit logs.
        region: u64,
        /// First instruction of the exit sequence.
        pc: u32,
    },
    /// The telemetry collector drained the SPSC rings.
    RingDrain {
        /// Records consumed in this drain.
        records: u64,
    },
    /// A telemetry snapshot was published.
    SnapshotPublish {
        /// Snapshot sequence number.
        seq: u64,
    },
    /// A blocking I/O request was enqueued on a device service queue. The
    /// payload carries the resolved timeline: service starts at `start`
    /// (after queueing behind earlier requests) and completes at
    /// `complete`; `ts <= start <= complete` always.
    IoEnqueue {
        /// Device name (`disk`/`net`/`fsync`).
        device: &'static str,
        /// Service-start clock.
        start: u64,
        /// Completion clock.
        complete: u64,
        /// Requests outstanding on the device after this enqueue.
        depth: u32,
    },
    /// The submitting thread blocked on its I/O request.
    IoBlock {
        /// Device name.
        device: &'static str,
    },
    /// The thread resumed after its I/O request completed (paired with the
    /// thread's preceding `io_block`).
    IoWake {
        /// Device name.
        device: &'static str,
    },
}

impl EventData {
    /// Stable NDJSON kind string.
    pub fn kind(&self) -> &'static str {
        match self {
            EventData::SwitchIn => "switch_in",
            EventData::SwitchOut { .. } => "switch_out",
            EventData::SchedPick => "sched_pick",
            EventData::Migration { .. } => "migration",
            EventData::Pmi { .. } => "pmi",
            EventData::Spill { .. } => "spill",
            EventData::LimitOpen { .. } => "limit_open",
            EventData::LimitClose { .. } => "limit_close",
            EventData::Rdpmc { .. } => "rdpmc",
            EventData::OracleArm { .. } => "oracle_arm",
            EventData::OracleCheck { .. } => "oracle_check",
            EventData::SyscallEnter { .. } => "syscall_enter",
            EventData::SyscallExit { .. } => "syscall_exit",
            EventData::Fault { .. } => "fault",
            EventData::Injection { .. } => "injection",
            EventData::SessionOpen { .. } => "session_open",
            EventData::SessionClose { .. } => "session_close",
            EventData::RangeRegistered { .. } => "range_registered",
            EventData::RegionEnter { .. } => "region_enter",
            EventData::RegionExit { .. } => "region_exit",
            EventData::RingDrain { .. } => "ring_drain",
            EventData::SnapshotPublish { .. } => "snapshot_publish",
            EventData::IoEnqueue { .. } => "io_enqueue",
            EventData::IoBlock { .. } => "io_block",
            EventData::IoWake { .. } => "io_wake",
        }
    }

    /// The category this payload belongs to (exactly one bit).
    pub fn category(&self) -> Categories {
        match self {
            EventData::SwitchIn
            | EventData::SwitchOut { .. }
            | EventData::SchedPick
            | EventData::Migration { .. } => Categories::SCHED,
            EventData::Pmi { .. } | EventData::Fault { .. } => Categories::IRQ,
            EventData::Spill { .. }
            | EventData::LimitOpen { .. }
            | EventData::LimitClose { .. }
            | EventData::Rdpmc { .. } => Categories::PMU,
            EventData::OracleArm { .. } | EventData::OracleCheck { .. } => Categories::ORACLE,
            EventData::SyscallEnter { .. } | EventData::SyscallExit { .. } => Categories::SYSCALL,
            EventData::Injection { .. } => Categories::INJECT,
            EventData::SessionOpen { .. }
            | EventData::SessionClose { .. }
            | EventData::RangeRegistered { .. } => Categories::HARNESS,
            EventData::RegionEnter { .. } | EventData::RegionExit { .. } => Categories::REGION,
            EventData::RingDrain { .. } | EventData::SnapshotPublish { .. } => {
                Categories::TELEMETRY
            }
            EventData::IoEnqueue { .. } | EventData::IoBlock { .. } | EventData::IoWake { .. } => {
                Categories::IO
            }
        }
    }
}

/// A set of event categories (a 10-bit mask). Filtering happens at record
/// time: an unselected category's events are never stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Categories(u16);

impl Categories {
    /// Scheduling: switches, picks, migrations.
    pub const SCHED: Categories = Categories(1 << 0);
    /// Interrupts: PMI delivery.
    pub const IRQ: Categories = Categories(1 << 1);
    /// PMU: counter opens/closes, rdpmc reads, spills.
    pub const PMU: Categories = Categories(1 << 2);
    /// Differential-oracle arms and checks.
    pub const ORACLE: Categories = Categories(1 << 3);
    /// Syscall enter/exit.
    pub const SYSCALL: Categories = Categories(1 << 4);
    /// Torture-harness injections.
    pub const INJECT: Categories = Categories(1 << 5);
    /// Harness session lifecycle and range registration.
    pub const HARNESS: Categories = Categories(1 << 6);
    /// Instrumented-region enter/exit marks.
    pub const REGION: Categories = Categories(1 << 7);
    /// Telemetry drains and snapshots.
    pub const TELEMETRY: Categories = Categories(1 << 8);
    /// Blocking-I/O device queues: enqueues, blocks, wakes.
    pub const IO: Categories = Categories(1 << 9);
    /// Everything.
    pub const ALL: Categories = Categories(0x3ff);

    const NAMES: [(&'static str, Categories); 10] = [
        ("sched", Categories::SCHED),
        ("irq", Categories::IRQ),
        ("pmu", Categories::PMU),
        ("oracle", Categories::ORACLE),
        ("syscall", Categories::SYSCALL),
        ("inject", Categories::INJECT),
        ("harness", Categories::HARNESS),
        ("region", Categories::REGION),
        ("telemetry", Categories::TELEMETRY),
        ("io", Categories::IO),
    ];

    /// Parses a comma-separated category list (or `all`).
    pub fn parse(spec: &str) -> Result<Categories, String> {
        let mut out = Categories(0);
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            if part == "all" {
                return Ok(Categories::ALL);
            }
            let bit = Categories::NAMES
                .iter()
                .find(|(name, _)| *name == part)
                .map(|&(_, c)| c)
                .ok_or_else(|| {
                    format!(
                        "unknown trace category {part:?} (expected all or a comma list of: {})",
                        Categories::NAMES
                            .iter()
                            .map(|(n, _)| *n)
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })?;
            out.0 |= bit.0;
        }
        if out.0 == 0 {
            return Err("empty trace category list".to_string());
        }
        Ok(out)
    }

    /// Whether every bit of `other` is selected.
    #[inline]
    pub fn contains(self, other: Categories) -> bool {
        self.0 & other.0 == other.0
    }
}

impl Default for Categories {
    fn default() -> Self {
        Categories::ALL
    }
}

impl fmt::Display for Categories {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Categories::ALL {
            return f.write_str("all");
        }
        let mut first = true;
        for (name, cat) in Categories::NAMES {
            if self.contains(cat) {
                if !first {
                    f.write_str(",")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_names() {
        let c = Categories::parse("sched, pmu,oracle").unwrap();
        assert!(c.contains(Categories::SCHED));
        assert!(c.contains(Categories::PMU));
        assert!(c.contains(Categories::ORACLE));
        assert!(!c.contains(Categories::SYSCALL));
        assert_eq!(c.to_string(), "sched,pmu,oracle");
        assert_eq!(Categories::parse("all").unwrap(), Categories::ALL);
        assert_eq!(Categories::ALL.to_string(), "all");
    }

    #[test]
    fn parse_rejects_unknown_and_empty() {
        assert!(Categories::parse("sched,bogus").is_err());
        assert!(Categories::parse("").is_err());
    }

    #[test]
    fn every_payload_maps_into_all() {
        let samples = [
            EventData::SwitchIn,
            EventData::Pmi { slot: 0 },
            EventData::Rdpmc {
                slot: 0,
                pc: 1,
                value: 2,
                in_range: true,
            },
            EventData::OracleCheck { pc: 0, ok: true },
            EventData::SyscallEnter { name: "exit" },
            EventData::Injection {
                pc: 0,
                action: "pmi",
            },
            EventData::SessionOpen { threads: 1 },
            EventData::RegionEnter { pc: 0 },
            EventData::SnapshotPublish { seq: 1 },
            EventData::IoEnqueue {
                device: "disk",
                start: 1,
                complete: 2,
                depth: 1,
            },
            EventData::IoWake { device: "fsync" },
        ];
        for s in samples {
            assert!(Categories::ALL.contains(s.category()), "{:?}", s.kind());
        }
    }
}
