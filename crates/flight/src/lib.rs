//! Machine-wide flight recorder.
//!
//! Every layer of the stack — the CPU model, the kernel, the LiMiT harness,
//! the telemetry pipeline — emits typed events ([`EventData`]) into per-core
//! bounded rings ([`Ring`]) owned by one [`FlightRecorder`]. The recorder
//! follows the same zero-cost-when-off discipline as the instruction trace
//! it generalizes (`sim-cpu`'s `Trace`, now itself built on [`Ring`]): the
//! owning `Machine` holds an `Option<Box<FlightRecorder>>` that is `None` by
//! default, and every emission site guards on that option before touching
//! anything, so a disabled recorder costs one branch on a cold pointer.
//!
//! Events carry the simulated clock of the core that produced them plus the
//! installed thread, and export two ways ([`export`]):
//!
//! * **NDJSON** — one compact record per event, streamed in per-core ring
//!   order (each core's stream is temporally ordered; no global order is
//!   claimed, because migration legitimately skews core clocks). Validated
//!   by [`export::check`], which enforces the event-conservation
//!   invariants (`limit-repro check-trace`).
//! * **Chrome trace-event JSON** — loadable in Perfetto / `chrome://tracing`:
//!   guest threads as tracks with region and syscall duration spans, PMIs /
//!   migrations / injections as instant events, in-range counter reads as
//!   counter tracks, core occupancy as a second process, and host-side bench
//!   spans as a third.

pub mod event;
pub mod export;
pub mod recorder;
pub mod ring;

pub use event::{Categories, EventData, FlightEvent};
pub use export::{check, chrome_trace, ndjson, CheckReport, HostSpan};
pub use recorder::{FlightConfig, FlightRecorder, RegionMark};
pub use ring::Ring;
