//! The recorder itself: per-core rings plus one host ring, a category
//! filter, and the side tables emission sites consult (region marks,
//! restart ranges).

use crate::event::{Categories, EventData, FlightEvent};
use crate::ring::Ring;
use std::collections::HashMap;

/// Recorder knobs (both have CLI flags on `limit-repro trace`).
#[derive(Debug, Clone, Copy)]
pub struct FlightConfig {
    /// Capacity of each per-core ring, in events.
    pub buf_slots: usize,
    /// Which categories to record.
    pub categories: Categories,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            buf_slots: 1 << 16,
            categories: Categories::ALL,
        }
    }
}

/// What an instrumented-region marker at a pc means: the start of an enter
/// sequence, or the start of an exit sequence logging `region`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionMark {
    /// Enter-sequence start.
    Enter,
    /// Exit-sequence start for the given region id.
    Exit(u64),
}

/// The machine-wide flight recorder: one ring per simulated core plus a
/// host ring for events with no producing core (harness lifecycle,
/// telemetry, bench spans' markers).
#[derive(Debug)]
pub struct FlightRecorder {
    /// Rings `0..cores` are per-core; the last ring is the host's.
    rings: Vec<Ring<FlightEvent>>,
    categories: Categories,
    /// pc → region marker, installed by the harness from assembly metadata.
    marks: HashMap<u32, RegionMark>,
    /// Registered restart ranges, sorted by start (for `rdpmc` in-range
    /// classification).
    ranges: Vec<(u32, u32)>,
}

impl FlightRecorder {
    /// A recorder for `cores` cores.
    pub fn new(cores: usize, cfg: FlightConfig) -> Self {
        FlightRecorder {
            rings: (0..=cores).map(|_| Ring::new(cfg.buf_slots)).collect(),
            categories: cfg.categories,
            marks: HashMap::new(),
            ranges: Vec::new(),
        }
    }

    /// Simulated cores covered (one ring each, host ring excluded).
    pub fn num_cores(&self) -> usize {
        self.rings.len() - 1
    }

    /// Whether `data`'s category is selected. Emission sites that must
    /// compute a payload may pre-check with this; `record` checks again.
    #[inline]
    pub fn wants(&self, cat: Categories) -> bool {
        self.categories.contains(cat)
    }

    /// Records one event on `core`'s ring (filtered by category).
    #[inline]
    pub fn record(&mut self, core: usize, ts: u64, tid: Option<u32>, data: EventData) {
        if !self.categories.contains(data.category()) {
            return;
        }
        debug_assert!(core < self.rings.len() - 1, "core {core} out of range");
        self.rings[core].push(FlightEvent { ts, tid, data });
    }

    /// Records one event on the host ring (events with no producing core;
    /// `ts` is whatever clock the caller finds meaningful, typically the
    /// machine's global clock).
    pub fn record_host(&mut self, ts: u64, tid: Option<u32>, data: EventData) {
        if !self.categories.contains(data.category()) {
            return;
        }
        let host = self.rings.len() - 1;
        self.rings[host].push(FlightEvent { ts, tid, data });
    }

    /// Installs the region markers (pc → meaning) the CPU consults at
    /// instruction fetch.
    pub fn set_marks(&mut self, marks: HashMap<u32, RegionMark>) {
        self.marks = marks;
    }

    /// The marker at `pc`, if any.
    #[inline]
    pub fn mark_at(&self, pc: u32) -> Option<RegionMark> {
        if self.marks.is_empty() {
            return None;
        }
        self.marks.get(&pc).copied()
    }

    /// Installs the registered restart ranges (sorted internally).
    pub fn set_limit_ranges(&mut self, ranges: &[(u32, u32)]) {
        self.ranges = ranges.to_vec();
        self.ranges.sort_unstable();
    }

    /// Whether `pc` falls inside a registered restart range.
    pub fn in_limit_range(&self, pc: u32) -> bool {
        let pos = self.ranges.partition_point(|&(s, _)| s <= pc);
        matches!(pos.checked_sub(1).map(|i| self.ranges[i]), Some((_, e)) if pc < e)
    }

    /// Per-core rings followed by the host ring.
    pub fn rings(&self) -> &[Ring<FlightEvent>] {
        &self.rings
    }

    /// The host ring (events with no producing core).
    pub fn host_ring(&self) -> &Ring<FlightEvent> {
        self.rings.last().expect("always at least the host ring")
    }

    /// Events ever recorded across all rings.
    pub fn total_recorded(&self) -> u64 {
        self.rings.iter().map(Ring::total_recorded).sum()
    }

    /// Events currently retained across all rings.
    pub fn retained(&self) -> u64 {
        self.rings.iter().map(|r| r.len() as u64).sum()
    }

    /// Events lost to ring eviction.
    pub fn evicted(&self) -> u64 {
        self.rings.iter().map(Ring::evicted).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_filter_drops_at_record_time() {
        let mut r = FlightRecorder::new(
            2,
            FlightConfig {
                buf_slots: 8,
                categories: Categories::SCHED,
            },
        );
        r.record(0, 10, Some(1), EventData::SwitchIn);
        r.record(0, 11, Some(1), EventData::Pmi { slot: 0 });
        r.record_host(12, None, EventData::SessionOpen { threads: 1 });
        assert_eq!(r.total_recorded(), 1);
        assert_eq!(r.rings()[0].last().unwrap().data, EventData::SwitchIn);
        assert!(r.wants(Categories::SCHED));
        assert!(!r.wants(Categories::PMU));
    }

    #[test]
    fn host_ring_is_separate_from_core_rings() {
        let mut r = FlightRecorder::new(2, FlightConfig::default());
        r.record(1, 5, None, EventData::SchedPick);
        r.record_host(9, None, EventData::SnapshotPublish { seq: 1 });
        assert_eq!(r.num_cores(), 2);
        assert_eq!(r.rings().len(), 3);
        assert_eq!(r.rings()[1].len(), 1);
        assert_eq!(r.host_ring().len(), 1);
    }

    #[test]
    fn marks_and_ranges_answer_lookups() {
        let mut r = FlightRecorder::new(1, FlightConfig::default());
        r.set_marks(HashMap::from([
            (4, RegionMark::Enter),
            (9, RegionMark::Exit(3)),
        ]));
        assert_eq!(r.mark_at(4), Some(RegionMark::Enter));
        assert_eq!(r.mark_at(9), Some(RegionMark::Exit(3)));
        assert_eq!(r.mark_at(5), None);
        r.set_limit_ranges(&[(20, 23), (10, 13)]);
        assert!(r.in_limit_range(10));
        assert!(r.in_limit_range(22));
        assert!(!r.in_limit_range(13));
        assert!(!r.in_limit_range(9));
    }
}
