//! Exporters and the trace validator.
//!
//! Two outputs, one source of truth:
//!
//! * [`ndjson`] — a header line plus one compact record per event, in
//!   per-core ring order. Each core's stream is temporally ordered (core
//!   clocks are monotone); no *global* order is claimed, because migration
//!   legitimately skews clocks between cores.
//! * [`chrome_trace`] — Chrome trace-event JSON, loadable in Perfetto or
//!   `chrome://tracing`. Guest threads render as tracks (pid 1) carrying
//!   region/syscall duration spans, instants for PMIs / migrations /
//!   injections / divergences, and counter tracks from in-range `rdpmc`
//!   reads; core occupancy renders as pid 2; host-side spans (bench
//!   self-profiling) as pid 3.
//!
//! [`check`] re-parses an NDJSON trace and enforces the conservation
//! invariants `limit-repro check-trace` promises: schema intact, per-core
//! timestamps monotone, core occupancy well-formed (every switch-out names
//! the installed thread; no double switch-in), per-thread switch and
//! syscall balance, and no ring eviction (a truncated trace cannot be
//! validated, so it is rejected outright).

use crate::event::{EventData, FlightEvent};
use crate::recorder::FlightRecorder;
use sim_core::json::Json;
use std::collections::{BTreeMap, HashMap};

/// NDJSON schema version.
pub const SCHEMA: u64 = 1;

/// A host-side duration span (bench self-profiling) merged into the Chrome
/// export as pid 3.
#[derive(Debug, Clone)]
pub struct HostSpan {
    /// Span name (experiment or phase).
    pub name: String,
    /// Start, microseconds (host wall clock; the host track has its own
    /// time base).
    pub start_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Extra numeric args rendered into the span's `args`.
    pub args: Vec<(String, f64)>,
}

fn event_json(core: Option<usize>, ev: &FlightEvent) -> Json {
    let mut j = Json::object().set("ev", ev.data.kind());
    j = match core {
        Some(c) => j.set("core", c as u64),
        None => j.set("core", Json::Null),
    };
    j = j.set("ts", ev.ts);
    j = match ev.tid {
        Some(t) => j.set("tid", u64::from(t)),
        None => j.set("tid", Json::Null),
    };
    match ev.data {
        EventData::SwitchIn | EventData::SchedPick => j,
        EventData::SwitchOut { state } => j.set("state", state),
        EventData::Migration { from, to } => {
            j.set("from", u64::from(from)).set("to", u64::from(to))
        }
        EventData::Pmi { slot } => j.set("slot", u64::from(slot)),
        EventData::Spill { addr, amount } => j.set("addr", addr).set("amount", amount),
        EventData::LimitOpen { slot, event } => j.set("slot", u64::from(slot)).set("event", event),
        EventData::LimitClose { slot } => j.set("slot", u64::from(slot)),
        EventData::Rdpmc {
            slot,
            pc,
            value,
            in_range,
        } => j
            .set("slot", u64::from(slot))
            .set("pc", u64::from(pc))
            .set("value", value)
            .set("in_range", in_range),
        EventData::OracleArm { pc } => j.set("pc", u64::from(pc)),
        EventData::OracleCheck { pc, ok } => j.set("pc", u64::from(pc)).set("ok", ok),
        EventData::SyscallEnter { name } | EventData::SyscallExit { name } => j.set("name", name),
        EventData::Fault { pc } => j.set("pc", u64::from(pc)),
        EventData::Injection { pc, action } => j.set("pc", u64::from(pc)).set("action", action),
        EventData::SessionOpen { threads } => j.set("threads", u64::from(threads)),
        EventData::SessionClose {
            dropped,
            rejected,
            unfixed,
        } => j
            .set("dropped", dropped)
            .set("rejected", rejected)
            .set("unfixed", unfixed),
        EventData::RangeRegistered { start, end, ok } => j
            .set("start", u64::from(start))
            .set("end", u64::from(end))
            .set("ok", ok),
        EventData::RegionEnter { pc } => j.set("pc", u64::from(pc)),
        EventData::RegionExit { region, pc } => j.set("region", region).set("pc", u64::from(pc)),
        EventData::RingDrain { records } => j.set("records", records),
        EventData::SnapshotPublish { seq } => j.set("seq", seq),
        EventData::IoEnqueue {
            device,
            start,
            complete,
            depth,
        } => j
            .set("device", device)
            .set("start", start)
            .set("complete", complete)
            .set("depth", u64::from(depth)),
        EventData::IoBlock { device } | EventData::IoWake { device } => j.set("device", device),
    }
}

/// Renders the recorder as NDJSON: a header record, then every retained
/// event in per-core ring order (host ring last, `core: null`).
pub fn ndjson(rec: &FlightRecorder, freq_hz: u64) -> String {
    let cores = rec.num_cores();
    let header = Json::object()
        .set("type", "header")
        .set("schema", SCHEMA)
        .set("cores", cores as u64)
        .set("freq_hz", freq_hz)
        .set("recorded", rec.total_recorded())
        .set("retained", rec.retained())
        .set("evicted", rec.evicted());
    let mut out = header.compact();
    out.push('\n');
    for (i, ring) in rec.rings().iter().enumerate() {
        let core = if i < cores { Some(i) } else { None };
        for ev in ring.iter() {
            out.push_str(&event_json(core, ev).compact());
            out.push('\n');
        }
    }
    out
}

fn instant(name: &str, cat: &str, pid: u64, tid: u64, ts_us: f64) -> Json {
    Json::object()
        .set("name", name)
        .set("cat", cat)
        .set("ph", "i")
        .set("s", "t")
        .set("pid", pid)
        .set("tid", tid)
        .set("ts", ts_us)
}

fn complete(name: &str, cat: &str, pid: u64, tid: u64, ts_us: f64, dur_us: f64) -> Json {
    Json::object()
        .set("name", name)
        .set("cat", cat)
        .set("ph", "X")
        .set("pid", pid)
        .set("tid", tid)
        .set("ts", ts_us)
        .set("dur", dur_us)
}

fn name_meta(kind: &str, pid: u64, tid: Option<u64>, name: &str) -> Json {
    let mut j = Json::object()
        .set("name", kind)
        .set("ph", "M")
        .set("pid", pid);
    if let Some(t) = tid {
        j = j.set("tid", t);
    }
    j.set("args", Json::object().set("name", name))
}

const PID_THREADS: u64 = 1;
const PID_CORES: u64 = 2;
const PID_HOST: u64 = 3;
const PID_DEVICES: u64 = 4;

/// Builds Chrome trace-event JSON from the recorder. `region_names`
/// resolves region ids to display names (unresolved ids render as
/// `region #N`); `host_spans` lands on the host process track.
pub fn chrome_trace(
    rec: &FlightRecorder,
    freq_hz: u64,
    region_names: &HashMap<u64, String>,
    host_spans: &[HostSpan],
) -> Json {
    let us = |cycles: u64| cycles as f64 * 1e6 / freq_hz as f64;
    let mut events: Vec<Json> = vec![
        name_meta("process_name", PID_THREADS, None, "guest threads"),
        name_meta("process_name", PID_CORES, None, "cores"),
        name_meta("process_name", PID_HOST, None, "host"),
    ];

    // Per-thread tracks. A thread's events are scattered across core rings
    // (migration); its own clock is monotone — switch-in clamps the target
    // core's clock to at least the thread's ready time — so a stable
    // per-thread sort by ts reconstructs its timeline.
    let cores = rec.num_cores();
    let mut per_tid: BTreeMap<u32, Vec<FlightEvent>> = BTreeMap::new();
    for ring in &rec.rings()[..cores] {
        for ev in ring.iter() {
            if let Some(tid) = ev.tid {
                per_tid.entry(tid).or_default().push(*ev);
            }
        }
    }
    for (&tid, evs) in &mut per_tid {
        evs.sort_by_key(|e| e.ts);
        let t = u64::from(tid);
        events.push(name_meta(
            "thread_name",
            PID_THREADS,
            Some(t),
            &format!("tid {tid}"),
        ));
        let mut region_stack: Vec<f64> = Vec::new();
        let mut syscall_stack: Vec<(&'static str, f64)> = Vec::new();
        for ev in evs.iter() {
            let ts = us(ev.ts);
            match ev.data {
                EventData::RegionEnter { .. } => region_stack.push(ts),
                EventData::RegionExit { region, .. } => {
                    let start = region_stack.pop().unwrap_or(ts);
                    let name = region_names
                        .get(&region)
                        .cloned()
                        .unwrap_or_else(|| format!("region #{region}"));
                    events.push(complete(
                        &name,
                        "region",
                        PID_THREADS,
                        t,
                        start,
                        (ts - start).max(0.0),
                    ));
                }
                EventData::SyscallEnter { name } => syscall_stack.push((name, ts)),
                EventData::SyscallExit { name } => {
                    let (name, start) = syscall_stack.pop().unwrap_or((name, ts));
                    events.push(complete(
                        &format!("sys_{name}"),
                        "syscall",
                        PID_THREADS,
                        t,
                        start,
                        (ts - start).max(0.0),
                    ));
                }
                EventData::Pmi { slot } => {
                    events.push(instant(
                        &format!("pmi slot{slot}"),
                        "irq",
                        PID_THREADS,
                        t,
                        ts,
                    ));
                }
                EventData::Migration { from, to } => {
                    events.push(
                        instant("migration", "sched", PID_THREADS, t, ts).set(
                            "args",
                            Json::object()
                                .set("from", u64::from(from))
                                .set("to", u64::from(to)),
                        ),
                    );
                }
                EventData::Injection { pc, action } => {
                    events.push(
                        instant(&format!("inject {action}"), "inject", PID_THREADS, t, ts)
                            .set("args", Json::object().set("pc", u64::from(pc))),
                    );
                }
                EventData::Spill { .. } => {
                    events.push(instant("spill", "pmu", PID_THREADS, t, ts));
                }
                EventData::Fault { pc } => {
                    events.push(
                        instant("fault", "irq", PID_THREADS, t, ts)
                            .set("args", Json::object().set("pc", u64::from(pc))),
                    );
                }
                EventData::OracleCheck { pc, ok } if !ok => {
                    events.push(
                        instant("divergence", "oracle", PID_THREADS, t, ts)
                            .set("args", Json::object().set("pc", u64::from(pc))),
                    );
                }
                EventData::Rdpmc {
                    slot,
                    value,
                    in_range: true,
                    ..
                } => {
                    events.push(
                        Json::object()
                            .set("name", format!("tid {tid} ctr{slot}"))
                            .set("cat", "pmu")
                            .set("ph", "C")
                            .set("pid", PID_THREADS)
                            .set("tid", t)
                            .set("ts", ts)
                            .set("args", Json::object().set("value", value)),
                    );
                }
                _ => {}
            }
        }
    }

    // Core occupancy tracks: B/E spans named after the installed thread.
    for (core, ring) in rec.rings()[..cores].iter().enumerate() {
        let c = core as u64;
        events.push(name_meta(
            "thread_name",
            PID_CORES,
            Some(c),
            &format!("core {core}"),
        ));
        for ev in ring.iter() {
            let ts = us(ev.ts);
            match ev.data {
                EventData::SwitchIn => {
                    let name = match ev.tid {
                        Some(tid) => format!("tid {tid}"),
                        None => "?".to_string(),
                    };
                    events.push(
                        Json::object()
                            .set("name", name)
                            .set("cat", "sched")
                            .set("ph", "B")
                            .set("pid", PID_CORES)
                            .set("tid", c)
                            .set("ts", ts),
                    );
                }
                EventData::SwitchOut { .. } => {
                    events.push(
                        Json::object()
                            .set("ph", "E")
                            .set("pid", PID_CORES)
                            .set("tid", c)
                            .set("ts", ts),
                    );
                }
                EventData::SchedPick => {
                    events.push(instant("sched_pick", "sched", PID_CORES, c, ts));
                }
                _ => {}
            }
        }
    }

    // Device tracks (pid 4), present only when I/O events exist: one row
    // per device carrying its serialized request spans [start, complete]
    // (requests on one device never overlap — the service queue is FIFO
    // with one request in service), plus a queue-depth counter track
    // rebuilt by sweeping enqueue/complete edges.
    let mut per_device: BTreeMap<&'static str, Vec<(u64, u64, u64)>> = BTreeMap::new();
    for ring in &rec.rings()[..cores] {
        for ev in ring.iter() {
            if let EventData::IoEnqueue {
                device,
                start,
                complete,
                ..
            } = ev.data
            {
                per_device
                    .entry(device)
                    .or_default()
                    .push((ev.ts, start, complete));
            }
        }
    }
    if !per_device.is_empty() {
        events.push(name_meta("process_name", PID_DEVICES, None, "devices"));
        for (row, (device, reqs)) in per_device.iter_mut().enumerate() {
            let d = row as u64;
            events.push(name_meta("thread_name", PID_DEVICES, Some(d), device));
            reqs.sort_by_key(|&(ts, start, _)| (start, ts));
            for &(enq_ts, start, comp) in reqs.iter() {
                events.push(
                    complete(
                        device,
                        "io",
                        PID_DEVICES,
                        d,
                        us(start),
                        us(comp.saturating_sub(start)),
                    )
                    .set("args", Json::object().set("enqueued", us(enq_ts))),
                );
            }
            // Queue-depth sawtooth: +1 at enqueue, -1 at completion, with
            // completions applied first on ties so depth never overshoots.
            let mut edges: Vec<(u64, i64)> = Vec::with_capacity(reqs.len() * 2);
            for &(enq_ts, _, comp) in reqs.iter() {
                edges.push((enq_ts, 1));
                edges.push((comp, -1));
            }
            edges.sort_by_key(|&(ts, delta)| (ts, delta));
            let mut depth: i64 = 0;
            for (ts, delta) in edges {
                depth += delta;
                events.push(
                    Json::object()
                        .set("name", format!("{device} queue"))
                        .set("cat", "io")
                        .set("ph", "C")
                        .set("pid", PID_DEVICES)
                        .set("tid", d)
                        .set("ts", us(ts))
                        .set("args", Json::object().set("depth", depth.max(0) as u64)),
                );
            }
        }
    }

    // Host track: lifecycle/telemetry instants (tid 0) and bench spans
    // (tid 1, its own wall-clock time base).
    events.push(name_meta("thread_name", PID_HOST, Some(0), "session"));
    for ev in rec.host_ring().iter() {
        events.push(instant(ev.data.kind(), "host", PID_HOST, 0, us(ev.ts)));
    }
    if !host_spans.is_empty() {
        events.push(name_meta("thread_name", PID_HOST, Some(1), "bench"));
        for span in host_spans {
            let mut args = Json::object();
            for (k, v) in &span.args {
                args = args.set(k, *v);
            }
            events.push(
                complete(&span.name, "bench", PID_HOST, 1, span.start_us, span.dur_us)
                    .set("args", args),
            );
        }
    }

    Json::object()
        .set("displayTimeUnit", "ms")
        .set("traceEvents", Json::Array(events))
}

/// Summary of a validated trace.
#[derive(Debug, Default, Clone)]
pub struct CheckReport {
    /// Event records validated (header excluded).
    pub events: u64,
    /// Cores the header declared.
    pub cores: u64,
    /// Context switch-ins seen.
    pub switch_ins: u64,
    /// Context switch-outs seen.
    pub switch_outs: u64,
    /// Syscall entries seen.
    pub syscall_enters: u64,
    /// Syscall exits seen.
    pub syscall_exits: u64,
    /// PMIs seen.
    pub pmis: u64,
    /// Migrations seen.
    pub migrations: u64,
    /// Injections seen.
    pub injections: u64,
    /// Region exits seen.
    pub region_exits: u64,
    /// Distinct threads observed.
    pub threads: u64,
    /// I/O enqueues seen.
    pub io_enqueues: u64,
    /// I/O blocks seen.
    pub io_blocks: u64,
    /// I/O wakes seen.
    pub io_wakes: u64,
    /// Distinct I/O devices observed.
    pub io_devices: u64,
}

const KNOWN_KINDS: [&str; 25] = [
    "switch_in",
    "switch_out",
    "sched_pick",
    "migration",
    "pmi",
    "fault",
    "spill",
    "limit_open",
    "limit_close",
    "rdpmc",
    "oracle_arm",
    "oracle_check",
    "syscall_enter",
    "syscall_exit",
    "injection",
    "session_open",
    "session_close",
    "range_registered",
    "region_enter",
    "region_exit",
    "ring_drain",
    "snapshot_publish",
    "io_enqueue",
    "io_block",
    "io_wake",
];

#[derive(Default)]
struct CoreState {
    last_ts: u64,
    occupant: Option<u64>,
}

#[derive(Default)]
struct TidState {
    switch_ins: u64,
    switch_outs: u64,
    syscall_enters: u64,
    syscall_exits: u64,
    /// Open syscall depth, tracked per core stream (enter and exit of one
    /// syscall always land on the same core).
    in_syscall: bool,
}

/// Validates an NDJSON trace (see module docs for the invariant list).
pub fn check(text: &str) -> Result<CheckReport, String> {
    let mut lines = text.lines().enumerate();
    let (_, first) = lines.next().ok_or("empty trace")?;
    let header = Json::parse(first).map_err(|e| format!("line 1: {e}"))?;
    if header.get("type").and_then(Json::as_str) != Some("header") {
        return Err("line 1: expected the header record".to_string());
    }
    if header.get("schema").and_then(Json::as_u64) != Some(SCHEMA) {
        return Err(format!("line 1: unsupported schema (want {SCHEMA})"));
    }
    let hfield = |key: &str| -> Result<u64, String> {
        header
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line 1: header missing numeric {key:?}"))
    };
    let cores = hfield("cores")?;
    let recorded = hfield("recorded")?;
    let retained = hfield("retained")?;
    let evicted = hfield("evicted")?;
    if evicted > 0 || recorded != retained {
        return Err(format!(
            "trace truncated: {evicted} of {recorded} events evicted from full rings \
             (re-run with a larger --buf-slots)"
        ));
    }

    let mut report = CheckReport {
        cores,
        ..CheckReport::default()
    };
    let mut core_states: Vec<CoreState> = (0..cores).map(|_| CoreState::default()).collect();
    let mut tids: BTreeMap<u64, TidState> = BTreeMap::new();
    // Per-device I/O enqueues in line order: (enqueue ts, complete, depth).
    let mut io_devices: BTreeMap<String, Vec<(u64, u64, u64)>> = BTreeMap::new();
    // Per-tid io_block/io_wake edges: (ts, is_block). Block and wake may
    // land on different cores (the thread can migrate across the wait), so
    // alternation is checked on the thread's own monotone clock, not in
    // line order.
    let mut io_edges: BTreeMap<u64, Vec<(u64, bool)>> = BTreeMap::new();

    for (lineno, line) in lines {
        let n = lineno + 1;
        let doc = Json::parse(line).map_err(|e| format!("line {n}: {e}"))?;
        let kind = doc
            .get("ev")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {n}: missing \"ev\""))?;
        if !KNOWN_KINDS.contains(&kind) {
            return Err(format!("line {n}: unknown event kind {kind:?}"));
        }
        if doc.get("ts").and_then(Json::as_u64).is_none() {
            return Err(format!("line {n}: missing numeric \"ts\""));
        }
        let ts = doc.get("ts").and_then(Json::as_u64).unwrap();
        let core = match doc.get("core") {
            Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .filter(|&c| c < cores)
                    .ok_or_else(|| format!("line {n}: core out of range"))?,
            ),
            None => return Err(format!("line {n}: missing \"core\"")),
        };
        let tid = doc.get("tid").and_then(Json::as_u64);
        report.events += 1;

        let Some(core) = core else {
            continue; // Host events carry no per-core ordering claims.
        };
        let cs = &mut core_states[core as usize];
        if ts < cs.last_ts {
            return Err(format!(
                "line {n}: core {core} clock went backwards ({} -> {ts})",
                cs.last_ts
            ));
        }
        cs.last_ts = ts;

        match kind {
            "switch_in" => {
                let tid = tid.ok_or_else(|| format!("line {n}: switch_in without tid"))?;
                if let Some(prev) = cs.occupant {
                    return Err(format!(
                        "line {n}: switch_in of tid {tid} on core {core} still occupied by tid {prev}"
                    ));
                }
                cs.occupant = Some(tid);
                tids.entry(tid).or_default().switch_ins += 1;
                report.switch_ins += 1;
            }
            "switch_out" => {
                let tid = tid.ok_or_else(|| format!("line {n}: switch_out without tid"))?;
                if cs.occupant != Some(tid) {
                    return Err(format!(
                        "line {n}: switch_out of tid {tid} on core {core} but occupant is {:?}",
                        cs.occupant
                    ));
                }
                cs.occupant = None;
                tids.entry(tid).or_default().switch_outs += 1;
                report.switch_outs += 1;
            }
            "syscall_enter" => {
                let tid = tid.ok_or_else(|| format!("line {n}: syscall_enter without tid"))?;
                let t = tids.entry(tid).or_default();
                if t.in_syscall {
                    return Err(format!("line {n}: nested syscall_enter for tid {tid}"));
                }
                t.in_syscall = true;
                t.syscall_enters += 1;
                report.syscall_enters += 1;
            }
            "syscall_exit" => {
                let tid = tid.ok_or_else(|| format!("line {n}: syscall_exit without tid"))?;
                let t = tids.entry(tid).or_default();
                if !t.in_syscall {
                    return Err(format!(
                        "line {n}: syscall_exit without matching enter for tid {tid}"
                    ));
                }
                t.in_syscall = false;
                t.syscall_exits += 1;
                report.syscall_exits += 1;
            }
            "pmi" => report.pmis += 1,
            "migration" => report.migrations += 1,
            "injection" => report.injections += 1,
            "region_exit" => report.region_exits += 1,
            "io_enqueue" => {
                let device = doc
                    .get("device")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {n}: io_enqueue without device"))?;
                let field = |key: &str| -> Result<u64, String> {
                    doc.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("line {n}: io_enqueue missing numeric {key:?}"))
                };
                let (start, complete, depth) =
                    (field("start")?, field("complete")?, field("depth")?);
                if start < ts || complete < start {
                    return Err(format!(
                        "line {n}: io_enqueue on {device} violates enqueue <= start <= complete \
                         ({ts} / {start} / {complete})"
                    ));
                }
                if depth == 0 {
                    return Err(format!(
                        "line {n}: io_enqueue on {device} with depth 0 (the request itself counts)"
                    ));
                }
                io_devices
                    .entry(device.to_string())
                    .or_default()
                    .push((ts, complete, depth));
                report.io_enqueues += 1;
            }
            "io_block" => {
                let tid = tid.ok_or_else(|| format!("line {n}: io_block without tid"))?;
                io_edges.entry(tid).or_default().push((ts, true));
                report.io_blocks += 1;
            }
            "io_wake" => {
                let tid = tid.ok_or_else(|| format!("line {n}: io_wake without tid"))?;
                io_edges.entry(tid).or_default().push((ts, false));
                report.io_wakes += 1;
            }
            _ => {}
        }
    }

    // Device conservation: queue depth never negative under the edge
    // sweep, and when enqueue timestamps are unambiguous (strictly
    // increasing — the kernel's smallest-clock-first arbitration makes
    // them non-decreasing in submit order), the recorded depth must equal
    // exactly the outstanding-request count at enqueue.
    for (device, reqs) in &mut io_devices {
        reqs.sort_by_key(|&(ts, complete, _)| (ts, complete));
        let mut edges: Vec<(u64, i64)> = Vec::with_capacity(reqs.len() * 2);
        for &(ts, complete, _) in reqs.iter() {
            edges.push((ts, 1));
            edges.push((complete, -1));
        }
        edges.sort_by_key(|&(ts, delta)| (ts, delta));
        let mut depth: i64 = 0;
        for (ts, delta) in edges {
            depth += delta;
            if depth < 0 {
                return Err(format!(
                    "device {device}: queue depth went negative at ts {ts}"
                ));
            }
        }
        let unambiguous = reqs.windows(2).all(|w| w[0].0 < w[1].0);
        for (i, &(ts, _, depth)) in reqs.iter().enumerate() {
            if unambiguous {
                // Outstanding = this request plus earlier enqueues whose
                // completion is still in the future (the kernel prunes
                // completions at `complete <= now`).
                let want = 1 + reqs[..i].iter().filter(|&&(_, c, _)| c > ts).count() as u64;
                if depth != want {
                    return Err(format!(
                        "device {device}: enqueue at ts {ts} recorded depth {depth}, \
                         but {want} requests were outstanding"
                    ));
                }
            } else if depth > reqs.len() as u64 {
                return Err(format!(
                    "device {device}: enqueue at ts {ts} recorded depth {depth} \
                     with only {} requests in the trace",
                    reqs.len()
                ));
            }
        }
    }
    report.io_devices = io_devices.len() as u64;

    // io_block/io_wake must alternate per thread, block first, ending
    // balanced (every blocked thread woke before the trace ended).
    for (&tid, edges) in &mut io_edges {
        edges.sort_by_key(|&(ts, is_block)| (ts, !is_block));
        let mut blocked = false;
        for &(ts, is_block) in edges.iter() {
            if is_block == blocked {
                return Err(format!(
                    "tid {tid}: {} at ts {ts} out of order (io_block/io_wake must alternate)",
                    if is_block { "io_block" } else { "io_wake" }
                ));
            }
            blocked = is_block;
        }
        if blocked {
            return Err(format!("tid {tid}: io_block without a matching io_wake"));
        }
    }

    for (&tid, t) in &tids {
        if !(t.switch_outs <= t.switch_ins && t.switch_ins <= t.switch_outs + 1) {
            return Err(format!(
                "tid {tid}: {} switch-ins vs {} switch-outs (must differ by at most one)",
                t.switch_ins, t.switch_outs
            ));
        }
        if t.syscall_enters != t.syscall_exits {
            return Err(format!(
                "tid {tid}: {} syscall enters vs {} exits",
                t.syscall_enters, t.syscall_exits
            ));
        }
    }
    report.threads = tids.len() as u64;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::FlightConfig;

    fn small_recorder() -> FlightRecorder {
        let mut r = FlightRecorder::new(
            2,
            FlightConfig {
                buf_slots: 64,
                categories: crate::Categories::ALL,
            },
        );
        r.record(0, 10, Some(1), EventData::SwitchIn);
        r.record(0, 20, Some(1), EventData::SyscallEnter { name: "gettid" });
        r.record(0, 30, Some(1), EventData::SyscallExit { name: "gettid" });
        r.record(0, 35, Some(1), EventData::RegionEnter { pc: 100 });
        r.record(
            0,
            40,
            Some(1),
            EventData::Rdpmc {
                slot: 0,
                pc: 104,
                value: 17,
                in_range: true,
            },
        );
        r.record(0, 45, Some(1), EventData::RegionExit { region: 3, pc: 110 });
        r.record(0, 50, Some(1), EventData::Pmi { slot: 0 });
        r.record(0, 60, Some(1), EventData::SwitchOut { state: "ready" });
        r.record(1, 5, None, EventData::SchedPick);
        r.record(1, 7, Some(1), EventData::Migration { from: 0, to: 1 });
        r.record(1, 70, Some(1), EventData::SwitchIn);
        r.record(1, 90, Some(1), EventData::SwitchOut { state: "exited" });
        r.record_host(
            95,
            None,
            EventData::SessionClose {
                dropped: 0,
                rejected: 0,
                unfixed: 0,
            },
        );
        r
    }

    #[test]
    fn ndjson_round_trips_through_check() {
        let text = ndjson(&small_recorder(), 3_000_000_000);
        let report = check(&text).unwrap();
        assert_eq!(report.cores, 2);
        assert_eq!(report.switch_ins, 2);
        assert_eq!(report.switch_outs, 2);
        assert_eq!(report.syscall_enters, 1);
        assert_eq!(report.syscall_exits, 1);
        assert_eq!(report.pmis, 1);
        assert_eq!(report.migrations, 1);
        assert_eq!(report.region_exits, 1);
        assert_eq!(report.threads, 1);
        assert_eq!(report.events, 13);
    }

    #[test]
    fn check_rejects_unbalanced_switches() {
        let mut r = FlightRecorder::new(1, FlightConfig::default());
        r.record(0, 1, Some(4), EventData::SwitchIn);
        r.record(0, 2, Some(4), EventData::SwitchOut { state: "ready" });
        r.record(0, 3, Some(5), EventData::SwitchOut { state: "ready" });
        let err = check(&ndjson(&r, 1_000_000)).unwrap_err();
        assert!(err.contains("switch_out"), "{err}");
    }

    #[test]
    fn check_rejects_clock_regression() {
        let mut r = FlightRecorder::new(1, FlightConfig::default());
        r.record(0, 10, Some(1), EventData::SwitchIn);
        r.record(0, 5, Some(1), EventData::SwitchOut { state: "ready" });
        let err = check(&ndjson(&r, 1_000_000)).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn check_rejects_truncated_traces() {
        let mut r = FlightRecorder::new(
            1,
            FlightConfig {
                buf_slots: 2,
                categories: crate::Categories::ALL,
            },
        );
        for i in 0..5 {
            r.record(0, i, None, EventData::SchedPick);
        }
        let err = check(&ndjson(&r, 1_000_000)).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn check_rejects_unmatched_syscalls() {
        let mut r = FlightRecorder::new(1, FlightConfig::default());
        r.record(0, 1, Some(2), EventData::SyscallEnter { name: "yield" });
        let err = check(&ndjson(&r, 1_000_000)).unwrap_err();
        assert!(err.contains("syscall"), "{err}");
    }

    fn io_recorder() -> FlightRecorder {
        let mut r = FlightRecorder::new(1, FlightConfig::default());
        r.record(0, 10, Some(1), EventData::SwitchIn);
        r.record(
            0,
            20,
            Some(1),
            EventData::IoEnqueue {
                device: "fsync",
                start: 20,
                complete: 120,
                depth: 1,
            },
        );
        r.record(0, 20, Some(1), EventData::IoBlock { device: "fsync" });
        r.record(0, 21, Some(1), EventData::SwitchOut { state: "sleeping" });
        r.record(0, 120, Some(1), EventData::SwitchIn);
        r.record(0, 121, Some(1), EventData::IoWake { device: "fsync" });
        r.record(0, 130, Some(1), EventData::SwitchOut { state: "exited" });
        r
    }

    #[test]
    fn check_accepts_paired_io_and_counts_devices() {
        let report = check(&ndjson(&io_recorder(), 1_000_000)).unwrap();
        assert_eq!(report.io_enqueues, 1);
        assert_eq!(report.io_blocks, 1);
        assert_eq!(report.io_wakes, 1);
        assert_eq!(report.io_devices, 1);
    }

    #[test]
    fn check_rejects_unpaired_io_block() {
        let mut r = FlightRecorder::new(1, FlightConfig::default());
        r.record(0, 10, Some(1), EventData::IoBlock { device: "disk" });
        let err = check(&ndjson(&r, 1_000_000)).unwrap_err();
        assert!(err.contains("io_block"), "{err}");
    }

    #[test]
    fn check_rejects_wake_before_block() {
        let mut r = FlightRecorder::new(1, FlightConfig::default());
        r.record(0, 10, Some(1), EventData::IoWake { device: "disk" });
        r.record(0, 20, Some(1), EventData::IoBlock { device: "disk" });
        let err = check(&ndjson(&r, 1_000_000)).unwrap_err();
        assert!(err.contains("alternate"), "{err}");
    }

    #[test]
    fn check_rejects_completion_before_enqueue() {
        let mut r = FlightRecorder::new(1, FlightConfig::default());
        r.record(
            0,
            50,
            Some(1),
            EventData::IoEnqueue {
                device: "net",
                start: 50,
                complete: 40,
                depth: 1,
            },
        );
        let err = check(&ndjson(&r, 1_000_000)).unwrap_err();
        assert!(err.contains("complete"), "{err}");
    }

    #[test]
    fn check_rejects_wrong_queue_depth() {
        let mut r = FlightRecorder::new(1, FlightConfig::default());
        r.record(
            0,
            10,
            Some(1),
            EventData::IoEnqueue {
                device: "disk",
                start: 10,
                complete: 100,
                depth: 1,
            },
        );
        r.record(0, 10, Some(1), EventData::IoBlock { device: "disk" });
        r.record(0, 11, Some(1), EventData::IoWake { device: "disk" });
        // Second request overlaps the first (complete 100 > ts 20) so its
        // true depth is 2, not 1.
        r.record(
            0,
            20,
            Some(2),
            EventData::IoEnqueue {
                device: "disk",
                start: 100,
                complete: 150,
                depth: 1,
            },
        );
        r.record(0, 20, Some(2), EventData::IoBlock { device: "disk" });
        r.record(0, 21, Some(2), EventData::IoWake { device: "disk" });
        let err = check(&ndjson(&r, 1_000_000)).unwrap_err();
        assert!(err.contains("outstanding"), "{err}");
    }

    #[test]
    fn chrome_trace_renders_device_tracks() {
        let doc = chrome_trace(&io_recorder(), 1_000_000, &HashMap::new(), &[]);
        let text = doc.pretty();
        let back = Json::parse(&text).unwrap();
        let evs = back
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // Device request span on pid 4.
        assert!(evs.iter().any(|e| {
            e.get("pid").and_then(Json::as_u64) == Some(PID_DEVICES)
                && e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("name").and_then(Json::as_str) == Some("fsync")
        }));
        // Queue-depth counter track on pid 4.
        assert!(evs.iter().any(|e| {
            e.get("pid").and_then(Json::as_u64) == Some(PID_DEVICES)
                && e.get("ph").and_then(Json::as_str) == Some("C")
                && e.get("name").and_then(Json::as_str) == Some("fsync queue")
        }));
        // The devices process is labelled.
        assert!(evs.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("pid").and_then(Json::as_u64) == Some(PID_DEVICES)
        }));
    }

    #[test]
    fn chrome_trace_omits_device_process_without_io() {
        let doc = chrome_trace(&small_recorder(), 1_000_000, &HashMap::new(), &[]);
        let text = doc.pretty();
        let back = Json::parse(&text).unwrap();
        let evs = back.get("traceEvents").and_then(Json::as_array).unwrap();
        assert!(evs
            .iter()
            .all(|e| e.get("pid").and_then(Json::as_u64) != Some(PID_DEVICES)));
    }

    #[test]
    fn chrome_trace_parses_and_pairs_spans() {
        let names = HashMap::from([(3u64, "mysql.query".to_string())]);
        let spans = vec![HostSpan {
            name: "e2".to_string(),
            start_us: 0.0,
            dur_us: 1500.0,
            args: vec![("overhead_pct".to_string(), 3.5)],
        }];
        let doc = chrome_trace(&small_recorder(), 1_000_000, &names, &spans);
        // Round-trip through the hand-rolled parser (the CI smoke check).
        let text = doc.pretty();
        let back = Json::parse(&text).unwrap();
        let evs = back
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        let has = |pred: &dyn Fn(&Json) -> bool| evs.iter().any(pred);
        assert!(has(&|e| e.get("name").and_then(Json::as_str)
            == Some("mysql.query")
            && e.get("ph").and_then(Json::as_str) == Some("X")));
        assert!(has(&|e| e.get("ph").and_then(Json::as_str) == Some("C")));
        assert!(has(&|e| e.get("name").and_then(Json::as_str)
            == Some("migration")
            && e.get("ph").and_then(Json::as_str) == Some("i")));
        assert!(has(&|e| e.get("name").and_then(Json::as_str) == Some("e2")
            && e.get("pid").and_then(Json::as_u64) == Some(3)));
        assert!(has(&|e| e.get("ph").and_then(Json::as_str) == Some("B")));
        assert!(has(
            &|e| e.get("name").and_then(Json::as_str) == Some("sys_gettid")
        ));
    }
}
