//! Exporters and the trace validator.
//!
//! Two outputs, one source of truth:
//!
//! * [`ndjson`] — a header line plus one compact record per event, in
//!   per-core ring order. Each core's stream is temporally ordered (core
//!   clocks are monotone); no *global* order is claimed, because migration
//!   legitimately skews clocks between cores.
//! * [`chrome_trace`] — Chrome trace-event JSON, loadable in Perfetto or
//!   `chrome://tracing`. Guest threads render as tracks (pid 1) carrying
//!   region/syscall duration spans, instants for PMIs / migrations /
//!   injections / divergences, and counter tracks from in-range `rdpmc`
//!   reads; core occupancy renders as pid 2; host-side spans (bench
//!   self-profiling) as pid 3.
//!
//! [`check`] re-parses an NDJSON trace and enforces the conservation
//! invariants `limit-repro check-trace` promises: schema intact, per-core
//! timestamps monotone, core occupancy well-formed (every switch-out names
//! the installed thread; no double switch-in), per-thread switch and
//! syscall balance, and no ring eviction (a truncated trace cannot be
//! validated, so it is rejected outright).

use crate::event::{EventData, FlightEvent};
use crate::recorder::FlightRecorder;
use sim_core::json::Json;
use std::collections::{BTreeMap, HashMap};

/// NDJSON schema version.
pub const SCHEMA: u64 = 1;

/// A host-side duration span (bench self-profiling) merged into the Chrome
/// export as pid 3.
#[derive(Debug, Clone)]
pub struct HostSpan {
    /// Span name (experiment or phase).
    pub name: String,
    /// Start, microseconds (host wall clock; the host track has its own
    /// time base).
    pub start_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Extra numeric args rendered into the span's `args`.
    pub args: Vec<(String, f64)>,
}

fn event_json(core: Option<usize>, ev: &FlightEvent) -> Json {
    let mut j = Json::object().set("ev", ev.data.kind());
    j = match core {
        Some(c) => j.set("core", c as u64),
        None => j.set("core", Json::Null),
    };
    j = j.set("ts", ev.ts);
    j = match ev.tid {
        Some(t) => j.set("tid", u64::from(t)),
        None => j.set("tid", Json::Null),
    };
    match ev.data {
        EventData::SwitchIn | EventData::SchedPick => j,
        EventData::SwitchOut { state } => j.set("state", state),
        EventData::Migration { from, to } => {
            j.set("from", u64::from(from)).set("to", u64::from(to))
        }
        EventData::Pmi { slot } => j.set("slot", u64::from(slot)),
        EventData::Spill { addr, amount } => j.set("addr", addr).set("amount", amount),
        EventData::LimitOpen { slot, event } => j.set("slot", u64::from(slot)).set("event", event),
        EventData::LimitClose { slot } => j.set("slot", u64::from(slot)),
        EventData::Rdpmc {
            slot,
            pc,
            value,
            in_range,
        } => j
            .set("slot", u64::from(slot))
            .set("pc", u64::from(pc))
            .set("value", value)
            .set("in_range", in_range),
        EventData::OracleArm { pc } => j.set("pc", u64::from(pc)),
        EventData::OracleCheck { pc, ok } => j.set("pc", u64::from(pc)).set("ok", ok),
        EventData::SyscallEnter { name } | EventData::SyscallExit { name } => j.set("name", name),
        EventData::Fault { pc } => j.set("pc", u64::from(pc)),
        EventData::Injection { pc, action } => j.set("pc", u64::from(pc)).set("action", action),
        EventData::SessionOpen { threads } => j.set("threads", u64::from(threads)),
        EventData::SessionClose {
            dropped,
            rejected,
            unfixed,
        } => j
            .set("dropped", dropped)
            .set("rejected", rejected)
            .set("unfixed", unfixed),
        EventData::RangeRegistered { start, end, ok } => j
            .set("start", u64::from(start))
            .set("end", u64::from(end))
            .set("ok", ok),
        EventData::RegionEnter { pc } => j.set("pc", u64::from(pc)),
        EventData::RegionExit { region, pc } => j.set("region", region).set("pc", u64::from(pc)),
        EventData::RingDrain { records } => j.set("records", records),
        EventData::SnapshotPublish { seq } => j.set("seq", seq),
    }
}

/// Renders the recorder as NDJSON: a header record, then every retained
/// event in per-core ring order (host ring last, `core: null`).
pub fn ndjson(rec: &FlightRecorder, freq_hz: u64) -> String {
    let cores = rec.num_cores();
    let header = Json::object()
        .set("type", "header")
        .set("schema", SCHEMA)
        .set("cores", cores as u64)
        .set("freq_hz", freq_hz)
        .set("recorded", rec.total_recorded())
        .set("retained", rec.retained())
        .set("evicted", rec.evicted());
    let mut out = header.compact();
    out.push('\n');
    for (i, ring) in rec.rings().iter().enumerate() {
        let core = if i < cores { Some(i) } else { None };
        for ev in ring.iter() {
            out.push_str(&event_json(core, ev).compact());
            out.push('\n');
        }
    }
    out
}

fn instant(name: &str, cat: &str, pid: u64, tid: u64, ts_us: f64) -> Json {
    Json::object()
        .set("name", name)
        .set("cat", cat)
        .set("ph", "i")
        .set("s", "t")
        .set("pid", pid)
        .set("tid", tid)
        .set("ts", ts_us)
}

fn complete(name: &str, cat: &str, pid: u64, tid: u64, ts_us: f64, dur_us: f64) -> Json {
    Json::object()
        .set("name", name)
        .set("cat", cat)
        .set("ph", "X")
        .set("pid", pid)
        .set("tid", tid)
        .set("ts", ts_us)
        .set("dur", dur_us)
}

fn name_meta(kind: &str, pid: u64, tid: Option<u64>, name: &str) -> Json {
    let mut j = Json::object()
        .set("name", kind)
        .set("ph", "M")
        .set("pid", pid);
    if let Some(t) = tid {
        j = j.set("tid", t);
    }
    j.set("args", Json::object().set("name", name))
}

const PID_THREADS: u64 = 1;
const PID_CORES: u64 = 2;
const PID_HOST: u64 = 3;

/// Builds Chrome trace-event JSON from the recorder. `region_names`
/// resolves region ids to display names (unresolved ids render as
/// `region #N`); `host_spans` lands on the host process track.
pub fn chrome_trace(
    rec: &FlightRecorder,
    freq_hz: u64,
    region_names: &HashMap<u64, String>,
    host_spans: &[HostSpan],
) -> Json {
    let us = |cycles: u64| cycles as f64 * 1e6 / freq_hz as f64;
    let mut events: Vec<Json> = vec![
        name_meta("process_name", PID_THREADS, None, "guest threads"),
        name_meta("process_name", PID_CORES, None, "cores"),
        name_meta("process_name", PID_HOST, None, "host"),
    ];

    // Per-thread tracks. A thread's events are scattered across core rings
    // (migration); its own clock is monotone — switch-in clamps the target
    // core's clock to at least the thread's ready time — so a stable
    // per-thread sort by ts reconstructs its timeline.
    let cores = rec.num_cores();
    let mut per_tid: BTreeMap<u32, Vec<FlightEvent>> = BTreeMap::new();
    for ring in &rec.rings()[..cores] {
        for ev in ring.iter() {
            if let Some(tid) = ev.tid {
                per_tid.entry(tid).or_default().push(*ev);
            }
        }
    }
    for (&tid, evs) in &mut per_tid {
        evs.sort_by_key(|e| e.ts);
        let t = u64::from(tid);
        events.push(name_meta(
            "thread_name",
            PID_THREADS,
            Some(t),
            &format!("tid {tid}"),
        ));
        let mut region_stack: Vec<f64> = Vec::new();
        let mut syscall_stack: Vec<(&'static str, f64)> = Vec::new();
        for ev in evs.iter() {
            let ts = us(ev.ts);
            match ev.data {
                EventData::RegionEnter { .. } => region_stack.push(ts),
                EventData::RegionExit { region, .. } => {
                    let start = region_stack.pop().unwrap_or(ts);
                    let name = region_names
                        .get(&region)
                        .cloned()
                        .unwrap_or_else(|| format!("region #{region}"));
                    events.push(complete(
                        &name,
                        "region",
                        PID_THREADS,
                        t,
                        start,
                        (ts - start).max(0.0),
                    ));
                }
                EventData::SyscallEnter { name } => syscall_stack.push((name, ts)),
                EventData::SyscallExit { name } => {
                    let (name, start) = syscall_stack.pop().unwrap_or((name, ts));
                    events.push(complete(
                        &format!("sys_{name}"),
                        "syscall",
                        PID_THREADS,
                        t,
                        start,
                        (ts - start).max(0.0),
                    ));
                }
                EventData::Pmi { slot } => {
                    events.push(instant(
                        &format!("pmi slot{slot}"),
                        "irq",
                        PID_THREADS,
                        t,
                        ts,
                    ));
                }
                EventData::Migration { from, to } => {
                    events.push(
                        instant("migration", "sched", PID_THREADS, t, ts).set(
                            "args",
                            Json::object()
                                .set("from", u64::from(from))
                                .set("to", u64::from(to)),
                        ),
                    );
                }
                EventData::Injection { pc, action } => {
                    events.push(
                        instant(&format!("inject {action}"), "inject", PID_THREADS, t, ts)
                            .set("args", Json::object().set("pc", u64::from(pc))),
                    );
                }
                EventData::Spill { .. } => {
                    events.push(instant("spill", "pmu", PID_THREADS, t, ts));
                }
                EventData::Fault { pc } => {
                    events.push(
                        instant("fault", "irq", PID_THREADS, t, ts)
                            .set("args", Json::object().set("pc", u64::from(pc))),
                    );
                }
                EventData::OracleCheck { pc, ok } if !ok => {
                    events.push(
                        instant("divergence", "oracle", PID_THREADS, t, ts)
                            .set("args", Json::object().set("pc", u64::from(pc))),
                    );
                }
                EventData::Rdpmc {
                    slot,
                    value,
                    in_range: true,
                    ..
                } => {
                    events.push(
                        Json::object()
                            .set("name", format!("tid {tid} ctr{slot}"))
                            .set("cat", "pmu")
                            .set("ph", "C")
                            .set("pid", PID_THREADS)
                            .set("tid", t)
                            .set("ts", ts)
                            .set("args", Json::object().set("value", value)),
                    );
                }
                _ => {}
            }
        }
    }

    // Core occupancy tracks: B/E spans named after the installed thread.
    for (core, ring) in rec.rings()[..cores].iter().enumerate() {
        let c = core as u64;
        events.push(name_meta(
            "thread_name",
            PID_CORES,
            Some(c),
            &format!("core {core}"),
        ));
        for ev in ring.iter() {
            let ts = us(ev.ts);
            match ev.data {
                EventData::SwitchIn => {
                    let name = match ev.tid {
                        Some(tid) => format!("tid {tid}"),
                        None => "?".to_string(),
                    };
                    events.push(
                        Json::object()
                            .set("name", name)
                            .set("cat", "sched")
                            .set("ph", "B")
                            .set("pid", PID_CORES)
                            .set("tid", c)
                            .set("ts", ts),
                    );
                }
                EventData::SwitchOut { .. } => {
                    events.push(
                        Json::object()
                            .set("ph", "E")
                            .set("pid", PID_CORES)
                            .set("tid", c)
                            .set("ts", ts),
                    );
                }
                EventData::SchedPick => {
                    events.push(instant("sched_pick", "sched", PID_CORES, c, ts));
                }
                _ => {}
            }
        }
    }

    // Host track: lifecycle/telemetry instants (tid 0) and bench spans
    // (tid 1, its own wall-clock time base).
    events.push(name_meta("thread_name", PID_HOST, Some(0), "session"));
    for ev in rec.host_ring().iter() {
        events.push(instant(ev.data.kind(), "host", PID_HOST, 0, us(ev.ts)));
    }
    if !host_spans.is_empty() {
        events.push(name_meta("thread_name", PID_HOST, Some(1), "bench"));
        for span in host_spans {
            let mut args = Json::object();
            for (k, v) in &span.args {
                args = args.set(k, *v);
            }
            events.push(
                complete(&span.name, "bench", PID_HOST, 1, span.start_us, span.dur_us)
                    .set("args", args),
            );
        }
    }

    Json::object()
        .set("displayTimeUnit", "ms")
        .set("traceEvents", Json::Array(events))
}

/// Summary of a validated trace.
#[derive(Debug, Default, Clone)]
pub struct CheckReport {
    /// Event records validated (header excluded).
    pub events: u64,
    /// Cores the header declared.
    pub cores: u64,
    /// Context switch-ins seen.
    pub switch_ins: u64,
    /// Context switch-outs seen.
    pub switch_outs: u64,
    /// Syscall entries seen.
    pub syscall_enters: u64,
    /// Syscall exits seen.
    pub syscall_exits: u64,
    /// PMIs seen.
    pub pmis: u64,
    /// Migrations seen.
    pub migrations: u64,
    /// Injections seen.
    pub injections: u64,
    /// Region exits seen.
    pub region_exits: u64,
    /// Distinct threads observed.
    pub threads: u64,
}

const KNOWN_KINDS: [&str; 22] = [
    "switch_in",
    "switch_out",
    "sched_pick",
    "migration",
    "pmi",
    "fault",
    "spill",
    "limit_open",
    "limit_close",
    "rdpmc",
    "oracle_arm",
    "oracle_check",
    "syscall_enter",
    "syscall_exit",
    "injection",
    "session_open",
    "session_close",
    "range_registered",
    "region_enter",
    "region_exit",
    "ring_drain",
    "snapshot_publish",
];

#[derive(Default)]
struct CoreState {
    last_ts: u64,
    occupant: Option<u64>,
}

#[derive(Default)]
struct TidState {
    switch_ins: u64,
    switch_outs: u64,
    syscall_enters: u64,
    syscall_exits: u64,
    /// Open syscall depth, tracked per core stream (enter and exit of one
    /// syscall always land on the same core).
    in_syscall: bool,
}

/// Validates an NDJSON trace (see module docs for the invariant list).
pub fn check(text: &str) -> Result<CheckReport, String> {
    let mut lines = text.lines().enumerate();
    let (_, first) = lines.next().ok_or("empty trace")?;
    let header = Json::parse(first).map_err(|e| format!("line 1: {e}"))?;
    if header.get("type").and_then(Json::as_str) != Some("header") {
        return Err("line 1: expected the header record".to_string());
    }
    if header.get("schema").and_then(Json::as_u64) != Some(SCHEMA) {
        return Err(format!("line 1: unsupported schema (want {SCHEMA})"));
    }
    let hfield = |key: &str| -> Result<u64, String> {
        header
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line 1: header missing numeric {key:?}"))
    };
    let cores = hfield("cores")?;
    let recorded = hfield("recorded")?;
    let retained = hfield("retained")?;
    let evicted = hfield("evicted")?;
    if evicted > 0 || recorded != retained {
        return Err(format!(
            "trace truncated: {evicted} of {recorded} events evicted from full rings \
             (re-run with a larger --buf-slots)"
        ));
    }

    let mut report = CheckReport {
        cores,
        ..CheckReport::default()
    };
    let mut core_states: Vec<CoreState> = (0..cores).map(|_| CoreState::default()).collect();
    let mut tids: BTreeMap<u64, TidState> = BTreeMap::new();

    for (lineno, line) in lines {
        let n = lineno + 1;
        let doc = Json::parse(line).map_err(|e| format!("line {n}: {e}"))?;
        let kind = doc
            .get("ev")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {n}: missing \"ev\""))?;
        if !KNOWN_KINDS.contains(&kind) {
            return Err(format!("line {n}: unknown event kind {kind:?}"));
        }
        if doc.get("ts").and_then(Json::as_u64).is_none() {
            return Err(format!("line {n}: missing numeric \"ts\""));
        }
        let ts = doc.get("ts").and_then(Json::as_u64).unwrap();
        let core = match doc.get("core") {
            Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .filter(|&c| c < cores)
                    .ok_or_else(|| format!("line {n}: core out of range"))?,
            ),
            None => return Err(format!("line {n}: missing \"core\"")),
        };
        let tid = doc.get("tid").and_then(Json::as_u64);
        report.events += 1;

        let Some(core) = core else {
            continue; // Host events carry no per-core ordering claims.
        };
        let cs = &mut core_states[core as usize];
        if ts < cs.last_ts {
            return Err(format!(
                "line {n}: core {core} clock went backwards ({} -> {ts})",
                cs.last_ts
            ));
        }
        cs.last_ts = ts;

        match kind {
            "switch_in" => {
                let tid = tid.ok_or_else(|| format!("line {n}: switch_in without tid"))?;
                if let Some(prev) = cs.occupant {
                    return Err(format!(
                        "line {n}: switch_in of tid {tid} on core {core} still occupied by tid {prev}"
                    ));
                }
                cs.occupant = Some(tid);
                tids.entry(tid).or_default().switch_ins += 1;
                report.switch_ins += 1;
            }
            "switch_out" => {
                let tid = tid.ok_or_else(|| format!("line {n}: switch_out without tid"))?;
                if cs.occupant != Some(tid) {
                    return Err(format!(
                        "line {n}: switch_out of tid {tid} on core {core} but occupant is {:?}",
                        cs.occupant
                    ));
                }
                cs.occupant = None;
                tids.entry(tid).or_default().switch_outs += 1;
                report.switch_outs += 1;
            }
            "syscall_enter" => {
                let tid = tid.ok_or_else(|| format!("line {n}: syscall_enter without tid"))?;
                let t = tids.entry(tid).or_default();
                if t.in_syscall {
                    return Err(format!("line {n}: nested syscall_enter for tid {tid}"));
                }
                t.in_syscall = true;
                t.syscall_enters += 1;
                report.syscall_enters += 1;
            }
            "syscall_exit" => {
                let tid = tid.ok_or_else(|| format!("line {n}: syscall_exit without tid"))?;
                let t = tids.entry(tid).or_default();
                if !t.in_syscall {
                    return Err(format!(
                        "line {n}: syscall_exit without matching enter for tid {tid}"
                    ));
                }
                t.in_syscall = false;
                t.syscall_exits += 1;
                report.syscall_exits += 1;
            }
            "pmi" => report.pmis += 1,
            "migration" => report.migrations += 1,
            "injection" => report.injections += 1,
            "region_exit" => report.region_exits += 1,
            _ => {}
        }
    }

    for (&tid, t) in &tids {
        if !(t.switch_outs <= t.switch_ins && t.switch_ins <= t.switch_outs + 1) {
            return Err(format!(
                "tid {tid}: {} switch-ins vs {} switch-outs (must differ by at most one)",
                t.switch_ins, t.switch_outs
            ));
        }
        if t.syscall_enters != t.syscall_exits {
            return Err(format!(
                "tid {tid}: {} syscall enters vs {} exits",
                t.syscall_enters, t.syscall_exits
            ));
        }
    }
    report.threads = tids.len() as u64;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::FlightConfig;

    fn small_recorder() -> FlightRecorder {
        let mut r = FlightRecorder::new(
            2,
            FlightConfig {
                buf_slots: 64,
                categories: crate::Categories::ALL,
            },
        );
        r.record(0, 10, Some(1), EventData::SwitchIn);
        r.record(0, 20, Some(1), EventData::SyscallEnter { name: "gettid" });
        r.record(0, 30, Some(1), EventData::SyscallExit { name: "gettid" });
        r.record(0, 35, Some(1), EventData::RegionEnter { pc: 100 });
        r.record(
            0,
            40,
            Some(1),
            EventData::Rdpmc {
                slot: 0,
                pc: 104,
                value: 17,
                in_range: true,
            },
        );
        r.record(0, 45, Some(1), EventData::RegionExit { region: 3, pc: 110 });
        r.record(0, 50, Some(1), EventData::Pmi { slot: 0 });
        r.record(0, 60, Some(1), EventData::SwitchOut { state: "ready" });
        r.record(1, 5, None, EventData::SchedPick);
        r.record(1, 7, Some(1), EventData::Migration { from: 0, to: 1 });
        r.record(1, 70, Some(1), EventData::SwitchIn);
        r.record(1, 90, Some(1), EventData::SwitchOut { state: "exited" });
        r.record_host(
            95,
            None,
            EventData::SessionClose {
                dropped: 0,
                rejected: 0,
                unfixed: 0,
            },
        );
        r
    }

    #[test]
    fn ndjson_round_trips_through_check() {
        let text = ndjson(&small_recorder(), 3_000_000_000);
        let report = check(&text).unwrap();
        assert_eq!(report.cores, 2);
        assert_eq!(report.switch_ins, 2);
        assert_eq!(report.switch_outs, 2);
        assert_eq!(report.syscall_enters, 1);
        assert_eq!(report.syscall_exits, 1);
        assert_eq!(report.pmis, 1);
        assert_eq!(report.migrations, 1);
        assert_eq!(report.region_exits, 1);
        assert_eq!(report.threads, 1);
        assert_eq!(report.events, 13);
    }

    #[test]
    fn check_rejects_unbalanced_switches() {
        let mut r = FlightRecorder::new(1, FlightConfig::default());
        r.record(0, 1, Some(4), EventData::SwitchIn);
        r.record(0, 2, Some(4), EventData::SwitchOut { state: "ready" });
        r.record(0, 3, Some(5), EventData::SwitchOut { state: "ready" });
        let err = check(&ndjson(&r, 1_000_000)).unwrap_err();
        assert!(err.contains("switch_out"), "{err}");
    }

    #[test]
    fn check_rejects_clock_regression() {
        let mut r = FlightRecorder::new(1, FlightConfig::default());
        r.record(0, 10, Some(1), EventData::SwitchIn);
        r.record(0, 5, Some(1), EventData::SwitchOut { state: "ready" });
        let err = check(&ndjson(&r, 1_000_000)).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn check_rejects_truncated_traces() {
        let mut r = FlightRecorder::new(
            1,
            FlightConfig {
                buf_slots: 2,
                categories: crate::Categories::ALL,
            },
        );
        for i in 0..5 {
            r.record(0, i, None, EventData::SchedPick);
        }
        let err = check(&ndjson(&r, 1_000_000)).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn check_rejects_unmatched_syscalls() {
        let mut r = FlightRecorder::new(1, FlightConfig::default());
        r.record(0, 1, Some(2), EventData::SyscallEnter { name: "yield" });
        let err = check(&ndjson(&r, 1_000_000)).unwrap_err();
        assert!(err.contains("syscall"), "{err}");
    }

    #[test]
    fn chrome_trace_parses_and_pairs_spans() {
        let names = HashMap::from([(3u64, "mysql.query".to_string())]);
        let spans = vec![HostSpan {
            name: "e2".to_string(),
            start_us: 0.0,
            dur_us: 1500.0,
            args: vec![("overhead_pct".to_string(), 3.5)],
        }];
        let doc = chrome_trace(&small_recorder(), 1_000_000, &names, &spans);
        // Round-trip through the hand-rolled parser (the CI smoke check).
        let text = doc.pretty();
        let back = Json::parse(&text).unwrap();
        let evs = back
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        let has = |pred: &dyn Fn(&Json) -> bool| evs.iter().any(pred);
        assert!(has(&|e| e.get("name").and_then(Json::as_str)
            == Some("mysql.query")
            && e.get("ph").and_then(Json::as_str) == Some("X")));
        assert!(has(&|e| e.get("ph").and_then(Json::as_str) == Some("C")));
        assert!(has(&|e| e.get("name").and_then(Json::as_str)
            == Some("migration")
            && e.get("ph").and_then(Json::as_str) == Some("i")));
        assert!(has(&|e| e.get("name").and_then(Json::as_str) == Some("e2")
            && e.get("pid").and_then(Json::as_u64) == Some(3)));
        assert!(has(&|e| e.get("ph").and_then(Json::as_str) == Some("B")));
        assert!(has(
            &|e| e.get("name").and_then(Json::as_str) == Some("sys_gettid")
        ));
    }
}
