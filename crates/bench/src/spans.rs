//! Self-profiling spans: named host-side wall-clock measurements collected
//! in a process-global registry instead of ad-hoc `[timing]` stderr lines.
//!
//! Experiments record spans as they run (worker threads included — the
//! registry is a mutex); the driver drains them once at the end into the
//! `timings` object of `run-summary.json`, and the trace exporter turns
//! them into host-track slices of the Chrome timeline. Spans measure the
//! *host*, so they never appear in deterministic experiment tables.

use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One finished span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name, conventionally `area/detail` (e.g. `e14/fixup-on`).
    pub name: String,
    /// Start time in milliseconds since the first span of the process.
    pub start_ms: f64,
    /// Wall-clock duration in milliseconds.
    pub wall_ms: f64,
    /// Numeric annotations (e.g. `schedules_per_sec`).
    pub meta: Vec<(String, f64)>,
}

static REGISTRY: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// An in-flight measurement; finish it to record.
#[derive(Debug)]
pub struct Span {
    name: String,
    t0: Instant,
    meta: Vec<(String, f64)>,
}

/// Starts a span now.
pub fn start(name: impl Into<String>) -> Span {
    let _ = epoch();
    Span {
        name: name.into(),
        t0: Instant::now(),
        meta: Vec::new(),
    }
}

impl Span {
    /// Milliseconds elapsed so far, without stopping the clock.
    pub fn elapsed_ms(&self) -> f64 {
        self.t0.elapsed().as_secs_f64() * 1e3
    }

    /// Attaches a numeric annotation.
    pub fn meta(mut self, key: &str, value: f64) -> Self {
        self.meta.push((key.to_string(), value));
        self
    }

    /// Stops the clock and records the span, returning its duration in
    /// milliseconds.
    pub fn finish(self) -> f64 {
        let wall_ms = self.t0.elapsed().as_secs_f64() * 1e3;
        let start_ms = self.t0.duration_since(epoch()).as_secs_f64() * 1e3;
        REGISTRY.lock().unwrap().push(SpanRecord {
            name: self.name,
            start_ms,
            wall_ms,
            meta: self.meta,
        });
        wall_ms
    }
}

/// Records an externally measured span — for durations timed inside a
/// crate that cannot depend on `bench` (e.g. the what-if engine's arm
/// wall times). The span is backdated so it ends now and lasted
/// `wall_ms`.
pub fn record(name: impl Into<String>, wall_ms: f64, meta: &[(&str, f64)]) {
    let now_ms = Instant::now().duration_since(epoch()).as_secs_f64() * 1e3;
    REGISTRY.lock().unwrap().push(SpanRecord {
        name: name.into(),
        start_ms: (now_ms - wall_ms).max(0.0),
        wall_ms,
        meta: meta.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
    });
}

/// Removes and returns every span recorded so far, in finish order.
pub fn drain() -> Vec<SpanRecord> {
    std::mem::take(&mut *REGISTRY.lock().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_and_drain_in_finish_order() {
        let outer = start("outer").meta("k", 42.0);
        let inner = start("inner");
        inner.finish();
        let ms = outer.finish();
        assert!(ms >= 0.0);
        let spans = drain();
        // Other tests may have recorded spans concurrently; find ours.
        let names: Vec<_> = spans.iter().map(|s| s.name.as_str()).collect();
        let i = names.iter().position(|&n| n == "inner").unwrap();
        let o = names.iter().position(|&n| n == "outer").unwrap();
        assert!(i < o, "inner finished first");
        assert_eq!(spans[o].meta, vec![("k".to_string(), 42.0)]);
        assert!(spans[o].start_ms <= spans[i].start_ms + spans[i].wall_ms + 1.0);
        assert!(drain().iter().all(|s| s.name != "outer"), "drained");
    }
}
