//! Shared experiment drivers for the `exp_*` binaries and criterion
//! benches. Each experiment in DESIGN.md §4 has a function here that
//! produces its table(s); the binaries print them, the benches time the
//! underlying simulator.

pub mod experiments;
pub mod json;
pub mod spans;

/// Re-export of the bounded worker pool, which moved to `sim_core::parallel`
/// so layers below `bench` (the fleet driver) can share it. The
/// `bench::parmap*` paths keep working.
pub use sim_core::parallel;

pub use experiments::*;
pub use parallel::{default_jobs, parmap, parmap_with};
