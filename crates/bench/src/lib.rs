//! Shared experiment drivers for the `exp_*` binaries and criterion
//! benches. Each experiment in DESIGN.md §4 has a function here that
//! produces its table(s); the binaries print them, the benches time the
//! underlying simulator.

pub mod experiments;
pub mod json;
pub mod parallel;
pub mod spans;

pub use experiments::*;
pub use parallel::{default_jobs, parmap, parmap_with};
