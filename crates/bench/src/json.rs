//! Minimal JSON emission for experiment results.
//!
//! The workspace's `serde` is an offline stub (no registry access, see
//! `vendor/serde`), so machine-readable output is built with this small
//! hand-rolled writer instead of a serializer derive. It covers exactly
//! what result files need: objects, arrays, strings, numbers, and booleans,
//! with correct string escaping and stable (insertion-order) keys so files
//! diff cleanly across PRs.

use std::fmt::Write as _;

/// A JSON value assembled by hand.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (emitted without a fractional part).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Finite float (non-finite values are emitted as `null`).
    Float(f64),
    /// String (escaped on render).
    Str(String),
    /// Array of values.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds/replaces a field on an object; panics on non-objects.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        let Json::Object(ref mut fields) = self else {
            panic!("Json::set on a non-object");
        };
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value.into(),
            None => fields.push((key.to_string(), value.into())),
        }
        self
    }

    /// Renders with 2-space indentation and a trailing newline (stable
    /// output for committed result files).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.render(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    render_string(key, out);
                    out.push_str(": ");
                    value.render(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::object()
            .set("experiment", "e1")
            .set("wall_ms", 12.5)
            .set("ok", true)
            .set("tables", vec!["a\nb", "c"]);
        let s = j.pretty();
        assert!(s.starts_with("{\n"));
        assert!(s.contains("\"experiment\": \"e1\""));
        assert!(s.contains("\"wall_ms\": 12.5"));
        assert!(s.contains("\"a\\nb\""));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let s = Json::Str("he said \"hi\"\\\t\u{1}".to_string()).pretty();
        assert_eq!(s, "\"he said \\\"hi\\\"\\\\\\t\\u0001\"\n");
    }

    #[test]
    fn set_replaces_existing_keys_in_place() {
        let j = Json::object().set("a", 1i64).set("b", 2i64).set("a", 3i64);
        assert_eq!(j.pretty(), "{\n  \"a\": 3,\n  \"b\": 2\n}\n");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).pretty(), "null\n");
    }

    #[test]
    fn empty_containers_render_compactly() {
        assert_eq!(Json::object().pretty(), "{}\n");
        assert_eq!(Json::Array(vec![]).pretty(), "[]\n");
    }
}
