//! Re-export of the hand-rolled JSON module, which moved to `sim-core`
//! so lower layers (the flight recorder's exporters) can use it without
//! depending on `bench`. Existing `bench::json::Json` users keep working.

pub use sim_core::json::*;
