//! Host-side parallel experiment driver.
//!
//! Experiments are deterministic and independent, so sweep cells (thread
//! counts × methods, sampling periods, ablation arms) can run on separate
//! host threads. `parmap` preserves input order and propagates panics.

use crossbeam::thread;

/// Maps `f` over `items` on one host thread per item (sweeps are small),
/// returning results in input order.
///
/// # Panics
///
/// Propagates any panic from `f`.
pub fn parmap<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    if items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    thread::scope(|s| {
        let handles: Vec<_> = items.into_iter().map(|item| s.spawn(|_| f(item))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    })
    .expect("crossbeam scope")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parmap((0..16).collect(), |x: i32| x * x);
        assert_eq!(out, (0..16).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn runs_closures_in_parallel_without_interference() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let counter = AtomicU32::new(0);
        let out = parmap(vec![1u32; 8], |x| {
            counter.fetch_add(x, Ordering::SeqCst);
            x
        });
        assert_eq!(out.len(), 8);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(parmap(vec![7], |x: u64| x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "experiment thread panicked")]
    fn panics_propagate() {
        let _ = parmap(vec![1, 2], |x: i32| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
