//! E5 — sampling vs. precise counting on the Firefox task mix.
//!
//! Ground truth: LiMiT per-task-region cycle totals. Estimate: PMI samples
//! attributed by PC to the task-class ranges, scaled by the period. The
//! paper's point: the error explodes for short task classes and shrinking
//! the period to compensate costs interrupt overhead.

use analysis::{AccuracyReport, RangeMap, Table};
use baselines::SamplingSetup;
use limit::LimitReader;
use sim_core::SimResult;
use sim_cpu::EventKind;
use sim_os::KernelConfig;
use std::collections::HashMap;
use workloads::firefox::{self, FirefoxConfig, TASK_CLASSES};

/// One sampling-period row.
#[derive(Debug, Clone)]
pub struct E5Row {
    /// Sampling period (cycles between samples).
    pub period: u64,
    /// Samples collected.
    pub samples: usize,
    /// PMIs delivered (sampling overhead indicator).
    pub pmis: u64,
    /// Mean absolute relative error across task classes.
    pub mean_abs_err: f64,
    /// Worst-class absolute relative error.
    pub worst_abs_err: f64,
    /// The per-class report.
    pub report: AccuracyReport,
}

/// Runs the comparison for each sampling period.
pub fn run(cfg: &FirefoxConfig, periods: &[u64]) -> SimResult<Vec<E5Row>> {
    // Ground truth once.
    let events = [EventKind::Cycles];
    let reader = LimitReader::with_events(events.to_vec());
    let precise = firefox::run(cfg, &reader, 4, &events, KernelConfig::default())?;
    let records = precise.session.all_records()?;
    let by_region = analysis::precise_cycles_by_region(&records, 0);
    let mut truth: HashMap<String, u64> = HashMap::new();
    for (i, class) in TASK_CLASSES.iter().enumerate() {
        truth.insert(
            format!("fx.task.{class}"),
            by_region
                .get(&precise.image.regions.task[i])
                .copied()
                .unwrap_or(0),
        );
    }

    crate::parallel::parmap(periods.to_vec(), |period| {
        let sampler = SamplingSetup::new(EventKind::Cycles, period);
        let sampled = firefox::run(cfg, &sampler, 4, &[], KernelConfig::default())?;
        let samples = sampled.session.kernel.all_samples();
        let map = RangeMap::from_program(&sampled.session.kernel.machine.prog, "fx.task.");
        let estimate = analysis::samples_by_range(&samples, &map, period);
        // Keep only task classes (drop "<other>" from the error calc —
        // the paper's comparison is per attributed class).
        let estimate: HashMap<String, u64> = estimate
            .into_iter()
            .filter(|(k, _)| k.starts_with("fx.task."))
            .collect();
        let report = AccuracyReport::build(&truth, &estimate);
        Ok(E5Row {
            period,
            samples: samples.len(),
            pmis: sampled.report.pmis,
            mean_abs_err: report.mean_abs_error(),
            worst_abs_err: report.worst_abs_error(),
            report,
        })
    })
    .into_iter()
    .collect()
}

/// Renders the period-sweep table.
pub fn sweep_table(rows: &[E5Row]) -> Table {
    let mut t = Table::new(
        "E5: sampling attribution error vs period (firefox task mix)",
        &["period", "samples", "pmis", "mean |err|", "worst |err|"],
    );
    for r in rows {
        t.row(&[
            r.period.to_string(),
            r.samples.to_string(),
            r.pmis.to_string(),
            format!("{:.1}%", r.mean_abs_err * 100.0),
            format!("{:.1}%", r.worst_abs_err * 100.0),
        ]);
    }
    t
}

/// Renders the per-class detail for one row.
pub fn class_table(row: &E5Row) -> Table {
    let mut t = Table::new(
        &format!("E5 detail: per-class attribution at period {}", row.period),
        &["class", "precise cycles", "sampled estimate", "rel. error"],
    );
    for c in &row.report.classes {
        t.row(&[
            c.name.clone(),
            c.truth.to_string(),
            c.estimate.to_string(),
            format!("{:+.1}%", c.relative_error() * 100.0),
        ]);
    }
    t
}
