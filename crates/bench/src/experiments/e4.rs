//! E4 — the read-race ablation: what the restartable-sequence fix-up is
//! for.
//!
//! Threads hammer the LiMiT read sequence while a tiny scheduler quantum
//! and narrow counters generate a preemption + overflow storm. Each read
//! of a per-thread *instruction* counter is stored to a per-thread array;
//! since a thread's own instruction count is strictly non-decreasing, any
//! decrease between consecutive reads is a corrupted read. With the fix-up
//! on, corruption must be zero; with it off, the kernel counts the races
//! it declined to fix and the array shows real corruption.

use analysis::Table;
use baselines::SeqlockReader;
use limit::harness::SessionBuilder;
use limit::{CounterReader, LimitReader};
use sim_core::SimResult;
use sim_cpu::{Cond, EventKind, MachineConfig, MemLayout, PmuConfig, Reg};
use sim_os::KernelConfig;

/// Outcome of one ablation arm.
#[derive(Debug, Clone)]
pub struct E4Result {
    /// Read protocol ("limit" or "seqlock").
    pub protocol: &'static str,
    /// Whether the kernel fix-up was enabled.
    pub fixup: bool,
    /// Total reads performed across measured threads.
    pub reads: u64,
    /// Monotonicity violations observed in the read streams.
    pub violations: u64,
    /// PC rewinds the kernel performed.
    pub fixups: u64,
    /// Races the kernel observed but (by configuration) did not fix.
    pub unfixed_races: u64,
    /// Overflow interrupts delivered.
    pub pmis: u64,
    /// Involuntary preemptions.
    pub preemptions: u64,
}

/// Runs one arm of the ablation with the LiMiT read protocol.
pub fn run(fixup: bool) -> SimResult<E4Result> {
    let reader = LimitReader::with_events(vec![EventKind::Instructions]);
    run_with(&reader, fixup)
}

/// Runs one arm with the seqlock read protocol (self-correcting, so the
/// kernel fix-up is left off).
pub fn run_seqlock() -> SimResult<E4Result> {
    let reader = SeqlockReader::with_events(vec![EventKind::Instructions]);
    run_with(&reader, false)
}

/// Runs one arm of the ablation under the given reader.
pub fn run_with(reader: &dyn CounterReader, fixup: bool) -> SimResult<E4Result> {
    const THREADS: usize = 4;
    const READS: u64 = 4_000;
    let events = [EventKind::Instructions];

    let mut layout = MemLayout::default();
    let arrays: Vec<u64> = (0..THREADS).map(|_| layout.alloc(READS * 8, 64)).collect();

    let mut b = SessionBuilder::new(2)
        .events(&events)
        .with_layout(layout)
        .machine_config(MachineConfig::new(2).with_pmu(PmuConfig {
            counter_bits: 6, // wrap every 64 instructions -> PMI storm
            ..Default::default()
        }))
        .kernel_config(KernelConfig {
            quantum: 900, // preemption storm
            restart_fixup: fixup,
            ..Default::default()
        });
    let mut asm = b.asm();
    asm.export("main");
    asm.mov(Reg::R11, Reg::R1); // out array (arg), before setup clobbers r1
    reader.emit_thread_setup(&mut asm);
    asm.imm(Reg::R9, READS);
    asm.imm(Reg::R10, 0);
    let top = asm.new_label();
    asm.bind(top);
    reader.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
    asm.store(Reg::R4, Reg::R11, 0);
    asm.alui_add(Reg::R11, 8);
    asm.alui_sub(Reg::R9, 1);
    asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
    asm.halt();

    let mut s = b.build(asm)?;
    for &arr in &arrays {
        s.spawn_instrumented("main", &[arr])?;
    }
    let report = s.run()?;

    let mut violations = 0u64;
    for &arr in &arrays {
        let mut prev = 0u64;
        for i in 0..READS {
            let v = s.read_u64(arr + i * 8)?;
            if v < prev {
                violations += 1;
            }
            prev = v;
        }
    }
    Ok(E4Result {
        protocol: reader.name(),
        fixup,
        reads: READS * THREADS as u64,
        violations,
        fixups: report.limit_fixups,
        unfixed_races: report.limit_unfixed_races,
        pmis: report.pmis,
        preemptions: report.preemptions,
    })
}

/// Runs both LiMiT arms.
pub fn run_both() -> SimResult<(E4Result, E4Result)> {
    Ok((run(true)?, run(false)?))
}

/// Runs all three arms: LiMiT fix-up on, off, and the seqlock protocol.
pub fn run_all() -> SimResult<Vec<E4Result>> {
    Ok(vec![run(true)?, run(false)?, run_seqlock()?])
}

/// Renders the ablation table.
pub fn table_of(rows: &[&E4Result]) -> Table {
    let mut t = Table::new(
        "E4: read-race ablation (preemption + overflow storm)",
        &[
            "protocol",
            "fixup",
            "reads",
            "corrupted",
            "rewinds",
            "unfixed races",
            "pmis",
            "preemptions",
        ],
    );
    for r in rows {
        t.row(&[
            r.protocol.to_string(),
            if r.fixup { "on" } else { "off" }.to_string(),
            r.reads.to_string(),
            r.violations.to_string(),
            r.fixups.to_string(),
            r.unfixed_races.to_string(),
            r.pmis.to_string(),
            r.preemptions.to_string(),
        ]);
    }
    t
}

/// Renders the two-arm ablation table.
pub fn table(on: &E4Result, off: &E4Result) -> Table {
    table_of(&[on, off])
}
