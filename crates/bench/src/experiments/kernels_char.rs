//! Suite characterization: the six archetypal kernels profiled with the
//! full event taxonomy (two counter sets per kernel — the PMU has four
//! slots, as on real hardware), plus TLB and prefetcher ablations.

use analysis::metrics::{per_kilo_instruction, ratio};
use analysis::Table;
use sim_core::SimResult;
use sim_cpu::{EventKind, MachineConfig};
use sim_mem::{HierarchyConfig, TlbConfig};
use workloads::suite::{self, KERNEL_NAMES};

/// Full characterization of one kernel.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel name.
    pub name: &'static str,
    /// Total cycles.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// L1D misses per kilo-instruction.
    pub l1_mpki: f64,
    /// LLC misses per kilo-instruction.
    pub llc_mpki: f64,
    /// Branch mispredicts per kilo-instruction.
    pub bmiss_pki: f64,
    /// Data-TLB misses per kilo-instruction.
    pub tlb_mpki: f64,
}

fn machine(prefetch: u32) -> MachineConfig {
    MachineConfig::new(1).with_hierarchy(HierarchyConfig {
        l2_prefetch_depth: prefetch,
        tlb: Some(TlbConfig::default()),
        ..HierarchyConfig::default()
    })
}

/// Profiles every kernel (two runs each to cover six events with four
/// counters; runs are deterministic so the pairs compose exactly).
pub fn run(iters: u64, ws_bytes: u64) -> SimResult<Vec<KernelRow>> {
    let set_a = [
        EventKind::Cycles,
        EventKind::Instructions,
        EventKind::L1dMisses,
        EventKind::BranchMisses,
    ];
    let set_b = [
        EventKind::LlcMisses,
        EventKind::TlbMisses,
        EventKind::Loads,
        EventKind::Stores,
    ];
    KERNEL_NAMES
        .iter()
        .map(|&name| {
            let a = suite::run_kernel(name, &set_a, machine(0), iters, ws_bytes)?;
            let b = suite::run_kernel(name, &set_b, machine(0), iters, ws_bytes)?;
            let (cycles, instrs, l1, bmiss) = (a.totals[0], a.totals[1], a.totals[2], a.totals[3]);
            let (llc, tlb) = (b.totals[0], b.totals[1]);
            Ok(KernelRow {
                name,
                cycles,
                ipc: ratio(instrs, cycles),
                l1_mpki: per_kilo_instruction(l1, instrs),
                llc_mpki: per_kilo_instruction(llc, instrs),
                bmiss_pki: per_kilo_instruction(bmiss, instrs),
                tlb_mpki: per_kilo_instruction(tlb, instrs),
            })
        })
        .collect()
}

/// The prefetcher ablation: L2-miss counts for the memory kernels at
/// several prefetch depths. Returns `(kernel, depth, l2_misses)` rows.
pub fn prefetch_ablation(iters: u64, ws_bytes: u64) -> SimResult<Vec<(&'static str, u32, u64)>> {
    let events = [EventKind::L2Misses];
    let mut out = Vec::new();
    for &name in &["stream_copy", "stride_walk", "random_access"] {
        for depth in [0u32, 2, 4] {
            let p = suite::run_kernel(name, &events, machine(depth), iters, ws_bytes)?;
            out.push((name, depth, p.totals[0]));
        }
    }
    Ok(out)
}

/// Renders the characterization table.
pub fn table(rows: &[KernelRow]) -> Table {
    let mut t = Table::new(
        "suite characterization (solo, TLB on, prefetch off)",
        &[
            "kernel",
            "cycles",
            "IPC",
            "L1 MPKI",
            "LLC MPKI",
            "br-miss PKI",
            "dTLB MPKI",
        ],
    );
    for r in rows {
        t.row(&[
            r.name.to_string(),
            analysis::table::fmt_count(r.cycles),
            format!("{:.2}", r.ipc),
            format!("{:.1}", r.l1_mpki),
            format!("{:.1}", r.llc_mpki),
            format!("{:.1}", r.bmiss_pki),
            format!("{:.1}", r.tlb_mpki),
        ]);
    }
    t
}

/// Renders the prefetch ablation table.
pub fn prefetch_table(rows: &[(&'static str, u32, u64)]) -> Table {
    let mut t = Table::new(
        "L2 next-line prefetcher ablation (L2 misses)",
        &["kernel", "depth", "l2 misses"],
    );
    for &(name, depth, misses) in rows {
        t.row(&[
            name.to_string(),
            depth.to_string(),
            analysis::table::fmt_count(misses),
        ]);
    }
    t
}

/// Fetches a kernel row.
pub fn row<'a>(rows: &'a [KernelRow], name: &str) -> Option<&'a KernelRow> {
    rows.iter().find(|r| r.name == name)
}
