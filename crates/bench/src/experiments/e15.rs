//! E15 — fleet saturation sweep: where is the node's knee?
//!
//! An open-loop fleet is offered load at a target arrival rate whether or
//! not the node keeps up. Sweeping that rate exposes the *saturation
//! knee*: below it, sessions mostly start on arrival and sojourn ≈
//! service; past it, the admission queue grows without bound and tail
//! latency explodes. The paper's thesis at fleet scale — precise counting
//! makes the bottleneck *population* visible — shows up as the fleet-wide
//! classification attached to every operating point.
//!
//! The sweep exploits the fleet design's central decoupling: an
//! instance's service time is a function of its seed alone, never of the
//! arrival timeline. So the fleet is **simulated once**, and each
//! operating point is a deterministic queue replay (arrival redraw +
//! c-slot recurrence + classification) over the same service times —
//! sweeping a dozen rates costs one fleet run plus microseconds.
//!
//! Rates are chosen as fractions of the node's measured capacity
//! (`slots / mean_service`), so the knee always sits inside the table no
//! matter how the workload is calibrated.

use crate::spans;
use analysis::{classify_fleet, FleetFindingKind, Table};
use fleet::{draw_arrivals, run_fleet, simulate_queue, FleetConfig, Workload};

/// One operating point of the sweep.
#[derive(Debug, Clone)]
pub struct E15Point {
    /// Offered load as a fraction of node capacity.
    pub frac: f64,
    /// Target arrival rate in sessions per Mcycle.
    pub rate: f64,
    /// Offered load ρ measured from the drawn timeline.
    pub utilization: f64,
    /// Sojourn percentiles in cycles.
    pub p50: u64,
    /// p95 sojourn.
    pub p95: u64,
    /// p99 sojourn.
    pub p99: u64,
    /// Mean admission wait in cycles.
    pub mean_wait: f64,
    /// Peak admission-queue depth.
    pub max_depth: u64,
    /// Whether the classifier flagged overload at this point.
    pub saturated: bool,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct E15Result {
    /// Operating points, in offered-load order.
    pub points: Vec<E15Point>,
    /// Mean service time in cycles across the fleet.
    pub mean_service: f64,
    /// Node capacity in sessions per Mcycle (`slots / mean_service`).
    pub capacity_rate: f64,
    /// First saturated rate — the knee — if the sweep crossed it.
    pub knee: Option<f64>,
    /// The leading fleet-wide population finding (rate-independent:
    /// instances bottleneck the same way regardless of admission).
    pub top_population: Option<String>,
}

/// Simulates one fleet, then replays the admission queue at each capacity
/// fraction in `fracs`.
pub fn run(instances: usize, fracs: &[f64], jobs: usize) -> Result<E15Result, String> {
    let base = FleetConfig {
        workload: Workload::Mysqld,
        instances,
        threads: 2,
        queries: 12,
        jobs,
        ..FleetConfig::default()
    };
    let span = spans::start("e15/fleet");
    let report = run_fleet(&base, |_, _| {})?;
    span.finish();

    let service: Vec<u64> = report.instances.iter().map(|i| i.service_cycles).collect();
    let mean_service = service.iter().sum::<u64>() as f64 / service.len().max(1) as f64;
    let capacity_rate = base.slots as f64 * 1_000_000.0 / mean_service.max(1.0);
    let per_instance: Vec<Vec<analysis::Finding>> = report
        .instances
        .iter()
        .map(|i| i.findings.clone())
        .collect();

    let mut points = Vec::with_capacity(fracs.len());
    let mut knee = None;
    let mut top_population = None;
    for &frac in fracs {
        let rate = frac * capacity_rate;
        let mut cfg = base.clone();
        cfg.arrival.rate_per_mcycle = rate;
        let arrivals = draw_arrivals(&cfg);
        let q = simulate_queue(&arrivals, &service, cfg.slots);
        let findings = classify_fleet(&per_instance, &q.sojourn, &service, &q.stats, cfg.min_share);
        let saturated = findings
            .iter()
            .any(|f| matches!(f.kind, FleetFindingKind::Overload { .. }));
        if saturated && knee.is_none() {
            knee = Some(rate);
        }
        if top_population.is_none() {
            top_population = findings
                .iter()
                .find(|f| matches!(f.kind, FleetFindingKind::Population { .. }))
                .map(|f| f.to_string());
        }
        let lat = findings
            .iter()
            .find_map(|f| match f.kind {
                FleetFindingKind::Latency { p50, p95, p99 } => Some((p50, p95, p99)),
                _ => None,
            })
            .unwrap_or((0, 0, 0));
        points.push(E15Point {
            frac,
            rate,
            utilization: q.stats.utilization,
            p50: lat.0,
            p95: lat.1,
            p99: lat.2,
            mean_wait: q.stats.mean_wait,
            max_depth: q.stats.max_queue_depth,
            saturated,
        });
    }
    Ok(E15Result {
        points,
        mean_service,
        capacity_rate,
        knee,
        top_population,
    })
}

/// Renders the sweep table.
pub fn table(r: &E15Result) -> Table {
    let mut t = Table::new(
        "E15: fleet saturation sweep (open-loop arrival rate vs sojourn latency)",
        &[
            "load",
            "rate/Mcyc",
            "util ρ",
            "p50 kcyc",
            "p95 kcyc",
            "p99 kcyc",
            "mean wait kcyc",
            "max depth",
            "state",
        ],
    );
    for p in &r.points {
        t.row(&[
            format!("{:.2}x", p.frac),
            format!("{:.2}", p.rate),
            format!("{:.2}", p.utilization),
            format!("{:.1}", p.p50 as f64 / 1e3),
            format!("{:.1}", p.p95 as f64 / 1e3),
            format!("{:.1}", p.p99 as f64 / 1e3),
            format!("{:.1}", p.mean_wait / 1e3),
            p.max_depth.to_string(),
            if p.saturated { "saturated" } else { "ok" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_finds_a_knee_and_latency_grows_past_it() {
        let r = run(12, &[0.25, 0.5, 1.5, 3.0], 2).unwrap();
        assert_eq!(r.points.len(), 4);
        let knee = r.knee.expect("sweep crosses capacity, knee must appear");
        assert!(knee > 0.0);
        // Below capacity: no saturation; well past it: saturated.
        assert!(!r.points[0].saturated, "0.25x load flagged saturated");
        assert!(r.points[3].saturated, "3x load not flagged saturated");
        // Tail latency at 3x dominates tail latency at 0.25x.
        assert!(r.points[3].p99 > r.points[0].p99 * 2);
        // The population finding names a region.
        assert!(r.top_population.is_some());
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run(8, &[0.5, 2.0], 1).unwrap();
        let b = run(8, &[0.5, 2.0], 3).unwrap();
        assert_eq!(format!("{}", table(&a)), format!("{}", table(&b)));
        assert_eq!(a.knee, b.knee);
    }
}
