//! E9 — Apache per-request phase accounting.

use analysis::Table;
use limit::LimitReader;
use sim_core::SimResult;
use sim_cpu::EventKind;
use sim_os::KernelConfig;
use workloads::apache::{self, ApacheConfig};

/// Events per phase.
pub const EVENTS: [EventKind; 2] = [EventKind::Cycles, EventKind::LlcMisses];

/// One phase's profile.
#[derive(Debug, Clone)]
pub struct E9Row {
    /// Phase name.
    pub phase: &'static str,
    /// Records (= requests).
    pub count: u64,
    /// Mean cycles.
    pub mean_cycles: f64,
    /// p99 cycles.
    pub p99_cycles: u64,
    /// Mean LLC misses.
    pub mean_llc: f64,
}

/// The E9 outputs.
#[derive(Debug)]
pub struct E9Result {
    /// Per-phase rows.
    pub rows: Vec<E9Row>,
    /// Handler-phase (cycles, llc-misses) pairs sorted by cycles — the
    /// tail analysis input.
    pub handler_sorted: Vec<(u64, u64)>,
}

/// Runs the accounting.
pub fn run(cfg: &ApacheConfig, cores: usize) -> SimResult<E9Result> {
    let reader = LimitReader::with_events(EVENTS.to_vec());
    let run = apache::run(cfg, &reader, cores, &EVENTS, KernelConfig::default())?;
    let records = run.session.all_records()?;
    let rows = run
        .image
        .regions
        .phases()
        .iter()
        .map(|&(id, phase)| {
            let mut cycles: Vec<u64> = records
                .iter()
                .filter(|(_, r)| r.region == id)
                .map(|(_, r)| r.deltas[0])
                .collect();
            cycles.sort_unstable();
            let llc: u64 = records
                .iter()
                .filter(|(_, r)| r.region == id)
                .map(|(_, r)| r.deltas[1])
                .sum();
            let n = cycles.len() as u64;
            E9Row {
                phase,
                count: n,
                mean_cycles: cycles.iter().sum::<u64>() as f64 / n.max(1) as f64,
                p99_cycles: cycles
                    .get(cycles.len().saturating_sub(1).min(cycles.len() * 99 / 100))
                    .copied()
                    .unwrap_or(0),
                mean_llc: llc as f64 / n.max(1) as f64,
            }
        })
        .collect();
    let mut handler_sorted: Vec<(u64, u64)> = records
        .iter()
        .filter(|(_, r)| r.region == run.image.regions.handler)
        .map(|(_, r)| (r.deltas[0], r.deltas[1]))
        .collect();
    handler_sorted.sort_unstable();
    Ok(E9Result {
        rows,
        handler_sorted,
    })
}

/// Renders the phase table.
pub fn table(result: &E9Result) -> Table {
    let mut t = Table::new(
        "E9: apache per-request phase accounting (LiMiT precise)",
        &[
            "phase",
            "requests",
            "mean cycles",
            "p99 cycles",
            "mean llc-misses",
        ],
    );
    for r in &result.rows {
        t.row(&[
            r.phase.to_string(),
            r.count.to_string(),
            format!("{:.0}", r.mean_cycles),
            r.p99_cycles.to_string(),
            format!("{:.1}", r.mean_llc),
        ]);
    }
    t
}
