//! E6 — the MySQL critical-section-length histogram.
//!
//! The "previously obscured" insight: the vast majority of critical
//! sections are far shorter than either a sampling interval or a syscall-
//! priced probe, so only a ~tens-of-ns read can measure them.

use analysis::{LockReport, Table};
use limit::LimitReader;
use sim_core::SimResult;
use sim_cpu::EventKind;
use sim_os::KernelConfig;
use workloads::mysqld::{self, MysqlConfig, MysqlRun};

/// The E6 outputs: the lock report and the run it came from.
#[derive(Debug)]
pub struct E6Result {
    /// Per-class hold/acquire distributions.
    pub report: LockReport,
    /// The underlying run.
    pub run: MysqlRun,
}

/// Runs the instrumented workload and builds the lock report.
pub fn run(cfg: &MysqlConfig, cores: usize) -> SimResult<E6Result> {
    let events = [EventKind::Cycles, EventKind::Instructions];
    let reader = LimitReader::with_events(events.to_vec());
    let run = mysqld::run(cfg, &reader, cores, &events, KernelConfig::default())?;
    let records = run.session.all_records()?;
    let regions = run.image.regions;
    let classes: Vec<(&str, u64, u64)> = regions
        .acq_regions()
        .iter()
        .zip(regions.hold_regions().iter())
        .map(|(&(acq, name), &(hold, _))| (name, acq, hold))
        .collect();
    // Denominator: the sum of every thread's *virtualized* cycle counter
    // (counter 0) — user cycles only, kernel time excluded.
    let total = run.session.counter_grand_total(0)?;
    let report = LockReport::build(&records, &classes, total);
    Ok(E6Result { report, run })
}

/// Renders the summary table.
pub fn table(result: &E6Result) -> Table {
    let mut t = Table::new(
        "E6: critical-section lengths by lock class (cycles)",
        &["class", "sections", "mean", "p50~", "p99~", "<1k cycles"],
    );
    for c in &result.report.classes {
        t.row(&[
            c.name.clone(),
            c.hold.count().to_string(),
            format!("{:.0}", c.hold.mean().unwrap_or(0.0)),
            c.hold.quantile(0.5).map_or("-".into(), |v| v.to_string()),
            c.hold.quantile(0.99).map_or("-".into(), |v| v.to_string()),
            format!("{:.0}%", c.short_fraction(1024) * 100.0),
        ]);
    }
    t
}

/// Renders the ASCII histograms per class.
pub fn histograms(result: &E6Result) -> String {
    let mut out = String::new();
    for c in &result.report.classes {
        out.push_str(&format!("\nhold-time distribution: `{}`\n", c.name));
        out.push_str(&c.hold.render_ascii(40));
    }
    out
}
