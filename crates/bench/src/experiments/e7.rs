//! E7 — the synchronization-overhead breakdown vs. thread count.
//!
//! The bottleneck-identification headline: as connections scale, the
//! share of cycles spent in synchronization grows, and precise per-class
//! accounting names the lock responsible.

use analysis::{LockReport, Table};
use limit::LimitReader;
use sim_core::SimResult;
use sim_cpu::EventKind;
use sim_os::KernelConfig;
use workloads::mysqld::{self, MysqlConfig};

/// One thread-count row.
#[derive(Debug, Clone)]
pub struct E7Row {
    /// Worker threads.
    pub threads: usize,
    /// Total guest cycles.
    pub total_cycles: u64,
    /// Busy synchronization share of user cycles (spin + hold + handoff),
    /// `[0, 1]`.
    pub sync_share: f64,
    /// Cycles threads spent blocked on lock futexes (wall time).
    pub blocked_cycles: u64,
    /// Combined share: (busy sync + blocked) / (user cycles + blocked) —
    /// the fraction of thread time lost to synchronization.
    pub combined_share: f64,
    /// Futex waits (blocking events).
    pub futex_waits: u64,
    /// Mean table-lock acquire cycles.
    pub mean_acq_table: f64,
    /// Mean buffer-pool acquire cycles.
    pub mean_acq_buf: f64,
    /// Mean log acquire cycles.
    pub mean_acq_log: f64,
}

/// Runs the thread sweep (arms in parallel on the host).
pub fn run(thread_counts: &[usize], queries: u64, cores: usize) -> SimResult<Vec<E7Row>> {
    let events = [EventKind::Cycles];
    crate::parallel::parmap(thread_counts.to_vec(), |threads| {
        let cfg = MysqlConfig {
            threads,
            queries_per_thread: queries,
            ..MysqlConfig::default()
        };
        let reader = LimitReader::with_events(events.to_vec());
        let run = mysqld::run(&cfg, &reader, cores, &events, KernelConfig::default())?;
        let records = run.session.all_records()?;
        let regions = run.image.regions;
        let classes: Vec<(&str, u64, u64)> = regions
            .acq_regions()
            .iter()
            .zip(regions.hold_regions().iter())
            .map(|(&(acq, name), &(hold, _))| (name, acq, hold))
            .collect();
        // User cycles via the virtualized counters themselves.
        let total_user = run.session.counter_grand_total(0)?;
        let report = LockReport::build(&records, &classes, total_user);
        let mean = |name: &str| {
            report
                .class(name)
                .and_then(|c| c.acquire.mean())
                .unwrap_or(0.0)
        };
        let blocked = run.report.blocked_cycles;
        let combined =
            (report.sync_cycles() + blocked) as f64 / (total_user + blocked).max(1) as f64;
        Ok(E7Row {
            threads,
            total_cycles: run.report.total_cycles,
            sync_share: report.sync_share(),
            blocked_cycles: blocked,
            combined_share: combined,
            futex_waits: run.report.futex.0,
            mean_acq_table: mean("table"),
            mean_acq_buf: mean("bufpool"),
            mean_acq_log: mean("log"),
        })
    })
    .into_iter()
    .collect()
}

/// Renders the sweep table.
pub fn table(rows: &[E7Row]) -> Table {
    let mut t = Table::new(
        "E7: synchronization share vs thread count (mysqld, 8 cores)",
        &[
            "threads",
            "total cycles",
            "busy sync",
            "blocked cycles",
            "sync total",
            "futex waits",
            "acq table",
            "acq bufpool",
            "acq log",
        ],
    );
    for r in rows {
        t.row(&[
            r.threads.to_string(),
            analysis::table::fmt_count(r.total_cycles),
            format!("{:.1}%", r.sync_share * 100.0),
            analysis::table::fmt_count(r.blocked_cycles),
            format!("{:.1}%", r.combined_share * 100.0),
            r.futex_waits.to_string(),
            format!("{:.0}", r.mean_acq_table),
            format!("{:.0}", r.mean_acq_buf),
            format!("{:.0}", r.mean_acq_log),
        ]);
    }
    t
}

/// Convenience: builds a full lock report for one thread count (used by
/// tests asserting which class dominates).
pub fn lock_report(threads: usize, queries: u64, cores: usize) -> SimResult<LockReport> {
    let events = [EventKind::Cycles];
    let cfg = MysqlConfig {
        threads,
        queries_per_thread: queries,
        ..MysqlConfig::default()
    };
    let reader = LimitReader::with_events(events.to_vec());
    let run = mysqld::run(&cfg, &reader, cores, &events, KernelConfig::default())?;
    let records = run.session.all_records()?;
    let regions = run.image.regions;
    let classes: Vec<(&str, u64, u64)> = regions
        .acq_regions()
        .iter()
        .zip(regions.hold_regions().iter())
        .map(|(&(acq, name), &(hold, _))| (name, acq, hold))
        .collect();
    let total_user = run.session.counter_grand_total(0)?;
    Ok(LockReport::build(&records, &classes, total_user))
}
