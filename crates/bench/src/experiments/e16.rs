//! E16 — causal what-if validation: does differential re-simulation
//! recover the *planted* bottleneck?
//!
//! Two memcached shapes with known ground truth are pushed through the
//! what-if engine (`crates/whatif`):
//!
//! * **lock** — one global lock stripe, a long atomic-heavy critical
//!   section (16 refcount/stats RMWs per op), and a bucket table small
//!   enough to stay cache-resident. Every cycle the workload loses, it
//!   loses to the lock — so the top-ranked knob for `mc.lock.acq` and
//!   `mc.bucket.hold` must be `atomic-penalty` at ≥ 2x the runner-up.
//!   The shape's baseline prices the contended RMW at 120 cycles
//!   (bus-lock + serialization under contention) rather than the
//!   uncontended 10-cycle default, exactly the regime the paper's
//!   memcached study measures.
//! * **memory** — 64 stripes (no lock contention) over the full
//!   4096-bucket table, whose cold probes miss to DRAM. The same
//!   regions must instead rank an LLC/DRAM latency knob on top, at
//!   ≥ 2x the best non-memory knob.
//!
//! Operation count matters: cold-start traffic (first touch of the
//! bucket table and lock lines) costs a fixed ~100k DRAM-sensitive
//! cycles per region regardless of length, while the planted signal
//! grows per-op. At 120 ops/worker the lock shape's `mc.lock.acq`
//! verdict drowns in that floor (≈1.0x); by 480 the atomic signal is
//! ~4x it. Callers should stay at ≥ 480.
//!
//! The engine's report is deterministic (byte-identical across
//! `--jobs`), so the verdicts are a CI gate, not a flaky heuristic:
//! `run` returns `Err` context through `main` if any check fails. Host
//! wall times per arm land in `bench::spans` for `run-summary.json`.

use crate::spans;
use analysis::table::fmt_count;
use analysis::{KnobClass, Table};
use whatif::{run_whatif, MachineParams, WhatifConfig, WhatifReport, Workload};

/// The two regions both shapes instrument.
const REGIONS: [&str; 2] = ["mc.lock.acq", "mc.bucket.hold"];

/// Minimum top-vs-comparator impact ratio for a verdict to pass.
pub const MIN_DOMINANCE: f64 = 2.0;

/// One region's verdict under one shape.
#[derive(Debug, Clone)]
pub struct E16Check {
    /// Shape name (`lock` or `memory`).
    pub shape: &'static str,
    /// Region the verdict is about.
    pub region: String,
    /// Top-ranked knob by impact.
    pub top_knob: String,
    /// Its impact (Δ region cycles per +100% knob cost).
    pub top_impact: f64,
    /// The comparator knob: overall runner-up for the lock shape, best
    /// non-memory knob for the memory shape.
    pub vs_knob: String,
    /// The comparator's impact (clamped at 0 for display).
    pub vs_impact: f64,
    /// `top_impact / vs_impact` (infinite when the comparator ≤ 0).
    pub dominance: f64,
    /// What the planted bottleneck predicts (`lock` / `memory`).
    pub expect: &'static str,
    /// Whether the prediction held at [`MIN_DOMINANCE`].
    pub ok: bool,
}

/// The full experiment result.
#[derive(Debug, Clone)]
pub struct E16Result {
    /// Lock-shape causal report.
    pub lock: WhatifReport,
    /// Memory-shape causal report.
    pub memory: WhatifReport,
    /// One verdict per shape x region.
    pub checks: Vec<E16Check>,
}

impl E16Result {
    /// True when every verdict passed.
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }
}

/// The lock-contended shape: ground truth says every region is bound on
/// the lock's atomic RMWs.
pub fn lock_config(queries: u64, jobs: usize) -> WhatifConfig {
    let mut cfg = WhatifConfig::new(Workload::Memcached);
    cfg.queries = queries;
    cfg.jobs = jobs;
    cfg.stripes = Some(1);
    cfg.buckets = Some(256);
    cfg.hold_rmws = Some(16);
    let mut params = MachineParams::new(cfg.threads);
    // Contended RMWs pay the cross-core bus-lock/serialization cost, not
    // the 10-cycle uncontended latency; the shape exists to measure that
    // regime, so its baseline prices it.
    params.cost.atomic_penalty = 120;
    cfg.params = params;
    cfg
}

/// The memory-bound shape: 64 stripes kill lock contention and the full
/// bucket table misses to DRAM.
pub fn memory_config(queries: u64, jobs: usize) -> WhatifConfig {
    let mut cfg = WhatifConfig::new(Workload::Memcached);
    cfg.queries = queries;
    cfg.jobs = jobs;
    cfg.stripes = Some(64);
    cfg
}

fn check_region(shape: &'static str, report: &WhatifReport, region: &str) -> E16Check {
    let rs = report.regions.iter().find(|r| r.region == region);
    let ranked = rs.map(|r| r.ranked()).unwrap_or_default();
    let (top_knob, top_impact) = ranked.first().map_or((None, 0.0), |(k, v)| (Some(*k), *v));
    let expect = if shape == "lock" { "lock" } else { "memory" };
    // Lock shape: the runner-up overall must trail 2x. Memory shape: the
    // memory knobs (llc/dram/invalidate) are one resource, so the
    // comparator is the best knob *outside* that class.
    let vs = if shape == "lock" {
        ranked.get(1).copied()
    } else {
        ranked
            .iter()
            .find(|(k, _)| k.class() != KnobClass::Memory)
            .copied()
    };
    let (vs_knob, vs_impact) = vs.map_or(("none".to_string(), 0.0), |(k, v)| {
        (k.name().to_string(), v)
    });
    let dominance = if top_impact <= 0.0 {
        0.0
    } else if vs_impact > 0.0 {
        top_impact / vs_impact
    } else {
        f64::INFINITY
    };
    let class_ok = match top_knob {
        Some(k) if shape == "lock" => k.class() == KnobClass::Lock,
        Some(k) => k.class() == KnobClass::Memory,
        None => false,
    };
    E16Check {
        shape,
        region: region.to_string(),
        top_knob: top_knob.map_or("none".to_string(), |k| k.name().to_string()),
        top_impact,
        vs_knob,
        vs_impact: vs_impact.max(0.0),
        dominance,
        expect,
        ok: class_ok && top_impact > 0.0 && dominance >= MIN_DOMINANCE,
    }
}

fn record_arm_spans(shape: &str, report: &WhatifReport) {
    spans::record(
        format!("e16/{shape}/baseline"),
        report.baseline_wall_ms,
        &[],
    );
    for arm in &report.arms {
        spans::record(format!("e16/{shape}/{}", arm.knob.name()), arm.wall_ms, &[]);
    }
}

/// Runs both shapes and checks every region's causal verdict.
pub fn run(queries: u64, jobs: usize) -> Result<E16Result, String> {
    let span = spans::start("e16/lock");
    let lock = run_whatif(&lock_config(queries, jobs), |_, _| {})?;
    span.finish();
    record_arm_spans("lock", &lock);

    let span = spans::start("e16/memory");
    let memory = run_whatif(&memory_config(queries, jobs), |_, _| {})?;
    span.finish();
    record_arm_spans("memory", &memory);

    let mut checks = Vec::new();
    for (shape, report) in [("lock", &lock), ("memory", &memory)] {
        for region in REGIONS {
            checks.push(check_region(shape, report, region));
        }
    }
    Ok(E16Result {
        lock,
        memory,
        checks,
    })
}

/// Renders the verdict table.
pub fn table(r: &E16Result) -> String {
    let mut t = Table::new(
        "E16: causal what-if validation (impact = Δ region cycles per +100% knob)",
        &[
            "shape", "region", "top knob", "impact", "vs", "impact", "dom", "expect", "ok",
        ],
    );
    for c in &r.checks {
        let dom = if c.dominance.is_finite() {
            format!("{:.1}x", c.dominance)
        } else {
            "inf".to_string()
        };
        t.row(&[
            c.shape.to_string(),
            c.region.clone(),
            c.top_knob.clone(),
            fmt_count(c.top_impact.max(0.0) as u64),
            c.vs_knob.clone(),
            fmt_count(c.vs_impact as u64),
            dom,
            c.expect.to_string(),
            if c.ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_bottlenecks_are_recovered() {
        let r = run(480, 2).unwrap();
        for c in &r.checks {
            assert!(
                c.ok,
                "{}/{}: top {} ({:.0}) vs {} ({:.0}), dominance {:.2}",
                c.shape, c.region, c.top_knob, c.top_impact, c.vs_knob, c.vs_impact, c.dominance
            );
        }
        // Lock shape names the atomic knob specifically.
        for c in r.checks.iter().filter(|c| c.shape == "lock") {
            assert_eq!(c.top_knob, "atomic-penalty", "{}", c.region);
        }
    }

    #[test]
    fn verdicts_are_deterministic_across_jobs() {
        let a = run(40, 1).unwrap();
        let b = run(40, 4).unwrap();
        assert_eq!(a.lock.render(), b.lock.render());
        assert_eq!(a.memory.render(), b.memory.render());
        assert_eq!(table(&a), table(&b));
    }
}
