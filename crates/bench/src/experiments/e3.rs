//! E3 — correctness of virtualized counts under context switches,
//! migration, and counter overflow.
//!
//! Known-count kernels give arithmetic ground truth; every scenario must
//! report the *exact* expected instruction count on every thread, and the
//! wall-clock (rdtsc) comparison shows why unvirtualized measurement is
//! useless under time sharing.

use analysis::Table;
use limit::harness::SessionBuilder;
use limit::{CounterReader, LimitReader};
use sim_core::SimResult;
use sim_cpu::{EventKind, MachineConfig, PmuConfig, Reg};
use sim_os::KernelConfig;
use workloads::kernels;

/// One scenario's outcome.
#[derive(Debug, Clone)]
pub struct E3Row {
    /// Scenario name.
    pub scenario: &'static str,
    /// Ground-truth instruction count per thread.
    pub expected: u64,
    /// Minimum measured count across threads.
    pub measured_min: u64,
    /// Maximum measured count across threads.
    pub measured_max: u64,
    /// Context switches during the run.
    pub switches: u64,
    /// Migrations during the run.
    pub migrations: u64,
    /// Overflow interrupts during the run.
    pub pmis: u64,
}

impl E3Row {
    /// Whether every thread measured exactly the expected count.
    pub fn exact(&self) -> bool {
        self.measured_min == self.expected && self.measured_max == self.expected
    }
}

fn scenario(
    name: &'static str,
    threads: usize,
    cores: usize,
    quantum: u64,
    counter_bits: u32,
    iters: u64,
) -> SimResult<E3Row> {
    let events = [EventKind::Instructions];
    let reader = LimitReader::with_events(events.to_vec());
    let mut b = SessionBuilder::new(cores)
        .events(&events)
        .machine_config(MachineConfig::new(cores).with_pmu(PmuConfig {
            counter_bits,
            ..Default::default()
        }))
        .kernel_config(KernelConfig {
            quantum,
            ..Default::default()
        });
    let mut asm = b.asm();
    asm.export("main");
    reader.emit_thread_setup(&mut asm);
    let counts = kernels::emit_counted_loop(&mut asm, iters, 40);
    asm.halt();
    let mut s = b.build(asm)?;
    let tids: Vec<_> = (0..threads)
        .map(|_| s.spawn_instrumented("main", &[]))
        .collect::<SimResult<_>>()?;
    let report = s.run()?;
    // Counted after the open returns: the loop + halt.
    let expected = counts.instructions + 1;
    let measured: Vec<u64> = tids
        .iter()
        .map(|&t| s.counter_total(t, 0))
        .collect::<SimResult<_>>()?;
    Ok(E3Row {
        scenario: name,
        expected,
        measured_min: measured.iter().copied().min().unwrap(),
        measured_max: measured.iter().copied().max().unwrap(),
        switches: report.context_switches,
        migrations: report.migrations,
        pmis: report.pmis,
    })
}

/// Runs the four virtualization scenarios.
pub fn run() -> SimResult<Vec<E3Row>> {
    Ok(vec![
        scenario("solo", 1, 1, 2_500_000, 48, 2_000)?,
        scenario("preempted 4x1core", 4, 1, 8_000, 48, 2_000)?,
        // 5 threads on 4 cores: the odd ratio rotates placement, forcing
        // cross-core migrations.
        scenario("migrating 5x4core", 5, 4, 8_000, 48, 2_000)?,
        // Solo with a long quantum: nothing folds the counter before it
        // wraps, so overflow PMIs must carry the count.
        scenario("overflow (14-bit, solo)", 1, 1, 2_500_000, 14, 2_000)?,
        // Both at once: preemption folds race with overflow folds.
        scenario("overflow + preemption (14-bit)", 4, 2, 60_000, 14, 2_000)?,
    ])
}

/// The wall-clock comparison: under 4-way time sharing, the thread's
/// virtualized cycle counter vs. its rdtsc-delta. Returns
/// `(virtualized_cycles, rdtsc_delta)`.
pub fn wallclock_comparison() -> SimResult<(u64, u64)> {
    let events = [EventKind::Cycles];
    let reader = LimitReader::with_events(events.to_vec());
    let mut b = SessionBuilder::new(1)
        .events(&events)
        .kernel_config(KernelConfig {
            quantum: 10_000,
            ..Default::default()
        });
    let mut asm = b.asm();
    asm.export("main");
    reader.emit_thread_setup(&mut asm);
    asm.rdtsc(Reg::R11);
    kernels::emit_counted_loop(&mut asm, 2_000, 40);
    asm.rdtsc(Reg::R12);
    asm.sub(Reg::R12, Reg::R11);
    asm.mov(Reg::R0, Reg::R12);
    asm.syscall(sim_os::syscall::nr::LOG_VALUE);
    asm.halt();
    let mut s = b.build(asm)?;
    let tid = s.spawn_instrumented("main", &[])?;
    for _ in 0..3 {
        s.spawn_instrumented("main", &[])?; // interference
    }
    s.run()?;
    let virt = s.counter_total(tid, 0)?;
    let rdtsc = s.kernel.log()[0];
    Ok((virt, rdtsc))
}

/// Renders the scenario table.
pub fn table(rows: &[E3Row]) -> Table {
    let mut t = Table::new(
        "E3: virtualized-count exactness (instructions, per thread)",
        &[
            "scenario",
            "expected",
            "min",
            "max",
            "exact",
            "switches",
            "migrations",
            "pmis",
        ],
    );
    for r in rows {
        t.row(&[
            r.scenario.to_string(),
            r.expected.to_string(),
            r.measured_min.to_string(),
            r.measured_max.to_string(),
            if r.exact() { "yes" } else { "NO" }.to_string(),
            r.switches.to_string(),
            r.migrations.to_string(),
            r.pmis.to_string(),
        ]);
    }
    t
}
