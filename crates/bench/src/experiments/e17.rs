//! E17 — event-trust matrix slice.
//!
//! E14 proves the instruction counter exact under exhaustive disturbance
//! injection; E17 widens the question to *which counters can be trusted
//! through which access method*: it runs a representative slice of the
//! full `torture::matrix` cross-product (event × access method ×
//! disturbance, both workload shapes per cell) and renders the verdict
//! grid. The shipping path (`rdpmc-fixup`) must come back **exact** in
//! every cell; `rdpmc-nofixup` must degrade to **unreliable** under
//! migrations and PMIs (the E4 race, rediscovered per event); the
//! syscall and sampling baselines report **bounded-error** with their
//! measured ε. The full all-events sweep runs via `limit-repro trust`;
//! this experiment pins the slice CI watches.

use crate::spans;
use analysis::Table;
use sim_core::SimResult;
use sim_cpu::EventKind;
use torture::matrix::{
    enumerate_cells, run_cell, AccessMethod, CellReport, Disturb, MatrixConfig, Verdict,
};

/// Events in the CI slice: the paper's headline counter, a cache-miss
/// event off the memory ladder, and a cycle-denominated event (the
/// coarsest accrual granularity, hence the hardest sampling case).
pub const SLICE_EVENTS: [EventKind; 3] = [
    EventKind::Instructions,
    EventKind::LlcMisses,
    EventKind::MemStallCycles,
];

/// Runs the slice: [`SLICE_EVENTS`] × all methods × all disturbances,
/// `schedules` seeded schedules per (cell, shape). Per-cell wall times
/// land in the span registry as `trust/<event>/<method>`.
pub fn run(schedules: u64) -> SimResult<Vec<CellReport>> {
    let cfg = MatrixConfig {
        schedules,
        ..MatrixConfig::default()
    };
    let cells = enumerate_cells(&SLICE_EVENTS, &AccessMethod::ALL, &Disturb::ALL);
    let mut reports = Vec::with_capacity(cells.len());
    for cell in cells {
        let span = spans::start(format!(
            "trust/{}/{}",
            cell.event.mnemonic(),
            cell.method.name()
        ));
        reports.push(run_cell(&cfg, cell)?);
        span.finish();
    }
    Ok(reports)
}

/// True when the slice holds the trust contract: every `rdpmc-fixup`
/// cell exact, every `rdpmc-nofixup` cell unreliable under migrate/PMI.
pub fn contract_holds(reports: &[CellReport]) -> bool {
    reports.iter().all(|r| match r.cell.method {
        AccessMethod::RdpmcFixup => r.verdict == Verdict::Exact,
        AccessMethod::RdpmcNoFixup if matches!(r.cell.disturb, Disturb::Migrate | Disturb::Pmi) => {
            matches!(r.verdict, Verdict::Unreliable { .. })
        }
        _ => true,
    })
}

/// Renders the deterministic verdict grid (no wall-clock columns).
pub fn table(reports: &[CellReport]) -> Table {
    let mut t = Table::new(
        "E17: event-trust matrix (verdict per event x access method x disturbance)",
        &[
            "event", "method", "none", "preempt", "pmi", "migrate", "spill",
        ],
    );
    for &event in &SLICE_EVENTS {
        for method in AccessMethod::ALL {
            let mut row = vec![event.mnemonic().to_string(), method.name().to_string()];
            for disturb in Disturb::ALL {
                let cell = reports
                    .iter()
                    .find(|r| {
                        r.cell.event == event
                            && r.cell.method == method
                            && r.cell.disturb == disturb
                    })
                    .map(|r| r.verdict.render())
                    .unwrap_or_else(|| "-".to_string());
                row.push(cell);
            }
            t.row(&row);
        }
    }
    t
}
