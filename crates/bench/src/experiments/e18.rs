//! E18 — I/O-wait observability: does the stack *name the slow device*?
//!
//! The blocking-I/O model gives sim-os per-device latency distributions
//! and service queues; this experiment validates the observability tier
//! built on top of them, end to end:
//!
//! * **logstore** — the fsync-bound log-structured store. Its
//!   `store.commit` region spends most of its cycles blocked on the
//!   `fsync` device (mean 2M cycles per barrier, well past the slow-I/O
//!   threshold), so (a) the online classifier must flag the region
//!   **io-bound** with a non-zero slow-call count and name `fsync`, and
//!   (b) the what-if engine must rank `fsync-latency` as the region's
//!   top knob at ≥ 2x the runner-up — the causal and the observational
//!   paths must agree on the same device.
//! * **mysqld** — the CPU/lock-bound control. It performs no I/O
//!   syscalls at all, so *no* region may classify io-bound; a false
//!   positive here means the detector's wait-share guard leaks.
//!
//! Both verdicts are deterministic (the device latency streams draw from
//! dedicated `DetRng` streams), so like E16 this is a CI gate: `run`
//! surfaces any failed check as an error through `main`.

use crate::spans;
use analysis::online::{classify, DetectorConfig, Finding};
use analysis::table::fmt_count;
use analysis::Table;
use limit::{LimitReader, LogMode, StreamConfig};
use sim_cpu::EventKind;
use sim_os::KernelConfig;
use telemetry::{run_streaming, Collector, Snapshot};
use whatif::{run_whatif, WhatifConfig, WhatifReport, Workload};
use workloads::{logstore, mysqld};

/// Counters the classification runs attach (mirrors `monitor`).
const EVENTS: [EventKind; 3] = [
    EventKind::Cycles,
    EventKind::Instructions,
    EventKind::LlcMisses,
];

/// Minimum top-vs-runner-up impact ratio for the what-if verdict.
pub const MIN_DOMINANCE: f64 = 2.0;

/// One contract check.
#[derive(Debug, Clone)]
pub struct E18Check {
    /// What was checked.
    pub what: &'static str,
    /// What the stack reported.
    pub observed: String,
    /// What the planted I/O topology predicts.
    pub expect: &'static str,
    /// Whether the prediction held.
    pub ok: bool,
}

/// The full experiment result.
#[derive(Debug, Clone)]
pub struct E18Result {
    /// What-if report for the logstore shape.
    pub whatif: WhatifReport,
    /// Final-snapshot classification of the logstore run.
    pub logstore_findings: Vec<Finding>,
    /// Final cumulative logstore snapshot (feeds the wait table).
    pub logstore_snapshot: Snapshot,
    /// Final-snapshot classification of the mysqld control run.
    pub mysqld_findings: Vec<Finding>,
    /// One row per contract check.
    pub checks: Vec<E18Check>,
}

impl E18Result {
    /// True when every check passed.
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }
}

/// Streams a session to completion and classifies its final (cumulative)
/// snapshot.
fn classify_final(
    session: &mut limit::Session,
    threads: usize,
) -> Result<(Vec<Finding>, Snapshot), String> {
    let mut collector = Collector::new(threads.max(1), EVENTS.len());
    collector.attach(session);
    let mut last: Option<Snapshot> = None;
    run_streaming(session, &mut collector, 50_000, |snap| {
        last = Some(snap.clone());
    })
    .map_err(|e| e.to_string())?;
    let snap = last.ok_or("run produced no snapshots")?;
    let findings = classify(&snap, &EVENTS, &DetectorConfig::default());
    Ok((findings, snap))
}

fn logstore_findings(commits: u64) -> Result<(Vec<Finding>, Snapshot), String> {
    let cfg = logstore::LogstoreConfig {
        commits_per_thread: commits,
        mode: LogMode::Stream(StreamConfig::dropping(256)),
        ..Default::default()
    };
    let reader = LimitReader::with_events(EVENTS.to_vec());
    let (mut session, _) =
        logstore::build(&cfg, &reader, cfg.threads, &EVENTS, KernelConfig::default())
            .map_err(|e| e.to_string())?;
    classify_final(&mut session, cfg.threads)
}

fn mysqld_findings(queries: u64) -> Result<Vec<Finding>, String> {
    let cfg = mysqld::MysqlConfig {
        threads: 4,
        queries_per_thread: queries,
        mode: LogMode::Stream(StreamConfig::dropping(256)),
        ..Default::default()
    };
    let reader = LimitReader::with_events(EVENTS.to_vec());
    let (mut session, _) =
        mysqld::build(&cfg, &reader, cfg.threads, &EVENTS, KernelConfig::default())
            .map_err(|e| e.to_string())?;
    Ok(classify_final(&mut session, cfg.threads)?.0)
}

/// Runs both shapes and checks the I/O observability contract.
pub fn run(commits: u64, jobs: usize) -> Result<E18Result, String> {
    // Causal path: perturb every knob, expect fsync-latency on top for
    // the commit region.
    let mut wcfg = WhatifConfig::new(Workload::Logstore);
    wcfg.queries = commits;
    wcfg.jobs = jobs;
    let span = spans::start("e18/whatif");
    let whatif = run_whatif(&wcfg, |_, _| {})?;
    span.finish();

    // Observational path: stream both workloads and classify.
    let span = spans::start("e18/classify-logstore");
    let (ls_findings, ls_snap) = logstore_findings(commits)?;
    span.finish();
    let span = spans::start("e18/classify-mysqld");
    let my_findings = mysqld_findings(100)?;
    span.finish();

    let mut checks = Vec::new();

    // 1. What-if: `store.commit`'s top knob is fsync-latency at >= 2x
    //    the runner-up.
    let ranked = whatif
        .regions
        .iter()
        .find(|r| r.region == "store.commit")
        .map(|r| r.ranked())
        .unwrap_or_default();
    let (top, top_impact) = ranked.first().map_or(("none".to_string(), 0.0), |(k, v)| {
        (k.name().to_string(), *v)
    });
    let vs_impact = ranked.get(1).map_or(0.0, |&(_, v)| v);
    let dominance = if top_impact <= 0.0 {
        0.0
    } else if vs_impact > 0.0 {
        top_impact / vs_impact
    } else {
        f64::INFINITY
    };
    checks.push(E18Check {
        what: "whatif store.commit top knob",
        observed: format!("{top} ({:.1}x runner-up)", dominance),
        expect: "fsync-latency >= 2x",
        ok: top == "fsync-latency" && top_impact > 0.0 && dominance >= MIN_DOMINANCE,
    });

    // 2. Classifier: logstore's commit region is io-bound, the finding
    //    names fsync, and slow calls were counted.
    let io_finding = ls_findings
        .iter()
        .find(|f| f.kind.to_string() == "io-bound" && f.region == "store.commit");
    checks.push(E18Check {
        what: "classify logstore store.commit",
        observed: io_finding.map_or("no io-bound finding".to_string(), |f| {
            format!("io-bound ({})", f.detail)
        }),
        expect: "io-bound on fsync, slow > 0",
        ok: io_finding.is_some_and(|f| f.detail.contains("fsync") && !f.detail.contains(" 0 slow")),
    });

    // 3. Control: the no-I/O mysqld run must not classify io-bound
    //    anywhere.
    let false_io: Vec<&Finding> = my_findings
        .iter()
        .filter(|f| f.kind.to_string() == "io-bound")
        .collect();
    checks.push(E18Check {
        what: "classify mysqld (no-I/O control)",
        observed: if false_io.is_empty() {
            format!("{} findings, none io-bound", my_findings.len())
        } else {
            format!("io-bound on {}", false_io[0].region)
        },
        expect: "no io-bound findings",
        ok: false_io.is_empty(),
    });

    Ok(E18Result {
        whatif,
        logstore_findings: ls_findings,
        logstore_snapshot: ls_snap,
        mysqld_findings: my_findings,
        checks,
    })
}

/// Renders the verdict table.
pub fn table(r: &E18Result) -> String {
    let mut t = Table::new(
        "E18: I/O-wait observability (classifier + what-if must name the device)",
        &["check", "observed", "expected", "ok"],
    );
    for c in &r.checks {
        t.row(&[
            c.what.to_string(),
            c.observed.clone(),
            c.expect.to_string(),
            if c.ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.to_string()
}

/// Renders the measured per-region wait table from the logstore run.
pub fn wait_table(r: &E18Result) -> String {
    let mut t = Table::new(
        "E18: logstore per-region I/O accounting (final snapshot)",
        &["region", "exits", "cycles", "io wait", "io calls", "slow"],
    );
    for reg in &r.logstore_snapshot.regions {
        t.row(&[
            reg.name.clone(),
            fmt_count(reg.count),
            fmt_count(reg.event_sum(0)),
            fmt_count(reg.io_wait_sum()),
            fmt_count(reg.io_calls()),
            fmt_count(reg.io_slow_calls()),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_contract_holds() {
        let r = run(12, 2).unwrap();
        for c in &r.checks {
            assert!(
                c.ok,
                "{}: observed {} (expected {})",
                c.what, c.observed, c.expect
            );
        }
    }

    #[test]
    fn verdicts_are_deterministic_across_jobs() {
        let a = run(8, 1).unwrap();
        let b = run(8, 4).unwrap();
        assert_eq!(a.whatif.render(), b.whatif.render());
        assert_eq!(table(&a), table(&b));
        assert_eq!(wait_table(&a), wait_table(&b));
    }
}
