//! E8 — the Firefox per-task-class characterization.
//!
//! Precise per-task reads expose sharply different microarchitectural
//! signatures per class — the per-class table sampling blurs. Four
//! counters per task (the PMU's full complement): cycles, instructions,
//! LLC misses, branch mispredicts, from which IPC and MPKI derive.

use analysis::metrics::{per_kilo_instruction, ratio};
use analysis::Table;
use limit::LimitReader;
use sim_core::SimResult;
use sim_cpu::EventKind;
use sim_os::KernelConfig;
use workloads::firefox::{self, FirefoxConfig, TASK_CLASSES};

/// Events characterized per task (all four PMU slots).
pub const EVENTS: [EventKind; 4] = [
    EventKind::Cycles,
    EventKind::Instructions,
    EventKind::LlcMisses,
    EventKind::BranchMisses,
];

/// One task class's profile.
#[derive(Debug, Clone)]
pub struct E8Row {
    /// Class name.
    pub class: &'static str,
    /// Task count.
    pub count: u64,
    /// Mean cycles per task.
    pub mean_cycles: f64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// LLC misses per kilo-instruction.
    pub llc_mpki: f64,
    /// Branch mispredicts per kilo-instruction.
    pub bmiss_pki: f64,
    /// Mean LLC misses per task.
    pub mean_llc: f64,
    /// Mean branch mispredicts per task.
    pub mean_bmiss: f64,
}

/// Runs the characterization.
pub fn run(cfg: &FirefoxConfig, cores: usize) -> SimResult<Vec<E8Row>> {
    let reader = LimitReader::with_events(EVENTS.to_vec());
    let run = firefox::run(cfg, &reader, cores, &EVENTS, KernelConfig::default())?;
    let records = run.session.all_records()?;
    Ok(TASK_CLASSES
        .iter()
        .enumerate()
        .map(|(i, &class)| {
            let id = run.image.regions.task[i];
            let rows: Vec<_> = records.iter().filter(|(_, r)| r.region == id).collect();
            let n = rows.len() as u64;
            let sum = |idx: usize| rows.iter().map(|(_, r)| r.deltas[idx]).sum::<u64>();
            let denom = n.max(1) as f64;
            let (cycles, instrs, llc, bmiss) = (sum(0), sum(1), sum(2), sum(3));
            E8Row {
                class,
                count: n,
                mean_cycles: cycles as f64 / denom,
                ipc: ratio(instrs, cycles),
                llc_mpki: per_kilo_instruction(llc, instrs),
                bmiss_pki: per_kilo_instruction(bmiss, instrs),
                mean_llc: llc as f64 / denom,
                mean_bmiss: bmiss as f64 / denom,
            }
        })
        .collect())
}

/// Renders the class table.
pub fn table(rows: &[E8Row]) -> Table {
    let mut t = Table::new(
        "E8: firefox task classes (per-task means, LiMiT precise, 4 counters)",
        &["class", "tasks", "cycles", "IPC", "LLC MPKI", "br-miss PKI"],
    );
    for r in rows {
        t.row(&[
            r.class.to_string(),
            r.count.to_string(),
            format!("{:.0}", r.mean_cycles),
            format!("{:.2}", r.ipc),
            format!("{:.1}", r.llc_mpki),
            format!("{:.1}", r.bmiss_pki),
        ]);
    }
    t
}

/// Fetches a class row.
pub fn row<'a>(rows: &'a [E8Row], class: &str) -> Option<&'a E8Row> {
    rows.iter().find(|r| r.class == class)
}
