//! E1 — the read-cost table (abstract: "low tens of nanoseconds", "one to
//! two orders of magnitude faster than current access techniques").

use analysis::Table;
use baselines::{PapiReader, PerfReader, RdtscReader, SeqlockReader};
use limit::{CounterReader, LimitReader};
use sim_core::{Freq, SimResult};
use workloads::microbench;

/// One row of the read-cost table.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Method name.
    pub method: &'static str,
    /// Net cycles per read.
    pub cycles: f64,
    /// Net nanoseconds per read at the default frequency.
    pub nanos: f64,
}

/// Measures every method over `reads` reads each.
pub fn run(reads: u64) -> SimResult<Vec<E1Row>> {
    let freq = Freq::DEFAULT;
    let readers: [&dyn CounterReader; 5] = [
        &RdtscReader::new(),
        &LimitReader::new(1),
        &SeqlockReader::new(1),
        &PerfReader::new(1),
        &PapiReader::new(1),
    ];
    readers
        .iter()
        .map(|r| {
            let rc = microbench::measure_read_cost(*r, reads)?;
            Ok(E1Row {
                method: rc.method,
                cycles: rc.cycles_per_read(),
                nanos: rc.nanos_per_read(freq),
            })
        })
        .collect()
}

/// Renders the paper-style table. The `speedup` column is relative to the
/// LiMiT row.
pub fn table(rows: &[E1Row]) -> Table {
    let limit_ns = rows
        .iter()
        .find(|r| r.method == "limit")
        .map(|r| r.nanos)
        .unwrap_or(1.0);
    let mut t = Table::new(
        "E1: cost of one counter read (2.5 GHz guest)",
        &["method", "cycles/read", "ns/read", "vs limit"],
    );
    for r in rows {
        t.row(&[
            r.method.to_string(),
            format!("{:.1}", r.cycles),
            format!("{:.1}", r.nanos),
            format!("{:.1}x", r.nanos / limit_ns),
        ]);
    }
    t
}

/// Fetches a method's row.
pub fn row<'a>(rows: &'a [E1Row], method: &str) -> Option<&'a E1Row> {
    rows.iter().find(|r| r.method == method)
}

/// One cell of the multi-counter scaling table.
#[derive(Debug, Clone)]
pub struct E1MultiRow {
    /// Method name.
    pub method: &'static str,
    /// Counters read per measurement.
    pub counters: usize,
    /// Net cycles per measurement (all `counters` reads).
    pub cycles: f64,
}

/// How read cost scales with the number of counters read per measurement:
/// LiMiT scales by ~36 cycles per extra counter, while each syscall method
/// pays a full kernel round-trip *per counter*.
pub fn run_multi(reads: u64) -> SimResult<Vec<E1MultiRow>> {
    let mut out = Vec::new();
    for k in 1..=4usize {
        let limit = LimitReader::new(k);
        let perf = PerfReader::new(k);
        let seq = SeqlockReader::new(k);
        for reader in [&limit as &dyn CounterReader, &seq, &perf] {
            let rc = microbench::measure_multi_read_cost(reader, k, reads)?;
            out.push(E1MultiRow {
                method: rc.method,
                counters: k,
                cycles: rc.cycles_per_read(),
            });
        }
    }
    Ok(out)
}

/// Renders the scaling table (methods as columns).
pub fn multi_table(rows: &[E1MultiRow]) -> Table {
    let mut t = Table::new(
        "E1b: cycles per measurement vs counters read",
        &["counters", "limit", "seqlock", "perf"],
    );
    for k in 1..=4usize {
        let cell = |m: &str| {
            rows.iter()
                .find(|r| r.counters == k && r.method == m)
                .map(|r| format!("{:.1}", r.cycles))
                .unwrap_or_else(|| "-".into())
        };
        t.row(&[k.to_string(), cell("limit"), cell("seqlock"), cell("perf")]);
    }
    t
}
