//! E10 — the paper's three proposed hardware-counter enhancements,
//! implemented in the PMU model and evaluated against stock hardware.
//!
//! 1. **Destructive reads** — a read-and-clear instruction turns a delta
//!    measurement from two 3-instruction reads plus a subtract into one
//!    instruction.
//! 2. **Self-virtualizing counters** — hardware spills overflow into the
//!    user-memory accumulator, eliminating overflow PMIs (and their
//!    kernel cost) entirely.
//! 3. **Tag-filtered counting** — instrumentation code tags itself out of
//!    its own measurements, removing probe self-pollution.

use analysis::Table;
use limit::harness::SessionBuilder;
use limit::{CounterReader, LimitReader};
use sim_core::SimResult;
use sim_cpu::{Cond, EventKind, MachineConfig, MemLayout, PmuConfig, Reg};
use sim_os::syscall::{encode_event, nr};
use sim_os::KernelConfig;
use workloads::kernels;

/// Enhancement 1 result: cycles per delta measurement.
#[derive(Debug, Clone)]
pub struct DestructiveResult {
    /// Cycles per measurement with the standard read-pair + subtract.
    pub pair_cycles: f64,
    /// Cycles per measurement with one destructive read.
    pub destructive_cycles: f64,
}

/// Enhancement 2 result: one arm of the overflow-handling comparison.
#[derive(Debug, Clone)]
pub struct SelfVirtArm {
    /// Whether the extension was on.
    pub ext_on: bool,
    /// Overflow PMIs delivered.
    pub pmis: u64,
    /// Total run cycles.
    pub total_cycles: u64,
    /// Measured instruction count (must equal `expected`).
    pub measured: u64,
    /// Ground-truth instruction count.
    pub expected: u64,
}

/// Enhancement 3 result.
#[derive(Debug, Clone)]
pub struct TagFilterResult {
    /// Mean measured delta with tag filtering (instrumentation excluded).
    pub tagged_mean: f64,
    /// Mean measured delta without filtering.
    pub untagged_mean: f64,
    /// The true work per region (instructions).
    pub true_work: u64,
}

/// Measures enhancement 1: delta-measurement cost.
pub fn run_destructive(measurements: u64) -> SimResult<DestructiveResult> {
    fn arm(measurements: u64, destructive: bool) -> SimResult<u64> {
        let events = [EventKind::Instructions];
        let reader = LimitReader::with_events(events.to_vec());
        let mut b =
            SessionBuilder::new(1)
                .events(&events)
                .machine_config(MachineConfig::new(1).with_pmu(PmuConfig {
                    ext_destructive_read: destructive,
                    ..Default::default()
                }));
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        asm.imm(Reg::R9, measurements);
        asm.imm(Reg::R10, 0);
        asm.rdtsc(Reg::R12);
        let top = asm.new_label();
        asm.bind(top);
        if destructive {
            asm.burst(50);
            asm.rdpmc_clear(Reg::R4, 0); // delta in one instruction
        } else {
            reader.emit_read(&mut asm, 0, Reg::R6, Reg::R5); // snapshot
            asm.burst(50);
            reader.emit_read(&mut asm, 0, Reg::R4, Reg::R5);
            asm.sub(Reg::R4, Reg::R6); // delta
        }
        asm.alui_sub(Reg::R9, 1);
        asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
        asm.rdtsc(Reg::R13);
        asm.sub(Reg::R13, Reg::R12);
        asm.mov(Reg::R0, Reg::R13);
        asm.syscall(nr::LOG_VALUE);
        asm.halt();
        let mut s = b.build(asm)?;
        s.spawn_instrumented("main", &[])?;
        s.run()?;
        Ok(s.kernel.log()[0])
    }
    let pair = arm(measurements, false)?;
    let destr = arm(measurements, true)?;
    // The burst(50) work is common to both arms; subtracting it isolates
    // measurement cost. burst(50) + loop control ~= 52 cycles/iter.
    let common = 52.0;
    Ok(DestructiveResult {
        pair_cycles: pair as f64 / measurements as f64 - common,
        destructive_cycles: destr as f64 / measurements as f64 - common,
    })
}

/// Measures enhancement 2: overflow handling with narrow (12-bit)
/// counters, stock PMIs vs hardware spill.
pub fn run_self_virtualizing() -> SimResult<(SelfVirtArm, SelfVirtArm)> {
    fn arm(ext_on: bool) -> SimResult<SelfVirtArm> {
        let events = [EventKind::Instructions];
        let reader = LimitReader::with_events(events.to_vec());
        let mut b = SessionBuilder::new(1)
            .events(&events)
            .machine_config(MachineConfig::new(1).with_pmu(PmuConfig {
                counter_bits: 12,
                ext_self_virtualizing: ext_on,
                ..Default::default()
            }))
            .kernel_config(KernelConfig::default());
        let mut asm = b.asm();
        asm.export("main");
        reader.emit_thread_setup(&mut asm);
        let counts = kernels::emit_counted_loop(&mut asm, 3_000, 40);
        asm.halt();
        let mut s = b.build(asm)?;
        let tid = s.spawn_instrumented("main", &[])?;
        let report = s.run()?;
        Ok(SelfVirtArm {
            ext_on,
            pmis: report.pmis,
            total_cycles: report.total_cycles,
            measured: s.counter_total(tid, 0)?,
            expected: counts.instructions + 1,
        })
    }
    Ok((arm(false)?, arm(true)?))
}

/// Measures enhancement 3: tag-filtered instrumentation self-exclusion.
pub fn run_tag_filter(iterations: u64) -> SimResult<TagFilterResult> {
    fn arm(iterations: u64, tag: u64) -> SimResult<Vec<u64>> {
        let mut layout = MemLayout::default();
        let out = layout.alloc(iterations * 8, 64);
        let mut b = SessionBuilder::new(1)
            .events(&[EventKind::Instructions])
            .with_layout(layout)
            .machine_config(MachineConfig::new(1).with_pmu(PmuConfig {
                ext_tag_filter: true,
                ..Default::default()
            }));
        let mut asm = b.asm();
        asm.export("main");
        asm.mov(Reg::R15, Reg::R0);
        // Open counter 0 on instructions with the requested tag filter.
        asm.imm(Reg::R0, 0);
        asm.imm(Reg::R1, encode_event(EventKind::Instructions));
        asm.mov(Reg::R2, Reg::R15);
        asm.imm(Reg::R3, tag);
        asm.syscall(nr::LIMIT_OPEN);
        asm.imm(Reg::R14, 1); // work tag
        asm.imm(Reg::R13, 2); // instrumentation tag
        asm.imm(Reg::R11, out);
        asm.imm(Reg::R9, iterations);
        asm.imm(Reg::R10, 0);
        asm.set_tag(Reg::R14);
        let top = asm.new_label();
        asm.bind(top);
        // enter (tagged as instrumentation)
        asm.set_tag(Reg::R13);
        asm.begin_range("limit_read.tag_a");
        asm.load(Reg::R6, Reg::R15, 0);
        asm.rdpmc(Reg::R5, 0);
        asm.add(Reg::R6, Reg::R5);
        asm.end_range("limit_read.tag_a");
        asm.set_tag(Reg::R14);
        // the work
        asm.burst(100);
        // exit (tagged as instrumentation)
        asm.set_tag(Reg::R13);
        asm.begin_range("limit_read.tag_b");
        asm.load(Reg::R4, Reg::R15, 0);
        asm.rdpmc(Reg::R5, 0);
        asm.add(Reg::R4, Reg::R5);
        asm.end_range("limit_read.tag_b");
        asm.sub(Reg::R4, Reg::R6);
        asm.store(Reg::R4, Reg::R11, 0);
        asm.alui_add(Reg::R11, 8);
        asm.set_tag(Reg::R14);
        asm.alui_sub(Reg::R9, 1);
        asm.br(Cond::Ne, Reg::R9, Reg::R10, top);
        asm.halt();
        let mut s = b.build(asm)?;
        s.spawn_instrumented("main", &[])?;
        s.run()?;
        (0..iterations).map(|i| s.read_u64(out + i * 8)).collect()
    }
    let tagged = arm(iterations, 1)?;
    let untagged = arm(iterations, 0)?;
    let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
    Ok(TagFilterResult {
        tagged_mean: mean(&tagged),
        untagged_mean: mean(&untagged),
        true_work: 100,
    })
}

/// Renders all three enhancement tables.
pub fn tables(
    d: &DestructiveResult,
    sv: &(SelfVirtArm, SelfVirtArm),
    t: &TagFilterResult,
) -> Vec<Table> {
    let mut t1 = Table::new(
        "E10.1: delta-measurement cost (cycles, work subtracted)",
        &["mechanism", "cycles/measurement"],
    );
    t1.row(&["read-pair + sub".into(), format!("{:.1}", d.pair_cycles)]);
    t1.row(&[
        "destructive read".into(),
        format!("{:.1}", d.destructive_cycles),
    ]);

    let mut t2 = Table::new(
        "E10.2: overflow handling with 12-bit counters",
        &[
            "hardware",
            "pmis",
            "total cycles",
            "measured",
            "expected",
            "exact",
        ],
    );
    for arm in [&sv.0, &sv.1] {
        t2.row(&[
            if arm.ext_on {
                "self-virtualizing".into()
            } else {
                "stock (kernel PMI)".to_string()
            },
            arm.pmis.to_string(),
            analysis::table::fmt_count(arm.total_cycles),
            arm.measured.to_string(),
            arm.expected.to_string(),
            if arm.measured == arm.expected {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }

    let mut t3 = Table::new(
        "E10.3: tag-filtered counting (region of 100 work instructions)",
        &["counter", "mean measured delta"],
    );
    t3.row(&["untagged".into(), format!("{:.1}", t.untagged_mean)]);
    t3.row(&["tag-filtered".into(), format!("{:.1}", t.tagged_mean)]);

    vec![t1, t2, t3]
}
