//! E12 (extension) — the lock-striping what-if study.
//!
//! The paper's pitch is that precise, cheap counting lets architects and
//! developers answer structural questions quantitatively. Here the
//! question is: *how many lock stripes does the key-value store need
//! before synchronization stops being the bottleneck?* Each arm sweeps the
//! stripe count and measures, per operation, the lock-acquire cost (LiMiT
//! cycles), the blocked time, and the resulting throughput.

use analysis::{LockReport, Table};
use limit::LimitReader;
use sim_core::SimResult;
use sim_cpu::EventKind;
use sim_os::KernelConfig;
use workloads::memcached::{self, MemcachedConfig};

/// One stripe-count row.
#[derive(Debug, Clone)]
pub struct E12Row {
    /// Lock stripes.
    pub stripes: u64,
    /// Throughput in ops per million guest cycles.
    pub ops_per_mcycle: f64,
    /// Mean lock-acquire cycles (busy, virtualized).
    pub mean_acq: f64,
    /// Mean bucket critical-section cycles.
    pub mean_hold: f64,
    /// Combined sync share (busy + blocked) of thread time.
    pub sync_share: f64,
    /// Futex waits.
    pub futex_waits: u64,
}

/// Sweeps the stripe count under full LiMiT instrumentation.
pub fn run(stripe_counts: &[u64], cores: usize) -> SimResult<Vec<E12Row>> {
    let events = [EventKind::Cycles];
    let rows = crate::parallel::parmap(stripe_counts.to_vec(), |stripes| {
        let cfg = MemcachedConfig {
            workers: 16,
            ops_per_worker: 250,
            stripes,
            ..MemcachedConfig::default()
        };
        let reader = LimitReader::with_events(events.to_vec());
        let run = memcached::run(&cfg, &reader, cores, &events, KernelConfig::default())?;
        let records = run.session.all_records()?;
        let classes = [("stripe", run.image.regions.acq, run.image.regions.hold)];
        let total_user = run.session.counter_grand_total(0)?;
        let report = LockReport::build(&records, &classes, total_user);
        let class = report.class("stripe").expect("class built above");
        let blocked = run.report.blocked_cycles;
        let sync_share =
            (report.sync_cycles() + blocked) as f64 / (total_user + blocked).max(1) as f64;
        Ok(E12Row {
            stripes,
            ops_per_mcycle: run.ops_per_mcycle(),
            mean_acq: class.acquire.mean().unwrap_or(0.0),
            mean_hold: class.hold.mean().unwrap_or(0.0),
            sync_share,
            futex_waits: run.report.futex.0,
        })
    });
    rows.into_iter().collect()
}

/// Renders the sweep table.
pub fn table(rows: &[E12Row]) -> Table {
    let mut t = Table::new(
        "E12: lock-striping what-if (memcached-like store, 16 workers, 8 cores)",
        &[
            "stripes",
            "ops/Mcycle",
            "acq cycles",
            "hold cycles",
            "sync share",
            "futex waits",
        ],
    );
    for r in rows {
        t.row(&[
            r.stripes.to_string(),
            format!("{:.1}", r.ops_per_mcycle),
            format!("{:.0}", r.mean_acq),
            format!("{:.0}", r.mean_hold),
            format!("{:.1}%", r.sync_share * 100.0),
            r.futex_waits.to_string(),
        ]);
    }
    t
}
